package main

// End-to-end integration tests spanning the full pipeline the tools use:
// generate → serialize → reload → decompose → estimate → validate, plus
// cross-implementation agreement checks. These complement the per-package
// unit tests by exercising module boundaries exactly as cmd/cldiam does.

import (
	"bytes"
	"context"
	"math"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/mrcluster"
	"graphdiam/internal/quotient"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

// mustDiam adapts the cancellable API for pipeline tests; a background
// context cannot produce an error.
func mustDiam(t testing.TB, g *graph.Graph, o core.DiamOptions) core.DiamResult {
	t.Helper()
	res, err := core.ApproxDiameter(context.Background(), g, o)
	if err != nil {
		t.Fatalf("ApproxDiameter: %v", err)
	}
	return res
}

// mustCluster adapts core.Cluster the same way.
func mustCluster(t testing.TB, g *graph.Graph, o core.Options) *core.Clustering {
	t.Helper()
	cl, err := core.Cluster(context.Background(), g, o)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	return cl
}

// TestPipelineGenerateSerializeEstimate drives the full user pipeline
// through every serialization format.
func TestPipelineGenerateSerializeEstimate(t *testing.T) {
	r := rng.New(71)
	orig := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(20), r)

	type codec struct {
		write func(*bytes.Buffer, *graph.Graph) error
		read  func(*bytes.Buffer) (*graph.Graph, error)
	}
	codecs := map[string]codec{
		"dimacs": {
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteDIMACS(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadDIMACS(b) },
		},
		"edgelist": {
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteEdgeList(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadEdgeList(b) },
		},
		"binary": {
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteBinary(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadBinary(b) },
		},
		"metis": {
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteMETIS(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadMETIS(b) },
		},
	}

	want := mustDiam(t, orig, core.DiamOptions{Options: core.Options{Tau: 16, Seed: 9}})
	for name, c := range codecs {
		var buf bytes.Buffer
		if err := c.write(&buf, orig); err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		loaded, err := c.read(&buf)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		got := mustDiam(t, loaded, core.DiamOptions{Options: core.Options{Tau: 16, Seed: 9}})
		if got.Estimate != want.Estimate {
			t.Fatalf("%s: estimate after round-trip %v != %v", name, got.Estimate, want.Estimate)
		}
	}
}

// TestThreeDecompositionsConservative runs all three decompositions through
// the full quotient pipeline on one graph and checks the shared invariant.
func TestThreeDecompositionsConservative(t *testing.T) {
	r := rng.New(72)
	g := gen.UniformWeights(gen.Mesh(14), r)
	exact := validate.ExactDiameter(g, bsp.New(0))
	for name, opts := range map[string]core.DiamOptions{
		"cluster":   {Options: core.Options{Tau: 8, Seed: 3}},
		"cluster2":  {Options: core.Options{Tau: 8, Seed: 3}, UseCluster2: true},
		"oblivious": {Options: core.Options{Tau: 8, Seed: 3}, WeightOblivious: true},
	} {
		res := mustDiam(t, g, opts)
		if res.Estimate+1e-9 < exact {
			t.Fatalf("%s: estimate %v below exact %v", name, res.Estimate, exact)
		}
		if err := res.Clustering.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestQuotientEstimateIsUpperBoundStructurally rebuilds the estimate from
// raw parts (clustering → quotient → diameter) and verifies each step's
// contract on a disconnected graph, the trickiest case.
func TestQuotientEstimateIsUpperBoundStructurally(t *testing.T) {
	r := rng.New(73)
	// Two mesh components of different sizes.
	b := graph.NewBuilder(16*16+8*8, 0)
	m1 := gen.UniformWeights(gen.Mesh(16), r)
	m2 := gen.UniformWeights(gen.Mesh(8), r)
	m1.ForEachEdge(func(u, v graph.NodeID, w float64) { b.AddEdge(u, v, w) })
	off := graph.NodeID(16 * 16)
	m2.ForEachEdge(func(u, v graph.NodeID, w float64) { b.AddEdge(off+u, off+v, w) })
	g := b.Build()
	if cc.IsConnected(g) {
		t.Fatal("test graph should be disconnected")
	}

	cl := mustCluster(t, g, core.Options{Tau: 8, Seed: 1})
	q, centers := quotient.Build(g, cl.Center, cl.Dist, bsp.New(2))
	if q.NumNodes() != cl.NumClusters() || len(centers) != cl.NumClusters() {
		t.Fatalf("quotient size %d vs clusters %d", q.NumNodes(), cl.NumClusters())
	}
	qd := quotient.Diameter(q, bsp.New(2), quotient.DiameterOptions{})
	estimate := qd + 2*cl.Radius
	exact := validate.ExactDiameter(g, bsp.New(0))
	if estimate+1e-9 < exact {
		t.Fatalf("structural estimate %v below exact %v", estimate, exact)
	}
}

// TestBaselineAgainstAllSSSP ensures the Δ-stepping baseline and every
// exact SSSP implementation agree on the benchmark families end to end.
func TestBaselineAgainstAllSSSP(t *testing.T) {
	r := rng.New(74)
	graphs := []*graph.Graph{
		gen.RoadNetwork(gen.DefaultRoadNetworkOptions(16), r),
		gen.UniformWeights(largest(gen.RMatDefault(9, r)), r),
		gen.UniformWeights(gen.Hypercube(8), r),
		gen.UniformWeights(gen.BarabasiAlbert(300, 3, r), r),
	}
	for gi, g := range graphs {
		src := graph.NodeID(g.NumNodes() / 3)
		want := sssp.Dijkstra(g, src)
		ds, err := sssp.DeltaStepping(context.Background(), g, src, sssp.SuggestDelta(g), bsp.New(3))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-ds.Dist[i]) > 1e-9 &&
				!(math.IsInf(want[i], 1) && math.IsInf(ds.Dist[i], 1)) {
				t.Fatalf("graph %d node %d: %v vs %v", gi, i, want[i], ds.Dist[i])
			}
		}
	}
}

func largest(g *graph.Graph) *graph.Graph {
	sub, _ := cc.LargestComponent(g)
	return sub
}

// TestMRAndBSPAgreeEndToEnd runs the full estimate with the MR-model
// decomposition substituted for the BSP one and checks the estimates agree
// (the clusterings are bit-identical, so the estimates must be too).
func TestMRAndBSPAgreeEndToEnd(t *testing.T) {
	r := rng.New(75)
	g := gen.UniformWeights(gen.GNM(300, 900, r), r)

	bspRes := mustDiam(t, g, core.DiamOptions{Options: core.Options{Tau: 8, Seed: 4}})

	mrCl := mrcluster.Cluster(g, mrcluster.Options{Tau: 8, Seed: 4, Workers: 2})
	q, _ := quotient.Build(g, mrCl.Center, mrCl.Dist, bsp.New(2))
	qd := quotient.Diameter(q, bsp.New(2), quotient.DiameterOptions{})
	mrEstimate := qd + 2*mrCl.Radius

	if bspRes.Estimate != mrEstimate {
		t.Fatalf("BSP estimate %v != MR estimate %v", bspRes.Estimate, mrEstimate)
	}
}

// TestWorkersSweepEndToEnd verifies the determinism contract across a wide
// worker sweep at the pipeline level.
func TestWorkersSweepEndToEnd(t *testing.T) {
	r := rng.New(76)
	g := gen.UniformWeights(gen.Mesh(12), r)
	var want float64
	for i, workers := range []int{1, 2, 3, 5, 8, 13} {
		res := mustDiam(t, g, core.DiamOptions{
			Options: core.Options{Tau: 8, Seed: 6, Engine: bsp.New(workers)},
		})
		if i == 0 {
			want = res.Estimate
			continue
		}
		if res.Estimate != want {
			t.Fatalf("workers=%d: estimate %v != %v", workers, res.Estimate, want)
		}
	}
}
