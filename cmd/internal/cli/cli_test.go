package cli

import (
	"os"
	"path/filepath"
	"testing"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
)

func TestLoadSpecFamilies(t *testing.T) {
	cases := map[string]struct {
		wantN int
	}{
		"mesh:8":     {64},
		"rmat:6":     {64},
		"road:8":     {0}, // road drops nodes outside the largest component
		"roads:2:8":  {0},
		"gnm:50:100": {50},
		"path:10":    {10},
	}
	for spec, want := range cases {
		g, err := LoadSpec(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", spec)
		}
		if want.wantN > 0 && g.NumNodes() != want.wantN {
			t.Fatalf("%s: n=%d, want %d", spec, g.NumNodes(), want.wantN)
		}
	}
}

func TestLoadSpecErrors(t *testing.T) {
	for _, spec := range []string{"nope:3", "mesh", "mesh:x", "gnm:5", "roads:2"} {
		if _, err := LoadSpec(spec, 1); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}

func TestLoadSpecDeterministic(t *testing.T) {
	a, err := LoadSpec("rmat:7", 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadSpec("rmat:7", 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
}

func TestLoadGraphDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	g := gen.Path(6)

	write := func(name string, fn func(f *os.File) error) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		return p
	}
	paths := []string{
		write("g.gr", func(f *os.File) error { return gio.WriteDIMACS(f, g) }),
		write("g.bin", func(f *os.File) error { return gio.WriteBinary(f, g) }),
		write("g.metis", func(f *os.File) error { return gio.WriteMETIS(f, g) }),
		write("g.txt", func(f *os.File) error { return gio.WriteEdgeList(f, g) }),
	}
	for _, p := range paths {
		got, err := LoadGraph(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.NumNodes() != 6 || got.NumEdges() != 5 {
			t.Fatalf("%s: n=%d m=%d", p, got.NumNodes(), got.NumEdges())
		}
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := LoadGraph("/definitely/not/here.gr"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadMutualExclusion(t *testing.T) {
	if _, err := Load("a.gr", "mesh:4", 1); err == nil {
		t.Fatal("both flags should error")
	}
	if _, err := Load("", "", 1); err == nil {
		t.Fatal("neither flag should error")
	}
	if g, err := Load("", "mesh:4", 1); err != nil || g.NumNodes() != 16 {
		t.Fatalf("spec path failed: %v", err)
	}
}
