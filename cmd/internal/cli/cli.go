// Package cli holds the small helpers shared by graphdiam's command-line
// tools: loading graphs from files in any supported format, and loading the
// synthetic families by spec without an intermediate file.
package cli

import (
	"fmt"
	"os"
	"strings"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
)

// LoadGraph reads a graph from path, dispatching on the extension:
// .gr (DIMACS), .bin (graphdiam binary), .metis/.graph (METIS), anything
// else as an edge list.
func LoadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".gr"):
		return gio.ReadDIMACS(f)
	case strings.HasSuffix(path, ".bin"):
		return gio.ReadBinary(f)
	case strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph"):
		return gio.ReadMETIS(f)
	default:
		return gio.ReadEdgeList(f)
	}
}

// LoadSpec builds a graph from a compact generator spec such as "mesh:256"
// or "rmat:16". The grammar lives in gen.FromSpec, which is shared with the
// graphdiamd server's generate endpoint; the seed drives both topology and
// weights.
func LoadSpec(spec string, seed uint64) (*graph.Graph, error) {
	return gen.FromSpec(spec, seed)
}

// Load resolves the -graph / -spec flag pair: exactly one must be set.
func Load(path, spec string, seed uint64) (*graph.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("cli: -graph and -spec are mutually exclusive")
	case path != "":
		return LoadGraph(path)
	case spec != "":
		return LoadSpec(spec, seed)
	default:
		return nil, fmt.Errorf("cli: one of -graph or -spec is required")
	}
}
