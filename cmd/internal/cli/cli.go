// Package cli holds the small helpers shared by graphdiam's command-line
// tools: loading graphs from files in any supported format, and loading the
// synthetic families by spec without an intermediate file.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// LoadGraph reads a graph from path, dispatching on the extension:
// .gr (DIMACS), .bin (graphdiam binary), .metis/.graph (METIS), anything
// else as an edge list.
func LoadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".gr"):
		return gio.ReadDIMACS(f)
	case strings.HasSuffix(path, ".bin"):
		return gio.ReadBinary(f)
	case strings.HasSuffix(path, ".metis") || strings.HasSuffix(path, ".graph"):
		return gio.ReadMETIS(f)
	default:
		return gio.ReadEdgeList(f)
	}
}

// LoadSpec builds a graph from a compact generator spec of the form
// "family:param[:param...]" with uniform (0,1] weights where the family is
// born unweighted:
//
//	mesh:256          256×256 mesh
//	rmat:16           R-MAT(16)
//	road:128          synthetic road network, 128×128 lattice
//	roads:4:64        roads-product, 4 layers over a 64-lattice base
//	gnm:10000:80000   Erdős–Rényi G(n,m)
//	path:1000         unit path
//
// The seed drives both topology and weights.
func LoadSpec(spec string, seed uint64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	r := rng.New(seed)
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("cli: spec %q: missing parameter %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "mesh":
		s, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return gen.UniformWeights(gen.Mesh(s), r), nil
	case "rmat":
		s, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return gen.UniformWeights(gen.RMatDefault(s, r), r), nil
	case "road":
		s, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return gen.RoadNetwork(gen.DefaultRoadNetworkOptions(s), r), nil
	case "roads":
		layers, err := atoi(1)
		if err != nil {
			return nil, err
		}
		side, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return gen.Roads(layers, side, r), nil
	case "gnm":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		m, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return gen.UniformWeights(gen.GNM(n, m, r), r), nil
	case "path":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		return gen.Path(n), nil
	default:
		return nil, fmt.Errorf("cli: unknown family %q in spec %q", parts[0], spec)
	}
}

// Load resolves the -graph / -spec flag pair: exactly one must be set.
func Load(path, spec string, seed uint64) (*graph.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("cli: -graph and -spec are mutually exclusive")
	case path != "":
		return LoadGraph(path)
	case spec != "":
		return LoadSpec(spec, seed)
	default:
		return nil, fmt.Errorf("cli: one of -graph or -spec is required")
	}
}
