// Command graphdiamd serves graphdiam's decomposition and diameter
// algorithms over HTTP — the long-running counterpart to the one-shot
// cldiam/deltastep CLIs.
//
// Usage:
//
//	graphdiamd -addr :8080
//	graphdiamd -addr :8080 -preload usa=road:256 -preload social=rmat:16
//	graphdiamd -addr :8080 -data-dir /var/lib/graphdiam \
//	    -dataset-budget 8G -preload usa=file:/data/USA-road-d.NY.gr.gz
//
// Clients register graphs (generated from a spec or uploaded inline) and
// query decompositions and diameter approximations; identical queries are
// served from an LRU result cache and concurrent identical queries share a
// single BSP run. -max-concurrent caps how many BSP engines execute at
// once. Long-running computations are better submitted through the
// asynchronous /v2/jobs API, which supports polling, SSE progress
// streaming, and cancellation (see internal/server). The process drains
// in-flight requests, cancels outstanding jobs, and exits cleanly on
// SIGINT or SIGTERM.
//
// With -data-dir the daemon opens a persistent dataset catalog there
// (see internal/dataset): graphs ingested over POST /v2/datasets — or via
// file: preloads — are stored as content-addressed mmap-ready CSR
// snapshots that survive restarts, and any query naming a cataloged graph
// faults it in transparently. -dataset-budget bounds the catalog's disk
// footprint (suffixes K/M/G/T, powers of 1024); least-recently-used
// datasets are evicted when an ingest would exceed it.
//
// -blob-url points the catalog's storage tier at a peer daemon (or any
// HTTP store speaking the /v2/blobs protocol): snapshots are fetched by
// content address into a read-through cache under <data-dir>/cache,
// ingests publish to the shared tier, and dataset names unknown locally
// resolve against the peer's catalog — so a fleet shares one snapshot
// set while every node keeps its own manifest. The daemon always serves
// its own tier at /v2/blobs when a catalog is configured.
//
// -verify-interval starts a background integrity sweeper that re-hashes
// every cataloged snapshot on that cadence and quarantines corruption
// exactly like boot-time recovery (entry dropped, blob set aside under
// quarantine/, daemon keeps serving). Sweep telemetry is reported by
// GET /v2/datasets.
//
// -peers joins this daemon into a fixed fleet: pass every daemon's base
// URL comma-separated in rank order (self included) and this daemon's
// index as -worker-id. A fleet daemon answers POST /v2/distributed/jobs by
// splitting the run's workers across all daemons over an HTTP BSP
// transport — results and the paper's round/message/update accounting are
// bit-identical to a single-process run with the same total worker count.
// Graphs are resolved per daemon by name: combine with -data-dir and
// -blob-url so every daemon adopts the identical dataset by content
// address. -barrier-timeout bounds each superstep's wait for remote
// frames.
//
// -peers also enables the fleet query plane (see internal/fleet): each
// dataset name has a rendezvous-hash owner among the live daemons, any
// daemon transparently proxies queries it does not own to the owner, and
// results are shared through a fleet-wide cache keyed by dataset content
// address — so identical queries anywhere in the fleet cost one BSP run.
// -probe-interval tunes the health probes (GET /readyz) that drive
// failover. -tenant-rate/-tenant-burst add per-tenant admission control
// on compute requests, keyed by the X-Tenant header: a tenant over its
// token bucket gets 429 with Retry-After. cmd/graphdiamlb is the
// matching front door for clients that should not pick a daemon
// themselves.
//
// Observability: GET /metrics on the serving listener exposes the
// daemon's full metric set (BSP supersteps, store cache/jobs, fleet
// health and proxy traffic, per-route HTTP latency, Go runtime) in
// Prometheus text format, and every request is logged as one structured
// span line keyed by X-Request-Id. -debug-addr starts a second, private
// listener carrying net/http/pprof plus a /metrics mirror — off by
// default, and never to be exposed on a public interface.
//
// -preload accepts two value shapes: a generator spec ("usa=road:256",
// see gen.FromSpec) or "name=file:/path" naming a graph file in any
// supported format (edgelist, DIMACS, METIS, binary; gzip transparent;
// format sniffed). With a catalog configured, file preloads are ingested
// (deduplicated by content, so repeated boots cost nothing) and served
// from the snapshot; without one they are parsed straight into memory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"graphdiam/internal/dataset"
	"graphdiam/internal/fleet"
	"graphdiam/internal/gen"
	"graphdiam/internal/obs"
	"graphdiam/internal/server"
	"graphdiam/internal/store"
)

// preloads collects repeated -preload name=spec flags.
type preloads []string

func (p *preloads) String() string     { return strings.Join(*p, ",") }
func (p *preloads) Set(v string) error { *p = append(*p, v); return nil }

// preloadGraph registers one -preload value: a "file:" path (ingested
// into the catalog when one is configured, parsed directly otherwise) or
// a generator spec.
func preloadGraph(st *store.Store, cat *dataset.Catalog, name, spec string, seed uint64) (store.GraphInfo, error) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		if cat != nil {
			// Content addressing makes this idempotent across restarts:
			// an unchanged file hashes to the snapshot already on disk.
			if _, err := cat.IngestFile(name, path, dataset.FormatAuto, "preload "+path); err != nil {
				return store.GraphInfo{}, err
			}
			return st.LoadDataset(context.Background(), name)
		}
		f, err := os.Open(path)
		if err != nil {
			return store.GraphInfo{}, err
		}
		defer f.Close()
		g, format, err := dataset.DecodeStream(f, dataset.FormatAuto)
		if err != nil {
			return store.GraphInfo{}, err
		}
		return st.AddGraph(name, g, fmt.Sprintf("preload %s (%s)", path, format))
	}
	g, err := gen.FromSpec(spec, seed)
	if err != nil {
		return store.GraphInfo{}, err
	}
	return st.AddGraph(name, g, fmt.Sprintf("preload %s seed=%d", spec, seed))
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxEntries    = flag.Int("max-entries", 256, "result cache capacity (entries)")
		maxConcurrent = flag.Int("max-concurrent", 2, "max BSP computations executing at once")
		maxJobs       = flag.Int("max-jobs", 512, "job registry retention (terminal jobs evicted oldest-first)")
		maxBody       = flag.Int64("max-body", 64<<20, "max request body bytes (all routes except dataset ingest)")
		maxDataBody   = flag.String("max-dataset-body", "", "max dataset ingest body, e.g. 4G (empty = unlimited)")
		seed          = flag.Uint64("seed", 1, "seed for -preload graph generation")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		readHeaderTO  = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		idleTO        = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		quiet         = flag.Bool("quiet", false, "disable request logging")
		dataDir       = flag.String("data-dir", "", "persistent dataset catalog directory (empty = memory-only)")
		datasetBudget = flag.String("dataset-budget", "", "catalog disk budget, e.g. 512M or 8G (empty = unlimited)")
		blobURL       = flag.String("blob-url", "", "base URL of a shared snapshot blob tier, e.g. http://peer:8080 (requires -data-dir)")
		verifyEvery   = flag.Duration("verify-interval", 0, "background integrity sweep interval, e.g. 30m (0 = disabled; requires -data-dir)")
		peerList      = flag.String("peers", "", "comma-separated base URLs of every fleet daemon in rank order, self included (enables distributed runs and owner routing)")
		workerID      = flag.Int("worker-id", 0, "this daemon's rank in -peers")
		barrierTO     = flag.Duration("barrier-timeout", 0, "per-superstep wait for remote BSP frames (0 = default 30s; requires -peers)")
		probeEvery    = flag.Duration("probe-interval", 0, "fleet health-probe cadence (0 = default 5s; requires -peers)")
		replicas      = flag.Int("replicas", 1, "read replication factor k: cached results are pushed to the top-k preference members and served from any of them (requires -peers for k>1)")
		fleetConfig   = flag.String("fleet-config", "", "JSON placement-view file ({\"epoch\",\"members\"}) reloaded on SIGHUP to swap fleet membership at runtime (requires -peers)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant admitted jobs/second (0 = admission control disabled)")
		tenantBurst   = flag.Float64("tenant-burst", 0, "per-tenant job burst capacity (0 = max(1, -tenant-rate); requires -tenant-rate)")
		churnThresh   = flag.Float64("churn-threshold", 0, "max fraction of clusters a delta may touch and still trigger eager decomposition maintenance on append (0 = default 0.25, negative = always lazy)")
		debugAddr     = flag.String("debug-addr", "", "private listen address for pprof and a /metrics mirror, e.g. localhost:6060 (empty = disabled; never expose publicly)")
		pre           preloads
	)
	flag.Var(&pre, "preload", "register a graph at boot as name=spec or name=file:/path (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "graphdiamd: ", log.LstdFlags)
	slogger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// One registry serves the whole daemon: runtime gauges, the store and
	// BSP families, the fleet families, and the server's per-route HTTP
	// family all expose through GET /metrics on the public listener (and
	// on -debug-addr when set).
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	storeMetrics := store.NewMetrics(reg)
	fleetMetrics := fleet.NewMetrics(reg)

	// Fleet boot-flag validation runs before anything opens: a rank
	// outside -peers or a -blob-url pointing at this daemon's own peer
	// entry used to surface only at the first query; now it fails boot.
	var peers []string
	if *peerList != "" {
		var err error
		peers, err = fleet.ValidateDaemonFlags(strings.Split(*peerList, ","), *workerID, *blobURL)
		if err != nil {
			logger.Fatalf("bad -peers: %v", err)
		}
	} else {
		if *barrierTO != 0 {
			logger.Fatalf("-barrier-timeout requires -peers")
		}
		if *probeEvery != 0 {
			logger.Fatalf("-probe-interval requires -peers")
		}
		if *replicas > 1 {
			logger.Fatalf("-replicas > 1 requires -peers")
		}
		if *fleetConfig != "" {
			logger.Fatalf("-fleet-config requires -peers")
		}
	}
	if *replicas < 1 {
		logger.Fatalf("-replicas must be >= 1")
	}
	if *tenantRate < 0 {
		logger.Fatalf("-tenant-rate must be non-negative")
	}
	if *tenantBurst != 0 && *tenantRate == 0 {
		logger.Fatalf("-tenant-burst requires -tenant-rate")
	}

	var cat *dataset.Catalog
	if *dataDir != "" {
		budget, err := dataset.ParseByteSize(*datasetBudget)
		if err != nil {
			logger.Fatalf("bad -dataset-budget: %v", err)
		}
		if *verifyEvery < 0 {
			logger.Fatalf("-verify-interval must be positive (0 disables)")
		}
		opts := dataset.Options{ByteBudget: budget, Log: logger,
			Metrics: dataset.NewCatalogMetrics(reg)}
		if *blobURL != "" {
			// Shared snapshot tier: blobs fetch by content address from
			// the peer, read-through cached under <data-dir>/cache, and
			// unknown dataset names resolve against the peer's catalog.
			remote, err := dataset.NewRemoteStore(*blobURL, filepath.Join(*dataDir, "cache"), nil)
			if err != nil {
				logger.Fatalf("bad -blob-url: %v", err)
			}
			opts.Blobs = remote
			logger.Printf("using remote blob backend %s", *blobURL)
		}
		cat, err = dataset.Open(*dataDir, opts)
		if err != nil {
			logger.Fatalf("open dataset catalog: %v", err)
		}
		defer cat.Close()
		logger.Printf("dataset catalog %s: %d datasets, %d bytes",
			*dataDir, len(cat.List()), cat.TotalBytes())
		if *verifyEvery > 0 {
			// Catalog Close stops the sweeper; no explicit stop needed.
			cat.StartSweeper(*verifyEvery)
			logger.Printf("integrity sweeper: re-verifying snapshots every %v", *verifyEvery)
		}
	} else {
		for flagName, set := range map[string]bool{
			"-dataset-budget":  *datasetBudget != "",
			"-blob-url":        *blobURL != "",
			"-verify-interval": *verifyEvery != 0,
		} {
			if set {
				logger.Fatalf("%s requires -data-dir", flagName)
			}
		}
	}

	var (
		dist   *store.DistributedConfig
		ftab   *fleet.Table
		fcache *fleet.Cache
	)
	if len(peers) > 0 {
		dist = &store.DistributedConfig{
			Rank:           *workerID,
			Peers:          peers,
			BarrierTimeout: *barrierTO,
		}
		interval := *probeEvery
		if interval == 0 {
			interval = 5 * time.Second
		}
		var err error
		ftab, err = fleet.NewTable(peers, *workerID, fleet.TableOptions{
			Interval: interval,
			Log:      slogger,
			Metrics:  fleetMetrics,
		})
		if err != nil {
			logger.Fatalf("fleet: %v", err)
		}
		ftab.Start()
		defer ftab.Close()
		fcache = fleet.NewCache(ftab, fleet.CacheOptions{Replicas: *replicas, Metrics: fleetMetrics})
		defer fcache.Close()
		logger.Printf("fleet query plane: rank %d of %d, probing peers every %v, replication factor %d",
			*workerID, len(peers), interval, *replicas)
	}

	scfg := store.Config{
		MaxEntries:     *maxEntries,
		MaxConcurrent:  *maxConcurrent,
		MaxJobs:        *maxJobs,
		Catalog:        cat,
		Distributed:    dist,
		Metrics:        storeMetrics,
		ChurnThreshold: *churnThresh,
	}
	if fcache != nil {
		scfg.FleetCache = fcache
	}
	st := store.New(scfg)
	defer st.Close()
	for _, p := range pre {
		name, spec, ok := strings.Cut(p, "=")
		if !ok || name == "" || spec == "" {
			logger.Fatalf("bad -preload %q (want name=spec or name=file:/path)", p)
		}
		info, err := preloadGraph(st, cat, name, spec, *seed)
		if err != nil {
			logger.Fatalf("preload %q: %v", p, err)
		}
		logger.Printf("preloaded %s: n=%d m=%d (%s)", info.Name, info.NumNodes, info.NumEdges, info.Source)
	}

	maxDatasetBytes, err := dataset.ParseByteSize(*maxDataBody)
	if err != nil {
		logger.Fatalf("bad -max-dataset-body: %v", err)
	}
	// drainCh fires when a POST /v2/fleet/drain sequence completes:
	// in-flight work finished, successors pre-warmed — time to exit.
	drainCh := make(chan struct{})
	cfg := server.Config{
		MaxRequestBytes: *maxBody,
		MaxDatasetBytes: maxDatasetBytes,
		Datasets:        cat,
		Fleet:           ftab,
		Replicas:        *replicas,
		DrainTimeout:    *drain,
		Registry:        reg,
		FleetMetrics:    fleetMetrics,
	}
	if ftab != nil {
		var drainOnce sync.Once
		cfg.OnDrain = func() { drainOnce.Do(func() { close(drainCh) }) }
	}
	if *tenantRate > 0 {
		cfg.Quotas = fleet.NewQuotas(*tenantRate, *tenantBurst)
		logger.Printf("admission control: %g jobs/s per tenant", *tenantRate)
	}
	if !*quiet {
		cfg.Log = slogger
	}

	// The debug listener is deliberately a separate server on a separate
	// (private) address: pprof handlers expose heap contents and must
	// never ride the public mux. It mirrors /metrics so a scrape can stay
	// entirely off the serving listener.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", reg.Handler())
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: *readHeaderTO,
		}
		defer dsrv.Close()
		go func() {
			logger.Printf("debug listener (pprof + /metrics) on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener: %v", err)
			}
		}()
	}
	// No WriteTimeout: /v2/jobs/{id}/events streams SSE for the life of a
	// job; IdleTimeout still reaps dead keep-alive connections and
	// ReadHeaderTimeout caps slowloris-style trickled headers.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(st, cfg),
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGHUP reloads -fleet-config: a JSON placement view whose epoch must
	// strictly exceed the current one. A bad file (or a view that would
	// orphan this node) is rejected with the old view kept — reload is
	// never allowed to wedge a serving daemon.
	if *fleetConfig != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				b, err := os.ReadFile(*fleetConfig)
				if err != nil {
					logger.Printf("fleet-config reload: %v", err)
					continue
				}
				var v fleet.View
				if err := json.Unmarshal(b, &v); err != nil {
					logger.Printf("fleet-config reload: parse %s: %v", *fleetConfig, err)
					continue
				}
				if err := ftab.SwapView(v); err != nil {
					logger.Printf("fleet-config reload rejected: %v", err)
					continue
				}
				logger.Printf("fleet-config reload: now on placement epoch %d (%d members)", v.Epoch, len(v.Members))
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache=%d entries, %d concurrent BSP runs)",
			*addr, *maxEntries, *maxConcurrent)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	case <-drainCh:
		logger.Printf("drain complete; beginning graceful exit")
	}

	logger.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("bye")
}
