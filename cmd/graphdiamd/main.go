// Command graphdiamd serves graphdiam's decomposition and diameter
// algorithms over HTTP — the long-running counterpart to the one-shot
// cldiam/deltastep CLIs.
//
// Usage:
//
//	graphdiamd -addr :8080
//	graphdiamd -addr :8080 -preload usa=road:256 -preload social=rmat:16
//
// Clients register graphs (generated from a spec or uploaded inline) and
// query decompositions and diameter approximations; identical queries are
// served from an LRU result cache and concurrent identical queries share a
// single BSP run. -max-concurrent caps how many BSP engines execute at
// once. Long-running computations are better submitted through the
// asynchronous /v2/jobs API, which supports polling, SSE progress
// streaming, and cancellation (see internal/server). The process drains
// in-flight requests, cancels outstanding jobs, and exits cleanly on
// SIGINT or SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphdiam/internal/gen"
	"graphdiam/internal/server"
	"graphdiam/internal/store"
)

// preloads collects repeated -preload name=spec flags.
type preloads []string

func (p *preloads) String() string     { return strings.Join(*p, ",") }
func (p *preloads) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxEntries    = flag.Int("max-entries", 256, "result cache capacity (entries)")
		maxConcurrent = flag.Int("max-concurrent", 2, "max BSP computations executing at once")
		maxJobs       = flag.Int("max-jobs", 512, "job registry retention (terminal jobs evicted oldest-first)")
		maxBody       = flag.Int64("max-body", 64<<20, "max request body bytes")
		seed          = flag.Uint64("seed", 1, "seed for -preload graph generation")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		readHeaderTO  = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		idleTO        = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		quiet         = flag.Bool("quiet", false, "disable request logging")
		pre           preloads
	)
	flag.Var(&pre, "preload", "register a graph at boot as name=spec (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "graphdiamd: ", log.LstdFlags)

	st := store.New(store.Config{
		MaxEntries:    *maxEntries,
		MaxConcurrent: *maxConcurrent,
		MaxJobs:       *maxJobs,
	})
	defer st.Close()
	for _, p := range pre {
		name, spec, ok := strings.Cut(p, "=")
		if !ok || name == "" || spec == "" {
			logger.Fatalf("bad -preload %q (want name=spec)", p)
		}
		g, err := gen.FromSpec(spec, *seed)
		if err != nil {
			logger.Fatalf("preload %q: %v", p, err)
		}
		info, err := st.AddGraph(name, g, fmt.Sprintf("preload %s seed=%d", spec, *seed))
		if err != nil {
			logger.Fatalf("preload %q: %v", p, err)
		}
		logger.Printf("preloaded %s: n=%d m=%d", info.Name, info.NumNodes, info.NumEdges)
	}

	cfg := server.Config{MaxRequestBytes: *maxBody}
	if !*quiet {
		cfg.Log = logger
	}
	// No WriteTimeout: /v2/jobs/{id}/events streams SSE for the life of a
	// job; IdleTimeout still reaps dead keep-alive connections and
	// ReadHeaderTimeout caps slowloris-style trickled headers.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(st, cfg),
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache=%d entries, %d concurrent BSP runs)",
			*addr, *maxEntries, *maxConcurrent)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("bye")
}
