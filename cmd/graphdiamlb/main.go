// Command graphdiamlb is the fleet front door: a thin, stateless proxy
// that gives clients one address for a graphdiam fleet. It routes every
// request the same way the daemons themselves do — dataset-placed
// requests to the dataset's rendezvous owner, job requests to the job's
// home rank, everything else to the first live daemon — so a query lands
// directly on the node whose cache and singleflight will serve it, and a
// daemon failure reroutes deterministically at the next health probe.
//
// Usage:
//
//	graphdiamlb -addr :8000 -peers http://a:8080,http://b:8080,http://c:8080
//
// The -peers list must be the same rank-ordered list the daemons were
// started with; the lb is not itself a member. Placement needs no
// coordination: lb and daemons compute identical owners from the shared
// list, and a disagreement (stale health view) costs one extra
// daemon→daemon hop, never a loop.
//
// -tenant-rate/-tenant-burst enforce per-tenant admission control at the
// edge (X-Tenant header, 429 + Retry-After); forwarded requests carry
// X-Graphdiam-Edge so daemons do not charge the tenant twice. Every
// request is stamped with an X-Request-Id (minted here unless the client
// sent one) that survives all routed hops for log correlation.
//
// The lb serves its own /healthz (process liveness), /readyz (ready when
// at least one daemon is live), /v2/fleet (its current placement view),
// and /metrics (Prometheus text exposition of the edge's per-route
// request counters, proxy retry/failover traffic, probe flips, and Go
// runtime gauges); every other path is proxied. -debug-addr starts a
// second, private listener carrying net/http/pprof plus a /metrics
// mirror — off by default, never to be exposed publicly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphdiam/internal/fleet"
	"graphdiam/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8000", "listen address")
		peerList     = flag.String("peers", "", "comma-separated base URLs of every fleet daemon in rank order (required)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "daemon health-probe cadence")
		maxBody      = flag.Int64("max-body", 64<<20, "max request body bytes")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant admitted jobs/second (0 = admission control disabled)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant job burst capacity (0 = max(1, -tenant-rate); requires -tenant-rate)")
		drain        = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		readHeaderTO = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		quiet        = flag.Bool("quiet", false, "disable request logging")
		debugAddr    = flag.String("debug-addr", "", "private listen address for pprof and a /metrics mirror, e.g. localhost:6061 (empty = disabled; never expose publicly)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "graphdiamlb: ", log.LstdFlags)
	slogger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *peerList == "" {
		logger.Fatalf("-peers is required")
	}
	if *tenantRate < 0 {
		logger.Fatalf("-tenant-rate must be non-negative")
	}
	if *tenantBurst != 0 && *tenantRate == 0 {
		logger.Fatalf("-tenant-burst requires -tenant-rate")
	}
	if *probeEvery <= 0 {
		logger.Fatalf("-probe-interval must be positive")
	}

	// The lb's registry mirrors the daemons' family names (http + fleet),
	// so one scrape config and one dashboard cover both tiers.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	fleetMetrics := fleet.NewMetrics(reg)

	table, err := fleet.NewTable(strings.Split(*peerList, ","), -1, fleet.TableOptions{
		Interval: *probeEvery,
		Log:      slogger,
		Metrics:  fleetMetrics,
	})
	if err != nil {
		logger.Fatalf("bad -peers: %v", err)
	}
	table.Start()
	defer table.Close()

	lb := &frontDoor{
		table:    table,
		proxy:    &fleet.Proxy{SelfRank: -1, Table: table, Log: slogger, Metrics: fleetMetrics},
		maxBody:  *maxBody,
		metrics:  obs.NewHTTPMetrics(reg),
		registry: reg,
	}
	if *tenantRate > 0 {
		lb.quotas = fleet.NewQuotas(*tenantRate, *tenantBurst)
		logger.Printf("admission control: %g jobs/s per tenant", *tenantRate)
	}
	if !*quiet {
		lb.log = slogger
	}

	// Private pprof + /metrics mirror; see the graphdiamd flag of the same
	// name. Never expose this listener publicly.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", reg.Handler())
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: *readHeaderTO,
		}
		defer dsrv.Close()
		go func() {
			logger.Printf("debug listener (pprof + /metrics) on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           lb,
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTO,
		// No WriteTimeout: proxied SSE job streams live as long as the job.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("front door on %s for %d-daemon fleet", *addr, len(table.Members()))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("bye")
}

// frontDoor is the lb's handler: admission control, then placement, then
// a reverse-proxied forward.
type frontDoor struct {
	table    *fleet.Table
	proxy    *fleet.Proxy
	quotas   *fleet.Quotas
	log      *slog.Logger
	maxBody  int64
	metrics  *obs.HTTPMetrics
	registry *obs.Registry
}

// lbRoute labels a request for the lb's per-route metrics: the edge's
// own endpoints by path, everything proxied by its placement class —
// never the raw path, whose dataset/job segments are unbounded.
func lbRoute(method, path string) string {
	switch path {
	case "/healthz", "/readyz", "/v2/fleet", "/v2/fleet/config", "/metrics":
		return path
	}
	switch fleet.Classify(method, path).Class {
	case fleet.RouteDataset:
		return "proxy_dataset"
	case fleet.RouteJob:
		return "proxy_job"
	default:
		return "proxy_other"
	}
}

func (f *frontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get(fleet.RequestIDHeader)
	if rid == "" {
		rid = fleet.NewRequestID()
		r.Header.Set(fleet.RequestIDHeader, rid)
	}
	w.Header().Set(fleet.RequestIDHeader, rid)
	route := lbRoute(r.Method, r.URL.Path)
	done := f.metrics.Begin()
	rec := obs.WrapWriter(w)
	start := time.Now()
	f.dispatch(rec, r)
	elapsed := time.Since(start)
	done(route, r.Method, rec.Code())
	if f.log != nil {
		attrs := []any{
			"route", route,
			"method", r.Method,
			"status", rec.Code(),
			"duration_ms", float64(elapsed.Microseconds()) / 1e3,
			"request_id", rid,
			"epoch", f.table.Epoch(),
		}
		if tenant := r.Header.Get(fleet.TenantHeader); tenant != "" {
			attrs = append(attrs, "tenant", tenant)
		}
		f.log.Info("http request", attrs...)
	}
}

func (f *frontDoor) dispatch(w http.ResponseWriter, r *http.Request) {
	// The lb's own endpoints: liveness, readiness, placement view, metrics,
	// and membership administration (a config push to the lb keeps the
	// edge's placement in lockstep with the daemons it fronts).
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	case "/readyz":
		f.serveReadyz(w)
		return
	case "/metrics":
		f.registry.Handler().ServeHTTP(w, r)
		return
	case "/v2/fleet":
		f.serveFleet(w, r)
		return
	case "/v2/fleet/config":
		if r.Method != http.MethodPost {
			fleet.WriteJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("config pushes are POST"))
			return
		}
		fleet.HandleConfigPush(f.table, w, r)
		return
	}

	if !f.admit(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, f.maxBody)

	chain, ok := f.place(w, r)
	if !ok {
		return // place already wrote the error
	}
	f.proxy.ForwardChain(w, r, chain)
}

// placeChainMax bounds how many failover candidates one request walks.
const placeChainMax = 3

// place picks the daemons this request may land on, best first,
// mirroring the daemons' own routing rules so the first hop is usually
// the last. The tail of the chain is the failover path: the proxy
// advances past draining or freshly-dead members without bouncing the
// error back to the client.
func (f *frontDoor) place(w http.ResponseWriter, r *http.Request) ([]fleet.Member, bool) {
	d := fleet.Classify(r.Method, r.URL.Path)
	switch d.Class {
	case fleet.RouteDataset:
		name := d.Dataset
		if name == "" && d.BodyField != "" {
			var err error
			name, err = fleet.PeekBodyField(r, d.BodyField)
			if err != nil {
				fleet.WriteJSONError(w, http.StatusBadRequest, err)
				return nil, false
			}
		}
		if name != "" {
			if chain := f.table.Replicas(name, placeChainMax); len(chain) > 0 {
				return chain, true
			}
		}
	case fleet.RouteJob:
		if rank, ok := fleet.JobHomeRank(d.JobID); ok {
			members := f.table.Members()
			if rank < len(members) && f.table.Live(rank) {
				// A job lives only on its home rank — no failover chain.
				return members[rank : rank+1], true
			}
		}
	}
	// RouteAny, RouteLocal, an unplaceable dataset (the daemon's handler
	// answers the 400/404), or a dead job home: live daemons in rank order.
	var chain []fleet.Member
	for _, m := range f.table.Members() {
		if f.table.Live(m.Rank) {
			chain = append(chain, m)
			if len(chain) == placeChainMax {
				break
			}
		}
	}
	if len(chain) > 0 {
		return chain, true
	}
	fleet.WriteJSONError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no live fleet member (probes against %d daemons all failing)", len(f.table.Members())))
	return nil, false
}

func (f *frontDoor) admit(w http.ResponseWriter, r *http.Request) bool {
	if f.quotas == nil || !fleet.CostsJob(r.Method, r.URL.Path) {
		return true
	}
	tenant := r.Header.Get(fleet.TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	ok, retry := f.quotas.Allow(tenant)
	if ok {
		return true
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	f.metrics.Throttled(tenant)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	fleet.WriteJSONError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q is over its admission rate; retry after %ds", tenant, secs))
	return false
}

func (f *frontDoor) serveReadyz(w http.ResponseWriter) {
	live := f.table.LiveCount()
	status, state := http.StatusOK, "ready"
	if live == 0 {
		status, state = http.StatusServiceUnavailable, "unready"
	}
	writeJSON(w, status, map[string]any{
		"status": state,
		"live":   live,
		"fleet":  f.table.Snapshot(),
		"view":   f.table.View(),
	})
}

func (f *frontDoor) serveFleet(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"self":    -1,
		"epoch":   f.table.Epoch(),
		"members": f.table.Snapshot(),
	}
	if ds := r.URL.Query().Get("dataset"); ds != "" {
		resp["dataset"] = ds
		resp["preference"] = f.table.Preference(ds)
		if owner, ok := f.table.Owner(ds); ok {
			resp["owner"] = owner
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
