// Command graphdiamlb is the fleet front door: a thin, stateless proxy
// that gives clients one address for a graphdiam fleet. It routes every
// request the same way the daemons themselves do — dataset-placed
// requests to the dataset's rendezvous owner, job requests to the job's
// home rank, everything else to the first live daemon — so a query lands
// directly on the node whose cache and singleflight will serve it, and a
// daemon failure reroutes deterministically at the next health probe.
//
// Usage:
//
//	graphdiamlb -addr :8000 -peers http://a:8080,http://b:8080,http://c:8080
//
// The -peers list must be the same rank-ordered list the daemons were
// started with; the lb is not itself a member. Placement needs no
// coordination: lb and daemons compute identical owners from the shared
// list, and a disagreement (stale health view) costs one extra
// daemon→daemon hop, never a loop.
//
// -tenant-rate/-tenant-burst enforce per-tenant admission control at the
// edge (X-Tenant header, 429 + Retry-After); forwarded requests carry
// X-Graphdiam-Edge so daemons do not charge the tenant twice. Every
// request is stamped with an X-Request-Id (minted here unless the client
// sent one) that survives all routed hops for log correlation.
//
// The lb serves its own /healthz (process liveness), /readyz (ready when
// at least one daemon is live), and /v2/fleet (its current placement
// view); every other path is proxied.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphdiam/internal/fleet"
)

func main() {
	var (
		addr         = flag.String("addr", ":8000", "listen address")
		peerList     = flag.String("peers", "", "comma-separated base URLs of every fleet daemon in rank order (required)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "daemon health-probe cadence")
		maxBody      = flag.Int64("max-body", 64<<20, "max request body bytes")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant admitted jobs/second (0 = admission control disabled)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant job burst capacity (0 = max(1, -tenant-rate); requires -tenant-rate)")
		drain        = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		readHeaderTO = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		quiet        = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "graphdiamlb: ", log.LstdFlags)
	if *peerList == "" {
		logger.Fatalf("-peers is required")
	}
	if *tenantRate < 0 {
		logger.Fatalf("-tenant-rate must be non-negative")
	}
	if *tenantBurst != 0 && *tenantRate == 0 {
		logger.Fatalf("-tenant-burst requires -tenant-rate")
	}
	if *probeEvery <= 0 {
		logger.Fatalf("-probe-interval must be positive")
	}

	table, err := fleet.NewTable(strings.Split(*peerList, ","), -1, fleet.TableOptions{
		Interval: *probeEvery,
		Log:      logger,
	})
	if err != nil {
		logger.Fatalf("bad -peers: %v", err)
	}
	table.Start()
	defer table.Close()

	lb := &frontDoor{
		table:   table,
		proxy:   &fleet.Proxy{SelfRank: -1, Table: table, ErrorLog: logger},
		maxBody: *maxBody,
	}
	if *tenantRate > 0 {
		lb.quotas = fleet.NewQuotas(*tenantRate, *tenantBurst)
		logger.Printf("admission control: %g jobs/s per tenant", *tenantRate)
	}
	if !*quiet {
		lb.log = logger
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           lb,
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTO,
		// No WriteTimeout: proxied SSE job streams live as long as the job.
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("front door on %s for %d-daemon fleet", *addr, len(table.Members()))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("bye")
}

// frontDoor is the lb's handler: admission control, then placement, then
// a reverse-proxied forward.
type frontDoor struct {
	table   *fleet.Table
	proxy   *fleet.Proxy
	quotas  *fleet.Quotas
	log     *log.Logger
	maxBody int64
}

func (f *frontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get(fleet.RequestIDHeader)
	if rid == "" {
		rid = fleet.NewRequestID()
		r.Header.Set(fleet.RequestIDHeader, rid)
	}
	w.Header().Set(fleet.RequestIDHeader, rid)
	if f.log != nil {
		f.log.Printf("%s %s rid=%s", r.Method, r.URL.Path, rid)
	}

	// The lb's own endpoints: liveness, readiness, placement view, and
	// membership administration (a config push to the lb keeps the edge's
	// placement in lockstep with the daemons it fronts).
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	case "/readyz":
		f.serveReadyz(w)
		return
	case "/v2/fleet":
		f.serveFleet(w, r)
		return
	case "/v2/fleet/config":
		if r.Method != http.MethodPost {
			fleet.WriteJSONError(w, http.StatusMethodNotAllowed, fmt.Errorf("config pushes are POST"))
			return
		}
		fleet.HandleConfigPush(f.table, w, r)
		return
	}

	if !f.admit(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, f.maxBody)

	chain, ok := f.place(w, r)
	if !ok {
		return // place already wrote the error
	}
	f.proxy.ForwardChain(w, r, chain)
}

// placeChainMax bounds how many failover candidates one request walks.
const placeChainMax = 3

// place picks the daemons this request may land on, best first,
// mirroring the daemons' own routing rules so the first hop is usually
// the last. The tail of the chain is the failover path: the proxy
// advances past draining or freshly-dead members without bouncing the
// error back to the client.
func (f *frontDoor) place(w http.ResponseWriter, r *http.Request) ([]fleet.Member, bool) {
	d := fleet.Classify(r.Method, r.URL.Path)
	switch d.Class {
	case fleet.RouteDataset:
		name := d.Dataset
		if name == "" && d.BodyField != "" {
			var err error
			name, err = fleet.PeekBodyField(r, d.BodyField)
			if err != nil {
				fleet.WriteJSONError(w, http.StatusBadRequest, err)
				return nil, false
			}
		}
		if name != "" {
			if chain := f.table.Replicas(name, placeChainMax); len(chain) > 0 {
				return chain, true
			}
		}
	case fleet.RouteJob:
		if rank, ok := fleet.JobHomeRank(d.JobID); ok {
			members := f.table.Members()
			if rank < len(members) && f.table.Live(rank) {
				// A job lives only on its home rank — no failover chain.
				return members[rank : rank+1], true
			}
		}
	}
	// RouteAny, RouteLocal, an unplaceable dataset (the daemon's handler
	// answers the 400/404), or a dead job home: live daemons in rank order.
	var chain []fleet.Member
	for _, m := range f.table.Members() {
		if f.table.Live(m.Rank) {
			chain = append(chain, m)
			if len(chain) == placeChainMax {
				break
			}
		}
	}
	if len(chain) > 0 {
		return chain, true
	}
	fleet.WriteJSONError(w, http.StatusServiceUnavailable,
		fmt.Errorf("no live fleet member (probes against %d daemons all failing)", len(f.table.Members())))
	return nil, false
}

func (f *frontDoor) admit(w http.ResponseWriter, r *http.Request) bool {
	if f.quotas == nil || !fleet.CostsJob(r.Method, r.URL.Path) {
		return true
	}
	tenant := r.Header.Get(fleet.TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	ok, retry := f.quotas.Allow(tenant)
	if ok {
		return true
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	fleet.WriteJSONError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q is over its admission rate; retry after %ds", tenant, secs))
	return false
}

func (f *frontDoor) serveReadyz(w http.ResponseWriter) {
	live := f.table.LiveCount()
	status, state := http.StatusOK, "ready"
	if live == 0 {
		status, state = http.StatusServiceUnavailable, "unready"
	}
	writeJSON(w, status, map[string]any{
		"status": state,
		"live":   live,
		"fleet":  f.table.Snapshot(),
		"view":   f.table.View(),
	})
}

func (f *frontDoor) serveFleet(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"self":    -1,
		"epoch":   f.table.Epoch(),
		"members": f.table.Snapshot(),
	}
	if ds := r.URL.Query().Get("dataset"); ds != "" {
		resp["dataset"] = ds
		resp["preference"] = f.table.Preference(ds)
		if owner, ok := f.table.Owner(ds); ok {
			resp["owner"] = owner
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
