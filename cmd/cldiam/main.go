// Command cldiam estimates the weighted diameter of a graph with the
// paper's CL-DIAM algorithm (cluster decomposition + quotient diameter).
//
// Usage:
//
//	cldiam -graph road.gr -workers 8
//	cldiam -spec mesh:512 -tau 500 -verify
//
// -verify additionally computes the iterated-sweep lower bound and prints
// the approximation ratio against it (as in the paper's Table 2).
// -progress streams per-stage coverage snapshots to stderr while the
// decomposition runs. Interrupting the process (Ctrl-C) cancels the run at
// the next superstep barrier.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"graphdiam/cmd/internal/cli"
	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/validate"
)

func main() {
	var (
		path     = flag.String("graph", "", "input graph file (.gr, .bin, or edge list)")
		spec     = flag.String("spec", "", "generator spec (e.g. mesh:256, rmat:14, road:128, roads:4:64)")
		workers  = flag.Int("workers", 0, "parallel workers / simulated machines (0 = all cores)")
		tau      = flag.Int("tau", 0, "decomposition parameter τ (0 = derive from -quotient)")
		quotient = flag.Int("quotient", 2000, "target quotient size when τ is derived")
		seed     = flag.Uint64("seed", 1, "random seed")
		stepCap  = flag.Int("stepcap", 0, "cap on growing steps per PartialGrowth (0 = unlimited)")
		initMin  = flag.Bool("delta-min", false, "start Δ at the minimum edge weight instead of the average")
		cluster2 = flag.Bool("cluster2", false, "use CLUSTER2 instead of CLUSTER")
		verify   = flag.Bool("verify", false, "also compute a diameter lower bound and report the ratio")
		sweeps   = flag.Int("sweeps", 4, "lower-bound sweeps for -verify")
		progress = flag.Bool("progress", false, "stream per-stage progress to stderr")
	)
	flag.Parse()

	g, err := cli.Load(*path, *spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cldiam:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d avg-weight=%.4g\n", g.NumNodes(), g.NumEdges(), g.AvgEdgeWeight())

	t := *tau
	if t <= 0 {
		t = core.TauForQuotientTarget(g.NumNodes(), *quotient)
	}
	engine := bsp.New(*workers)
	defer engine.Close()
	opts := core.DiamOptions{
		Options: core.Options{
			Tau:     t,
			Seed:    *seed,
			StepCap: *stepCap,
			Engine:  engine,
		},
		UseCluster2: *cluster2,
	}
	if *initMin {
		opts.InitialDelta = core.DeltaMinWeight
	}
	if *progress {
		opts.Progress = func(p core.Progress) {
			fmt.Fprintf(os.Stderr, "cldiam: %-8s stage=%-3d Δ=%-10.4g coverage=%5.1f%% %s\n",
				p.Phase, p.Stage, p.Delta, 100*p.Coverage, p.Metrics)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := core.ApproxDiameter(ctx, g, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "cldiam: cancelled")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "cldiam:", err)
		os.Exit(1)
	}
	fmt.Printf("estimate:  %.6g\n", res.Estimate)
	fmt.Printf("radius:    %.6g   quotient-diameter: %.6g\n", res.Radius, res.QuotientDiameter)
	fmt.Printf("clusters:  %d (quotient: %d nodes, %d edges)\n",
		res.Clustering.NumClusters(), res.QuotientNodes, res.QuotientEdges)
	fmt.Printf("stages:    %d   growing-steps: %d   delta-end: %.6g\n",
		res.Clustering.Stages, res.Clustering.GrowingSteps, res.Clustering.DeltaEnd)
	fmt.Printf("cost:      %s\n", res.Metrics)
	fmt.Printf("wall time: %s\n", res.WallTime)

	if *verify {
		lb, _ := validate.LowerBound(g, 0, *sweeps)
		fmt.Printf("lower bound (%d sweeps): %.6g   ratio: %.4f\n", *sweeps, lb, res.Estimate/lb)
	}
}
