// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the scaled benchmark suite. See DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	experiments table1            # benchmark graph properties (Table 1)
//	experiments table2            # CL-DIAM vs Δ-stepping (Table 2, Figs 1-3)
//	experiments table3            # big-graph runs (Table 3)
//	experiments fig4              # scalability in workers (Figure 4)
//	experiments deltasens         # Section 5 Δ-sensitivity experiment
//	experiments stepcap           # Section 4.1 step-cap ablation
//	experiments oblivious         # weight-obliviousness ablation (Sec. 1 remark)
//	experiments corollary1        # rounds vs τ on a mesh (Corollary 1)
//	experiments all               # everything
//
// Flags: -scale test|default, -workers N, -seed S.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphdiam/internal/exp"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "instance scale: test|default")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		seed      = flag.Uint64("seed", 12345, "random seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}
	scale := exp.ScaleDefault
	if *scaleName == "test" {
		scale = exp.ScaleTest
	}

	run := flag.Arg(0)
	did := false
	if run == "table1" || run == "all" {
		fmt.Println("== Table 1: benchmark graphs ==")
		exp.WriteTable1(os.Stdout, exp.Table1(scale))
		fmt.Println()
		did = true
	}
	if run == "table2" || run == "all" {
		fmt.Println("== Table 2 / Figures 1-3: CL-DIAM vs Δ-stepping ==")
		rows := exp.Table2(scale, exp.CompareOptions{Workers: *workers, Seed: *seed})
		exp.WriteTable2(os.Stdout, rows)
		fmt.Println()
		did = true
	}
	if run == "table3" || run == "all" {
		fmt.Println("== Table 3: big graphs (CL-DIAM only) ==")
		exp.WriteTable3(os.Stdout, exp.Table3(scale, *workers, *seed))
		fmt.Println()
		did = true
	}
	if run == "fig4" || run == "all" {
		fmt.Println("== Figure 4: scalability in workers ==")
		exp.WriteFig4(os.Stdout, exp.Fig4(scale, nil, *seed))
		fmt.Println()
		did = true
	}
	if run == "deltasens" || run == "all" {
		fmt.Println("== Section 5: initial-Δ sensitivity (bimodal mesh) ==")
		exp.WriteDeltaSens(os.Stdout, exp.DeltaSens(scale, *seed))
		fmt.Println()
		did = true
	}
	if run == "stepcap" || run == "all" {
		fmt.Println("== Section 4.1: growing-step cap ablation ==")
		exp.WriteStepCap(os.Stdout, exp.StepCap(scale, *seed))
		fmt.Println()
		did = true
	}
	if run == "oblivious" || run == "all" {
		fmt.Println("== Ablation: weight-oblivious [CPPU15] decomposition ==")
		exp.WriteWeightOblivious(os.Stdout, exp.WeightOblivious(scale, *seed))
		fmt.Println()
		did = true
	}
	if run == "corollary1" || run == "all" {
		fmt.Println("== Corollary 1: rounds vs τ on a doubling-dimension-2 mesh ==")
		exp.WriteCorollary1(os.Stdout, exp.Corollary1(scale, *seed))
		fmt.Println()
		did = true
	}
	if !did {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-scale test|default] [-workers N] [-seed S] table1|table2|table3|fig4|deltasens|stepcap|oblivious|corollary1|all")
	os.Exit(2)
}
