// Command dataset manages a graphdiam dataset catalog offline — the same
// content-addressed snapshot store graphdiamd serves from via -data-dir
// (see internal/dataset). Typical use is bulk-ingesting road networks on
// a build host, then pointing the daemon at the finished directory.
//
// Usage:
//
//	dataset -dir DIR [-budget SIZE] [-remote URL] <command> [args]
//
//	ingest -name NAME [-format auto] [-source TEXT] FILE
//	        parse FILE (edgelist | dimacs | metis | binary, gzip
//	        transparent, format sniffed by default) into a snapshot
//	append -name NAME [-source TEXT] FILE
//	        apply an edge delta ("+ u v w" insertions, "- u v"
//	        removals, gzip transparent; "-" reads stdin) onto the
//	        dataset's lineage; the head SHA moves, old blobs are
//	        never mutated
//	compact NAME
//	        fold NAME's delta chain into a fresh snapshot; the head
//	        SHA — the dataset's identity — is preserved
//	ls      list cataloged datasets with lineage (chain length, head)
//	info NAME
//	        print one dataset's record, including base + delta chain
//	rm NAME
//	        drop a dataset (snapshot file removed once unreferenced)
//	verify [-watch [-interval 30s]] [NAME...]
//	        deep-check snapshots: payload SHA-256, CSR invariants,
//	        cached statistics; all datasets when no names given.
//	        -watch keeps sweeping the whole catalog on the interval
//	        (quarantining corruption like the daemon's background
//	        sweeper) until interrupted
//
// -remote points the catalog's blob tier at a daemon's /v2/blobs (the
// same protocol graphdiamd's -blob-url speaks), with a read-through
// cache under DIR/cache.
//
// Exit status is non-zero on any failure, including a failed verify or
// any corruption observed during a watch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"graphdiam/internal/dataset"
)

func main() {
	var (
		dir    = flag.String("dir", "", "catalog directory (required)")
		budget = flag.String("budget", "", "disk budget, e.g. 512M or 8G (empty = unlimited)")
		remote = flag.String("remote", "", "base URL of a shared snapshot blob tier, e.g. http://daemon:8080")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dataset -dir DIR [-budget SIZE] [-remote URL] {ingest|append|compact|ls|info|rm|verify} [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	budgetBytes, err := dataset.ParseByteSize(*budget)
	if err != nil {
		fatal("%v", err)
	}
	opts := dataset.Options{ByteBudget: budgetBytes}
	if *remote != "" {
		rs, err := dataset.NewRemoteStore(*remote, filepath.Join(*dir, "cache"), nil)
		if err != nil {
			fatal("bad -remote: %v", err)
		}
		opts.Blobs = rs
	}
	cat, err := dataset.Open(*dir, opts)
	if err != nil {
		fatal("open catalog: %v", err)
	}
	defer cat.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "ingest":
		cmdIngest(cat, args)
	case "append":
		cmdAppend(cat, args)
	case "compact":
		cmdCompact(cat, args)
	case "ls":
		cmdLs(cat, args)
	case "info":
		cmdInfo(cat, args)
	case "rm":
		cmdRm(cat, args)
	case "verify":
		cmdVerify(cat, args)
	default:
		fatal("unknown command %q (want ingest, append, compact, ls, info, rm, or verify)", cmd)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dataset: "+format+"\n", args...)
	os.Exit(1)
}

func cmdIngest(cat *dataset.Catalog, args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	name := fs.String("name", "", "dataset name (required)")
	format := fs.String("format", dataset.FormatAuto, "input format: auto|edgelist|dimacs|metis|binary")
	source := fs.String("source", "", "provenance note stored in the manifest")
	fs.Parse(args)
	if *name == "" || fs.NArg() != 1 {
		fatal("usage: ingest -name NAME [-format F] [-source S] FILE")
	}
	in, err := cat.IngestFile(*name, fs.Arg(0), *format, *source)
	if err != nil {
		fatal("ingest: %v", err)
	}
	fmt.Printf("ingested %s: n=%d m=%d format=%s sha256=%s (%d bytes)\n",
		in.Name, in.NumNodes, in.NumEdges, in.Format, in.SHA256[:12], in.Bytes)
}

// cmdAppend streams an edge-delta file onto a dataset's lineage: the
// frame blob is published (to the shared tier with -remote, exactly
// like ingest) and the manifest's head moves atomically.
func cmdAppend(cat *dataset.Catalog, args []string) {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	name := fs.String("name", "", "dataset name (required)")
	source := fs.String("source", "", "provenance note stored in the manifest")
	fs.Parse(args)
	if *name == "" || fs.NArg() != 1 {
		fatal("usage: append -name NAME [-source S] FILE   (FILE may be - for stdin)")
	}
	var r io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal("append: %v", err)
		}
		defer f.Close()
		r = f
	}
	d, err := dataset.DecodeDeltaStream(r)
	if err != nil {
		fatal("append: %v", err)
	}
	src := *source
	if src == "" {
		src = "append " + filepath.Base(fs.Arg(0))
	}
	res, err := cat.AppendDelta(*name, d, src)
	if err != nil {
		fatal("append: %v", err)
	}
	if !res.Applied {
		fmt.Printf("no-op append on %s: head stays %s (+%d -%d changed nothing)\n",
			*name, res.Info.SHA256[:12], res.Ins, res.Rem)
		return
	}
	fmt.Printf("appended to %s: +%d -%d, head %s -> %s, chain=%d, n=%d m=%d\n",
		*name, res.Ins, res.Rem, res.PrevSHA[:12], res.Info.SHA256[:12],
		res.Info.ChainLen(), res.Info.NumNodes, res.Info.NumEdges)
}

func cmdCompact(cat *dataset.Catalog, args []string) {
	if len(args) != 1 {
		fatal("usage: compact NAME")
	}
	in, compacted, err := cat.Compact(args[0])
	if err != nil {
		fatal("compact: %v", err)
	}
	if !compacted {
		fmt.Printf("%s has no delta chain; nothing to compact\n", args[0])
		return
	}
	fmt.Printf("compacted %s: head %s preserved, snapshot %d bytes\n",
		args[0], in.SHA256[:12], in.Bytes)
}

func cmdLs(cat *dataset.Catalog, args []string) {
	if len(args) != 0 {
		fatal("usage: ls")
	}
	list := cat.List()
	if len(list) == 0 {
		fmt.Println("(empty catalog)")
		return
	}
	fmt.Printf("%-24s %12s %12s %12s %6s  %s\n", "NAME", "NODES", "EDGES", "BYTES", "CHAIN", "HEAD")
	for _, in := range list {
		fmt.Printf("%-24s %12d %12d %12d %6d  %s\n",
			in.Name, in.NumNodes, in.NumEdges, in.Bytes, in.ChainLen(), in.SHA256[:12])
	}
	fmt.Printf("total unique bytes: %d\n", cat.TotalBytes())
}

func cmdInfo(cat *dataset.Catalog, args []string) {
	if len(args) != 1 {
		fatal("usage: info NAME")
	}
	in, err := cat.Info(args[0])
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("name:       %s\nhead sha:   %s\nbytes:      %d\nnodes:      %d\nedges:      %d\nformat:     %s\nsource:     %s\ncreated:    %s\nlast used:  %s\n",
		in.Name, in.SHA256, in.Bytes, in.NumNodes, in.NumEdges, in.Format, in.Source,
		in.CreatedAt.Format("2006-01-02 15:04:05"), in.LastUsedAt.Format("2006-01-02 15:04:05"))
	if in.ChainLen() > 0 {
		fmt.Printf("base sha:   %s (%d bytes)\nchain:      %d delta frame(s)\n",
			in.BaseSHA256, in.BaseBytes, in.ChainLen())
		for i, d := range in.Deltas {
			fmt.Printf("  delta %d:  %s (+%d -%d, %d bytes)\n", i, d.SHA256[:12], d.Ins, d.Rem, d.Bytes)
		}
	}
}

func cmdRm(cat *dataset.Catalog, args []string) {
	if len(args) != 1 {
		fatal("usage: rm NAME")
	}
	if err := cat.Remove(args[0]); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("removed %s\n", args[0])
}

func cmdVerify(cat *dataset.Catalog, args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	watch := fs.Bool("watch", false, "sweep the whole catalog repeatedly until interrupted")
	interval := fs.Duration("interval", 30*time.Second, "sweep cadence in watch mode")
	fs.Parse(args)
	if *watch {
		if fs.NArg() != 0 {
			fatal("verify -watch sweeps the whole catalog; drop the name arguments")
		}
		watchVerify(cat, *interval)
		return
	}
	names := fs.Args()
	if len(names) == 0 {
		for _, in := range cat.List() {
			names = append(names, in.Name)
		}
	}
	failed := 0
	for _, name := range names {
		if in, err := cat.Verify(name); err != nil {
			fmt.Printf("FAIL %s: %v\n", name, err)
			failed++
		} else {
			fmt.Printf("ok   %s (n=%d m=%d sha256=%s)\n", name, in.NumNodes, in.NumEdges, in.SHA256[:12])
		}
	}
	if failed > 0 {
		fatal("%d of %d datasets failed verification", failed, len(names))
	}
}

// watchVerify runs integrity sweeps on a cadence — the CLI face of the
// daemon's background sweeper, sharing its quarantine semantics — until
// SIGINT/SIGTERM. Exit status reports whether any sweep ever failed.
func watchVerify(cat *dataset.Catalog, interval time.Duration) {
	if interval <= 0 {
		fatal("verify -watch needs a positive -interval")
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	failures := 0
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		results := cat.SweepOnce()
		ok := 0
		for _, res := range results {
			switch {
			case res.OK:
				ok++
			case res.Skipped:
				fmt.Printf("skip %s: %s\n", res.Name, res.Error)
			default:
				fmt.Printf("FAIL %s (%s): %s [quarantined]\n",
					res.Name, dataset.ShortSHA(res.SHA256), res.Error)
				failures++
			}
		}
		fmt.Printf("sweep: %d ok / %d checked at %s\n", ok, len(results),
			time.Now().Format("15:04:05"))
		select {
		case <-sig:
			if failures > 0 {
				fatal("%d corruption(s) observed while watching", failures)
			}
			return
		case <-t.C:
		}
	}
}
