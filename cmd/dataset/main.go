// Command dataset manages a graphdiam dataset catalog offline — the same
// content-addressed snapshot store graphdiamd serves from via -data-dir
// (see internal/dataset). Typical use is bulk-ingesting road networks on
// a build host, then pointing the daemon at the finished directory.
//
// Usage:
//
//	dataset -dir DIR [-budget SIZE] <command> [args]
//
//	ingest -name NAME [-format auto] [-source TEXT] FILE
//	        parse FILE (edgelist | dimacs | metis | binary, gzip
//	        transparent, format sniffed by default) into a snapshot
//	ls      list cataloged datasets
//	info NAME
//	        print one dataset's record
//	rm NAME
//	        drop a dataset (snapshot file removed once unreferenced)
//	verify [NAME...]
//	        deep-check snapshots: payload SHA-256, CSR invariants,
//	        cached statistics; all datasets when no names given
//
// Exit status is non-zero on any failure, including a failed verify.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphdiam/internal/dataset"
)

func main() {
	var (
		dir    = flag.String("dir", "", "catalog directory (required)")
		budget = flag.String("budget", "", "disk budget, e.g. 512M or 8G (empty = unlimited)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dataset -dir DIR [-budget SIZE] {ingest|ls|info|rm|verify} [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	budgetBytes, err := dataset.ParseByteSize(*budget)
	if err != nil {
		fatal("%v", err)
	}
	cat, err := dataset.Open(*dir, dataset.Options{ByteBudget: budgetBytes})
	if err != nil {
		fatal("open catalog: %v", err)
	}
	defer cat.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "ingest":
		cmdIngest(cat, args)
	case "ls":
		cmdLs(cat, args)
	case "info":
		cmdInfo(cat, args)
	case "rm":
		cmdRm(cat, args)
	case "verify":
		cmdVerify(cat, args)
	default:
		fatal("unknown command %q (want ingest, ls, info, rm, or verify)", cmd)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dataset: "+format+"\n", args...)
	os.Exit(1)
}

func cmdIngest(cat *dataset.Catalog, args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	name := fs.String("name", "", "dataset name (required)")
	format := fs.String("format", dataset.FormatAuto, "input format: auto|edgelist|dimacs|metis|binary")
	source := fs.String("source", "", "provenance note stored in the manifest")
	fs.Parse(args)
	if *name == "" || fs.NArg() != 1 {
		fatal("usage: ingest -name NAME [-format F] [-source S] FILE")
	}
	in, err := cat.IngestFile(*name, fs.Arg(0), *format, *source)
	if err != nil {
		fatal("ingest: %v", err)
	}
	fmt.Printf("ingested %s: n=%d m=%d format=%s sha256=%s (%d bytes)\n",
		in.Name, in.NumNodes, in.NumEdges, in.Format, in.SHA256[:12], in.Bytes)
}

func cmdLs(cat *dataset.Catalog, args []string) {
	if len(args) != 0 {
		fatal("usage: ls")
	}
	list := cat.List()
	if len(list) == 0 {
		fmt.Println("(empty catalog)")
		return
	}
	fmt.Printf("%-24s %12s %12s %12s  %s\n", "NAME", "NODES", "EDGES", "BYTES", "SHA256")
	for _, in := range list {
		fmt.Printf("%-24s %12d %12d %12d  %s\n", in.Name, in.NumNodes, in.NumEdges, in.Bytes, in.SHA256[:12])
	}
	fmt.Printf("total unique bytes: %d\n", cat.TotalBytes())
}

func cmdInfo(cat *dataset.Catalog, args []string) {
	if len(args) != 1 {
		fatal("usage: info NAME")
	}
	in, err := cat.Info(args[0])
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("name:       %s\nsha256:     %s\nbytes:      %d\nnodes:      %d\nedges:      %d\nformat:     %s\nsource:     %s\ncreated:    %s\nlast used:  %s\n",
		in.Name, in.SHA256, in.Bytes, in.NumNodes, in.NumEdges, in.Format, in.Source,
		in.CreatedAt.Format("2006-01-02 15:04:05"), in.LastUsedAt.Format("2006-01-02 15:04:05"))
}

func cmdRm(cat *dataset.Catalog, args []string) {
	if len(args) != 1 {
		fatal("usage: rm NAME")
	}
	if err := cat.Remove(args[0]); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("removed %s\n", args[0])
}

func cmdVerify(cat *dataset.Catalog, args []string) {
	names := args
	if len(names) == 0 {
		for _, in := range cat.List() {
			names = append(names, in.Name)
		}
	}
	failed := 0
	for _, name := range names {
		if in, err := cat.Verify(name); err != nil {
			fmt.Printf("FAIL %s: %v\n", name, err)
			failed++
		} else {
			fmt.Printf("ok   %s (n=%d m=%d sha256=%s)\n", name, in.NumNodes, in.NumEdges, in.SHA256[:12])
		}
	}
	if failed > 0 {
		fatal("%d of %d datasets failed verification", failed, len(names))
	}
}
