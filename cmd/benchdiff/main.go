// Command benchdiff compares two benchmark snapshot files (the
// BENCH_*.json format produced from the root-level benchmarks: a
// "benchmarks" object mapping benchmark name to ns/op) and prints the
// per-benchmark delta.
//
// Usage:
//
//	go run ./cmd/benchdiff [-threshold 25] OLD.json NEW.json
//
// It exits non-zero if any benchmark present in both files regressed by
// more than the threshold percentage (default 25%), making it suitable as a
// CI tripwire on checked-in snapshots. Benchmarks present in only one file
// are reported but never fail the run (the suite is allowed to grow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Scale      string             `json:"scale"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}

func main() {
	threshold := flag.Float64("threshold", 25, "fail on regressions above this percentage")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldS, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newS, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldS.Benchmarks))
	for name := range oldS.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-36s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, name := range names {
		oldNS := oldS.Benchmarks[name]
		newNS, ok := newS.Benchmarks[name]
		if !ok {
			fmt.Printf("%-36s %14.0f %14s %9s\n", name, oldNS, "-", "gone")
			continue
		}
		pct := 100 * (newNS - oldNS) / oldNS
		marker := ""
		switch {
		case pct > *threshold:
			marker = "  REGRESSION"
			regressions++
		case pct < -33:
			marker = fmt.Sprintf("  %.2fx faster", oldNS/newNS)
		}
		fmt.Printf("%-36s %14.0f %14.0f %+8.1f%%%s\n", name, oldNS, newNS, pct, marker)
	}
	for name, newNS := range newS.Benchmarks {
		if _, ok := oldS.Benchmarks[name]; !ok {
			fmt.Printf("%-36s %14s %14.0f %9s\n", name, "-", newNS, "new")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%%\n",
			regressions, *threshold)
		os.Exit(1)
	}
}
