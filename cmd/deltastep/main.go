// Command deltastep runs the Δ-stepping SSSP baseline (Meyer & Sanders) and
// reports the paper's SSSP-based diameter 2-approximation (2·ecc from the
// source), together with the round and work accounting used in Table 2.
//
// Usage:
//
//	deltastep -graph road.gr -delta 1200
//	deltastep -spec mesh:512 -tune
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphdiam/cmd/internal/cli"
	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

func main() {
	var (
		path    = flag.String("graph", "", "input graph file (.gr, .bin, or edge list)")
		spec    = flag.String("spec", "", "generator spec (e.g. mesh:256, rmat:14, road:128)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		delta   = flag.Float64("delta", 0, "bucket width Δ (0 = average edge weight)")
		tune    = flag.Bool("tune", false, "sweep Δ over {avg/4, avg, 4avg} picking fewest rounds")
		source  = flag.Int("source", -1, "SSSP source (-1 = node n/2)")
		seed    = flag.Uint64("seed", 1, "random seed for -spec generation")
		verify  = flag.Bool("verify", false, "report ratio against an iterated-sweep lower bound")
	)
	flag.Parse()

	g, err := cli.Load(*path, *spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deltastep:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d avg-weight=%.4g\n", g.NumNodes(), g.NumEdges(), g.AvgEdgeWeight())

	src := graph.NodeID(g.NumNodes() / 2)
	if *source >= 0 {
		src = graph.NodeID(*source)
	}
	d := *delta
	if d <= 0 {
		d = sssp.SuggestDelta(g)
	}
	if *tune {
		avg := g.AvgEdgeWeight()
		d = sssp.TuneDelta(g, src, []float64{avg / 4, avg, 4 * avg})
		fmt.Printf("tuned delta: %.6g\n", d)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	e := bsp.New(*workers)
	defer e.Close()
	start := time.Now()
	ub, res, err := sssp.DiameterUpperBound(ctx, g, src, d, e)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deltastep:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	ecc, far := sssp.Eccentricity(res.Dist)
	fmt.Printf("source:    %d   ecc: %.6g   farthest: %d\n", src, ecc, far)
	fmt.Printf("estimate:  %.6g   (2-approximation: 2·ecc)\n", ub)
	fmt.Printf("rounds:    %d   work: %d (relaxations %d + updates %d)\n",
		res.Rounds, res.Work(), res.Relaxations, res.Updates)
	fmt.Printf("wall time: %s\n", elapsed)

	if *verify {
		lb, _ := validate.LowerBound(g, src, 4)
		fmt.Printf("lower bound: %.6g   ratio: %.4f\n", lb, ub/lb)
	}
}
