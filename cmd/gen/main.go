// Command gen generates benchmark graphs in the formats understood by the
// other graphdiam tools.
//
// Usage:
//
//	gen -family mesh -size 512 -weights uniform -out mesh.gr
//	gen -family rmat -size 16 -weights uniform -format bin -out rmat16.bin
//	gen -family road -size 256 -out road.gr
//	gen -family roads-product -size 64 -layers 4 -out roads4.gr
//
// Families: mesh (size = side), torus (side), rmat (size = scale),
// road (side), roads-product (side, -layers), gnm (size = nodes, -edges),
// path, cycle (size = nodes).
//
// Weights: original (generator weights), uniform ((0,1] i.i.d.),
// integral (-maxw), bimodal (-light/-heavy/-pheavy).
package main

import (
	"flag"
	"fmt"
	"os"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func main() {
	var (
		family  = flag.String("family", "mesh", "graph family: mesh|torus|rmat|road|roads-product|gnm|path|cycle")
		size    = flag.Int("size", 64, "family size parameter (side, scale, or node count)")
		layers  = flag.Int("layers", 2, "roads-product: number of layers")
		edges   = flag.Int("edges", 0, "gnm: edge count (default 8n)")
		weights = flag.String("weights", "original", "weight assignment: original|uniform|integral|bimodal")
		maxw    = flag.Int("maxw", 100, "integral weights: maximum")
		light   = flag.Float64("light", 1e-6, "bimodal weights: light value")
		heavy   = flag.Float64("heavy", 1, "bimodal weights: heavy value")
		pheavy  = flag.Float64("pheavy", 0.1, "bimodal weights: heavy probability")
		seed    = flag.Uint64("seed", 1, "random seed")
		format  = flag.String("format", "gr", "output format: gr|edgelist|bin|metis")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	r := rng.New(*seed)
	var g *graph.Graph
	switch *family {
	case "mesh":
		g = gen.Mesh(*size)
	case "torus":
		g = gen.Torus(*size)
	case "rmat":
		g = gen.RMatDefault(*size, r)
	case "road":
		g = gen.RoadNetwork(gen.DefaultRoadNetworkOptions(*size), r)
	case "roads-product":
		g = gen.Roads(*layers, *size, r)
	case "gnm":
		m := *edges
		if m <= 0 {
			m = 8 * *size
		}
		g = gen.GNM(*size, m, r)
	case "path":
		g = gen.Path(*size)
	case "cycle":
		g = gen.Cycle(*size)
	default:
		fatal("unknown family %q", *family)
	}

	switch *weights {
	case "original":
	case "uniform":
		g = gen.UniformWeights(g, r)
	case "integral":
		g = gen.IntegralUniformWeights(g, *maxw, r)
	case "bimodal":
		g = gen.BimodalWeights(g, *light, *heavy, *pheavy, r)
	default:
		fatal("unknown weights %q", *weights)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "gr":
		err = gio.WriteDIMACS(w, g)
	case "edgelist":
		err = gio.WriteEdgeList(w, g)
	case "bin":
		err = gio.WriteBinary(w, g)
	case "metis":
		err = gio.WriteMETIS(w, g)
	default:
		fatal("unknown format %q", *format)
	}
	if err != nil {
		fatal("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d\n", *family, g.NumNodes(), g.NumEdges())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gen: "+format+"\n", args...)
	os.Exit(1)
}
