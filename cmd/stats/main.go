// Command stats prints summary statistics of a graph: size, degree and
// weight distributions (with log-scale histograms), connectivity, and —
// below a size threshold — exact diameters.
//
// Usage:
//
//	stats -graph road.gr
//	stats -spec rmat:14 -exact
package main

import (
	"flag"
	"fmt"
	"os"

	"graphdiam/cmd/internal/cli"
	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/stats"
	"graphdiam/internal/validate"
)

func main() {
	var (
		path  = flag.String("graph", "", "input graph file")
		spec  = flag.String("spec", "", "generator spec (e.g. mesh:256)")
		seed  = flag.Uint64("seed", 1, "seed for -spec")
		exact = flag.Bool("exact", false, "compute exact diameters (quadratic!)")
	)
	flag.Parse()

	g, err := cli.Load(*path, *spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}

	s := g.Stats()
	fmt.Printf("nodes: %d   edges: %d   max-degree: %d\n", s.NumNodes, s.NumEdges, s.MaxDegree)
	fmt.Printf("weights: min=%.4g avg=%.4g max=%.4g\n", s.MinWeight, s.AvgWeight, s.MaxWeight)

	_, comps := cc.Components(g)
	fmt.Printf("connected components: %d\n\n", comps)

	degs, degSummary := stats.DegreeDistribution(g)
	fmt.Printf("degree distribution: %s\n", degSummary)
	dh := stats.NewLogHistogram()
	for _, d := range degs {
		dh.Add(d)
	}
	dh.Write(os.Stdout)

	_, wSummary := stats.WeightDistribution(g)
	fmt.Printf("\nweight distribution: %s\n", wSummary)

	lb, _ := validate.LowerBound(g, 0, 4)
	fmt.Printf("\nweighted diameter ≥ %.6g (4-sweep lower bound)\n", lb)

	if *exact {
		e := bsp.New(0)
		defer e.Close()
		fmt.Printf("weighted diameter = %.6g (exact)\n", validate.ExactDiameter(g, e))
		fmt.Printf("unweighted diameter = %d (exact)\n", validate.UnweightedDiameter(g, e))
	}
}
