// Road-network analysis: the workload the paper's introduction motivates.
// Road networks have enormous weighted and unweighted diameters, which
// makes SSSP-based diameter estimation need thousands of rounds on a
// MapReduce-like system. This example runs CL-DIAM and the Δ-stepping
// baseline side by side on a synthetic road network and prints the
// comparison the paper's Table 2 makes for roads-USA and roads-CAL.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

func main() {
	r := rng.New(7)
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(128), r)
	fmt.Printf("synthetic road network: %d intersections, %d segments\n",
		g.NumNodes(), g.NumEdges())

	// Reference lower bound by iterated farthest-point sweeps — the
	// paper's ratio basis.
	lb, _ := validate.LowerBound(g, 0, 4)
	fmt.Printf("diameter lower bound: %.0f\n\n", lb)

	// CL-DIAM.
	ctx := context.Background()
	tau := core.TauForQuotientTarget(g.NumNodes(), 2000)
	cl, err := core.ApproxDiameter(ctx, g, core.DiamOptions{
		Options: core.Options{Tau: tau, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CL-DIAM:     estimate=%.0f ratio=%.3f rounds=%d work=%d time=%s\n",
		cl.Estimate, cl.Estimate/lb, cl.Metrics.Rounds, cl.Metrics.Work(),
		cl.WallTime.Round(time.Millisecond))

	// Δ-stepping 2-approximation from a central source, Δ tuned as in the
	// paper (best rounds over a candidate sweep).
	src := graph.NodeID(g.NumNodes() / 2)
	avg := g.AvgEdgeWeight()
	delta := sssp.TuneDelta(g, src, []float64{avg / 4, avg, 4 * avg})
	start := time.Now()
	ub, ds, err := sssp.DiameterUpperBound(ctx, g, src, delta, bsp.New(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Δ-stepping:  estimate=%.0f ratio=%.3f rounds=%d work=%d time=%s\n",
		ub, ub/lb, ds.Rounds, ds.Work(), time.Since(start).Round(time.Millisecond))

	fmt.Printf("\nround advantage: %.1fx fewer rounds for CL-DIAM\n",
		float64(ds.Rounds)/float64(cl.Metrics.Rounds))
}
