// Social-network analysis: power-law graphs with small diameter — the
// other end of the benchmark spectrum (the paper's livejournal/twitter
// class, generated here with R-MAT as the paper itself does for its
// synthetic social graphs). On these graphs both algorithms need few
// rounds; CL-DIAM still wins on work because it explores paths only to a
// bounded depth.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

func main() {
	r := rng.New(99)
	raw := gen.RMatDefault(14, r)
	conn, _ := cc.LargestComponent(raw)
	g := gen.UniformWeights(conn, r)
	s := g.Stats()
	fmt.Printf("R-MAT social graph: n=%d m=%d max-degree=%d\n", s.NumNodes, s.NumEdges, s.MaxDegree)

	lb, _ := validate.LowerBound(g, 0, 4)
	fmt.Printf("diameter lower bound: %.4f\n\n", lb)

	ctx := context.Background()
	tau := core.TauForQuotientTarget(g.NumNodes(), 2000)
	cl, err := core.ApproxDiameter(ctx, g, core.DiamOptions{
		Options: core.Options{Tau: tau, Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CL-DIAM:     estimate=%.4f ratio=%.3f rounds=%d work=%d time=%s\n",
		cl.Estimate, cl.Estimate/lb, cl.Metrics.Rounds, cl.Metrics.Work(),
		cl.WallTime.Round(time.Millisecond))

	src := graph.NodeID(g.NumNodes() / 2)
	delta := sssp.SuggestDelta(g)
	start := time.Now()
	ub, ds, err := sssp.DiameterUpperBound(ctx, g, src, delta, bsp.New(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Δ-stepping:  estimate=%.4f ratio=%.3f rounds=%d work=%d time=%s\n",
		ub, ub/lb, ds.Rounds, ds.Work(), time.Since(start).Round(time.Millisecond))

	fmt.Printf("\nwork advantage: %.1fx less work for CL-DIAM (paper Figure 3)\n",
		float64(ds.Work())/float64(cl.Metrics.Work()))
}
