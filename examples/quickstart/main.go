// Quickstart: estimate the weighted diameter of a graph with CL-DIAM in a
// dozen lines. Builds a small weighted mesh, runs the approximation, and
// compares against the exact diameter.
package main

import (
	"context"
	"fmt"
	"log"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

func main() {
	// A 64×64 mesh with i.i.d. uniform (0,1] edge weights — the paper's
	// convention for originally-unweighted graphs.
	r := rng.New(42)
	g := gen.UniformWeights(gen.Mesh(64), r)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Estimate the diameter: decompose into clusters of bounded radius,
	// then add the quotient graph's diameter to twice the radius. The
	// context makes long runs cancellable; Background suffices here.
	res, err := core.ApproxDiameter(context.Background(), g, core.DiamOptions{
		Options: core.Options{Tau: 128, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CL-DIAM estimate: %.4f\n", res.Estimate)
	fmt.Printf("  clusters=%d radius=%.4f quotient=%d nodes\n",
		res.Clustering.NumClusters(), res.Radius, res.QuotientNodes)
	fmt.Printf("  cost: %s\n", res.Metrics)

	// Ground truth (quadratic — only do this on small graphs!).
	exact := validate.ExactDiameter(g, bsp.New(0))
	fmt.Printf("exact diameter:   %.4f\n", exact)
	fmt.Printf("approximation ratio: %.4f (paper reports < 1.4 on all benchmarks)\n",
		res.Estimate/exact)
}
