// Scaling study: CL-DIAM wall time as the number of workers (simulated
// machines) grows — the experiment behind the paper's Figure 4, run on an
// R-MAT graph and a roads-product graph of comparable size but very
// different topology.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func run(name string, g *graph.Graph, workerCounts []int) {
	fmt.Printf("%s: n=%d m=%d\n", name, g.NumNodes(), g.NumEdges())
	tau := core.TauForQuotientTarget(g.NumNodes(), 2000)
	var base time.Duration
	for _, w := range workerCounts {
		// Simulated engine: workers execute sequentially and the critical
		// path (sum of per-superstep maxima) is the parallel compute time
		// a w-machine cluster would pay — meaningful even on a 1-core host.
		e := bsp.NewSimulated(w)
		res, err := core.ApproxDiameter(context.Background(), g, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: 3, Engine: e},
		})
		if err != nil {
			log.Fatal(err)
		}
		sim := e.CriticalPath()
		if base == 0 {
			base = sim
		}
		fmt.Printf("  workers=%-3d sim-time=%-12s speedup=%.2fx estimate=%.4g\n",
			w, sim.Round(time.Millisecond), float64(base)/float64(sim),
			res.Estimate)
	}
	fmt.Println()
}

func main() {
	r := rng.New(4)
	workers := []int{1, 2, 4, 8, 16}

	rmat, _ := cc.LargestComponent(gen.RMatDefault(14, r.Split()))
	run("R-MAT(14)", gen.UniformWeights(rmat, r.Split()), workers)

	roads := gen.Roads(3, 64, r.Split())
	run("roads(3)", roads, workers)

	fmt.Println("The estimate is identical at every worker count: the")
	fmt.Println("decomposition is deterministic in (graph, seed) by design.")
}
