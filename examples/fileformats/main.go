// File formats: generate a benchmark graph, write it in every supported
// interchange format (DIMACS .gr, METIS, edge list, compact binary), reload
// each copy and verify that the diameter estimate is identical — the
// persistence workflow of the command-line tools.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func main() {
	r := rng.New(5)
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(32), r)
	fmt.Printf("graph: n=%d m=%d\n\n", g.NumNodes(), g.NumEdges())

	ref := estimate(g)
	fmt.Printf("reference estimate: %.6g\n\n", ref)

	type codec struct {
		name  string
		write func(*bytes.Buffer, *graph.Graph) error
		read  func(*bytes.Buffer) (*graph.Graph, error)
	}
	codecs := []codec{
		{"DIMACS .gr",
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteDIMACS(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadDIMACS(b) }},
		{"METIS",
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteMETIS(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadMETIS(b) }},
		{"edge list",
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteEdgeList(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadEdgeList(b) }},
		{"binary",
			func(b *bytes.Buffer, g *graph.Graph) error { return gio.WriteBinary(b, g) },
			func(b *bytes.Buffer) (*graph.Graph, error) { return gio.ReadBinary(b) }},
	}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := c.write(&buf, g); err != nil {
			log.Fatalf("%s write: %v", c.name, err)
		}
		size := buf.Len()
		loaded, err := c.read(&buf)
		if err != nil {
			log.Fatalf("%s read: %v", c.name, err)
		}
		est := estimate(loaded)
		status := "OK"
		if est != ref {
			status = "MISMATCH"
		}
		fmt.Printf("%-12s %8d bytes   estimate %.6g   %s\n", c.name, size, est, status)
	}
}

func estimate(g *graph.Graph) float64 {
	res, err := core.ApproxDiameter(context.Background(), g, core.DiamOptions{
		Options: core.Options{Tau: 16, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Estimate
}
