// Δ-sensitivity: the Section 5 experiment showing why the initial growth
// threshold matters. On a mesh with bimodal weights (a few heavy edges in a
// sea of near-zero ones), starting Δ at the minimum edge weight lets the
// doubling strategy self-tune and clusters never swallow heavy edges
// (ratio ≈ 1); starting Δ at the graph diameter bakes heavy edges into
// clusters and inflates the radius (paper: ratio ≈ 2.5). The average
// weight — the library default — is a safe starting guess.
package main

import (
	"context"
	"fmt"
	"log"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

func main() {
	r := rng.New(77)
	g := gen.BimodalWeights(gen.Mesh(64), 1e-6, 1, 0.25, r)
	fmt.Printf("bimodal mesh: n=%d m=%d (heavy=1 w.p. 0.25, light=1e-6)\n",
		g.NumNodes(), g.NumEdges())

	exact := validate.ExactDiameter(g, bsp.New(0))
	fmt.Printf("exact diameter: %.6f\n\n", exact)

	run := func(name string, init core.DeltaInit, fixed float64) {
		res, err := core.ApproxDiameter(context.Background(), g, core.DiamOptions{
			Options: core.Options{
				Tau: 256, Seed: 1,
				InitialDelta: init, FixedDelta: fixed,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s estimate=%-12.6f ratio=%-8.4f radius=%-10.4g rounds=%d\n",
			name, res.Estimate, res.Estimate/exact, res.Radius, res.Metrics.Rounds)
	}
	run("delta = min weight", core.DeltaMinWeight, 0)
	run("delta = avg weight", core.DeltaAvgWeight, 0)
	run("delta = diameter", core.DeltaFixed, exact)

	fmt.Println("\npaper (mesh 2048²): min-weight start gives ratio 1.0001,")
	fmt.Println("diameter-sized start gives ratio ~2.5.")
}
