package main

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/bsp/transport"
)

// waitGoroutinesMain polls until the goroutine count drops back to (near)
// the baseline — the cancel-drain assertion of the PR 2 cancellation tests,
// applied to fleet failures: a dead peer must not leave participant
// goroutines or pool workers behind.
func waitGoroutinesMain(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

// faultOutcome asserts the fault-injection contract on one fleet's results:
// either every peer completed with the exact clean-run outcome (faults were
// absorbed by retries), or every peer failed with a classified transport
// error — never a hang (bounded by the sim barrier watchdog) and never a
// wrong result.
func faultOutcome(t *testing.T, name string, ref algoRun, outs []algoRun, errs []error) (completed bool) {
	t.Helper()
	anyErr := false
	for _, err := range errs {
		if err != nil {
			anyErr = true
			break
		}
	}
	if !anyErr {
		for r := range outs {
			if outs[r] != ref {
				t.Errorf("%s: peer %d completed with wrong outcome %+v, want %+v",
					name, r, outs[r].snap, ref.snap)
			}
		}
		return true
	}
	for r, err := range errs {
		if err == nil {
			// A peer may legitimately finish before the failure lands (it
			// completed its last step while others still had exchanges in
			// flight) — but then its result must still be the correct one.
			if outs[r] != ref {
				t.Errorf("%s: peer %d 'succeeded' with wrong outcome after fleet failure", name, r)
			}
			continue
		}
		var terr *transport.Error
		if !errors.As(err, &terr) {
			t.Errorf("%s: peer %d failed with unclassified error: %v", name, r, err)
		}
	}
	return false
}

func simRunName(algo string, plan transport.FaultPlan) string {
	return fmt.Sprintf("%s/seed=%d/drop=%v/reorder=%v/parts=%d",
		algo, plan.Seed, plan.DropRate, plan.Reorder, len(plan.Partitions))
}

// TestFaultInjectionRetriesAreInvisible: seeded drop schedules within the
// retry budget — and arbitrary delivery reordering — must be completely
// invisible: the run completes with accounting and results bit-identical to
// the fault-free run, and the drop schedules demonstrably exercised the
// retry path.
func TestFaultInjectionRetriesAreInvisible(t *testing.T) {
	tg := equivGraphs()[0]
	const workers, peers = 4, 2
	for _, algo := range []string{"cluster", "deltastep"} {
		ref := func() algoRun {
			e := bsp.New(workers)
			defer e.Close()
			out, err := runAlgo(tg.g, algo, e)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}()
		plans := []transport.FaultPlan{
			{Seed: 101, DropRate: 0.25},
			{Seed: 202, DropRate: 0.4, Reorder: true},
			{Seed: 303, Reorder: true},
			// A partition that heals under retry: peer 1 is cut off for a
			// step window, but every delivery succeeds on its 4th attempt.
			{Seed: 404, Partitions: []transport.Partition{
				{FromStep: 2, ToStep: 10, Peer: 1, FailAttempts: 3}}},
		}
		for _, plan := range plans {
			name := simRunName(algo, plan)
			net, trs := simFleet(peers, plan)
			outs, errs := runFleet(t, tg.g, algo, workers, trs)
			for r := range errs {
				if errs[r] != nil {
					t.Fatalf("%s: peer %d failed, faults should have healed: %v", name, r, errs[r])
				}
				if outs[r] != ref {
					t.Errorf("%s: peer %d outcome %+v diverged from fault-free %+v",
						name, r, outs[r].snap, ref.snap)
				}
			}
			if (plan.DropRate > 0 || len(plan.Partitions) > 0) && net.Retries() == 0 {
				t.Errorf("%s: plan injected no drops — schedule exercised nothing", name)
			}
		}
	}
}

// TestFaultInjectionHardPartitionFailsCleanly: a partition that outlasts the
// retry budget must fail the run on every peer with a classified error —
// promptly (no reliance on the wall-clock watchdog: exhausted attempts are
// detected deterministically) and with all goroutines drained.
func TestFaultInjectionHardPartitionFailsCleanly(t *testing.T) {
	tg := equivGraphs()[0]
	const workers, peers = 4, 2
	ref := func() algoRun {
		e := bsp.New(workers)
		defer e.Close()
		out, err := runAlgo(tg.g, "cluster", e)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()
	baseline := runtime.NumGoroutine()
	plan := transport.FaultPlan{Seed: 9, MaxAttempts: 4, Partitions: []transport.Partition{
		{FromStep: 5, ToStep: 1 << 60, Peer: 1, FailAttempts: 1 << 30}}}
	net, trs := simFleet(peers, plan)
	start := time.Now()
	outs, errs := runFleet(t, tg.g, "cluster", workers, trs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hard partition took %v to fail — hung past deterministic detection", elapsed)
	}
	if faultOutcome(t, "hard-partition", ref, outs, errs) {
		t.Fatalf("hard partition did not fail the run")
	}
	sawUnreachable := false
	for _, err := range errs {
		var terr *transport.Error
		if errors.As(err, &terr) && terr.Kind == transport.ErrUnreachable {
			sawUnreachable = true
		}
	}
	if !sawUnreachable {
		t.Errorf("no peer classified the hard partition as unreachable: %v", errs)
	}
	if net.Retries() == 0 {
		t.Errorf("partition never exercised a retry before failing")
	}
	waitGoroutinesMain(t, baseline)
}

// TestFaultInjectionPeerDeathMidRun: a peer crashing mid-superstep must fail
// every surviving peer deterministically with ErrPeerDown (no waiting out
// the barrier watchdog), and the whole fleet's goroutines must drain.
func TestFaultInjectionPeerDeathMidRun(t *testing.T) {
	tg := equivGraphs()[0]
	const workers, peers = 4, 2
	baseline := runtime.NumGoroutine()
	plan := transport.FaultPlan{DieAtStep: map[int]uint64{1: 7}}
	_, trs := simFleet(peers, plan)
	start := time.Now()
	_, errs := runFleet(t, tg.g, "cluster", workers, trs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("peer death took %v to propagate", elapsed)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("peer %d completed despite scheduled fleet death", r)
		}
		var terr *transport.Error
		if !errors.As(err, &terr) {
			t.Fatalf("peer %d failed with unclassified error: %v", r, err)
		}
		if terr.Kind != transport.ErrPeerDown {
			t.Errorf("peer %d classified death as %v, want peer-down (%v)", r, terr.Kind, err)
		}
	}
	waitGoroutinesMain(t, baseline)
}

// TestFaultInjectionDeterministicReplay: the same seeded lossy plan run
// twice produces the same retry count — the fault schedule is a pure
// function of (seed, step, sender, receiver, attempt), so a failing
// schedule replays exactly.
func TestFaultInjectionDeterministicReplay(t *testing.T) {
	tg := equivGraphs()[0]
	const workers, peers = 4, 2
	plan := transport.FaultPlan{Seed: 77, DropRate: 0.3}
	var retries [2]int64
	for i := range retries {
		net, trs := simFleet(peers, plan)
		_, errs := runFleet(t, tg.g, "deltastep", workers, trs)
		for r := range errs {
			if errs[r] != nil {
				t.Fatalf("run %d peer %d: %v", i, r, errs[r])
			}
		}
		retries[i] = net.Retries()
	}
	if retries[0] != retries[1] {
		t.Errorf("retry schedule not reproducible: %d vs %d", retries[0], retries[1])
	}
	if retries[0] == 0 {
		t.Errorf("lossy plan induced no retries")
	}
}
