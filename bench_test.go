// Package graphdiam's root-level benchmarks regenerate every table and
// figure of the paper's evaluation (Section 5). Each benchmark prints the
// corresponding rows/series once per run via b.Log so that
//
//	go test -bench=. -benchmem
//
// produces both timing and the paper's comparison data. The mapping from
// benchmark to paper artifact is in DESIGN.md ("Per-experiment index");
// measured-vs-paper numbers are recorded in EXPERIMENTS.md.
package main

import (
	"bytes"
	"sync"
	"testing"

	"graphdiam/internal/exp"
)

// benchScale keeps the bench suite runnable in CI time; switch to
// exp.ScaleDefault locally for the full-size instances (cmd/experiments
// uses the default scale).
const benchScale = exp.ScaleTest

var (
	graphsOnce sync.Once
	graphsMemo []exp.NamedGraph
)

func benchGraphs() []exp.NamedGraph {
	graphsOnce.Do(func() {
		graphsMemo = exp.BenchmarkGraphs(benchScale, 12345)
	})
	return graphsMemo
}

// BenchmarkTable1Stats regenerates Table 1 (benchmark graph properties).
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(benchScale)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteTable1(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkTable2 regenerates one Table 2 row (and the matching bars of
// Figures 1-3) per sub-benchmark: CL-DIAM vs Δ-stepping on each graph.
func BenchmarkTable2(b *testing.B) {
	for _, ng := range benchGraphs() {
		ng := ng
		b.Run(ng.Name, func(b *testing.B) {
			var last exp.Row
			for i := 0; i < b.N; i++ {
				last = exp.Compare(ng, exp.CompareOptions{Workers: 4, Seed: 7})
			}
			var buf bytes.Buffer
			exp.WriteTable2(&buf, []exp.Row{last})
			b.Log("\n" + buf.String())
		})
	}
}

// BenchmarkFig1ApproxRatio isolates the approximation-quality measurement
// of Figure 1 (the ratio columns of Table 2) on the road benchmark.
func BenchmarkFig1ApproxRatio(b *testing.B) {
	ng := benchGraphs()[0]
	var row exp.Row
	for i := 0; i < b.N; i++ {
		row = exp.Compare(ng, exp.CompareOptions{Workers: 4, Seed: 11})
	}
	b.Logf("ratio CL-DIAM=%.3f Δ-stepping=%.3f (paper: 1.26 vs 1.09 on roads-USA)",
		row.RatioCL, row.RatioDS)
}

// BenchmarkFig2Rounds isolates the round-count comparison of Figure 2.
func BenchmarkFig2Rounds(b *testing.B) {
	ng := benchGraphs()[0]
	var row exp.Row
	for i := 0; i < b.N; i++ {
		row = exp.Compare(ng, exp.CompareOptions{Workers: 4, Seed: 13})
	}
	b.Logf("rounds CL-DIAM=%d Δ-stepping=%d (paper: 74 vs 11268 on roads-USA)",
		row.RoundsCL, row.RoundsDS)
}

// BenchmarkFig3Work isolates the work comparison of Figure 3.
func BenchmarkFig3Work(b *testing.B) {
	ng := benchGraphs()[0]
	var row exp.Row
	for i := 0; i < b.N; i++ {
		row = exp.Compare(ng, exp.CompareOptions{Workers: 4, Seed: 17})
	}
	b.Logf("work CL-DIAM=%d Δ-stepping=%d (paper: 4.22e8 vs 1.35e11 on roads-USA; see EXPERIMENTS.md on counter semantics)",
		row.WorkCL, row.WorkDS)
}

// BenchmarkTable3BigGraphs regenerates Table 3 (CL-DIAM on the largest
// instances, where the baseline is impractical).
func BenchmarkTable3BigGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table3(benchScale, 4, 3)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteTable3(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkFig4Scalability regenerates Figure 4 (simulated parallel time
// versus worker count; see EXPERIMENTS.md for the simulation rationale).
func BenchmarkFig4Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := exp.Fig4(benchScale, []int{1, 2, 4, 8, 16}, 5)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteFig4(&buf, points)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkDeltaSensitivity regenerates the Section 5 initial-Δ experiment.
func BenchmarkDeltaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.DeltaSens(benchScale, 77)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteDeltaSens(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkWeightObliviousAblation regenerates the weight-obliviousness
// ablation (the paper's Section 1 remark on [CPPU15]).
func BenchmarkWeightObliviousAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.WeightOblivious(benchScale, 5)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteWeightOblivious(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkCorollary1 regenerates the rounds-vs-τ series on a mesh of
// doubling dimension 2 (Corollary 1's regime).
func BenchmarkCorollary1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := exp.Corollary1(benchScale, 3)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteCorollary1(&buf, points)
			b.Log("\n" + buf.String())
		}
	}
}

// BenchmarkStepCapAblation regenerates the Section 4.1 step-cap ablation.
func BenchmarkStepCapAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.StepCap(benchScale, 3)
		if i == 0 {
			var buf bytes.Buffer
			exp.WriteStepCap(&buf, rows)
			b.Log("\n" + buf.String())
		}
	}
}
