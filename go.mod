module graphdiam

go 1.22
