package validate

import (
	"testing"
	"testing/quick"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func TestExactDiameterPath(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 2, 3})
	if d := ExactDiameter(g, bsp.New(2)); d != 6 {
		t.Fatalf("diameter = %v, want 6", d)
	}
}

func TestExactDiameterMesh(t *testing.T) {
	// Unit-weight S×S mesh has diameter 2(S-1).
	const s = 6
	if d := ExactDiameter(gen.Mesh(s), bsp.New(4)); d != 2*(s-1) {
		t.Fatalf("mesh diameter = %v, want %d", d, 2*(s-1))
	}
}

func TestExactDiameterDisconnected(t *testing.T) {
	// Two components: a path of weight 5 and one of weight 9; the paper's
	// convention takes the max within components.
	b := graph.NewBuilder(5, 3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(2, 3, 4)
	b.AddEdge(3, 4, 5)
	if d := ExactDiameter(b.Build(), bsp.New(2)); d != 9 {
		t.Fatalf("diameter = %v, want 9", d)
	}
}

func TestExactDiameterEmptyAndSingleton(t *testing.T) {
	if d := ExactDiameter(graph.NewBuilder(0, 0).Build(), bsp.New(2)); d != 0 {
		t.Fatalf("empty diameter = %v", d)
	}
	if d := ExactDiameter(graph.NewBuilder(1, 0).Build(), bsp.New(2)); d != 0 {
		t.Fatalf("singleton diameter = %v", d)
	}
}

func TestExactDiameterWorkerInvariance(t *testing.T) {
	r := rng.New(3)
	g := gen.UniformWeights(gen.GNM(100, 300, r), r)
	d1 := ExactDiameter(g, bsp.New(1))
	d8 := ExactDiameter(g, bsp.New(8))
	if d1 != d8 {
		t.Fatalf("diameter depends on workers: %v vs %v", d1, d8)
	}
}

func TestLowerBoundNeverExceedsDiameter(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := gen.UniformWeights(gen.GNM(60, 150, r), r)
		exact := ExactDiameter(g, bsp.New(4))
		lb, _ := LowerBound(g, 0, 4)
		return lb <= exact+1e-9 && lb >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundExactOnPath(t *testing.T) {
	// Two sweeps from anywhere on a path land on the true diameter.
	g := gen.WeightedPath([]float64{3, 1, 4, 1, 5})
	lb, far := LowerBound(g, 2, 3)
	if lb != 14 {
		t.Fatalf("lb = %v, want 14", lb)
	}
	if far != 0 && far != 5 {
		t.Fatalf("farthest node = %d, want an endpoint", far)
	}
}

func TestLowerBoundTightOnMesh(t *testing.T) {
	r := rng.New(9)
	g := gen.UniformWeights(gen.Mesh(10), r)
	exact := ExactDiameter(g, bsp.New(4))
	lb, _ := LowerBound(g, 0, 6)
	if lb > exact+1e-9 {
		t.Fatalf("lb %v exceeds exact %v", lb, exact)
	}
	if lb < 0.8*exact {
		t.Fatalf("lb %v too loose vs exact %v", lb, exact)
	}
}

func TestLowerBoundMultiStart(t *testing.T) {
	r := rng.New(10)
	g := gen.UniformWeights(gen.Mesh(8), r)
	single, _ := LowerBound(g, 0, 2)
	multi := LowerBoundMultiStart(g, []graph.NodeID{0, 10, 33, 63}, 2)
	if multi < single {
		t.Fatalf("multi-start bound %v worse than single %v", multi, single)
	}
	exact := ExactDiameter(g, bsp.New(2))
	if multi > exact+1e-9 {
		t.Fatalf("multi-start bound %v exceeds exact %v", multi, exact)
	}
}

func TestUnweightedDiameter(t *testing.T) {
	if d := UnweightedDiameter(gen.Path(7), bsp.New(2)); d != 6 {
		t.Fatalf("path Ψ = %d, want 6", d)
	}
	if d := UnweightedDiameter(gen.Mesh(5), bsp.New(2)); d != 8 {
		t.Fatalf("mesh Ψ = %d, want 8", d)
	}
	if d := UnweightedDiameter(gen.Complete(9), bsp.New(2)); d != 1 {
		t.Fatalf("K9 Ψ = %d, want 1", d)
	}
	// Weighted diameter of a reweighted mesh differs from Ψ, but Ψ must
	// ignore weights entirely.
	r := rng.New(2)
	g := gen.UniformWeights(gen.Mesh(5), r)
	if d := UnweightedDiameter(g, bsp.New(2)); d != 8 {
		t.Fatalf("weighted mesh Ψ = %d, want 8", d)
	}
}

func TestEccentricityBFS(t *testing.T) {
	g := gen.Path(9)
	if e := EccentricityBFS(g, 0); e != 8 {
		t.Fatalf("ecc(end) = %d, want 8", e)
	}
	if e := EccentricityBFS(g, 4); e != 4 {
		t.Fatalf("ecc(mid) = %d, want 4", e)
	}
}

func TestWeightedVsUnweightedRelationship(t *testing.T) {
	// With weights in (0,1], the weighted diameter is at most Ψ(G) and at
	// least Ψ(G) * minWeight.
	r := rng.New(4)
	g := gen.UniformWeights(gen.Mesh(7), r)
	phi := ExactDiameter(g, bsp.New(2))
	psi := UnweightedDiameter(g, bsp.New(2))
	if phi > float64(psi)+1e-9 {
		t.Fatalf("Φ=%v > Ψ=%d with (0,1] weights", phi, psi)
	}
	if phi <= 0 {
		t.Fatalf("Φ=%v must be positive", phi)
	}
}

func BenchmarkExactDiameterMesh24(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(24), rng.New(1))
	e := bsp.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactDiameter(g, e)
	}
}

func BenchmarkLowerBound4Sweeps(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(48), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LowerBound(g, 0, 4)
	}
}
