// Package validate provides reference diameter computations used to judge
// approximation quality:
//
//   - ExactDiameter: all-pairs Dijkstra (parallel over sources), feasible
//     for graphs up to a few tens of thousands of nodes;
//   - LowerBound: the paper's reference procedure — run sequential SSSP
//     repeatedly, each time from the farthest node reached by the previous
//     run, and keep the heaviest shortest path seen (Table 2's footnote).
//
// Approximation ratios reported by the experiments harness are
// estimate / LowerBound, exactly as in the paper.
package validate

import (
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/sssp"
)

// ExactDiameter computes the exact weighted diameter of g — the maximum
// finite pairwise distance, which for disconnected graphs is the largest
// distance within a component, per the paper's convention — by running
// Dijkstra from every node in parallel on e. Quadratic; intended for
// validation on small graphs.
func ExactDiameter(g *graph.Graph, e *bsp.Engine) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return e.ReduceFloat64(n, func(_, start, end int) float64 {
		best := 0.0
		for s := start; s < end; s++ {
			dist := sssp.Dijkstra(g, graph.NodeID(s))
			ecc, _ := sssp.Eccentricity(dist)
			if ecc > best {
				best = ecc
			}
		}
		return best
	}, math.Max)
}

// LowerBound computes a lower bound on the weighted diameter by iterated
// farthest-node sweeps: an SSSP from start, then from the farthest node it
// reached, and so on for the given number of sweeps. The returned value is
// the largest eccentricity observed, which is at most Φ(G) and in practice
// extremely close to it. It also returns the last farthest node, useful as
// a good SSSP source.
func LowerBound(g *graph.Graph, start graph.NodeID, sweeps int) (float64, graph.NodeID) {
	if sweeps < 1 {
		sweeps = 1
	}
	best := 0.0
	cur := start
	far := start
	for i := 0; i < sweeps; i++ {
		dist := sssp.Dijkstra(g, cur)
		ecc, argmax := sssp.Eccentricity(dist)
		if ecc > best {
			best = ecc
			far = argmax
		}
		if argmax == cur {
			break // isolated node or fixpoint
		}
		cur = argmax
	}
	return best, far
}

// LowerBoundMultiStart runs LowerBound from each of the given start nodes
// and returns the best bound found.
func LowerBoundMultiStart(g *graph.Graph, starts []graph.NodeID, sweepsEach int) float64 {
	best := 0.0
	for _, s := range starts {
		if lb, _ := LowerBound(g, s, sweepsEach); lb > best {
			best = lb
		}
	}
	return best
}

// UnweightedDiameter computes the exact unweighted diameter Ψ(G) (maximum
// hop distance within a component) by parallel BFS from every node.
// Quadratic; for validation and for checking Corollary 1's Ψ/n^(ε'/b)
// round bound on small graphs.
func UnweightedDiameter(g *graph.Graph, e *bsp.Engine) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	best := e.ReduceFloat64(n, func(_, start, end int) float64 {
		localBest := 0
		depth := make([]int32, n)
		queue := make([]graph.NodeID, 0, n)
		for s := start; s < end; s++ {
			for i := range depth {
				depth[i] = -1
			}
			queue = append(queue[:0], graph.NodeID(s))
			depth[s] = 0
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				ts, _ := g.Neighbors(u)
				for _, v := range ts {
					if depth[v] < 0 {
						depth[v] = depth[u] + 1
						queue = append(queue, v)
					}
				}
			}
			for _, d := range depth {
				if int(d) > localBest {
					localBest = int(d)
				}
			}
		}
		return float64(localBest)
	}, math.Max)
	return int(best)
}

// EccentricityBFS returns the unweighted eccentricity of src.
func EccentricityBFS(g *graph.Graph, src graph.NodeID) int {
	n := g.NumNodes()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]graph.NodeID, 0, 1024)
	queue = append(queue, src)
	depth[src] = 0
	best := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				if int(depth[v]) > best {
					best = int(depth[v])
				}
				queue = append(queue, v)
			}
		}
	}
	return best
}
