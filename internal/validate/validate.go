// Package validate provides reference diameter computations used to judge
// approximation quality:
//
//   - ExactDiameter: all-pairs Dijkstra (parallel over sources), feasible
//     for graphs up to a few tens of thousands of nodes;
//   - LowerBound: the paper's reference procedure — run sequential SSSP
//     repeatedly, each time from the farthest node reached by the previous
//     run, and keep the heaviest shortest path seen (Table 2's footnote).
//
// Approximation ratios reported by the experiments harness are
// estimate / LowerBound, exactly as in the paper.
package validate

import (
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/sssp"
)

// ExactDiameter computes the exact weighted diameter of g — the maximum
// finite pairwise distance, which for disconnected graphs is the largest
// distance within a component, per the paper's convention.
//
// Instead of the quadratic all-pairs sweep, it maintains per-node
// eccentricity bounds in the style of Takes & Kosters ("Determining the
// diameter of small world networks"): after running Dijkstra from a source
// s with eccentricity ecc(s), every node v within s's component satisfies
//
//	ecc(v) ≥ max(d(s,v), ecc(s) − d(s,v))   and   ecc(v) ≤ ecc(s) + d(s,v),
//
// so nodes whose upper bound cannot beat the best realized distance found
// so far can never be a diameter endpoint and are pruned. Sources are
// chosen adaptively in fixed-size batches (highest upper bounds to raise
// the lower bound, lowest lower bounds to cut the upper bounds) and each
// batch's Dijkstras run in parallel on e. The batch schedule is independent
// of the worker count, so the result is deterministic across engines; it
// equals the all-pairs answer up to floating-point path-summation order.
// Worst case remains n Dijkstras; on the benchmark topologies it converges
// in a few dozen.
func ExactDiameter(g *graph.Graph, e *bsp.Engine) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if n <= 2*exactBatch {
		return exactDiameterAllPairs(g, e)
	}
	eccL := make([]float64, n)
	eccU := make([]float64, n)
	done := make([]bool, n)
	for i := range eccU {
		eccU[i] = math.Inf(1)
	}
	active := make([]graph.NodeID, n)
	for i := range active {
		active[i] = graph.NodeID(i)
	}
	dists := make([][]float64, exactBatch)
	scratch := make([]*sssp.Scratch, exactBatch)
	for i := range dists {
		dists[i] = make([]float64, n)
		scratch[i] = sssp.NewScratch(n)
	}
	eccs := make([]float64, exactBatch)

	diamLB := 0.0
	for len(active) > 0 {
		sources := pickEccSources(active, eccL, eccU)
		e.ParallelFor(len(sources), func(_, start, end int) {
			for i := start; i < end; i++ {
				scratch[i].DijkstraInto(g, sources[i], dists[i])
				eccs[i], _ = sssp.Eccentricity(dists[i])
			}
		})
		for i := range sources {
			done[sources[i]] = true
			if eccs[i] > diamLB {
				diamLB = eccs[i]
			}
		}
		// Tighten every node's bounds against each new source (parallel over
		// nodes; each node is touched by exactly one worker).
		e.ParallelFor(n, func(_, start, end int) {
			for i := range sources {
				dist, ecc := dists[i], eccs[i]
				for v := start; v < end; v++ {
					d := dist[v]
					if math.IsInf(d, 1) {
						continue // other component: no triangle bounds
					}
					if d > eccL[v] {
						eccL[v] = d
					}
					if ecc-d > eccL[v] {
						eccL[v] = ecc - d
					}
					if ecc+d < eccU[v] {
						eccU[v] = ecc + d
					}
				}
			}
		})
		// A realized lower bound can also come from a non-source node's
		// eccL (it is a witnessed pairwise distance).
		diamLB = e.ReduceFloat64(n, func(_, start, end int) float64 {
			best := diamLB
			for v := start; v < end; v++ {
				if eccL[v] > best {
					best = eccL[v]
				}
			}
			return best
		}, math.Max)
		// Keep only nodes whose upper bound might still beat diamLB. The
		// slack keeps pruning conservative against floating-point
		// path-summation asymmetry, preserving exactness.
		slack := 1e-9 * diamLB
		kept := active[:0]
		for _, v := range active {
			if !done[v] && eccU[v] > diamLB-slack {
				kept = append(kept, v)
			}
		}
		active = kept
	}
	return diamLB
}

// exactBatch is the number of Dijkstra sources per bounding round. Fixed —
// not derived from the worker count — so the chosen source schedule, and
// with it every floating-point outcome, is identical across engines.
const exactBatch = 16

// pickEccSources selects up to exactBatch sources from active:
// half the nodes with the largest eccentricity upper bounds (candidate
// diameter endpoints: running them raises the realized lower bound) and
// half with the smallest lower bounds (central nodes: their small
// eccentricities cut everyone's upper bounds). Deterministic: ties break
// toward smaller node IDs.
func pickEccSources(active []graph.NodeID, eccL, eccU []float64) []graph.NodeID {
	k := exactBatch
	if len(active) <= k {
		return append([]graph.NodeID(nil), active...)
	}
	type cand struct {
		v graph.NodeID
		x float64
	}
	bestU := make([]cand, 0, k/2) // max eccU, descending
	bestL := make([]cand, 0, k/2) // min eccL, ascending
	insert := func(s []cand, c cand, less func(a, b cand) bool, lim int) []cand {
		i := len(s)
		for i > 0 && less(c, s[i-1]) {
			i--
		}
		if i >= lim {
			return s
		}
		if len(s) < lim {
			s = append(s, cand{})
		}
		copy(s[i+1:], s[i:])
		s[i] = c
		return s
	}
	moreU := func(a, b cand) bool { return a.x > b.x || (a.x == b.x && a.v < b.v) }
	lessL := func(a, b cand) bool { return a.x < b.x || (a.x == b.x && a.v < b.v) }
	for _, v := range active {
		bestU = insert(bestU, cand{v, eccU[v]}, moreU, k/2)
		bestL = insert(bestL, cand{v, eccL[v]}, lessL, k/2)
	}
	picked := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]bool, k)
	for _, c := range bestU {
		picked = append(picked, c.v)
		seen[c.v] = true
	}
	for _, c := range bestL {
		if !seen[c.v] {
			picked = append(picked, c.v)
		}
	}
	return picked
}

// exactDiameterAllPairs is the quadratic reference: Dijkstra from every
// node, parallel over sources. Used for small graphs and by the tests as
// the ground truth the bounding computation must match.
func exactDiameterAllPairs(g *graph.Graph, e *bsp.Engine) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return e.ReduceFloat64(n, func(_, start, end int) float64 {
		best := 0.0
		sc := sssp.NewScratch(n) // per-worker scratch: one allocation per sweep
		for s := start; s < end; s++ {
			dist := sc.Dijkstra(g, graph.NodeID(s))
			ecc, _ := sssp.Eccentricity(dist)
			if ecc > best {
				best = ecc
			}
		}
		return best
	}, math.Max)
}

// LowerBound computes a lower bound on the weighted diameter by iterated
// farthest-node sweeps: an SSSP from start, then from the farthest node it
// reached, and so on for the given number of sweeps. The returned value is
// the largest eccentricity observed, which is at most Φ(G) and in practice
// extremely close to it. It also returns the last farthest node, useful as
// a good SSSP source.
func LowerBound(g *graph.Graph, start graph.NodeID, sweeps int) (float64, graph.NodeID) {
	if sweeps < 1 {
		sweeps = 1
	}
	best := 0.0
	cur := start
	far := start
	sc := sssp.NewScratch(g.NumNodes())
	for i := 0; i < sweeps; i++ {
		dist := sc.Dijkstra(g, cur)
		ecc, argmax := sssp.Eccentricity(dist)
		if ecc > best {
			best = ecc
			far = argmax
		}
		if argmax == cur {
			break // isolated node or fixpoint
		}
		cur = argmax
	}
	return best, far
}

// LowerBoundMultiStart runs LowerBound from each of the given start nodes
// and returns the best bound found.
func LowerBoundMultiStart(g *graph.Graph, starts []graph.NodeID, sweepsEach int) float64 {
	best := 0.0
	for _, s := range starts {
		if lb, _ := LowerBound(g, s, sweepsEach); lb > best {
			best = lb
		}
	}
	return best
}

// UnweightedDiameter computes the exact unweighted diameter Ψ(G) (maximum
// hop distance within a component) by parallel BFS from every node.
// Quadratic; for validation and for checking Corollary 1's Ψ/n^(ε'/b)
// round bound on small graphs.
func UnweightedDiameter(g *graph.Graph, e *bsp.Engine) int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	best := e.ReduceFloat64(n, func(_, start, end int) float64 {
		localBest := 0
		depth := make([]int32, n)
		queue := make([]graph.NodeID, 0, n)
		for s := start; s < end; s++ {
			for i := range depth {
				depth[i] = -1
			}
			queue = append(queue[:0], graph.NodeID(s))
			depth[s] = 0
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				ts, _ := g.Neighbors(u)
				for _, v := range ts {
					if depth[v] < 0 {
						depth[v] = depth[u] + 1
						queue = append(queue, v)
					}
				}
			}
			for _, d := range depth {
				if int(d) > localBest {
					localBest = int(d)
				}
			}
		}
		return float64(localBest)
	}, math.Max)
	return int(best)
}

// EccentricityBFS returns the unweighted eccentricity of src.
func EccentricityBFS(g *graph.Graph, src graph.NodeID) int {
	n := g.NumNodes()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]graph.NodeID, 0, 1024)
	queue = append(queue, src)
	depth[src] = 0
	best := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				if int(depth[v]) > best {
					best = int(depth[v])
				}
				queue = append(queue, v)
			}
		}
	}
	return best
}
