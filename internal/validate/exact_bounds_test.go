package validate

import (
	"math"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// TestExactDiameterMatchesAllPairs cross-validates the bounding diameter
// computation against the quadratic all-pairs reference on a spread of
// topologies and weight distributions large enough to exercise the pruning
// path (n > 2·exactBatch).
func TestExactDiameterMatchesAllPairs(t *testing.T) {
	r := rng.New(99)
	graphs := map[string]*graph.Graph{
		"mesh-uniform": gen.UniformWeights(gen.Mesh(12), r.Split()),
		"mesh-bimodal": gen.BimodalWeights(gen.Mesh(12), 1e-6, 1, 0.3, r.Split()),
		"road":         gen.RoadNetwork(gen.DefaultRoadNetworkOptions(12), r.Split()),
		"rmat":         gen.UniformWeights(gen.RMatDefault(7, r.Split()), r.Split()),
		"path":         gen.UniformWeights(gen.Path(150), r.Split()),
		"exp-weights":  gen.ExponentialWeights(gen.Mesh(10), 1, r.Split()),
		"star":         gen.UniformWeights(gen.Star(80), r.Split()),
		"cycle":        gen.UniformWeights(gen.Cycle(123), r.Split()),
	}
	for name, g := range graphs {
		e := bsp.New(4)
		got := ExactDiameter(g, e)
		want := exactDiameterAllPairs(g, e)
		e.Close()
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("%s: bounding diameter %v != all-pairs %v", name, got, want)
		}
	}
}

// TestExactDiameterBoundsDisconnected: the convention is the largest
// within-component distance; the bounding computation (large-n path) must
// visit every component.
func TestExactDiameterBoundsDisconnected(t *testing.T) {
	// Two paths of very different lengths plus an isolated node.
	b := graph.NewBuilder(100, 0)
	for i := 0; i < 60; i++ { // path 0..60, diameter 60
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 62; i < 98; i++ { // path 62..98, diameter 36
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g := b.Build()
	e := bsp.New(3)
	defer e.Close()
	if d := ExactDiameter(g, e); d != 60 {
		t.Fatalf("disconnected diameter = %v, want 60", d)
	}
}

// TestExactDiameterBoundsWorkerInvariance: the fixed batch schedule makes
// the result bit-identical across engine worker counts on the bounding
// (large-n) path.
func TestExactDiameterBoundsWorkerInvariance(t *testing.T) {
	g := gen.BimodalWeights(gen.Mesh(16), 1e-6, 1, 0.25, rng.New(7))
	var first float64
	for i, w := range []int{1, 3, 8} {
		e := bsp.New(w)
		d := ExactDiameter(g, e)
		e.Close()
		if i == 0 {
			first = d
		} else if d != first {
			t.Fatalf("workers=%d: diameter %v != %v at workers=1", w, d, first)
		}
	}
}
