// Package mr implements the MR(M_T, M_L) computational model of
// Pietracaprina, Pucci, Riondato, Silvestri and Upfal ("Space-round
// tradeoffs for MapReduce computations", ICS 2012), which is the machine
// model the paper analyzes its algorithms on.
//
// An MR algorithm is a sequence of rounds. In each round a multiset of
// key-value pairs is transformed into a new multiset by applying a reducer
// independently to every group of pairs sharing a key. The model has two
// parameters: M_T, the total memory, and M_L, the local memory available to
// a single reducer. Practical algorithms must keep M_T linear in the input
// and M_L substantially sublinear while minimizing rounds.
//
// The Engine here executes rounds with real parallelism (reducer groups are
// processed by a worker pool) and enforces the model's accounting: it
// counts rounds and shuffled pairs and records the maximum number of pairs
// any single reducer receives, which must stay within M_L for the execution
// to be valid in MR(M_T, M_L).
//
// On top of the raw round primitive, the package provides the sorting and
// prefix-sum primitives of the paper's Fact 1, which run in O(log_{M_L} n)
// rounds — these are the building blocks that let a Δ-growing step execute
// in O(1) rounds.
package mr

import (
	"fmt"
	"sort"
	"sync"
)

// Pair is a key-value pair. Keys are uint64 — node IDs, cluster IDs and
// bucket indices all embed naturally.
type Pair[V any] struct {
	Key   uint64
	Value V
}

// Engine executes MR rounds and accumulates model accounting.
type Engine struct {
	workers     int
	localMemory int // M_L: max pairs a reducer may receive; 0 = unchecked

	mu          sync.Mutex
	rounds      int64
	shuffled    int64
	maxReducer  int
	violations  int
	lastReducer int
}

// NewEngine returns an engine with the given parallelism and local-memory
// bound M_L expressed in pairs (0 disables the check).
func NewEngine(workers, localMemory int) *Engine {
	if workers <= 0 {
		workers = 1
	}
	return &Engine{workers: workers, localMemory: localMemory}
}

// Rounds returns the number of MR rounds executed so far.
func (e *Engine) Rounds() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rounds
}

// Shuffled returns the total number of pairs moved through shuffles.
func (e *Engine) Shuffled() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shuffled
}

// MaxReducerLoad returns the largest number of pairs delivered to a single
// reducer in any round — the realized M_L requirement of the execution.
func (e *Engine) MaxReducerLoad() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxReducer
}

// Violations returns how many reducer invocations exceeded M_L.
func (e *Engine) Violations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.violations
}

// Reset zeroes the accounting.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rounds, e.shuffled, e.maxReducer, e.violations = 0, 0, 0, 0
}

func (e *Engine) recordRound(groupSizes []int, shuffled int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rounds++
	e.shuffled += int64(shuffled)
	for _, s := range groupSizes {
		if s > e.maxReducer {
			e.maxReducer = s
		}
		if e.localMemory > 0 && s > e.localMemory {
			e.violations++
		}
	}
}

// Round executes one MR round over input: reduce is applied independently
// (and in parallel) to each key group, emitting output pairs. The output
// order is deterministic: groups are processed in ascending key order.
func Round[V1, V2 any](e *Engine, input []Pair[V1],
	reduce func(key uint64, values []V1, emit func(uint64, V2))) []Pair[V2] {

	// Shuffle: group by key.
	groups := make(map[uint64][]V1)
	for _, p := range input {
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	keys := make([]uint64, 0, len(groups))
	sizes := make([]int, 0, len(groups))
	for k, vs := range groups {
		keys = append(keys, k)
		sizes = append(sizes, len(vs))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Reduce phase: worker pool over key groups.
	outs := make([][]Pair[V2], len(keys))
	var wg sync.WaitGroup
	next := make(chan int, len(keys))
	for i := range keys {
		next <- i
	}
	close(next)
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				k := keys[i]
				var local []Pair[V2]
				reduce(k, groups[k], func(k2 uint64, v2 V2) {
					local = append(local, Pair[V2]{k2, v2})
				})
				outs[i] = local
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	result := make([]Pair[V2], 0, total)
	for _, o := range outs {
		result = append(result, o...)
	}
	e.recordRound(sizes, len(input)+total)
	return result
}

// Sort sorts items in O(log_{M_L} n) MR rounds using sample sort: if the
// input fits in local memory it is sorted by a single reducer (one round);
// otherwise deterministic splitters partition it into at most M_L buckets,
// each sorted recursively. This realizes the sorting half of the paper's
// Fact 1.
func Sort(e *Engine, items []uint64) []uint64 {
	return sortRec(e, items, false)
}

// sortRec implements Sort. force requests a single-reducer sort regardless
// of M_L; it is used when splitting makes no progress (all remaining keys
// equal up to splitter resolution), in which case one reducer must receive
// the whole group anyway — exactly as in a real sample sort with duplicate
// keys — and the engine records the M_L violation.
func sortRec(e *Engine, items []uint64, force bool) []uint64 {
	n := len(items)
	if n == 0 {
		return nil
	}
	ml := e.localMemory
	if force || ml <= 0 || n <= ml {
		// Single reducer sorts everything: one round, reducer load n.
		input := make([]Pair[uint64], n)
		for i, v := range items {
			input[i] = Pair[uint64]{0, v}
		}
		out := Round(e, input, func(_ uint64, vs []uint64, emit func(uint64, uint64)) {
			sorted := append([]uint64(nil), vs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, v := range sorted {
				emit(0, v)
			}
		})
		res := make([]uint64, n)
		for i, p := range out {
			res[i] = p.Value
		}
		return res
	}
	// Partition round: evenly spaced splitters from a sorted sample split
	// the input into ~sqrt-balanced buckets of expected size <= M_L.
	buckets := (n + ml - 1) / ml
	if buckets < 2 {
		buckets = 2
	}
	sample := append([]uint64(nil), items...)
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	splitters := make([]uint64, buckets-1)
	for i := range splitters {
		splitters[i] = sample[(i+1)*n/buckets]
	}
	input := make([]Pair[uint64], n)
	for i, v := range items {
		b := sort.Search(len(splitters), func(j int) bool { return splitters[j] > v })
		input[i] = Pair[uint64]{uint64(b), v}
	}
	// One round to materialize the buckets.
	parts := make([][]uint64, buckets)
	out := Round(e, input, func(k uint64, vs []uint64, emit func(uint64, uint64)) {
		for _, v := range vs {
			emit(k, v)
		}
	})
	for _, p := range out {
		parts[p.Key] = append(parts[p.Key], p.Value)
	}
	res := make([]uint64, 0, n)
	for _, part := range parts {
		// A part that did not shrink means every item fell between the same
		// pair of splitters; recursing would loop, so sort it in one reducer.
		res = append(res, sortRec(e, part, len(part) == n)...)
	}
	return res
}

// PrefixSum computes the exclusive prefix sums of items in O(1) rounds for
// inputs of size at most M_L², following the standard two-level MR scheme
// (the prefix-sum half of Fact 1): round one sums blocks of size M_L,
// round two scans the block sums and emits per-item offsets.
func PrefixSum(e *Engine, items []int64) []int64 {
	n := len(items)
	if n == 0 {
		return nil
	}
	ml := e.localMemory
	if ml <= 0 {
		ml = n
	}
	blocks := (n + ml - 1) / ml
	// Round 1: per-block partial sums.
	input := make([]Pair[int64], n)
	for i, v := range items {
		input[i] = Pair[int64]{uint64(i / ml), v}
	}
	blockSums := make([]int64, blocks)
	out := Round(e, input, func(k uint64, vs []int64, emit func(uint64, int64)) {
		var s int64
		for _, v := range vs {
			s += v
		}
		emit(k, s)
	})
	for _, p := range out {
		blockSums[p.Key] = p.Value
	}
	// Round 2: one reducer scans the block sums (there are at most M_L of
	// them when n <= M_L²) producing block offsets; then blocks finish
	// locally. We fold both halves into one Round for accounting parity
	// with the two-round textbook scheme by charging an extra round below.
	sumInput := make([]Pair[int64], blocks)
	for i, s := range blockSums {
		sumInput[i] = Pair[int64]{0, s}
	}
	offsets := make([]int64, blocks)
	Round(e, sumInput, func(_ uint64, vs []int64, emit func(uint64, int64)) {
		var acc int64
		for i, v := range vs {
			offsets[i] = acc
			acc += v
		}
	})
	res := make([]int64, n)
	for b := 0; b < blocks; b++ {
		acc := offsets[b]
		lo := b * ml
		hi := lo + ml
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			res[i] = acc
			acc += items[i]
		}
	}
	return res
}

// String summarizes the engine accounting.
func (e *Engine) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Sprintf("mr{rounds=%d shuffled=%d maxReducer=%d violations=%d}",
		e.rounds, e.shuffled, e.maxReducer, e.violations)
}
