package mr

import (
	"sort"
	"testing"
	"testing/quick"

	"graphdiam/internal/rng"
)

func TestRoundGroupsByKey(t *testing.T) {
	e := NewEngine(4, 0)
	input := []Pair[int]{
		{1, 10}, {2, 20}, {1, 11}, {3, 30}, {2, 21},
	}
	out := Round(e, input, func(k uint64, vs []int, emit func(uint64, int)) {
		s := 0
		for _, v := range vs {
			s += v
		}
		emit(k, s)
	})
	got := map[uint64]int{}
	for _, p := range out {
		got[p.Key] = p.Value
	}
	want := map[uint64]int{1: 21, 2: 41, 3: 30}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d, want %d", k, got[k], v)
		}
	}
	if e.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", e.Rounds())
	}
}

func TestRoundPreservesValueOrderWithinGroup(t *testing.T) {
	e := NewEngine(2, 0)
	input := []Pair[int]{{7, 1}, {7, 2}, {7, 3}, {7, 4}}
	Round(e, input, func(_ uint64, vs []int, emit func(uint64, int)) {
		for i, v := range vs {
			if v != i+1 {
				t.Errorf("value order not preserved: %v", vs)
				return
			}
		}
	})
}

func TestRoundOutputDeterministicAcrossKeys(t *testing.T) {
	// Group outputs must be concatenated in ascending key order regardless
	// of scheduling, so repeated runs agree.
	run := func() []Pair[int] {
		e := NewEngine(8, 0)
		var input []Pair[int]
		for k := 20; k >= 0; k-- {
			input = append(input, Pair[int]{uint64(k), k})
		}
		return Round(e, input, func(k uint64, vs []int, emit func(uint64, int)) {
			emit(k, vs[0]*2)
		})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic output length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic output at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Key > a[i].Key {
			t.Fatal("output keys not ascending")
		}
	}
}

func TestAccountingShuffledAndLoad(t *testing.T) {
	e := NewEngine(2, 0)
	input := []Pair[int]{{0, 1}, {0, 2}, {0, 3}, {1, 4}}
	Round(e, input, func(k uint64, vs []int, emit func(uint64, int)) {
		emit(k, 0)
	})
	if e.MaxReducerLoad() != 3 {
		t.Fatalf("MaxReducerLoad = %d, want 3", e.MaxReducerLoad())
	}
	// shuffled = input pairs + emitted pairs = 4 + 2.
	if e.Shuffled() != 6 {
		t.Fatalf("Shuffled = %d, want 6", e.Shuffled())
	}
}

func TestLocalMemoryViolationDetected(t *testing.T) {
	e := NewEngine(1, 2)
	input := []Pair[int]{{0, 1}, {0, 2}, {0, 3}}
	Round(e, input, func(k uint64, vs []int, emit func(uint64, int)) {})
	if e.Violations() != 1 {
		t.Fatalf("Violations = %d, want 1", e.Violations())
	}
	e.Reset()
	if e.Violations() != 0 || e.Rounds() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSortSmallInputSingleRound(t *testing.T) {
	e := NewEngine(2, 100)
	items := []uint64{5, 3, 9, 1, 1, 7}
	got := Sort(e, items)
	want := append([]uint64(nil), items...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", got, want)
		}
	}
	if e.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1 for in-memory input", e.Rounds())
	}
}

func TestSortRespectsLocalMemory(t *testing.T) {
	// n = 1000, M_L = 64: sample sort must stay within the local bound and
	// finish in O(log_ML n) rounds — here a partition level plus leaf
	// sorts, far below n rounds.
	const n, ml = 1000, 64
	r := rng.New(1)
	items := make([]uint64, n)
	for i := range items {
		items[i] = r.Uint64() % 500 // duplicates included
	}
	e := NewEngine(4, ml)
	got := Sort(e, items)
	if len(got) != n {
		t.Fatalf("length %d, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i-1] > got[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Sample buckets are balanced in expectation; duplicates can overflow a
	// bucket, but any overflowing bucket recurses, so the only hard
	// invariant is termination plus a round count well below n.
	if e.Rounds() > 64 {
		t.Fatalf("rounds = %d, want O(log_ML n) ~ small", e.Rounds())
	}
}

func TestSortProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint16, mlRaw uint8) bool {
		n := int(nRaw) % 300
		ml := int(mlRaw)%40 + 4
		r := rng.New(seed)
		items := make([]uint64, n)
		counts := map[uint64]int{}
		for i := range items {
			items[i] = r.Uint64() % 64
			counts[items[i]]++
		}
		got := Sort(NewEngine(3, ml), items)
		if len(got) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		for _, v := range got {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum(t *testing.T) {
	e := NewEngine(2, 4)
	items := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	got := PrefixSum(e, items)
	want := []int64{0, 3, 4, 8, 9, 14, 23, 25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if e.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2 (Fact 1: O(1) rounds)", e.Rounds())
	}
}

func TestPrefixSumEmpty(t *testing.T) {
	if got := PrefixSum(NewEngine(1, 0), nil); got != nil {
		t.Fatalf("PrefixSum(nil) = %v", got)
	}
}

func TestPrefixSumProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8, mlRaw uint8) bool {
		n := int(nRaw)
		ml := int(mlRaw)%16 + 1
		r := rng.New(seed)
		items := make([]int64, n)
		for i := range items {
			items[i] = int64(r.Intn(100)) - 50
		}
		got := PrefixSum(NewEngine(2, ml), items)
		var acc int64
		for i := 0; i < n; i++ {
			if got[i] != acc {
				return false
			}
			acc += items[i]
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A Δ-growing step expressed in the MR model: each active node sends
// (neighbor, candidate distance) messages, each node reduces to its minimum
// candidate. This validates the paper's claim that one growing step is O(1)
// MR rounds.
func TestGrowingStepIsOneRound(t *testing.T) {
	// Path 0-1-2-3 with unit weights, source 0, Δ = 10.
	type cand struct {
		center uint64
		dist   float64
	}
	adj := map[uint64][]uint64{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
	state := map[uint64]cand{0: {0, 0}}
	e := NewEngine(2, 0)

	var msgs []Pair[cand]
	for u, st := range state {
		for _, v := range adj[u] {
			msgs = append(msgs, Pair[cand]{v, cand{st.center, st.dist + 1}})
		}
	}
	out := Round(e, msgs, func(k uint64, vs []cand, emit func(uint64, cand)) {
		best := vs[0]
		for _, c := range vs[1:] {
			if c.dist < best.dist {
				best = c
			}
		}
		emit(k, best)
	})
	if e.Rounds() != 1 {
		t.Fatalf("growing step took %d rounds, want 1", e.Rounds())
	}
	found := false
	for _, p := range out {
		if p.Key == 1 && p.Value.dist == 1 && p.Value.center == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 1 not updated correctly: %v", out)
	}
}

func BenchmarkRound(b *testing.B) {
	e := NewEngine(8, 0)
	const n = 1 << 14
	input := make([]Pair[int], n)
	r := rng.New(1)
	for i := range input {
		input[i] = Pair[int]{uint64(r.Intn(1024)), i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Round(e, input, func(k uint64, vs []int, emit func(uint64, int)) {
			s := 0
			for _, v := range vs {
				s += v
			}
			emit(k, s)
		})
	}
}
