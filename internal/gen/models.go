package gen

import (
	"math"

	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// BarabasiAlbert generates a preferential-attachment graph: starting from a
// small clique, each new node attaches m edges to existing nodes chosen
// with probability proportional to their degree (implemented with the
// standard repeated-endpoint trick). Produces power-law degree
// distributions like R-MAT but with guaranteed connectivity — a useful
// second social-network model for robustness tests.
func BarabasiAlbert(n, m int, r *rng.RNG) *graph.Graph {
	if m < 1 {
		panic("gen: BarabasiAlbert needs m >= 1")
	}
	if n <= m {
		return Complete(n)
	}
	b := graph.NewBuilder(n, n*m)
	// Endpoint list: each edge contributes both endpoints, so sampling a
	// uniform element is degree-proportional sampling.
	endpoints := make([]graph.NodeID, 0, 2*n*m)
	// Seed clique on m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
			endpoints = append(endpoints, graph.NodeID(i), graph.NodeID(j))
		}
	}
	for v := m + 1; v < n; v++ {
		attached := map[graph.NodeID]bool{}
		for len(attached) < m {
			t := endpoints[r.Intn(len(endpoints))]
			if int(t) == v || attached[t] {
				continue
			}
			attached[t] = true
			b.AddEdge(graph.NodeID(v), t, 1)
		}
		for t := range attached {
			endpoints = append(endpoints, graph.NodeID(v), t)
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// node connects to its k nearest neighbours (k even), with each edge
// rewired to a uniform random endpoint with probability beta. beta=0 is
// the lattice (large diameter), beta=1 approaches G(n, nk/2).
func WattsStrogatz(n, k int, beta float64, r *rng.RNG) *graph.Graph {
	if k%2 != 0 || k < 2 {
		panic("gen: WattsStrogatz needs even k >= 2")
	}
	if k >= n {
		panic("gen: WattsStrogatz needs k < n")
	}
	b := graph.NewBuilder(n, n*k/2)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Bernoulli(beta) {
				// Rewire to a uniform non-self endpoint.
				for {
					w := r.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			if graph.NodeID(u) != graph.NodeID(v) {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
			}
		}
	}
	return b.Build()
}

// RandomGeometric places n points uniformly in the unit square and
// connects pairs within Euclidean distance radius, with the distance as
// edge weight. A natural bounded-doubling-dimension family (b ≈ 2)
// complementary to meshes; grid-bucketed for O(n) expected construction.
func RandomGeometric(n int, radius float64, r *rng.RNG) *graph.Graph {
	if radius <= 0 || radius > 1 {
		panic("gen: RandomGeometric radius must be in (0, 1]")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	buckets := make(map[[2]int][]int)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		buckets[[2]int{cx, cy}] = append(buckets[[2]int{cx, cy}], i)
	}
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
					if d <= radius && d > 0 {
						b.AddEdge(graph.NodeID(i), graph.NodeID(j), d)
					}
				}
			}
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube (2^d nodes, unit weights):
// a doubling-dimension-Θ(d) graph used to stress the dependence of the
// decomposition on dimension.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	b := graph.NewBuilder(n, n*d/2)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
			}
		}
	}
	return b.Build()
}

// Caterpillar returns a path of spineLen nodes with legsPerNode leaf nodes
// attached to every spine node — a tree with many degree-1 nodes, a
// stress case for singleton-heavy decompositions.
func Caterpillar(spineLen, legsPerNode int) *graph.Graph {
	n := spineLen * (1 + legsPerNode)
	b := graph.NewBuilder(n, n-1)
	for i := 0; i+1 < spineLen; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerNode; l++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(next), 1)
			next++
		}
	}
	return b.Build()
}
