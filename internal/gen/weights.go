package gen

import (
	"math"

	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// UniformWeights returns a copy of g with i.i.d. uniform (0,1] edge
// weights — the paper's convention for originally-unweighted benchmarks
// (social networks, meshes, R-MAT graphs).
func UniformWeights(g *graph.Graph, r *rng.RNG) *graph.Graph {
	return g.ReweightUniform(r.Float64Open)
}

// IntegralUniformWeights returns a copy of g with integral weights drawn
// uniformly from {1, …, max}. The paper assumes positive integral weights
// polynomial in n for its theoretical analysis.
func IntegralUniformWeights(g *graph.Graph, maxW int, r *rng.RNG) *graph.Graph {
	if maxW < 1 {
		panic("gen: IntegralUniformWeights max must be >= 1")
	}
	return g.ReweightUniform(func() float64 {
		return float64(1 + r.Intn(maxW))
	})
}

// BimodalWeights returns a copy of g where each edge has weight heavy with
// probability pHeavy and weight light otherwise. This is the weight
// distribution of the paper's Δ-sensitivity experiment on mesh(2048):
// heavy = 1 w.p. 0.1, light = 1e-6 otherwise.
func BimodalWeights(g *graph.Graph, light, heavy, pHeavy float64, r *rng.RNG) *graph.Graph {
	return g.ReweightUniform(func() float64 {
		if r.Bernoulli(pHeavy) {
			return heavy
		}
		return light
	})
}

// ExponentialWeights returns a copy of g with i.i.d. Exp(1) weights scaled
// by scale, useful for skewed-weight stress tests.
func ExponentialWeights(g *graph.Graph, scale float64, r *rng.RNG) *graph.Graph {
	return g.ReweightUniform(func() float64 {
		w := r.Exp() * scale
		if w <= 0 {
			w = math.SmallestNonzeroFloat64
		}
		return w
	})
}
