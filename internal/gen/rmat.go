package gen

import (
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// RMatParams holds the recursive quadrant probabilities of the R-MAT model.
// They must be positive and sum to 1.
type RMatParams struct {
	A, B, C, D float64
}

// DefaultRMatParams are the Graph500/Chakrabarti defaults producing
// power-law degree distributions.
var DefaultRMatParams = RMatParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMat generates an R-MAT(scale) graph: 2^scale nodes and
// edgeFactor·2^scale directed edge samples, symmetrized, with self-loops
// dropped and duplicates collapsed — mirroring the paper's R-MAT(S) family
// (edgeFactor 16). The realized undirected edge count is therefore below
// edgeFactor·2^scale.
func RMat(scale, edgeFactor int, p RMatParams, r *rng.RNG) *graph.Graph {
	n := 1 << uint(scale)
	samples := edgeFactor * n
	b := graph.NewBuilder(n, samples)
	ab := p.A + p.B
	abc := ab + p.C
	for i := 0; i < samples; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.Float64()
			switch {
			case x < p.A:
				// top-left: no bits set
			case x < ab:
				v |= 1 << uint(bit)
			case x < abc:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
		}
	}
	return b.Build()
}

// RMatDefault generates R-MAT(scale) with the paper's edge factor of 16 and
// the default quadrant probabilities.
func RMatDefault(scale int, r *rng.RNG) *graph.Graph {
	return RMat(scale, 16, DefaultRMatParams, r)
}
