package gen

import (
	"strings"
	"testing"
)

func TestFromSpecFamilies(t *testing.T) {
	cases := []struct {
		spec string
		n    int // expected node count, 0 to skip the check
	}{
		{"mesh:8", 64},
		{"torus:8", 64},
		{"rmat:8", 256},
		{"road:16", 0},   // largest component of a jittered lattice
		{"roads:2:8", 0}, // road base is trimmed to its largest component
		{"gnm:100:300", 100},
		{"ba:100:3", 100},
		{"ws:100:4:0.1", 100},
		{"path:50", 50},
		{"cycle:50", 50},
		{"star:50", 50},
		{"tree:31", 31},
		{"hypercube:5", 32},
	}
	for _, tc := range cases {
		g, err := FromSpec(tc.spec, 1)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if tc.n != 0 && g.NumNodes() != tc.n {
			t.Errorf("%s: n=%d, want %d", tc.spec, g.NumNodes(), tc.n)
		}
	}
}

func TestFromSpecDeterministic(t *testing.T) {
	a, err := FromSpec("rmat:8", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FromSpec("rmat:8", 7)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() ||
		a.AvgEdgeWeight() != b.AvgEdgeWeight() {
		t.Fatal("FromSpec not deterministic in (spec, seed)")
	}
}

// TestFromSpecRejectsBadInput: FromSpec is the untrusted-input boundary
// (the server's generate endpoint), so degenerate or oversized specs must
// return errors — the generator panics must be unreachable through it.
func TestFromSpecRejectsBadInput(t *testing.T) {
	bad := []string{
		"",                // unknown family
		"frob:9",          // unknown family
		"mesh",            // missing param
		"mesh:abc",        // non-numeric
		"mesh:0",          // below range
		"mesh:100000",     // would allocate 10^10 nodes
		"rmat:30",         // oversized
		"road:1",          // generator requires side >= 2
		"roads:4096:4096", // product over node cap
		"gnm:0:5",         // rng.Intn(0) panic without validation
		"gnm:10:-1",       // negative m
		"ba:10:10",        // needs m < n
		"ba:1:1",          // needs n >= 2
		"ws:10:3:0.1",     // odd k
		"ws:10:10:0.1",    // k >= n
		"ws:10:4:1.5",     // beta out of [0,1]
		"ws:10:4:x",       // non-numeric beta
		"ws:10:4",         // missing beta
		"path:-2",         // makeslice panic without validation
		"path:0",
		"hypercube:40", // 2^40 nodes
	}
	for _, spec := range bad {
		g, err := FromSpec(spec, 1)
		if err == nil {
			t.Errorf("%q: accepted (n=%d)", spec, g.NumNodes())
			continue
		}
		if !strings.HasPrefix(err.Error(), "gen:") {
			t.Errorf("%q: error %q lacks package prefix", spec, err)
		}
	}
}
