package gen

import (
	"testing"

	"graphdiam/internal/cc"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func TestBarabasiAlbert(t *testing.T) {
	r := rng.New(1)
	g := BarabasiAlbert(500, 3, r)
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !cc.IsConnected(g) {
		t.Fatal("BA graph must be connected")
	}
	// Edge count: clique on 4 nodes (6) + 496·3.
	want := 6 + 496*3
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	// Degree skew: hubs should exist.
	s := g.Stats()
	avg := 2 * float64(s.NumEdges) / float64(s.NumNodes)
	if float64(s.MaxDegree) < 4*avg {
		t.Fatalf("BA max degree %d not skewed vs avg %.1f", s.MaxDegree, avg)
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(3, 5, rng.New(2))
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("tiny BA should be K3: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 should panic")
		}
	}()
	BarabasiAlbert(10, 0, rng.New(1))
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, all degrees = k.
	g := WattsStrogatz(60, 4, 0, rng.New(3))
	for u := 0; u < 60; u++ {
		if g.Degree(graph.NodeID(u)) != 4 {
			t.Fatalf("lattice degree of %d = %d, want 4", u, g.Degree(graph.NodeID(u)))
		}
	}
	if !cc.IsConnected(g) {
		t.Fatal("lattice disconnected")
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	// Small-world effect: a little rewiring collapses the hop diameter.
	latticeHops := bfsDiameter(WattsStrogatz(200, 4, 0, rng.New(4)))
	rewiredHops := bfsDiameter(WattsStrogatz(200, 4, 0.3, rng.New(4)))
	if rewiredHops >= latticeHops {
		t.Fatalf("rewiring did not shrink diameter: %d vs %d", rewiredHops, latticeHops)
	}
}

// bfsDiameter is a small local helper (double sweep, good enough for tests).
func bfsDiameter(g *graph.Graph) int {
	far := bfsFarthest(g, 0)
	_, d := bfsEcc(g, far)
	return d
}

func bfsFarthest(g *graph.Graph, s graph.NodeID) graph.NodeID {
	f, _ := bfsEcc(g, s)
	return f
}

func bfsEcc(g *graph.Graph, s graph.NodeID) (graph.NodeID, int) {
	n := g.NumNodes()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	queue := []graph.NodeID{s}
	depth[s] = 0
	far, best := s, 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				if depth[v] > best {
					best, far = depth[v], v
				}
				queue = append(queue, v)
			}
		}
	}
	return far, best
}

func TestWattsStrogatzValidation(t *testing.T) {
	for _, f := range []func(){
		func() { WattsStrogatz(10, 3, 0, rng.New(1)) }, // odd k
		func() { WattsStrogatz(10, 0, 0, rng.New(1)) }, // k < 2
		func() { WattsStrogatz(4, 4, 0, rng.New(1)) },  // k >= n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomGeometric(t *testing.T) {
	r := rng.New(5)
	g := RandomGeometric(400, 0.12, r)
	if g.NumNodes() != 400 {
		t.Fatal("node count")
	}
	bad := false
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w <= 0 || w > 0.12 {
			bad = true
		}
	})
	if bad {
		t.Fatal("RGG edge weights must be distances within the radius")
	}
	// Grid bucketing must find the same edges as brute force would — spot
	// check density: expected degree ≈ nπr² ≈ 18.
	avg := 2 * float64(g.NumEdges()) / 400
	if avg < 8 || avg > 30 {
		t.Fatalf("RGG average degree %.1f implausible", avg)
	}
}

func TestRandomGeometricBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomGeometric(10, 0, rng.New(1))
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	if g.NumNodes() != 32 || g.NumEdges() != 32*5/2 {
		t.Fatalf("Q5 shape: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 32; u++ {
		if g.Degree(graph.NodeID(u)) != 5 {
			t.Fatal("hypercube degree wrong")
		}
	}
	// Diameter = dimension.
	if d := bfsDiameter(g); d != 5 {
		t.Fatalf("Q5 diameter = %d, want 5", d)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3)
	if g.NumNodes() != 40 || g.NumEdges() != 39 {
		t.Fatalf("caterpillar shape: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if !cc.IsConnected(g) {
		t.Fatal("caterpillar disconnected")
	}
	// Interior spine nodes: 2 spine edges + 3 legs.
	if g.Degree(5) != 5 {
		t.Fatalf("spine degree = %d, want 5", g.Degree(5))
	}
	if g.Degree(39) != 1 {
		t.Fatal("leaf degree wrong")
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(1<<13, 4, rng.New(uint64(i)))
	}
}

func BenchmarkRandomGeometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RandomGeometric(1<<13, 0.03, rng.New(uint64(i)))
	}
}
