// Package gen generates the benchmark graph families used in the paper's
// evaluation (Section 5, Table 1):
//
//   - mesh(S): an S×S square mesh, a bounded-doubling-dimension graph
//     (b = 2) for which Corollary 1 applies;
//   - R-MAT(S): 2^S nodes and 16·2^S edge samples with a power-law degree
//     distribution and small diameter (Chakrabarti, Zhan, Faloutsos 2004) —
//     the synthetic stand-in for social networks;
//   - roads(S): the cartesian product of a linear array of S nodes with a
//     base road network, used by the paper to scale road topologies;
//   - RoadNetwork: a synthetic near-planar road-network generator standing
//     in for the proprietary DIMACS roads-USA/roads-CAL inputs (see
//     DESIGN.md, substitutions);
//   - elementary families (paths, cycles, stars, cliques, binary trees,
//     G(n,m)) used by the test suites.
//
// All generators are deterministic given an *rng.RNG.
package gen

import (
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// Path returns the path graph 0-1-…-(n-1) with unit weights.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return b.Build()
}

// WeightedPath returns the path graph with the given edge weights
// (len(weights) = n-1 edges, n = len(weights)+1 nodes).
func WeightedPath(weights []float64) *graph.Graph {
	n := len(weights) + 1
	b := graph.NewBuilder(n, n-1)
	for i, w := range weights {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), w)
	}
	return b.Build()
}

// Cycle returns the n-cycle with unit weights (n >= 3).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 1)
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 unit-weight spokes.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i), 1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	return b.Build()
}

// BinaryTree returns a complete binary tree on n nodes with unit weights:
// node i has children 2i+1 and 2i+2.
func BinaryTree(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID((i-1)/2), graph.NodeID(i), 1)
	}
	return b.Build()
}

// Mesh returns the S×S square mesh with unit weights. Node (r,c) has ID
// r*S + c and is adjacent to its 4-neighbourhood. This is the paper's
// mesh(S): n = S², m = 2S(S−1), doubling dimension 2.
func Mesh(s int) *graph.Graph {
	n := s * s
	b := graph.NewBuilder(n, 2*s*(s-1))
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*s + c) }
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			if c+1 < s {
				b.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < s {
				b.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return b.Build()
}

// Torus returns the S×S torus (mesh with wraparound) with unit weights.
func Torus(s int) *graph.Graph {
	n := s * s
	b := graph.NewBuilder(n, 2*n)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*s + c) }
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%s), 1)
			b.AddEdge(id(r, c), id((r+1)%s, c), 1)
		}
	}
	return b.Build()
}

// GNM returns an Erdős–Rényi G(n, m) multigraph sample with unit weights.
// Self-loops are skipped and parallel samples collapse, so the realized
// edge count can be slightly below m.
func GNM(n, m int, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n, m)
	for i := 0; i < m; i++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u != v {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// CartesianProductPath returns the cartesian product of a linear array of
// s nodes with the base graph: s stacked copies of base, with unit-weight
// edges connecting corresponding nodes of consecutive copies. This is the
// paper's roads(S) construction (path_S × roads-USA).
func CartesianProductPath(base *graph.Graph, s int) *graph.Graph {
	nb := base.NumNodes()
	n := nb * s
	b := graph.NewBuilder(n, s*base.NumEdges()+(s-1)*nb)
	for layer := 0; layer < s; layer++ {
		off := graph.NodeID(layer * nb)
		base.ForEachEdge(func(u, v graph.NodeID, w float64) {
			b.AddEdge(off+u, off+v, w)
		})
		if layer+1 < s {
			for u := 0; u < nb; u++ {
				b.AddEdge(off+graph.NodeID(u), off+graph.NodeID(u+nb), 1)
			}
		}
	}
	return b.Build()
}
