package gen

import (
	"math"
	"testing"

	"graphdiam/internal/cc"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path shape: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("path degrees wrong")
	}
	if !cc.IsConnected(g) {
		t.Fatal("path disconnected")
	}
}

func TestWeightedPath(t *testing.T) {
	g := WeightedPath([]float64{3, 1, 4})
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatal("weighted path shape")
	}
	if w, _ := g.EdgeWeight(1, 2); w != 1 {
		t.Fatalf("edge (1,2) weight %v", w)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatal("cycle shape")
	}
	for u := graph.NodeID(0); u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("cycle degree of %d is %d", u, g.Degree(u))
		}
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(10)
	if s.Degree(0) != 9 || s.NumEdges() != 9 {
		t.Fatal("star shape")
	}
	k := Complete(6)
	if k.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d", k.NumEdges())
	}
	for u := graph.NodeID(0); u < 6; u++ {
		if k.Degree(u) != 5 {
			t.Fatal("K6 degree wrong")
		}
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15)
	if g.NumEdges() != 14 || !cc.IsConnected(g) {
		t.Fatal("binary tree shape")
	}
	if g.Degree(0) != 2 {
		t.Fatal("root degree wrong")
	}
}

func TestMesh(t *testing.T) {
	const s = 8
	g := Mesh(s)
	if g.NumNodes() != s*s {
		t.Fatalf("mesh nodes = %d, want %d", g.NumNodes(), s*s)
	}
	if g.NumEdges() != 2*s*(s-1) {
		t.Fatalf("mesh edges = %d, want %d (paper: m = 2S(S-1))", g.NumEdges(), 2*s*(s-1))
	}
	// Corners have degree 2, edges 3, interior 4.
	if g.Degree(0) != 2 {
		t.Fatal("corner degree wrong")
	}
	if g.Degree(1) != 3 {
		t.Fatal("border degree wrong")
	}
	if g.Degree(graph.NodeID(s+1)) != 4 {
		t.Fatal("interior degree wrong")
	}
	if !cc.IsConnected(g) {
		t.Fatal("mesh disconnected")
	}
}

func TestTorus(t *testing.T) {
	const s = 6
	g := Torus(s)
	if g.NumNodes() != s*s || g.NumEdges() != 2*s*s {
		t.Fatalf("torus shape: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < s*s; u++ {
		if g.Degree(graph.NodeID(u)) != 4 {
			t.Fatalf("torus degree of %d is %d", u, g.Degree(graph.NodeID(u)))
		}
	}
}

func TestGNM(t *testing.T) {
	r := rng.New(7)
	g := GNM(100, 400, r)
	if g.NumNodes() != 100 {
		t.Fatal("GNM node count")
	}
	if g.NumEdges() == 0 || g.NumEdges() > 400 {
		t.Fatalf("GNM edges = %d", g.NumEdges())
	}
}

func TestCartesianProductPath(t *testing.T) {
	base := Path(3) // 3 nodes, 2 edges
	g := CartesianProductPath(base, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("product nodes = %d, want 12", g.NumNodes())
	}
	// 4 copies × 2 edges + 3 inter-layer sets × 3 nodes = 8 + 9 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("product edges = %d, want 17", g.NumEdges())
	}
	if !cc.IsConnected(g) {
		t.Fatal("product disconnected")
	}
	// Corresponding nodes of consecutive layers are adjacent.
	if !g.HasEdge(0, 3) || !g.HasEdge(5, 8) {
		t.Fatal("inter-layer edges missing")
	}
	// Layer-internal edges replicate base weights.
	if w, ok := g.EdgeWeight(9, 10); !ok || w != 1 {
		t.Fatal("top-layer base edge missing")
	}
}

func TestCartesianProductDegenerate(t *testing.T) {
	base := Path(4)
	g := CartesianProductPath(base, 1)
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatal("s=1 product should equal base")
	}
}

func TestRMatShape(t *testing.T) {
	r := rng.New(3)
	const scale = 10
	g := RMatDefault(scale, r)
	if g.NumNodes() != 1<<scale {
		t.Fatalf("rmat nodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 16<<scale {
		t.Fatalf("rmat edges = %d", g.NumEdges())
	}
}

func TestRMatPowerLawish(t *testing.T) {
	// The R-MAT degree distribution must be heavily skewed: the maximum
	// degree should far exceed the average degree, unlike G(n,m).
	r := rng.New(5)
	g := RMatDefault(12, r)
	s := g.Stats()
	avg := 2 * float64(s.NumEdges) / float64(s.NumNodes)
	if float64(s.MaxDegree) < 8*avg {
		t.Fatalf("rmat max degree %d not skewed vs avg %.1f", s.MaxDegree, avg)
	}
}

func TestRMatDeterminism(t *testing.T) {
	a := RMatDefault(8, rng.New(9))
	b := RMatDefault(8, rng.New(9))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRoadNetwork(t *testing.T) {
	r := rng.New(11)
	g := RoadNetwork(DefaultRoadNetworkOptions(40), r)
	if !cc.IsConnected(g) {
		t.Fatal("road network must be its largest connected component")
	}
	s := g.Stats()
	if s.MaxDegree > 4 {
		t.Fatalf("road network degree %d > 4", s.MaxDegree)
	}
	if s.NumNodes < 40*40/2 {
		t.Fatalf("road network lost too many nodes: %d", s.NumNodes)
	}
	// Integral weights >= 1.
	bad := false
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w < 1 || w != math.Trunc(w) {
			bad = true
		}
	})
	if bad {
		t.Fatal("road weights must be positive integers")
	}
}

func TestRoadNetworkPanicsOnTinySide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for side < 2")
		}
	}()
	RoadNetwork(DefaultRoadNetworkOptions(1), rng.New(1))
}

func TestRoads(t *testing.T) {
	r := rng.New(13)
	g := Roads(3, 16, r)
	if !cc.IsConnected(g) {
		t.Fatal("roads(S) disconnected")
	}
	base := RoadNetwork(DefaultRoadNetworkOptions(16), rng.New(13))
	if g.NumNodes() != 3*base.NumNodes() {
		t.Fatalf("roads(3) nodes = %d, want %d", g.NumNodes(), 3*base.NumNodes())
	}
}

func TestUniformWeights(t *testing.T) {
	g := UniformWeights(Mesh(6), rng.New(1))
	ok := true
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w <= 0 || w > 1 {
			ok = false
		}
	})
	if !ok {
		t.Fatal("uniform weights outside (0,1]")
	}
	if g.NumEdges() != Mesh(6).NumEdges() {
		t.Fatal("reweighting changed topology")
	}
}

func TestIntegralUniformWeights(t *testing.T) {
	g := IntegralUniformWeights(Cycle(20), 10, rng.New(2))
	ok := true
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w < 1 || w > 10 || w != math.Trunc(w) {
			ok = false
		}
	})
	if !ok {
		t.Fatal("integral weights out of range")
	}
}

func TestBimodalWeights(t *testing.T) {
	g := BimodalWeights(Mesh(20), 1e-6, 1, 0.1, rng.New(3))
	heavy, light := 0, 0
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		switch w {
		case 1:
			heavy++
		case 1e-6:
			light++
		default:
			t.Fatalf("unexpected weight %v", w)
		}
	})
	total := heavy + light
	frac := float64(heavy) / float64(total)
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("heavy fraction %.3f, want ~0.1", frac)
	}
}

func TestExponentialWeights(t *testing.T) {
	g := ExponentialWeights(Cycle(50), 2.0, rng.New(4))
	sum := 0.0
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
		sum += w
	})
	mean := sum / float64(g.NumEdges())
	if mean < 0.5 || mean > 8 {
		t.Fatalf("exp weights mean %v implausible for scale 2", mean)
	}
}

func BenchmarkMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mesh(128)
	}
}

func BenchmarkRMat16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMatDefault(14, rng.New(uint64(i)))
	}
}

func BenchmarkRoadNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RoadNetwork(DefaultRoadNetworkOptions(64), rng.New(uint64(i)))
	}
}
