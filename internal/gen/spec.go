package gen

import (
	"fmt"
	"strconv"
	"strings"

	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// Spec size caps. FromSpec is reachable from untrusted input (the
// graphdiamd /v1/graphs endpoint), so every family bounds the graph it is
// asked to build: the generators themselves panic on misuse, which is fine
// for library callers but must surface as an error at this boundary.
const (
	maxSpecNodes = 1 << 24 // 16M nodes
	maxSpecEdges = 1 << 26 // 64M edge samples (gnm, rmat)
)

// FromSpec builds a graph from a compact generator spec of the form
// "family:param[:param...]" with uniform (0,1] weights where the family is
// born unweighted:
//
//	mesh:256          256×256 mesh
//	rmat:16           R-MAT(16)
//	road:128          synthetic road network, 128×128 lattice
//	roads:4:64        roads-product, 4 layers over a 64-lattice base
//	gnm:10000:80000   Erdős–Rényi G(n,m)
//	ba:10000:4        Barabási–Albert, 4 edges per new node
//	ws:10000:8:0.1    Watts–Strogatz, k=8 β=0.1
//	path:1000         unit path
//	cycle:1000        unit cycle
//	star:1000         unit star
//	tree:1023         complete-ish binary tree
//	torus:64          64×64 torus
//	hypercube:12      12-dimensional hypercube
//
// The seed drives both topology and weights. Specs are the wire format of
// the /v1/graphs generate endpoint as well as the -spec CLI flag, so runs
// are reproducible from the (spec, seed) pair alone. Parameters are
// validated — malformed or oversized specs return an error, never panic.
func FromSpec(spec string, seed uint64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	r := rng.New(seed)
	bad := func(format string, args ...any) error {
		return fmt.Errorf("gen: spec %q: %s", spec, fmt.Sprintf(format, args...))
	}
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, bad("missing parameter %d", i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, bad("parameter %d: %v", i, err)
		}
		return v, nil
	}
	// intIn parses parameter i and range-checks it.
	intIn := func(i, lo, hi int, what string) (int, error) {
		v, err := atoi(i)
		if err != nil {
			return 0, err
		}
		if v < lo || v > hi {
			return 0, bad("%s %d out of range [%d, %d]", what, v, lo, hi)
		}
		return v, nil
	}
	switch parts[0] {
	case "mesh":
		s, err := intIn(1, 1, 4096, "side")
		if err != nil {
			return nil, err
		}
		return UniformWeights(Mesh(s), r), nil
	case "torus":
		s, err := intIn(1, 1, 4096, "side")
		if err != nil {
			return nil, err
		}
		return UniformWeights(Torus(s), r), nil
	case "rmat":
		s, err := intIn(1, 1, 22, "scale")
		if err != nil {
			return nil, err
		}
		return UniformWeights(RMatDefault(s, r), r), nil
	case "road":
		s, err := intIn(1, 2, 4096, "side")
		if err != nil {
			return nil, err
		}
		return RoadNetwork(DefaultRoadNetworkOptions(s), r), nil
	case "roads":
		layers, err := intIn(1, 1, 4096, "layers")
		if err != nil {
			return nil, err
		}
		side, err := intIn(2, 2, 4096, "side")
		if err != nil {
			return nil, err
		}
		if layers*side*side > maxSpecNodes {
			return nil, bad("%d layers × %d² exceeds %d nodes", layers, side, maxSpecNodes)
		}
		return Roads(layers, side, r), nil
	case "gnm":
		n, err := intIn(1, 1, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		m, err := intIn(2, 0, maxSpecEdges, "m")
		if err != nil {
			return nil, err
		}
		return UniformWeights(GNM(n, m, r), r), nil
	case "ba":
		n, err := intIn(1, 2, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		m, err := intIn(2, 1, n-1, "m")
		if err != nil {
			return nil, err
		}
		return UniformWeights(BarabasiAlbert(n, m, r), r), nil
	case "ws":
		n, err := intIn(1, 3, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		k, err := intIn(2, 2, n-1, "k")
		if err != nil {
			return nil, err
		}
		if k%2 != 0 {
			return nil, bad("k %d must be even", k)
		}
		if len(parts) <= 3 {
			return nil, bad("missing parameter 3")
		}
		beta, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, bad("parameter 3: %v", err)
		}
		if beta < 0 || beta > 1 {
			return nil, bad("beta %g out of range [0, 1]", beta)
		}
		return UniformWeights(WattsStrogatz(n, k, beta, r), r), nil
	case "path":
		n, err := intIn(1, 1, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		return Path(n), nil
	case "cycle":
		n, err := intIn(1, 1, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		return Cycle(n), nil
	case "star":
		n, err := intIn(1, 1, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		return Star(n), nil
	case "tree":
		n, err := intIn(1, 1, maxSpecNodes, "n")
		if err != nil {
			return nil, err
		}
		return BinaryTree(n), nil
	case "hypercube":
		d, err := intIn(1, 0, 20, "dimension")
		if err != nil {
			return nil, err
		}
		return UniformWeights(Hypercube(d), r), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q in spec %q", parts[0], spec)
	}
}
