package gen

import (
	"math"

	"graphdiam/internal/cc"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// RoadNetworkOptions configures the synthetic road-network generator.
type RoadNetworkOptions struct {
	// Side is the side length of the underlying lattice; the raw graph has
	// Side² candidate intersections.
	Side int
	// DeleteProb is the probability that a lattice edge is absent,
	// producing the irregular, sparse connectivity of real road networks.
	DeleteProb float64
	// Jitter is the positional perturbation of each intersection within its
	// unit cell, in [0, 0.5); edge weights are rounded Euclidean lengths.
	Jitter float64
	// WeightScale multiplies Euclidean lengths before rounding up to an
	// integer, matching the integral weights of the DIMACS road inputs.
	WeightScale float64
}

// DefaultRoadNetworkOptions mirror the qualitative properties of the DIMACS
// roads inputs: ~20% missing segments, noticeable jitter, integral weights.
func DefaultRoadNetworkOptions(side int) RoadNetworkOptions {
	return RoadNetworkOptions{Side: side, DeleteProb: 0.2, Jitter: 0.3, WeightScale: 1000}
}

// RoadNetwork generates a synthetic road network: a jittered Side×Side
// lattice with random edge deletions, restricted to its largest connected
// component, with positive integral weights proportional to Euclidean edge
// lengths. It stands in for the proprietary DIMACS roads-USA / roads-CAL
// benchmarks: near-planar, max degree 4, large weighted and unweighted
// diameter. See DESIGN.md ("Substitutions").
func RoadNetwork(opt RoadNetworkOptions, r *rng.RNG) *graph.Graph {
	s := opt.Side
	if s < 2 {
		panic("gen: RoadNetwork side must be >= 2")
	}
	// Jittered coordinates of each intersection.
	xs := make([]float64, s*s)
	ys := make([]float64, s*s)
	for row := 0; row < s; row++ {
		for col := 0; col < s; col++ {
			i := row*s + col
			xs[i] = float64(col) + (r.Float64()*2-1)*opt.Jitter
			ys[i] = float64(row) + (r.Float64()*2-1)*opt.Jitter
		}
	}
	weight := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		w := math.Ceil(math.Hypot(dx, dy) * opt.WeightScale)
		if w < 1 {
			w = 1
		}
		return w
	}
	b := graph.NewBuilder(s*s, 2*s*(s-1))
	for row := 0; row < s; row++ {
		for col := 0; col < s; col++ {
			i := row*s + col
			if col+1 < s && !r.Bernoulli(opt.DeleteProb) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), weight(i, i+1))
			}
			if row+1 < s && !r.Bernoulli(opt.DeleteProb) {
				b.AddEdge(graph.NodeID(i), graph.NodeID(i+s), weight(i, i+s))
			}
		}
	}
	g, _ := cc.LargestComponent(b.Build())
	return g
}

// Roads builds the paper's roads(S) family: the cartesian product of a
// linear array of S nodes with a base synthetic road network of the given
// lattice side. Inter-layer edges have unit weight, as in the paper.
func Roads(s, baseSide int, r *rng.RNG) *graph.Graph {
	base := RoadNetwork(DefaultRoadNetworkOptions(baseSide), r)
	if s <= 1 {
		return base
	}
	return CartesianProductPath(base, s)
}
