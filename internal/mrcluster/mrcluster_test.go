package mrcluster

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
)

// mustCoreCluster adapts the cancellable BSP API for comparison tests; a
// background context cannot produce an error.
func mustCoreCluster(t testing.TB, g *graph.Graph, o core.Options) *core.Clustering {
	t.Helper()
	cl, err := core.Cluster(context.Background(), g, o)
	if err != nil {
		t.Fatalf("core.Cluster: %v", err)
	}
	return cl
}

func TestMatchesBSPImplementation(t *testing.T) {
	// The heart of this package: the MR-model implementation and the BSP
	// implementation must produce the identical clustering for identical
	// (graph, τ, seed).
	r := rng.New(61)
	graphs := map[string]*graph.Graph{
		"mesh": gen.UniformWeights(gen.Mesh(12), r),
		"gnm":  gen.UniformWeights(gen.GNM(200, 600, r), r),
		"road": gen.RoadNetwork(gen.DefaultRoadNetworkOptions(14), r),
		"path": gen.Path(100),
	}
	for name, g := range graphs {
		for _, tau := range []int{2, 8, 32} {
			bspCl := mustCoreCluster(t, g, core.Options{Tau: tau, Seed: 5})
			mrCl := Cluster(g, Options{Tau: tau, Seed: 5, Workers: 2})
			if bspCl.Radius != mrCl.Radius {
				t.Fatalf("%s τ=%d: radius %v vs %v", name, tau, bspCl.Radius, mrCl.Radius)
			}
			for u := range mrCl.Center {
				if bspCl.Center[u] != mrCl.Center[u] {
					t.Fatalf("%s τ=%d node %d: center %d vs %d",
						name, tau, u, bspCl.Center[u], mrCl.Center[u])
				}
				if bspCl.Dist[u] != mrCl.Dist[u] {
					t.Fatalf("%s τ=%d node %d: dist %v vs %v",
						name, tau, u, bspCl.Dist[u], mrCl.Dist[u])
				}
			}
			if bspCl.Stages != mrCl.Stages {
				t.Fatalf("%s τ=%d: stages %d vs %d", name, tau, bspCl.Stages, mrCl.Stages)
			}
		}
	}
}

func TestMatchesBSPProperty(t *testing.T) {
	check := func(seed uint64, tauRaw uint8) bool {
		r := rng.New(seed)
		g := gen.UniformWeights(gen.GNM(60, 180, r), r)
		tau := int(tauRaw)%12 + 1
		a := mustCoreCluster(t, g, core.Options{Tau: tau, Seed: seed})
		b := Cluster(g, Options{Tau: tau, Seed: seed})
		for u := range b.Center {
			if a.Center[u] != b.Center[u] || a.Dist[u] != b.Dist[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoversEverythingWithValidDistances(t *testing.T) {
	r := rng.New(62)
	g := gen.UniformWeights(gen.Mesh(10), r)
	res := Cluster(g, Options{Tau: 4, Seed: 2})
	for u := range res.Center {
		if res.Center[u] < 0 {
			t.Fatalf("node %d uncovered", u)
		}
		if math.IsInf(res.Dist[u], 1) || res.Dist[u] < 0 {
			t.Fatalf("node %d dist %v", u, res.Dist[u])
		}
	}
	// Dist must upper-bound the true distance to the assigned center.
	centers := map[int32]bool{}
	for _, c := range res.Center {
		centers[c] = true
	}
	for c := range centers {
		dist := sssp.Dijkstra(g, graph.NodeID(c))
		for u := range res.Center {
			if res.Center[u] == c && res.Dist[u]+1e-9 < dist[u] {
				t.Fatalf("node %d: dist %v below true %v", u, res.Dist[u], dist[u])
			}
		}
	}
}

func TestMRRoundAccounting(t *testing.T) {
	r := rng.New(63)
	g := gen.UniformWeights(gen.Mesh(8), r)
	res := Cluster(g, Options{Tau: 4, Seed: 1, Workers: 2})
	if res.Engine.Rounds() < 1 {
		t.Fatal("no MR rounds recorded")
	}
	if res.Engine.MaxReducerLoad() < 1 {
		t.Fatal("no reducer load recorded")
	}
}

func TestEmptyGraph(t *testing.T) {
	res := Cluster(graph.NewBuilder(0, 0).Build(), Options{Tau: 1})
	if len(res.Center) != 0 || res.Radius != 0 {
		t.Fatal("empty graph clustering not empty")
	}
}

func TestSingletonRegime(t *testing.T) {
	g := gen.Path(5)
	res := Cluster(g, Options{Tau: 100, Seed: 1})
	for u := range res.Center {
		if res.Center[u] != int32(u) || res.Dist[u] != 0 {
			t.Fatalf("node %d not a singleton: center %d dist %v", u, res.Center[u], res.Dist[u])
		}
	}
}

func BenchmarkMRCluster(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(24), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, Options{Tau: 16, Seed: uint64(i), Workers: 4})
	}
}
