// Package mrcluster implements CLUSTER(G, τ) (Algorithm 1 of the paper)
// directly on the rigorous MR(M_T, M_L) model of internal/mr, with every
// Δ-growing step executed as a key-value MapReduce round exactly as the
// paper's Section 4.1 describes ("a Δ-growing step … can be implemented
// through a constant number of simple prefix and sorting operations" —
// here one reduce-by-target-node round per step).
//
// It exists as an independent second implementation of the decomposition:
// the test suite verifies that, for identical (graph, τ, seed), it produces
// the *same clustering, bit for bit,* as the high-throughput BSP
// implementation in internal/core. Any divergence between the two
// implementations flags a bug in one of them.
package mrcluster

import (
	"math"

	"graphdiam/internal/graph"
	"graphdiam/internal/mr"
	"graphdiam/internal/rng"
)

// Options mirrors the practical-mode knobs of core.Options that affect the
// produced clustering (theory mode and step caps are exercised through the
// BSP implementation; this reference covers the default path).
type Options struct {
	Tau  int
	Seed uint64
	// InitialDelta <= 0 selects the average edge weight (the paper's
	// practical default).
	InitialDelta float64
	// Workers is the reduce-phase parallelism of the MR engine.
	Workers int
	// LocalMemory is the M_L accounting bound passed to the engine
	// (0 disables the check).
	LocalMemory int
}

// Result is the decomposition plus the MR-model accounting.
type Result struct {
	Center []int32
	Dist   []float64
	Radius float64
	Stages int
	Engine *mr.Engine
}

// state is the (c_u, d_u) pair of the paper plus the cumulative center
// distance, exactly as in the BSP implementation.
type state struct {
	center int32
	sd     float64 // stage potential (compared against Δ)
	td     float64 // realized path weight from the center
}

// candidate messages carry proposed states to a target node.
type candidate struct {
	center int32
	sd     float64
	td     float64
}

// hash01 must agree with internal/core's selection hash so both
// implementations pick identical centers.
func hash01(seed uint64, stage int, node int) float64 {
	x := seed ^ (uint64(stage)+1)*0x9e3779b97f4a7c15 ^ (uint64(node)+1)*0xbf58476d1ce4e5b9
	sm := rng.NewSplitMix64(x)
	return float64(sm.Next()>>11) / (1 << 53)
}

// Cluster runs the decomposition. See the package comment.
func Cluster(g *graph.Graph, o Options) *Result {
	n := g.NumNodes()
	e := mr.NewEngine(max(o.Workers, 1), o.LocalMemory)
	res := &Result{
		Center: make([]int32, n),
		Dist:   make([]float64, n),
		Engine: e,
	}
	if n == 0 {
		return res
	}
	if o.Tau <= 0 {
		o.Tau = 1
	}

	covered := make([]int32, n) // stage of coverage, -1 uncovered
	sd := make([]float64, n)
	td := make([]float64, n)
	center := make([]int32, n)
	for i := 0; i < n; i++ {
		covered[i] = -1
		center[i] = -1
		sd[i] = math.Inf(1)
		td[i] = math.Inf(1)
	}

	delta := o.InitialDelta
	if delta <= 0 {
		delta = g.AvgEdgeWeight()
		if delta <= 0 {
			delta = 1
		}
	}
	deltaFutile := g.MaxEdgeWeight() * float64(n)
	if deltaFutile <= 0 {
		deltaFutile = 1
	}

	uncovered := n
	stage := 0
	for uncovered >= o.Tau && uncovered > 0 {
		// Center selection (one map round in the model; the engine charges
		// rounds only for shuffles, so we fold it into the first grow round
		// as the paper folds constant factors).
		p := float64(o.Tau) / float64(uncovered)
		newCenters := 0
		for u := 0; u < n; u++ {
			if covered[u] >= 0 {
				continue
			}
			if hash01(o.Seed, stage, u) < p {
				center[u] = int32(u)
				sd[u] = 0
				td[u] = 0
				covered[u] = int32(stage)
				newCenters++
			}
		}
		if newCenters == 0 {
			// Deterministic fallback: smallest hash among uncovered.
			best, bestU := 2.0, -1
			for u := 0; u < n; u++ {
				if covered[u] >= 0 {
					continue
				}
				if h := hash01(o.Seed, stage, u); h < best {
					best, bestU = h, u
				}
			}
			if bestU >= 0 {
				center[bestU] = int32(bestU)
				sd[bestU] = 0
				td[bestU] = 0
				covered[bestU] = int32(stage)
				newCenters = 1
			}
		}
		// Contract: earlier-stage nodes become zero-potential proxies.
		for u := 0; u < n; u++ {
			switch {
			case covered[u] < 0:
				sd[u] = math.Inf(1)
			case covered[u] == int32(stage):
				// fresh center, sd already 0
			default:
				sd[u] = 0
			}
		}

		reached := newCenters
		half := float64(uncovered) / 2
		// Frontier: all nodes with finite potential (reseed).
		frontier := make([]int, 0, n)
		for u := 0; u < n; u++ {
			if !math.IsInf(sd[u], 1) {
				frontier = append(frontier, u)
			}
		}
		for {
			fixpoint := false
			for {
				changed, newly, next := growRoundMR(g, e, frontier, covered, center, sd, td, delta, stage)
				frontier = next
				reached += newly
				if float64(reached) >= half {
					break
				}
				if !changed {
					fixpoint = true
					break
				}
			}
			if float64(reached) >= half {
				break
			}
			if fixpoint && delta >= deltaFutile {
				break
			}
			delta *= 2
			frontier = frontier[:0]
			for u := 0; u < n; u++ {
				if !math.IsInf(sd[u], 1) {
					frontier = append(frontier, u)
				}
			}
		}
		// Assign reached nodes.
		for u := 0; u < n; u++ {
			if covered[u] < 0 && !math.IsInf(sd[u], 1) {
				covered[u] = int32(stage)
				uncovered--
			}
		}
		uncovered -= newCenters
		stage++
	}
	// Singleton tail.
	if uncovered > 0 {
		for u := 0; u < n; u++ {
			if covered[u] < 0 {
				center[u] = int32(u)
				sd[u] = 0
				td[u] = 0
				covered[u] = int32(stage)
			}
		}
		stage++
	}

	copy(res.Center, center)
	copy(res.Dist, td)
	for u := 0; u < n; u++ {
		if res.Dist[u] > res.Radius {
			res.Radius = res.Dist[u]
		}
	}
	res.Stages = stage
	return res
}

// growRoundMR executes one Δ-growing step as a single MR round: frontier
// nodes emit candidate pairs keyed by target node; the per-node reducer
// takes the lexicographic minimum (distance, center) — the paper's
// tie-break — and the driver applies accepted candidates.
func growRoundMR(g *graph.Graph, e *mr.Engine, frontier []int,
	covered, center []int32, sd, td []float64, delta float64, stage int,
) (changed bool, newly int, next []int) {
	var msgs []mr.Pair[candidate]
	for _, u := range frontier {
		du := sd[u]
		if du >= delta {
			continue
		}
		cu := center[u]
		tu := td[u]
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			cand := du + ws[i]
			if cand > delta {
				continue
			}
			cs := covered[v]
			if cs >= 0 && cs < int32(stage) {
				continue // contracted away
			}
			msgs = append(msgs, mr.Pair[candidate]{
				Key:   uint64(v),
				Value: candidate{cu, cand, tu + ws[i]},
			})
		}
	}
	if len(msgs) == 0 {
		return false, 0, nil
	}
	out := mr.Round(e, msgs, func(k uint64, vs []candidate, emit func(uint64, candidate)) {
		best := vs[0]
		for _, c := range vs[1:] {
			if c.sd < best.sd || (c.sd == best.sd && c.center < best.center) {
				best = c
			}
		}
		v := int(k)
		if best.sd < sd[v] || (best.sd == sd[v] && center[v] >= 0 && best.center < center[v]) {
			emit(k, best)
		}
	})
	for _, p := range out {
		v := int(p.Key)
		c := p.Value
		// Re-check: the reducer saw a consistent snapshot, but apply is
		// still guarded for clarity (single-threaded driver).
		if c.sd > sd[v] || (c.sd == sd[v] && center[v] >= 0 && c.center >= center[v]) {
			continue
		}
		if math.IsInf(sd[v], 1) {
			newly++
		}
		sd[v] = c.sd
		td[v] = c.td
		center[v] = c.center
		changed = true
		next = append(next, v)
	}
	return changed, newly, next
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
