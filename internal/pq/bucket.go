package pq

// BucketQueue is the cyclic bucket structure used by Δ-stepping
// (Meyer & Sanders, J. Algorithms 2003). Item i with tentative distance d
// lives in bucket floor(d/Δ) mod numBuckets. Because Δ-stepping settles
// buckets in increasing order and no edge relaxation can move an item more
// than maxWeight/Δ buckets ahead, a cyclic array of
// ceil(maxWeight/Δ)+1 buckets suffices.
//
// The queue stores each item at most once and supports moving an item
// between buckets when its tentative distance decreases.
type BucketQueue struct {
	delta   float64
	buckets [][]int32 // cyclic array of buckets holding item IDs
	where   []int32   // where[id] = absolute bucket index, or -1
	slot    []int32   // slot[id] = index within its bucket
	size    int
	lowest  int // absolute index of the lowest non-empty bucket candidate
}

// NewBucketQueue returns a bucket queue with bucket width delta for item IDs
// in [0, n). numBuckets must exceed maxEdgeWeight/delta; the constructor
// takes it directly so callers can size it from graph statistics.
func NewBucketQueue(n int, delta float64, numBuckets int) *BucketQueue {
	if delta <= 0 {
		panic("pq: BucketQueue delta must be positive")
	}
	if numBuckets < 1 {
		numBuckets = 1
	}
	q := &BucketQueue{
		delta:   delta,
		buckets: make([][]int32, numBuckets),
		where:   make([]int32, n),
		slot:    make([]int32, n),
	}
	for i := range q.where {
		q.where[i] = -1
	}
	return q
}

// Delta returns the bucket width.
func (q *BucketQueue) Delta() float64 { return q.delta }

// Len reports the number of queued items.
func (q *BucketQueue) Len() int { return q.size }

// BucketIndex returns the absolute bucket index for distance d.
func (q *BucketQueue) BucketIndex(d float64) int {
	return int(d / q.delta)
}

// Update places id into the bucket for distance d, moving it from its
// current bucket if queued. Callers must only decrease distances.
func (q *BucketQueue) Update(id int, d float64) {
	b := q.BucketIndex(d)
	if q.where[id] == int32(b) {
		return
	}
	if q.where[id] >= 0 {
		q.removeFrom(id)
	}
	q.insertInto(id, b)
	if q.size == 1 || b < q.lowest {
		q.lowest = b
	}
}

// Remove deletes id from the queue if present.
func (q *BucketQueue) Remove(id int) {
	if q.where[id] >= 0 {
		q.removeFrom(id)
	}
}

// Contains reports whether id is queued.
func (q *BucketQueue) Contains(id int) bool { return q.where[id] >= 0 }

// NextBucket advances to and returns the absolute index of the lowest
// non-empty bucket, or -1 if the queue is empty.
func (q *BucketQueue) NextBucket() int {
	if q.size == 0 {
		return -1
	}
	for q.len(q.lowest) == 0 {
		q.lowest++
	}
	return q.lowest
}

// DrainBucket removes every item from absolute bucket b and appends the IDs
// to dst, returning the extended slice.
func (q *BucketQueue) DrainBucket(b int, dst []int32) []int32 {
	bucket := q.buckets[b%len(q.buckets)]
	for _, id := range bucket {
		q.where[id] = -1
	}
	dst = append(dst, bucket...)
	q.size -= len(bucket)
	q.buckets[b%len(q.buckets)] = bucket[:0]
	return dst
}

func (q *BucketQueue) len(b int) int { return len(q.buckets[b%len(q.buckets)]) }

func (q *BucketQueue) insertInto(id, b int) {
	idx := b % len(q.buckets)
	q.slot[id] = int32(len(q.buckets[idx]))
	q.buckets[idx] = append(q.buckets[idx], int32(id))
	q.where[id] = int32(b)
	q.size++
}

func (q *BucketQueue) removeFrom(id int) {
	idx := int(q.where[id]) % len(q.buckets)
	bucket := q.buckets[idx]
	s := q.slot[id]
	last := len(bucket) - 1
	bucket[s] = bucket[last]
	q.slot[bucket[s]] = s
	q.buckets[idx] = bucket[:last]
	q.where[id] = -1
	q.size--
}
