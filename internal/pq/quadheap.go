package pq

// QuadHeap is an indexed 4-ary min-heap. It has the same interface as
// IndexedHeap but a shallower tree, which is measurably faster for
// Dijkstra on sparse graphs where DecreaseKey dominates (sift-up is cheaper
// and sift-down touches fewer cache lines per level).
type QuadHeap struct {
	items []int32
	prio  []float64
	pos   []int32
}

// NewQuadHeap returns an empty 4-ary heap for IDs in [0, n).
func NewQuadHeap(n int) *QuadHeap {
	h := &QuadHeap{
		items: make([]int32, 0, 64),
		prio:  make([]float64, n),
		pos:   make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *QuadHeap) Len() int { return len(h.items) }

// Contains reports whether id is currently in the heap.
func (h *QuadHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Priority returns the last priority assigned to id.
func (h *QuadHeap) Priority(id int) float64 { return h.prio[id] }

// Push inserts id with priority p, or lowers its priority if already present
// and p is smaller.
func (h *QuadHeap) Push(id int, p float64) {
	if h.pos[id] >= 0 {
		if p < h.prio[id] {
			h.prio[id] = p
			h.siftUp(int(h.pos[id]))
		}
		return
	}
	h.prio[id] = p
	h.pos[id] = int32(len(h.items))
	h.items = append(h.items, int32(id))
	h.siftUp(len(h.items) - 1)
}

// DecreaseKey lowers the priority of id to p (no-op if absent or not lower).
func (h *QuadHeap) DecreaseKey(id int, p float64) {
	if h.pos[id] < 0 || p >= h.prio[id] {
		return
	}
	h.prio[id] = p
	h.siftUp(int(h.pos[id]))
}

// Pop removes and returns the minimum item. Panics if empty.
func (h *QuadHeap) Pop() (id int, p float64) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return int(top), h.prio[top]
}

// Reset empties the heap, retaining capacity.
func (h *QuadHeap) Reset() {
	for _, id := range h.items {
		h.pos[id] = -1
	}
	h.items = h.items[:0]
}

func (h *QuadHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *QuadHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if h.prio[h.items[i]] >= h.prio[h.items[parent]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *QuadHeap) siftDown(i int) {
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.prio[h.items[c]] < h.prio[h.items[smallest]] {
				smallest = c
			}
		}
		if h.prio[h.items[smallest]] >= h.prio[h.items[i]] {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
