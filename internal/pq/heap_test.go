package pq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"graphdiam/internal/rng"
)

// minHeap abstracts the two indexed heaps so their tests are shared.
type minHeap interface {
	Push(id int, p float64)
	DecreaseKey(id int, p float64)
	Pop() (int, float64)
	Len() int
	Contains(id int) bool
	Priority(id int) float64
	Reset()
}

func heaps(n int) map[string]minHeap {
	return map[string]minHeap{
		"binary": NewIndexedHeap(n),
		"quad":   NewQuadHeap(n),
	}
}

func TestHeapPopOrder(t *testing.T) {
	for name, h := range heaps(100) {
		t.Run(name, func(t *testing.T) {
			r := rng.New(17)
			want := make([]float64, 0, 100)
			for i := 0; i < 100; i++ {
				p := r.Float64()
				h.Push(i, p)
				want = append(want, p)
			}
			sort.Float64s(want)
			for i := 0; i < 100; i++ {
				_, p := h.Pop()
				if p != want[i] {
					t.Fatalf("pop %d: got prio %v, want %v", i, p, want[i])
				}
			}
			if h.Len() != 0 {
				t.Fatalf("heap not empty after draining: len=%d", h.Len())
			}
		})
	}
}

func TestHeapDecreaseKey(t *testing.T) {
	for name, h := range heaps(10) {
		t.Run(name, func(t *testing.T) {
			h.Push(0, 5)
			h.Push(1, 3)
			h.Push(2, 9)
			h.DecreaseKey(2, 1)
			id, p := h.Pop()
			if id != 2 || p != 1 {
				t.Fatalf("got (%d,%v), want (2,1)", id, p)
			}
			// Increase attempts are ignored.
			h.DecreaseKey(1, 100)
			id, p = h.Pop()
			if id != 1 || p != 3 {
				t.Fatalf("got (%d,%v), want (1,3)", id, p)
			}
		})
	}
}

func TestHeapPushExistingActsAsDecrease(t *testing.T) {
	for name, h := range heaps(4) {
		t.Run(name, func(t *testing.T) {
			h.Push(3, 10)
			h.Push(3, 4) // decrease
			h.Push(3, 7) // ignored
			if h.Len() != 1 {
				t.Fatalf("duplicate push grew heap: len=%d", h.Len())
			}
			id, p := h.Pop()
			if id != 3 || p != 4 {
				t.Fatalf("got (%d,%v), want (3,4)", id, p)
			}
		})
	}
}

func TestHeapContainsAndReset(t *testing.T) {
	for name, h := range heaps(8) {
		t.Run(name, func(t *testing.T) {
			h.Push(5, 1)
			h.Push(6, 2)
			if !h.Contains(5) || !h.Contains(6) || h.Contains(7) {
				t.Fatal("Contains mismatch after pushes")
			}
			h.Pop()
			if h.Contains(5) {
				t.Fatal("popped item still reported present")
			}
			h.Reset()
			if h.Len() != 0 || h.Contains(6) {
				t.Fatal("Reset did not clear the heap")
			}
			// Heap is reusable after Reset.
			h.Push(1, 9)
			if id, p := h.Pop(); id != 1 || p != 9 {
				t.Fatalf("heap unusable after Reset: got (%d,%v)", id, p)
			}
		})
	}
}

// Property: for any sequence of pushes and decreases, popping drains items in
// nondecreasing priority order and each ID appears at most once.
func TestHeapPropertySortedDrain(t *testing.T) {
	for name := range heaps(1) {
		name := name
		t.Run(name, func(t *testing.T) {
			check := func(seed uint64, nOps uint16) bool {
				n := 256
				var h minHeap
				if name == "binary" {
					h = NewIndexedHeap(n)
				} else {
					h = NewQuadHeap(n)
				}
				r := rng.New(seed)
				ops := int(nOps)%500 + 1
				for i := 0; i < ops; i++ {
					id := r.Intn(n)
					p := r.Float64()
					if r.Bernoulli(0.3) && h.Contains(id) {
						h.DecreaseKey(id, h.Priority(id)*p)
					} else {
						h.Push(id, p)
					}
				}
				prev := math.Inf(-1)
				seen := make(map[int]bool)
				for h.Len() > 0 {
					id, p := h.Pop()
					if p < prev || seen[id] {
						return false
					}
					seen[id] = true
					prev = p
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func BenchmarkBinaryHeapDijkstraPattern(b *testing.B) {
	benchHeapPattern(b, func(n int) minHeap { return NewIndexedHeap(n) })
}

func BenchmarkQuadHeapDijkstraPattern(b *testing.B) {
	benchHeapPattern(b, func(n int) minHeap { return NewQuadHeap(n) })
}

// benchHeapPattern simulates the push/decrease/pop mix Dijkstra produces on
// a sparse graph (≈2 decreases per pop).
func benchHeapPattern(b *testing.B, mk func(int) minHeap) {
	const n = 1 << 16
	h := mk(n)
	r := rng.New(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for j := 0; j < 1024; j++ {
			h.Push(r.Intn(n), r.Float64()+1)
		}
		for h.Len() > 0 {
			id, p := h.Pop()
			for k := 0; k < 2; k++ {
				nb := (id + k + 1) % n
				if h.Contains(nb) {
					h.DecreaseKey(nb, p*0.9)
				}
			}
		}
	}
}
