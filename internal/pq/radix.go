package pq

import "math/bits"

// RadixHeap is a monotone priority queue for uint64 keys: Pop must return
// keys in nondecreasing order and pushed keys must be ≥ the last popped
// key. Under that contract (which Dijkstra on non-negative integer weights
// satisfies) all operations are amortized O(1)–O(log C). It is the natural
// queue for the DIMACS road networks' integral weights.
//
// Buckets hold (key, id) pairs grouped by the highest bit in which the key
// differs from the last popped minimum.
type RadixHeap struct {
	buckets [65][]radixItem
	last    uint64
	size    int
}

type radixItem struct {
	key uint64
	id  int32
}

// NewRadixHeap returns an empty radix heap.
func NewRadixHeap() *RadixHeap {
	return &RadixHeap{}
}

// Len reports the number of queued items.
func (h *RadixHeap) Len() int { return h.size }

// Last returns the most recently popped key (the monotonicity floor).
func (h *RadixHeap) Last() uint64 { return h.last }

func (h *RadixHeap) bucketFor(key uint64) int {
	if key == h.last {
		return 0
	}
	return bits.Len64(key ^ h.last)
}

// Push inserts id with the given key. It panics if key is below the last
// popped key (monotonicity violation).
func (h *RadixHeap) Push(id int, key uint64) {
	if key < h.last {
		panic("pq: RadixHeap monotonicity violated")
	}
	b := h.bucketFor(key)
	h.buckets[b] = append(h.buckets[b], radixItem{key, int32(id)})
	h.size++
}

// Pop removes and returns an item with the minimum key. Panics if empty.
// Items with equal keys are returned in insertion order.
func (h *RadixHeap) Pop() (id int, key uint64) {
	if h.size == 0 {
		panic("pq: Pop from empty radix heap")
	}
	// Find the first non-empty bucket.
	b := 0
	for len(h.buckets[b]) == 0 {
		b++
	}
	if b == 0 {
		it := h.buckets[0][0]
		h.buckets[0] = h.buckets[0][1:]
		h.size--
		return int(it.id), it.key
	}
	// Redistribute bucket b relative to its minimum key.
	min := h.buckets[b][0].key
	for _, it := range h.buckets[b][1:] {
		if it.key < min {
			min = it.key
		}
	}
	items := h.buckets[b]
	h.buckets[b] = nil
	h.last = min
	for _, it := range items {
		nb := h.bucketFor(it.key)
		h.buckets[nb] = append(h.buckets[nb], it)
	}
	it := h.buckets[0][0]
	h.buckets[0] = h.buckets[0][1:]
	h.size--
	return int(it.id), it.key
}
