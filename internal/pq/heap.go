// Package pq provides the priority-queue structures used by the shortest
// path algorithms in graphdiam: an indexed binary min-heap and an indexed
// 4-ary min-heap supporting DecreaseKey (for Dijkstra), and a cyclic bucket
// queue (for Δ-stepping).
//
// All structures key items by dense integer IDs in [0, n), which matches the
// node-ID space of internal/graph and avoids per-operation allocation.
package pq

// IndexedHeap is a binary min-heap over items identified by integers in
// [0, n) with float64 priorities. It supports DecreaseKey in O(log n).
type IndexedHeap struct {
	items []int32   // heap array of item IDs
	prio  []float64 // prio[id] = current priority of id
	pos   []int32   // pos[id] = index in items, or -1 if absent
}

// NewIndexedHeap returns an empty heap for IDs in [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		items: make([]int32, 0, 64),
		prio:  make([]float64, n),
		pos:   make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *IndexedHeap) Len() int { return len(h.items) }

// Contains reports whether id is currently in the heap.
func (h *IndexedHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Priority returns the priority most recently assigned to id via Push or
// DecreaseKey. It is only meaningful if id has been pushed at least once.
func (h *IndexedHeap) Priority(id int) float64 { return h.prio[id] }

// Push inserts id with the given priority. If id is already present, Push
// behaves like DecreaseKey when p is smaller, and is a no-op otherwise.
func (h *IndexedHeap) Push(id int, p float64) {
	if h.pos[id] >= 0 {
		if p < h.prio[id] {
			h.prio[id] = p
			h.siftUp(int(h.pos[id]))
		}
		return
	}
	h.prio[id] = p
	h.pos[id] = int32(len(h.items))
	h.items = append(h.items, int32(id))
	h.siftUp(len(h.items) - 1)
}

// DecreaseKey lowers the priority of id to p. It is a no-op if id is absent
// or p is not lower than the current priority.
func (h *IndexedHeap) DecreaseKey(id int, p float64) {
	if h.pos[id] < 0 || p >= h.prio[id] {
		return
	}
	h.prio[id] = p
	h.siftUp(int(h.pos[id]))
}

// Pop removes and returns the item with the minimum priority.
// It panics if the heap is empty.
func (h *IndexedHeap) Pop() (id int, p float64) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return int(top), h.prio[top]
}

// Reset empties the heap without releasing memory, so it can be reused for
// another run over the same ID space.
func (h *IndexedHeap) Reset() {
	for _, id := range h.items {
		h.pos[id] = -1
	}
	h.items = h.items[:0]
}

func (h *IndexedHeap) less(i, j int) bool {
	return h.prio[h.items[i]] < h.prio[h.items[j]]
}

func (h *IndexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *IndexedHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
