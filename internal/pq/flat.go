package pq

// FlatHeap is an indexed 4-ary min-heap that stores (priority, id) entries
// inline in the heap array. It supports the same Dijkstra contract as
// QuadHeap — Push doubles as decrease-key — but its comparisons read the
// contiguous entry slice directly instead of the pos/prio double
// indirection of the indexed heaps (h.prio[h.items[c]] is a dependent
// random-access load per comparison; h.h[c].p is a sequential one), and its
// sifts move a hole instead of swapping. On the diameter sweeps, where
// Dijkstra dominates the profile, this roughly halves the heap cost.
type FlatHeap struct {
	h   []flatEntry
	pos []int32 // id -> index in h, -1 if absent
}

type flatEntry struct {
	p  float64
	id int32
}

// NewFlatHeap returns an empty heap for IDs in [0, n).
func NewFlatHeap(n int) *FlatHeap {
	h := &FlatHeap{
		h:   make([]flatEntry, 0, 64),
		pos: make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *FlatHeap) Len() int { return len(h.h) }

// Contains reports whether id is currently in the heap.
func (h *FlatHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Push inserts id with priority p, or lowers its priority if already
// present and p is smaller.
func (h *FlatHeap) Push(id int32, p float64) {
	if at := h.pos[id]; at >= 0 {
		if p < h.h[at].p {
			h.siftUp(int(at), flatEntry{p, id})
		}
		return
	}
	h.h = append(h.h, flatEntry{})
	h.siftUp(len(h.h)-1, flatEntry{p, id})
}

// Pop removes and returns the minimum item. Panics if empty.
func (h *FlatHeap) Pop() (id int32, p float64) {
	top := h.h[0]
	h.pos[top.id] = -1
	last := len(h.h) - 1
	e := h.h[last]
	h.h = h.h[:last]
	if last > 0 {
		h.siftDown(e)
	}
	return top.id, top.p
}

// Reset empties the heap, retaining capacity.
func (h *FlatHeap) Reset() {
	for _, e := range h.h {
		h.pos[e.id] = -1
	}
	h.h = h.h[:0]
}

// siftUp moves the hole at index i toward the root until e fits, then
// places e there.
func (h *FlatHeap) siftUp(i int, e flatEntry) {
	for i > 0 {
		parent := (i - 1) >> 2
		pe := h.h[parent]
		if pe.p <= e.p {
			break
		}
		h.h[i] = pe
		h.pos[pe.id] = int32(i)
		i = parent
	}
	h.h[i] = e
	h.pos[e.id] = int32(i)
}

// siftDown moves a hole from the root toward the leaves until e fits, then
// places e there.
func (h *FlatHeap) siftDown(e flatEntry) {
	n := len(h.h)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		smallest := first
		sp := h.h[first].p
		for c := first + 1; c < end; c++ {
			if h.h[c].p < sp {
				smallest, sp = c, h.h[c].p
			}
		}
		if sp >= e.p {
			break
		}
		se := h.h[smallest]
		h.h[i] = se
		h.pos[se.id] = int32(i)
		i = smallest
	}
	h.h[i] = e
	h.pos[e.id] = int32(i)
}
