package pq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"graphdiam/internal/rng"
)

func TestPairingHeapPopOrder(t *testing.T) {
	h := NewPairingHeap(128)
	r := rng.New(4)
	want := make([]float64, 0, 128)
	for i := 0; i < 128; i++ {
		p := r.Float64()
		h.Push(i, p)
		want = append(want, p)
	}
	sort.Float64s(want)
	for i := range want {
		_, p := h.Pop()
		if p != want[i] {
			t.Fatalf("pop %d: got %v, want %v", i, p, want[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after drain")
	}
}

func TestPairingHeapDecreaseKey(t *testing.T) {
	h := NewPairingHeap(8)
	h.Push(0, 5)
	h.Push(1, 3)
	h.Push(2, 9)
	h.DecreaseKey(2, 0.5)
	if id, p := h.Pop(); id != 2 || p != 0.5 {
		t.Fatalf("got (%d,%v), want (2,0.5)", id, p)
	}
	h.DecreaseKey(0, 1) // 0 now below 1
	if id, _ := h.Pop(); id != 0 {
		t.Fatalf("got %d, want 0", id)
	}
	// Decrease of the root is fine.
	h.DecreaseKey(1, 0.1)
	if id, p := h.Pop(); id != 1 || p != 0.1 {
		t.Fatalf("got (%d,%v), want (1,0.1)", id, p)
	}
}

func TestPairingHeapPushExisting(t *testing.T) {
	h := NewPairingHeap(4)
	h.Push(3, 10)
	h.Push(3, 4)
	h.Push(3, 7)
	if h.Len() != 1 {
		t.Fatalf("len = %d, want 1", h.Len())
	}
	if id, p := h.Pop(); id != 3 || p != 4 {
		t.Fatalf("got (%d,%v), want (3,4)", id, p)
	}
}

func TestPairingHeapResetAndReuse(t *testing.T) {
	h := NewPairingHeap(16)
	for i := 0; i < 10; i++ {
		h.Push(i, float64(10-i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset left items")
	}
	h.Push(5, 1)
	h.Push(6, 0.5)
	if id, _ := h.Pop(); id != 6 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestPairingHeapPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPairingHeap(1).Pop()
}

// Property: pairing heap agrees with the binary heap under a random
// workload of pushes, decreases and pops.
func TestPairingHeapAgainstBinary(t *testing.T) {
	check := func(seed uint64, nOps uint16) bool {
		const n = 64
		ph := NewPairingHeap(n)
		bh := NewIndexedHeap(n)
		r := rng.New(seed)
		for i := 0; i < int(nOps)%400+20; i++ {
			switch r.Intn(3) {
			case 0:
				id, p := r.Intn(n), r.Float64()
				ph.Push(id, p)
				bh.Push(id, p)
			case 1:
				id := r.Intn(n)
				if ph.Contains(id) != bh.Contains(id) {
					return false
				}
				if ph.Contains(id) {
					p := ph.Priority(id) * r.Float64()
					ph.DecreaseKey(id, p)
					bh.DecreaseKey(id, p)
				}
			case 2:
				if ph.Len() != bh.Len() {
					return false
				}
				if ph.Len() > 0 {
					_, p1 := ph.Pop()
					_, p2 := bh.Pop()
					// IDs may differ on ties; priorities must agree.
					if p1 != p2 {
						return false
					}
				}
			}
		}
		// Drain both; the sorted priority sequences must match.
		prev := math.Inf(-1)
		for ph.Len() > 0 {
			_, p1 := ph.Pop()
			_, p2 := bh.Pop()
			if p1 != p2 || p1 < prev {
				return false
			}
			prev = p1
		}
		return bh.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPairingHeapDijkstraPattern(b *testing.B) {
	const n = 1 << 16
	h := NewPairingHeap(n)
	r := rng.New(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			h.Push(r.Intn(n), r.Float64()+1)
		}
		for h.Len() > 0 {
			id, p := h.Pop()
			for k := 0; k < 2; k++ {
				nb := (id + k + 1) % n
				if h.Contains(nb) {
					h.DecreaseKey(nb, p*0.9)
				}
			}
		}
	}
}
