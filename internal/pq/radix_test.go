package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"graphdiam/internal/rng"
)

func TestRadixHeapPopOrder(t *testing.T) {
	h := NewRadixHeap()
	keys := []uint64{5, 1, 9, 3, 3, 7, 1 << 40, 0}
	for i, k := range keys {
		h.Push(i, k)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		_, k := h.Pop()
		if k != want {
			t.Fatalf("pop %d: got %d, want %d", i, k, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestRadixHeapMonotonePushes(t *testing.T) {
	// Dijkstra-style: pushes are always >= the current minimum.
	h := NewRadixHeap()
	h.Push(0, 0)
	cur := uint64(0)
	r := rng.New(5)
	popped := 0
	for h.Len() > 0 && popped < 1000 {
		_, k := h.Pop()
		if k < cur {
			t.Fatalf("non-monotone pop: %d after %d", k, cur)
		}
		cur = k
		popped++
		for j := 0; j < 2 && popped+h.Len() < 1000; j++ {
			h.Push(popped, cur+1+r.Uint64n(100))
		}
	}
}

func TestRadixHeapMonotonicityViolationPanics(t *testing.T) {
	h := NewRadixHeap()
	h.Push(0, 100)
	h.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on key below last popped")
		}
	}()
	h.Push(1, 50)
}

func TestRadixHeapPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRadixHeap().Pop()
}

func TestRadixHeapEqualKeys(t *testing.T) {
	h := NewRadixHeap()
	for i := 0; i < 10; i++ {
		h.Push(i, 42)
	}
	for i := 0; i < 10; i++ {
		_, k := h.Pop()
		if k != 42 {
			t.Fatalf("key %d", k)
		}
	}
}

// Property: the radix heap sorts any batch of keys.
func TestRadixHeapSortsBatches(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%100 + 1
		h := NewRadixHeap()
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = r.Uint64() >> 20
			h.Push(i, keys[i])
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, want := range keys {
			if _, k := h.Pop(); k != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRadixHeapMonotoneSweep(b *testing.B) {
	r := rng.New(9)
	const n = 1 << 14
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() >> 30
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewRadixHeap()
		for id, k := range keys {
			h.Push(id, k)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
