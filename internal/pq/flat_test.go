package pq

import (
	"testing"

	"graphdiam/internal/rng"
)

// TestFlatHeapMatchesQuadHeap drives FlatHeap and QuadHeap with the same
// randomized push/decrease/pop mix and requires identical pop sequences of
// priorities (ids may differ on ties; priorities may not).
func TestFlatHeapMatchesQuadHeap(t *testing.T) {
	const n = 200
	r := rng.New(31)
	fh := NewFlatHeap(n)
	qh := NewQuadHeap(n)
	for round := 0; round < 5000; round++ {
		switch {
		case fh.Len() == 0 || r.Float64() < 0.55:
			id := int32(r.Intn(n))
			p := r.Float64()
			fh.Push(id, p)
			qh.Push(int(id), p) // Push doubles as decrease-key in both
		default:
			fid, fp := fh.Pop()
			qid, qp := qh.Pop()
			if fp != qp {
				t.Fatalf("round %d: flat popped p=%v, quad popped p=%v", round, fp, qp)
			}
			_ = fid
			_ = qid
		}
		if fh.Len() != qh.Len() {
			t.Fatalf("round %d: lengths diverged %d vs %d", round, fh.Len(), qh.Len())
		}
	}
	for fh.Len() > 0 {
		_, fp := fh.Pop()
		_, qp := qh.Pop()
		if fp != qp {
			t.Fatalf("drain: %v vs %v", fp, qp)
		}
	}
}

// TestFlatHeapDecreaseKeyAndReset: pushing a smaller priority for a present
// id lowers it (larger is ignored), and Reset empties retaining validity.
func TestFlatHeapDecreaseKeyAndReset(t *testing.T) {
	h := NewFlatHeap(10)
	h.Push(3, 5.0)
	h.Push(4, 4.0)
	h.Push(3, 9.0) // not lower: ignored
	h.Push(3, 1.0) // decrease-key
	if !h.Contains(3) || h.Contains(7) {
		t.Fatal("Contains wrong")
	}
	id, p := h.Pop()
	if id != 3 || p != 1.0 {
		t.Fatalf("Pop = (%d, %v), want (3, 1)", id, p)
	}
	h.Reset()
	if h.Len() != 0 || h.Contains(4) {
		t.Fatal("Reset did not empty the heap")
	}
	h.Push(4, 2.0)
	if id, p := h.Pop(); id != 4 || p != 2.0 {
		t.Fatalf("post-Reset Pop = (%d, %v)", id, p)
	}
}
