package pq

import (
	"testing"

	"graphdiam/internal/rng"
)

func TestBucketQueueBasics(t *testing.T) {
	q := NewBucketQueue(10, 1.0, 8)
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.Update(3, 0.5) // bucket 0
	q.Update(4, 2.5) // bucket 2
	q.Update(5, 2.9) // bucket 2
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if !q.Contains(3) || q.Contains(6) {
		t.Fatal("Contains mismatch")
	}
	if b := q.NextBucket(); b != 0 {
		t.Fatalf("NextBucket = %d, want 0", b)
	}
	ids := q.DrainBucket(0, nil)
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("DrainBucket(0) = %v, want [3]", ids)
	}
	if b := q.NextBucket(); b != 2 {
		t.Fatalf("NextBucket = %d, want 2", b)
	}
	ids = q.DrainBucket(2, nil)
	if len(ids) != 2 {
		t.Fatalf("DrainBucket(2) returned %v", ids)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining all", q.Len())
	}
	if q.NextBucket() != -1 {
		t.Fatal("NextBucket on empty queue should be -1")
	}
}

func TestBucketQueueMoveOnDecrease(t *testing.T) {
	q := NewBucketQueue(4, 1.0, 8)
	q.Update(0, 3.5) // bucket 3
	q.Update(0, 1.2) // moves to bucket 1
	if b := q.NextBucket(); b != 1 {
		t.Fatalf("NextBucket = %d, want 1", b)
	}
	if q.Len() != 1 {
		t.Fatalf("item duplicated across buckets: Len=%d", q.Len())
	}
	// Same-bucket update is a no-op.
	q.Update(0, 1.9)
	if q.Len() != 1 {
		t.Fatalf("same-bucket update changed Len=%d", q.Len())
	}
}

func TestBucketQueueRemove(t *testing.T) {
	q := NewBucketQueue(4, 0.5, 8)
	q.Update(1, 0.4)
	q.Update(2, 0.45)
	q.Remove(1)
	if q.Contains(1) || q.Len() != 1 {
		t.Fatal("Remove failed")
	}
	q.Remove(1) // removing twice is fine
	ids := q.DrainBucket(q.NextBucket(), nil)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("drained %v, want [2]", ids)
	}
}

func TestBucketQueueCyclicReuse(t *testing.T) {
	// Buckets are reused mod numBuckets: drive the queue through many more
	// buckets than exist physically, as Δ-stepping does.
	q := NewBucketQueue(2, 1.0, 4)
	cur := 0.0
	for step := 0; step < 100; step++ {
		q.Update(0, cur+0.5)
		q.Update(1, cur+0.9)
		b := q.NextBucket()
		if b != int(cur) {
			t.Fatalf("step %d: NextBucket = %d, want %d", step, b, int(cur))
		}
		ids := q.DrainBucket(b, nil)
		if len(ids) != 2 {
			t.Fatalf("step %d: drained %d items, want 2", step, len(ids))
		}
		cur++
	}
}

func TestBucketQueuePanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delta <= 0")
		}
	}()
	NewBucketQueue(1, 0, 4)
}

// Property-style test: simulate a monotone bucket sweep with random
// decreases and check that every drained item's distance lies in the
// drained bucket's range.
func TestBucketQueueSweepInvariant(t *testing.T) {
	const n = 200
	r := rng.New(5)
	delta := 0.25
	q := NewBucketQueue(n, delta, 64)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = r.Float64() * 10
		q.Update(i, dist[i])
	}
	drained := 0
	for q.Len() > 0 {
		b := q.NextBucket()
		ids := q.DrainBucket(b, nil)
		for _, id := range ids {
			d := dist[id]
			if int(d/delta) != b {
				t.Fatalf("item %d with dist %v drained from bucket %d", id, d, b)
			}
			drained++
		}
	}
	if drained != n {
		t.Fatalf("drained %d items, want %d", drained, n)
	}
}

func BenchmarkBucketQueueSweep(b *testing.B) {
	const n = 1 << 14
	r := rng.New(9)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = r.Float64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewBucketQueue(n, 0.5, 256)
		for id, d := range dist {
			q.Update(id, d)
		}
		for q.Len() > 0 {
			q.DrainBucket(q.NextBucket(), nil)
		}
	}
}
