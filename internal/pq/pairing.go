package pq

// PairingHeap is an indexed pairing heap: amortized O(1) Push and
// DecreaseKey, O(log n) amortized Pop. It trades the array locality of the
// binary/4-ary heaps for cheaper decreases, which pays off on graphs with
// very high decrease-to-pop ratios (dense graphs, small-world graphs).
// Items are dense integer IDs in [0, n), as in the other heaps.
type PairingHeap struct {
	prio  []float64
	child []int32 // first child
	next  []int32 // next sibling
	prev  []int32 // previous sibling or parent
	in    []bool
	root  int32
	size  int
	// scratch buffer for two-pass merging in Pop
	pairs []int32
}

// NewPairingHeap returns an empty pairing heap for IDs in [0, n).
func NewPairingHeap(n int) *PairingHeap {
	h := &PairingHeap{
		prio:  make([]float64, n),
		child: make([]int32, n),
		next:  make([]int32, n),
		prev:  make([]int32, n),
		in:    make([]bool, n),
		root:  -1,
	}
	for i := 0; i < n; i++ {
		h.child[i], h.next[i], h.prev[i] = -1, -1, -1
	}
	return h
}

// Len reports the number of queued items.
func (h *PairingHeap) Len() int { return h.size }

// Contains reports whether id is queued.
func (h *PairingHeap) Contains(id int) bool { return h.in[id] }

// Priority returns the priority last assigned to id.
func (h *PairingHeap) Priority(id int) float64 { return h.prio[id] }

// meld links two heap roots, returning the smaller as the new root.
func (h *PairingHeap) meld(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if h.prio[b] < h.prio[a] {
		a, b = b, a
	}
	// b becomes the first child of a.
	h.next[b] = h.child[a]
	if h.child[a] >= 0 {
		h.prev[h.child[a]] = b
	}
	h.prev[b] = a // parent link (b is first child)
	h.child[a] = b
	return a
}

// detach unlinks id from its parent/sibling list. id must not be the root.
func (h *PairingHeap) detach(id int32) {
	p := h.prev[id]
	if h.child[p] == id {
		h.child[p] = h.next[id] // id was first child; prev is the parent
	} else {
		h.next[p] = h.next[id]
	}
	if h.next[id] >= 0 {
		h.prev[h.next[id]] = p
	}
	h.next[id], h.prev[id] = -1, -1
}

// Push inserts id with priority p; if present and p is lower, it behaves as
// DecreaseKey, otherwise it is a no-op.
func (h *PairingHeap) Push(id int, p float64) {
	if h.in[id] {
		if p < h.prio[id] {
			h.DecreaseKey(id, p)
		}
		return
	}
	h.in[id] = true
	h.prio[id] = p
	h.child[id], h.next[id], h.prev[id] = -1, -1, -1
	h.root = h.meld(h.root, int32(id))
	h.size++
}

// DecreaseKey lowers id's priority to p (no-op if absent or not lower).
func (h *PairingHeap) DecreaseKey(id int, p float64) {
	if !h.in[id] || p >= h.prio[id] {
		return
	}
	h.prio[id] = p
	if int32(id) == h.root {
		return
	}
	h.detach(int32(id))
	h.root = h.meld(h.root, int32(id))
}

// Pop removes and returns the minimum item. Panics if empty.
func (h *PairingHeap) Pop() (int, float64) {
	top := h.root
	if top < 0 {
		panic("pq: Pop from empty pairing heap")
	}
	h.in[top] = false
	h.size--
	// Two-pass pairing of the children.
	h.pairs = h.pairs[:0]
	c := h.child[top]
	for c >= 0 {
		next := h.next[c]
		h.next[c], h.prev[c] = -1, -1
		h.pairs = append(h.pairs, c)
		c = next
	}
	h.child[top] = -1
	var merged int32 = -1
	// First pass: pair up left to right.
	for i := 0; i+1 < len(h.pairs); i += 2 {
		h.pairs[i/2] = h.meld(h.pairs[i], h.pairs[i+1])
	}
	k := len(h.pairs) / 2
	if len(h.pairs)%2 == 1 {
		h.pairs[k] = h.pairs[len(h.pairs)-1]
		k++
	}
	// Second pass: fold right to left.
	for i := k - 1; i >= 0; i-- {
		merged = h.meld(merged, h.pairs[i])
	}
	h.root = merged
	if h.root >= 0 {
		h.prev[h.root] = -1
	}
	return int(top), h.prio[top]
}

// Reset empties the heap in O(size) by draining it (pointer state is
// per-item and cleaned during Pop).
func (h *PairingHeap) Reset() {
	for h.size > 0 {
		h.Pop()
	}
}
