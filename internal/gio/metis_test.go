package gio

import (
	"bytes"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestReadMETISUnweighted(t *testing.T) {
	in := `% a triangle
3 3
2 3
1 3
1 2
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatal("unweighted METIS should have unit weights")
	}
}

func TestReadMETISWeighted(t *testing.T) {
	in := `2 1 001
2 2.5
1 2.5
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Fatalf("weight = %v, %v", w, ok)
	}
}

func TestReadMETISIsolatedNodes(t *testing.T) {
	in := `3 1
2
1

`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 || g.Degree(2) != 0 {
		t.Fatalf("n=%d m=%d deg2=%d", g.NumNodes(), g.NumEdges(), g.Degree(2))
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"node weights":      "2 1 011\n2\n1\n",
		"bad neighbor":      "2 1\n5\n1\n",
		"odd weighted line": "2 1 001\n2\n1 1\n",
		"too few lines":     "3 1\n2\n1\n",
		"too many lines":    "1 0\n\n\n2\n",
		"bad weight":        "2 1 001\n2 x\n1 x\n",
	}
	for name, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
