// Package gio reads and writes weighted graphs in the interchange formats
// used by the shortest-path community and by this repository's tools:
//
//   - DIMACS shortest-path format (".gr", the format of the 9th DIMACS
//     Implementation Challenge road networks the paper benchmarks on);
//   - plain whitespace-separated edge lists ("u v w" per line, '#' comments);
//   - a compact little-endian binary format for fast reload of generated
//     benchmark graphs.
package gio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphdiam/internal/graph"
)

// maybeGunzip sniffs r for the gzip magic bytes (0x1f 0x8b) and, when
// present, interposes a gzip.Reader. All text readers call it first, so
// compressed DIMACS/edge-list/METIS files (the form big road networks are
// distributed in) are accepted transparently. Inputs shorter than two
// bytes pass through untouched — the format parser produces its own error.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil || len(magic) < 2 || magic[0] != 0x1f || magic[1] != 0x8b {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("gio: gzip input: %w", err)
	}
	return zr, nil
}

// ReadDIMACS parses a DIMACS ".gr" graph. Lines:
//
//	c <comment>
//	p sp <n> <m>
//	a <u> <v> <w>      (1-based node IDs, directed arc records)
//
// Road-network files list each undirected edge as two arcs; the builder's
// deduplication collapses them. Gzip-compressed input is accepted
// transparently.
func ReadDIMACS(r io.Reader) (*graph.Graph, error) {
	r, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *graph.Builder
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			// comment
		case "p":
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("gio: line %d: malformed problem line", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gio: line %d: bad node count %q", line, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("gio: line %d: bad edge count %q", line, fields[3])
			}
			b = graph.NewBuilder(n, m)
		case "a":
			if b == nil {
				return nil, fmt.Errorf("gio: line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("gio: line %d: malformed arc line", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad source %q", line, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad target %q", line, fields[2])
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad weight %q", line, fields[3])
			}
			if u < 1 || v < 1 || u > b.NumNodes() || v > b.NumNodes() {
				return nil, fmt.Errorf("gio: line %d: node ID out of range", line)
			}
			if u != v {
				b.AddEdge(graph.NodeID(u-1), graph.NodeID(v-1), w)
			}
		default:
			return nil, fmt.Errorf("gio: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("gio: missing problem line")
	}
	return b.Build(), nil
}

// WriteDIMACS writes g in DIMACS ".gr" format (each undirected edge as two
// arcs, 1-based IDs), mirroring what ReadDIMACS accepts.
func WriteDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c graphdiam export\np sp %d %d\n", g.NumNodes(), 2*g.NumEdges())
	var err error
	g.ForEachEdge(func(u, v graph.NodeID, wt float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "a %d %d %v\na %d %d %v\n", u+1, v+1, wt, v+1, u+1, wt)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace edge list with 0-based node IDs:
// "u v w" per line, blank lines and lines starting with '#' ignored.
// The node count is one more than the maximum ID seen. Gzip-compressed
// input is accepted transparently.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	r, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rec struct {
		u, v graph.NodeID
		w    float64
	}
	var recs []rec
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("gio: line %d: want 'u v w', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil || u < 0 {
			return nil, fmt.Errorf("gio: line %d: bad node %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("gio: line %d: bad node %q", line, fields[1])
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: bad weight %q", line, fields[2])
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		recs = append(recs, rec{graph.NodeID(u), graph.NodeID(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(maxID+1, len(recs))
	for _, e := range recs {
		if e.u != e.v {
			b.AddEdge(e.u, e.v, e.w)
		}
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a 0-based "u v w" edge list.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.ForEachEdge(func(u, v graph.NodeID, wt float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %d %v\n", u, v, wt)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

const binaryMagic = 0x47444d31 // "GDM1"

// WriteBinary writes g in the compact binary format:
// magic, n, m (uint64), then m records of (u uint32, v uint32, w float64).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.NumNodes()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var err error
	g.ForEachEdge(func(u, v graph.NodeID, wt float64) {
		if err != nil {
			return
		}
		if err = binary.Write(bw, binary.LittleEndian, u); err != nil {
			return
		}
		if err = binary.Write(bw, binary.LittleEndian, v); err != nil {
			return
		}
		err = binary.Write(bw, binary.LittleEndian, wt)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// binaryEdgeBytes is the on-disk size of one WriteBinary edge record
// (u uint32, v uint32, w float64).
const binaryEdgeBytes = 4 + 4 + 8

// ReadBinary reads a graph written by WriteBinary.
//
// The header's declared node and edge counts are validated before any
// allocation: node IDs must fit uint32, and when the input's size is
// knowable (io.Seeker, e.g. *os.File or bytes.Reader) a header whose edge
// count implies more bytes than the input holds is rejected outright —
// a truncated or hostile header cannot trigger a huge allocation. For
// unseekable inputs the edge count only bounds a capped preallocation
// hint, so a lying header costs at most one small slice before the
// decode loop hits EOF.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	inputSize := int64(-1)
	if s, ok := r.(io.Seeker); ok {
		if cur, err := s.Seek(0, io.SeekCurrent); err == nil {
			if end, err := s.Seek(0, io.SeekEnd); err == nil {
				if _, err := s.Seek(cur, io.SeekStart); err != nil {
					return nil, fmt.Errorf("gio: rewind after size probe: %w", err)
				}
				inputSize = end - cur
			}
		}
	}
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("gio: short binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("gio: bad magic %#x", magic)
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("gio: declared node count %d exceeds the uint32 ID space", n)
	}
	if inputSize >= 0 {
		payload := inputSize - 3*8 // header already accounted in inputSize
		if payload < 0 {
			payload = 0
		}
		if m > uint64(payload)/binaryEdgeBytes {
			return nil, fmt.Errorf("gio: declared edge count %d needs %d bytes/edge, input has only %d bytes",
				m, binaryEdgeBytes, payload)
		}
	}
	const maxHint = 1 << 18 // cap the unverifiable prealloc at ~8 MiB of records
	hint := m
	if hint > maxHint {
		hint = maxHint
	}
	b := graph.NewBuilder(int(n), int(hint))
	for i := uint64(0); i < m; i++ {
		var u, v uint32
		var w float64
		if err := binary.Read(br, binary.LittleEndian, &u); err != nil {
			return nil, fmt.Errorf("gio: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("gio: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &w); err != nil {
			return nil, fmt.Errorf("gio: edge %d: %w", i, err)
		}
		b.AddEdge(u, v, w)
	}
	return b.Build(), nil
}
