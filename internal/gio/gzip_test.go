package gio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"testing"
)

// gz compresses b with gzip.
func gz(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatalf("gzip write: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	return buf.Bytes()
}

func TestGzipTransparentDIMACS(t *testing.T) {
	g := sample()
	var plain bytes.Buffer
	if err := WriteDIMACS(&plain, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(bytes.NewReader(gz(t, plain.Bytes())))
	if err != nil {
		t.Fatalf("ReadDIMACS(gzip): %v", err)
	}
	graphsEqual(t, g, got)
}

func TestGzipTransparentEdgeList(t *testing.T) {
	g := sample()
	var plain bytes.Buffer
	if err := WriteEdgeList(&plain, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(bytes.NewReader(gz(t, plain.Bytes())))
	if err != nil {
		t.Fatalf("ReadEdgeList(gzip): %v", err)
	}
	graphsEqual(t, g, got)
}

func TestGzipTransparentMETIS(t *testing.T) {
	g := sample()
	var plain bytes.Buffer
	if err := WriteMETIS(&plain, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(bytes.NewReader(gz(t, plain.Bytes())))
	if err != nil {
		t.Fatalf("ReadMETIS(gzip): %v", err)
	}
	graphsEqual(t, g, got)
}

func TestGzipPlainInputsStillWork(t *testing.T) {
	g := sample()
	var plain bytes.Buffer
	if err := WriteEdgeList(&plain, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatalf("ReadEdgeList(plain): %v", err)
	}
	graphsEqual(t, g, got)
}

func TestGzipCorruptStream(t *testing.T) {
	g := sample()
	var plain bytes.Buffer
	if err := WriteEdgeList(&plain, g); err != nil {
		t.Fatal(err)
	}
	z := gz(t, plain.Bytes())
	z = z[:len(z)/2] // truncate mid-stream
	if _, err := ReadEdgeList(bytes.NewReader(z)); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}

func TestGzipTinyInputPassesThrough(t *testing.T) {
	// Inputs shorter than the 2-byte magic must reach the format parser,
	// which reports its own (non-gzip) error.
	if _, err := ReadEdgeList(bytes.NewReader([]byte{'x'})); err == nil {
		t.Fatal("1-byte garbage accepted")
	}
	if _, err := ReadDIMACS(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty DIMACS accepted")
	}
}

// binaryHeader renders a WriteBinary header with the given counts.
func binaryHeader(n, m uint64) []byte {
	var buf bytes.Buffer
	for _, h := range []uint64{binaryMagic, n, m} {
		binary.Write(&buf, binary.LittleEndian, h)
	}
	return buf.Bytes()
}

func TestBinaryRejectsOversizedEdgeCount(t *testing.T) {
	// Header claims 2^40 edges but carries no payload: with a seekable
	// input the reader must reject before allocating anything.
	hdr := binaryHeader(4, 1<<40)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("hostile edge count accepted")
	}
	// Off-by-one: payload holds exactly one edge, header claims two.
	one := append(binaryHeader(4, 2), make([]byte, binaryEdgeBytes)...)
	if _, err := ReadBinary(bytes.NewReader(one)); err == nil {
		t.Fatal("edge count exceeding payload accepted")
	}
}

func TestBinaryRejectsOversizedNodeCount(t *testing.T) {
	hdr := binaryHeader(1<<33, 0)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("node count beyond uint32 ID space accepted")
	}
}

func TestBinaryUnseekableTruncatedFailsGracefully(t *testing.T) {
	// An unseekable stream cannot be size-checked up front; a lying header
	// must still end in a decode error, not an OOM-scale allocation.
	hdr := binaryHeader(4, 1<<40)
	r := io.MultiReader(bytes.NewReader(hdr)) // hides the Seeker
	if _, err := ReadBinary(r); err == nil {
		t.Fatal("truncated unseekable stream accepted")
	}
}

func TestBinarySeekableRoundTripStillWorks(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	graphsEqual(t, g, got)
}
