package gio

import (
	"bytes"
	"strings"
	"testing"

	"graphdiam/internal/graph"
)

func sample() *graph.Graph {
	b := graph.NewBuilder(4, 4)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 0.25)
	b.AddEdge(0, 3, 7)
	return b.Build()
}

func graphsEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	a.ForEachEdge(func(u, v graph.NodeID, w float64) {
		w2, ok := b.EdgeWeight(u, v)
		if !ok || w2 != w {
			t.Fatalf("edge (%d,%d,%v) missing or changed: (%v,%v)", u, v, w, w2, ok)
		}
	})
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestReadDIMACSHandWritten(t *testing.T) {
	in := `c tiny road network
p sp 3 4
a 1 2 10
a 2 1 10
a 2 3 5
a 3 2 5
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 10 {
		t.Fatalf("edge (0,1): %v %v", w, ok)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":   "a 1 2 3\n",
		"bad problem":       "p sp x 3\n",
		"wrong format":      "p max 3 3\n",
		"short arc":         "p sp 2 1\na 1 2\n",
		"bad weight":        "p sp 2 1\na 1 2 zebra\n",
		"node out of range": "p sp 2 1\na 1 5 1\n",
		"unknown record":    "p sp 2 1\nz 1 2 3\n",
		"empty":             "",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# header comment
0 1 2.5

# another
1 2 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"two fields":    "0 1\n",
		"negative node": "-1 2 1\n",
		"bad weight":    "0 1 x\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, got)
}

func TestBinaryBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 24)) // zero header
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}
