package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphdiam/internal/graph"
)

// ReadMETIS parses a graph in METIS format with edge weights (fmt code
// "001"): a header line "n m [fmt]" followed by one line per node listing
// "neighbor weight" pairs with 1-based node IDs. Comment lines start
// with '%'. Without the weight flag, unit weights are assumed.
// Gzip-compressed input is accepted transparently.
func ReadMETIS(r io.Reader) (*graph.Graph, error) {
	r, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *graph.Builder
	weighted := false
	node := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) < 2 || len(fields) > 4 {
				return nil, fmt.Errorf("gio: line %d: malformed METIS header", line)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gio: line %d: bad node count", line)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("gio: line %d: bad edge count", line)
			}
			if len(fields) >= 3 {
				code := fields[2]
				if len(code) == 3 && code[2] == '1' {
					weighted = true
				}
				if len(code) == 3 && code[1] == '1' {
					return nil, fmt.Errorf("gio: METIS node weights unsupported")
				}
			}
			b = graph.NewBuilder(n, m)
			continue
		}
		node++
		if node > b.NumNodes() {
			return nil, fmt.Errorf("gio: line %d: more adjacency lines than nodes", line)
		}
		if weighted {
			if len(fields)%2 != 0 {
				return nil, fmt.Errorf("gio: line %d: odd field count in weighted METIS line", line)
			}
			for i := 0; i < len(fields); i += 2 {
				v, err := strconv.Atoi(fields[i])
				if err != nil || v < 1 || v > b.NumNodes() {
					return nil, fmt.Errorf("gio: line %d: bad neighbor %q", line, fields[i])
				}
				w, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("gio: line %d: bad weight %q", line, fields[i+1])
				}
				if v != node {
					b.AddEdge(graph.NodeID(node-1), graph.NodeID(v-1), w)
				}
			}
		} else {
			for _, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil || v < 1 || v > b.NumNodes() {
					return nil, fmt.Errorf("gio: line %d: bad neighbor %q", line, f)
				}
				if v != node {
					b.AddEdge(graph.NodeID(node-1), graph.NodeID(v-1), 1)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("gio: missing METIS header")
	}
	if node < b.NumNodes() {
		return nil, fmt.Errorf("gio: %d adjacency lines for %d nodes", node, b.NumNodes())
	}
	return b.Build(), nil
}

// WriteMETIS writes g in weighted METIS format ("001").
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %v", v+1, ws[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
