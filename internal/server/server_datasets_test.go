package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/dataset"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/store"
)

// newDatasetServer builds a catalog-backed store+server over dir. The
// returned shutdown function (idempotent, also registered as cleanup)
// tears the whole stack down — a test "restarts the daemon" by invoking
// it and building a fresh stack on the same dir. The teardown must be
// complete before reopening: the catalog holds an exclusive directory
// lock, exactly as two live daemons on one -data-dir are refused.
func newDatasetServer(t *testing.T, dir string) (*httptest.Server, *store.Store, func()) {
	t.Helper()
	cat, err := dataset.Open(dir, dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(store.Config{MaxConcurrent: 4, Catalog: cat})
	ts := httptest.NewServer(New(st, Config{Datasets: cat}))
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		st.Close()
		cat.Close()
	}
	t.Cleanup(shutdown)
	return ts, st, shutdown
}

// uploadBody POSTs raw bytes to url and decodes the JSON response.
func uploadBody(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// diameterFields are the deterministic parts of a DiameterResponse — all
// of it except wall-clock time and cache provenance.
type diameterFields struct {
	Estimate         float64
	QuotientDiameter float64
	Radius           float64
	QuotientNodes    int
	QuotientEdges    int
	NumClusters      int
	Stages           int
	Metrics          bsp.Snapshot
}

func fieldsOf(r DiameterResponse) diameterFields {
	return diameterFields{
		Estimate:         r.Estimate,
		QuotientDiameter: r.QuotientDiameter,
		Radius:           r.Radius,
		QuotientNodes:    r.QuotientNodes,
		QuotientEdges:    r.QuotientEdges,
		NumClusters:      r.NumClusters,
		Stages:           r.Stages,
		Metrics:          r.Metrics,
	}
}

// TestDatasetIngestSurvivesRestart is the acceptance scenario: ingest over
// HTTP, query, tear the whole serving stack down, rebuild it over the same
// -data-dir, and observe the identical diameter answer with no re-upload —
// the graph faults in from the catalog lazily.
func TestDatasetIngestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _, shutdown1 := newDatasetServer(t, dir)

	g, err := gen.FromSpec("road:16", 5)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	zw := gzip.NewWriter(&el)
	if err := gio.WriteEdgeList(zw, g); err != nil {
		t.Fatal(err)
	}
	zw.Close()

	var info dataset.Info
	code := uploadBody(t, ts1.URL+"/v2/datasets?name=roadnet&source=test", el.Bytes(), &info)
	if code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}
	if info.Format != dataset.FormatEdgeList || info.NumEdges != g.NumEdges() {
		t.Fatalf("ingest info %+v", info)
	}

	query := map[string]any{"graph": "roadnet", "seed": 9}
	var before DiameterResponse
	if code := doJSON(t, "POST", ts1.URL+"/v1/diameter", query, &before); code != http.StatusOK {
		t.Fatalf("pre-restart diameter status %d", code)
	}

	// "Restart": tear the first stack down entirely (releasing its
	// catalog lock), then build a fresh catalog, store, and server on the
	// same data directory. No graphs are registered, nothing is preloaded.
	shutdown1()
	ts2, st2, _ := newDatasetServer(t, dir)
	if len(st2.Graphs()) != 0 {
		t.Fatal("fresh store unexpectedly has graphs")
	}
	var after DiameterResponse
	if code := doJSON(t, "POST", ts2.URL+"/v1/diameter", query, &after); code != http.StatusOK {
		t.Fatalf("post-restart diameter status %d", code)
	}
	if fieldsOf(before) != fieldsOf(after) {
		t.Fatalf("restart changed the answer:\n before %+v\n after  %+v", fieldsOf(before), fieldsOf(after))
	}
	if after.Cached {
		t.Fatal("post-restart query claims cached (cache is per-process)")
	}
}

func TestDatasetEndpointsLifecycle(t *testing.T) {
	ts, st, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:10", 2)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}

	if code := uploadBody(t, ts.URL+"/v2/datasets?name=m", el.Bytes(), nil); code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}
	// Missing name parameter is a 400.
	if code := uploadBody(t, ts.URL+"/v2/datasets", el.Bytes(), nil); code != http.StatusBadRequest {
		t.Fatalf("nameless ingest status %d", code)
	}

	var list struct {
		Datasets   []dataset.Info `json:"datasets"`
		TotalBytes int64          `json:"totalBytes"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "m" || list.TotalBytes == 0 {
		t.Fatalf("list %+v", list)
	}

	var info dataset.Info
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/m", nil, &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.SHA256 == "" || info.NumNodes != 100 {
		t.Fatalf("info %+v", info)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/ghost", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing info status %d", code)
	}

	// Explicit load registers the graph without a compute query.
	var ginfo store.GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v2/datasets/m/load", nil, &ginfo); code != http.StatusOK {
		t.Fatalf("load status %d", code)
	}
	if _, _, ok := st.Graph("m"); !ok {
		t.Fatal("load endpoint did not register the graph")
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v2/datasets/m", nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/m", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted dataset still listed: %d", code)
	}
	// The already-loaded graph keeps serving (unlink-while-mapped safety).
	var resp DiameterResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter", map[string]any{"graph": "m"}, &resp); code != http.StatusOK {
		t.Fatalf("query after dataset delete: status %d", code)
	}
}

func TestDatasetEndpointsWithoutCatalog(t *testing.T) {
	ts, _ := newTestServer(t) // no -data-dir equivalent
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v2/datasets?name=x"},
		{"GET", "/v2/datasets"},
		{"GET", "/v2/datasets/x"},
		{"DELETE", "/v2/datasets/x"},
		{"POST", "/v2/datasets/x/load"},
	} {
		if code := doJSON(t, probe.method, ts.URL+probe.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without catalog: status %d, want 503", probe.method, probe.path, code)
		}
	}
}
