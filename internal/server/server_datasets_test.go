package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/dataset"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/store"
)

// newDatasetServer builds a catalog-backed store+server over dir. The
// returned shutdown function (idempotent, also registered as cleanup)
// tears the whole stack down — a test "restarts the daemon" by invoking
// it and building a fresh stack on the same dir. The teardown must be
// complete before reopening: the catalog holds an exclusive directory
// lock, exactly as two live daemons on one -data-dir are refused.
func newDatasetServer(t *testing.T, dir string) (*httptest.Server, *store.Store, func()) {
	return newDatasetServerOpts(t, dir, dataset.Options{}, Config{})
}

// newDatasetServerOpts is newDatasetServer with catalog and server
// config — the remote-backend and error-classification tests need both.
func newDatasetServerOpts(t *testing.T, dir string, opts dataset.Options, cfg Config) (*httptest.Server, *store.Store, func()) {
	t.Helper()
	cat, err := dataset.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(store.Config{MaxConcurrent: 4, Catalog: cat})
	cfg.Datasets = cat
	ts := httptest.NewServer(New(st, cfg))
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		st.Close()
		cat.Close()
	}
	t.Cleanup(shutdown)
	return ts, st, shutdown
}

// uploadBody POSTs raw bytes to url and decodes the JSON response.
func uploadBody(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// diameterFields are the deterministic parts of a DiameterResponse — all
// of it except wall-clock time and cache provenance.
type diameterFields struct {
	Estimate         float64
	QuotientDiameter float64
	Radius           float64
	QuotientNodes    int
	QuotientEdges    int
	NumClusters      int
	Stages           int
	Metrics          bsp.Snapshot
}

func fieldsOf(r DiameterResponse) diameterFields {
	return diameterFields{
		Estimate:         r.Estimate,
		QuotientDiameter: r.QuotientDiameter,
		Radius:           r.Radius,
		QuotientNodes:    r.QuotientNodes,
		QuotientEdges:    r.QuotientEdges,
		NumClusters:      r.NumClusters,
		Stages:           r.Stages,
		Metrics:          r.Metrics,
	}
}

// TestDatasetIngestSurvivesRestart is the acceptance scenario: ingest over
// HTTP, query, tear the whole serving stack down, rebuild it over the same
// -data-dir, and observe the identical diameter answer with no re-upload —
// the graph faults in from the catalog lazily.
func TestDatasetIngestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _, shutdown1 := newDatasetServer(t, dir)

	g, err := gen.FromSpec("road:16", 5)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	zw := gzip.NewWriter(&el)
	if err := gio.WriteEdgeList(zw, g); err != nil {
		t.Fatal(err)
	}
	zw.Close()

	var info dataset.Info
	code := uploadBody(t, ts1.URL+"/v2/datasets?name=roadnet&source=test", el.Bytes(), &info)
	if code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}
	if info.Format != dataset.FormatEdgeList || info.NumEdges != g.NumEdges() {
		t.Fatalf("ingest info %+v", info)
	}

	query := map[string]any{"graph": "roadnet", "seed": 9}
	var before DiameterResponse
	if code := doJSON(t, "POST", ts1.URL+"/v1/diameter", query, &before); code != http.StatusOK {
		t.Fatalf("pre-restart diameter status %d", code)
	}

	// "Restart": tear the first stack down entirely (releasing its
	// catalog lock), then build a fresh catalog, store, and server on the
	// same data directory. No graphs are registered, nothing is preloaded.
	shutdown1()
	ts2, st2, _ := newDatasetServer(t, dir)
	if len(st2.Graphs()) != 0 {
		t.Fatal("fresh store unexpectedly has graphs")
	}
	var after DiameterResponse
	if code := doJSON(t, "POST", ts2.URL+"/v1/diameter", query, &after); code != http.StatusOK {
		t.Fatalf("post-restart diameter status %d", code)
	}
	if fieldsOf(before) != fieldsOf(after) {
		t.Fatalf("restart changed the answer:\n before %+v\n after  %+v", fieldsOf(before), fieldsOf(after))
	}
	if after.Cached {
		t.Fatal("post-restart query claims cached (cache is per-process)")
	}
}

func TestDatasetEndpointsLifecycle(t *testing.T) {
	ts, st, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:10", 2)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}

	if code := uploadBody(t, ts.URL+"/v2/datasets?name=m", el.Bytes(), nil); code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}
	// Missing name parameter is a 400.
	if code := uploadBody(t, ts.URL+"/v2/datasets", el.Bytes(), nil); code != http.StatusBadRequest {
		t.Fatalf("nameless ingest status %d", code)
	}

	var list struct {
		Datasets   []dataset.Info `json:"datasets"`
		TotalBytes int64          `json:"totalBytes"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "m" || list.TotalBytes == 0 {
		t.Fatalf("list %+v", list)
	}

	var info dataset.Info
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/m", nil, &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.SHA256 == "" || info.NumNodes != 100 {
		t.Fatalf("info %+v", info)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/ghost", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing info status %d", code)
	}

	// Explicit load registers the graph without a compute query.
	var ginfo store.GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v2/datasets/m/load", nil, &ginfo); code != http.StatusOK {
		t.Fatalf("load status %d", code)
	}
	if _, _, ok := st.Graph("m"); !ok {
		t.Fatal("load endpoint did not register the graph")
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v2/datasets/m", nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/m", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted dataset still listed: %d", code)
	}
	// The already-loaded graph keeps serving (unlink-while-mapped safety).
	var resp DiameterResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter", map[string]any{"graph": "m"}, &resp); code != http.StatusOK {
		t.Fatalf("query after dataset delete: status %d", code)
	}
}

func TestDatasetEndpointsWithoutCatalog(t *testing.T) {
	ts, _ := newTestServer(t) // no -data-dir equivalent
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v2/datasets?name=x"},
		{"GET", "/v2/datasets"},
		{"GET", "/v2/datasets/x"},
		{"DELETE", "/v2/datasets/x"},
		{"POST", "/v2/datasets/x/load"},
		{"GET", "/v2/blobs"},
		{"GET", "/v2/blobs/" + strings.Repeat("ab", 32)},
	} {
		if code := doJSON(t, probe.method, ts.URL+probe.path, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without catalog: status %d, want 503", probe.method, probe.path, code)
		}
	}
}

// TestIngestErrorStatusClassification pins the bugfix for the 400-for-
// everything ingest path: clients must be able to distinguish their own
// bad bytes (400) from an oversized body (413), a snapshot the catalog
// cannot hold (507), and genuine server faults (500).
func TestIngestErrorStatusClassification(t *testing.T) {
	g, err := gen.FromSpec("mesh:12", 3)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}

	t.Run("BadBytesAre400", func(t *testing.T) {
		ts, _, _ := newDatasetServer(t, t.TempDir())
		// Garbage that classifies as an edge list but cannot parse.
		if code := uploadBody(t, ts.URL+"/v2/datasets?name=x", []byte("definitely not a graph\n"), nil); code != http.StatusBadRequest {
			t.Fatalf("garbage body status %d, want 400", code)
		}
		// A gzip stream with a corrupted CRC trailer (the compressed
		// payload itself still inflates).
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if err := gio.WriteBinary(zw, g); err != nil {
			t.Fatal(err)
		}
		zw.Close()
		corrupt := gz.Bytes()
		corrupt[len(corrupt)-8] ^= 0x01
		if code := uploadBody(t, ts.URL+"/v2/datasets?name=x", corrupt, nil); code != http.StatusBadRequest {
			t.Fatalf("corrupt gzip trailer status %d, want 400", code)
		}
		// Bad dataset name.
		if code := uploadBody(t, ts.URL+"/v2/datasets?name=..evil", el.Bytes(), nil); code != http.StatusBadRequest {
			t.Fatalf("bad name status %d, want 400", code)
		}
	})

	t.Run("BudgetExhaustionIs507", func(t *testing.T) {
		ts, _, _ := newDatasetServerOpts(t, t.TempDir(), dataset.Options{ByteBudget: 1}, Config{})
		if code := uploadBody(t, ts.URL+"/v2/datasets?name=big", el.Bytes(), nil); code != http.StatusInsufficientStorage {
			t.Fatalf("over-budget ingest status %d, want 507", code)
		}
	})

	t.Run("OversizedBodyIs413", func(t *testing.T) {
		ts, _, _ := newDatasetServerOpts(t, t.TempDir(), dataset.Options{}, Config{MaxDatasetBytes: 64})
		if code := uploadBody(t, ts.URL+"/v2/datasets?name=fat", el.Bytes(), nil); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized ingest status %d, want 413", code)
		}
		// The blob tier's PUT shares the dataset body cap and the 413
		// classification (it is the same "your upload is too big").
		req, err := http.NewRequest(http.MethodPut,
			ts.URL+"/v2/blobs/"+strings.Repeat("ab", 32), bytes.NewReader(make([]byte, 4096)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized blob PUT status %d, want 413", resp.StatusCode)
		}
	})
}

// TestTwoDaemonsSharedBlobBackend is the fleet acceptance scenario: B is
// started with its blob tier pointed at A. A dataset ingested only on A
// is queried on B — B adopts the record from A's catalog, fetches the
// snapshot by content address into its read-through cache, and serves
// bit-identical decomposition metrics. Then B's cached copy is corrupted
// and its integrity sweeper quarantines it without taking B down.
func TestTwoDaemonsSharedBlobBackend(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	tsA, _, _ := newDatasetServer(t, dirA)

	remote, err := dataset.NewRemoteStore(tsA.URL, filepath.Join(dirB, "cache"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tsB, _, _ := newDatasetServerOpts(t, dirB, dataset.Options{Blobs: remote}, Config{})

	// Ingest on A only.
	g, err := gen.FromSpec("road:16", 7)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	zw := gzip.NewWriter(&el)
	if err := gio.WriteEdgeList(zw, g); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	var info dataset.Info
	if code := uploadBody(t, tsA.URL+"/v2/datasets?name=shared&source=fleet", el.Bytes(), &info); code != http.StatusCreated {
		t.Fatalf("ingest on A: status %d", code)
	}

	// Query the SAME name on both daemons; answers must agree exactly.
	query := map[string]any{"graph": "shared", "seed": 11}
	var onA, onB DiameterResponse
	if code := doJSON(t, "POST", tsA.URL+"/v1/diameter", query, &onA); code != http.StatusOK {
		t.Fatalf("diameter on A: status %d", code)
	}
	if code := doJSON(t, "POST", tsB.URL+"/v1/diameter", query, &onB); code != http.StatusOK {
		t.Fatalf("diameter on B (never ingested there): status %d", code)
	}
	if fieldsOf(onA) != fieldsOf(onB) {
		t.Fatalf("fleet answers diverge:\n A %+v\n B %+v", fieldsOf(onA), fieldsOf(onB))
	}
	if onB.Cached {
		t.Fatal("B claims a cache hit on its first ever query")
	}

	// B adopted the record into its own manifest with the same address.
	var adopted dataset.Info
	if code := doJSON(t, "GET", tsB.URL+"/v2/datasets/shared", nil, &adopted); code != http.StatusOK {
		t.Fatalf("B did not adopt the dataset record: status %d", code)
	}
	if adopted.SHA256 != info.SHA256 {
		t.Fatalf("adopted record sha %s != ingested %s", adopted.SHA256, info.SHA256)
	}
	// And the blob was materialized in B's cache, byte-identical to A's.
	cached, err := os.ReadFile(filepath.Join(dirB, "cache", info.SHA256+".gds"))
	if err != nil {
		t.Fatalf("B's read-through cache is empty: %v", err)
	}
	original, err := os.ReadFile(filepath.Join(dirA, "snapshots", info.SHA256+".gds"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached, original) {
		t.Fatal("cached blob differs from the tier's copy")
	}

	// Unknown names still 404 on B (adoption must not break not-found).
	if code := doJSON(t, "POST", tsB.URL+"/v1/diameter", map[string]any{"graph": "ghost"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph on B: status %d, want 404", code)
	}

	// Corrupt B's cached copy in place and sweep: the entry quarantines,
	// the daemon keeps serving (resident graph and A's tier untouched).
	catB := stBCatalog(t, tsB)
	flip := make([]byte, 1)
	f, err := os.OpenFile(filepath.Join(dirB, "cache", info.SHA256+".gds"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(flip, 4096+32); err != nil {
		t.Fatal(err)
	}
	flip[0] ^= 0x01
	if _, err := f.WriteAt(flip, 4096+32); err != nil {
		t.Fatal(err)
	}
	f.Close()
	failures := 0
	for _, res := range catB.SweepOnce() {
		if !res.OK && !res.Skipped {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("sweep on B found %d failures, want 1", failures)
	}
	var list struct {
		Sweep dataset.SweepStatus `json:"sweep"`
	}
	if code := doJSON(t, "GET", tsB.URL+"/v2/datasets", nil, &list); code != http.StatusOK {
		t.Fatalf("list on B after sweep: status %d", code)
	}
	if list.Sweep.TotalFailures != 1 || list.Sweep.TotalQuarantined != 1 {
		t.Fatalf("sweep telemetry not surfaced: %+v", list.Sweep)
	}
	// The already-resident graph keeps answering identically, and A is
	// unaffected — quarantine on B never mutates the shared tier.
	var again DiameterResponse
	if code := doJSON(t, "POST", tsB.URL+"/v1/diameter", query, &again); code != http.StatusOK {
		t.Fatalf("B stopped serving after quarantine: status %d", code)
	}
	if fieldsOf(again) != fieldsOf(onA) {
		t.Fatal("B's answer changed after quarantine")
	}
	if _, err := os.Stat(filepath.Join(dirA, "snapshots", info.SHA256+".gds")); err != nil {
		t.Fatalf("quarantine on B touched A's tier: %v", err)
	}
}

// stBCatalog digs the live catalog back out of a test server (reopening
// the directory is impossible while the stack holds its flock).
func stBCatalog(t *testing.T, ts *httptest.Server) *dataset.Catalog {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("test server handler is %T, want *Server", ts.Config.Handler)
	}
	return srv.cfg.Datasets
}

// TestBlobEndpointsServeTier exercises the daemon-side blob protocol the
// remote backend depends on: list, fetch-by-SHA, and 404s.
func TestBlobEndpointsServeTier(t *testing.T) {
	ts, _, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:8", 1)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	var info dataset.Info
	if code := uploadBody(t, ts.URL+"/v2/datasets?name=m", el.Bytes(), &info); code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}

	var blobs struct {
		Blobs []string `json:"blobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/blobs", nil, &blobs); code != http.StatusOK {
		t.Fatalf("blob list status %d", code)
	}
	if len(blobs.Blobs) != 1 || blobs.Blobs[0] != info.SHA256 {
		t.Fatalf("blob list %v, want [%s]", blobs.Blobs, info.SHA256)
	}
	resp, err := http.Get(ts.URL + "/v2/blobs/" + info.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || int64(len(raw)) != info.Bytes {
		t.Fatalf("blob GET: status %d, %d bytes (want %d), err %v", resp.StatusCode, len(raw), info.Bytes, err)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/blobs/"+strings.Repeat("00", 32), nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing blob status %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/blobs/not-a-sha", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed sha status %d, want 400", code)
	}

	// Deleting a blob the node's own manifest references is refused —
	// it would strand the dataset with no safeguard. Dropping the
	// dataset first makes the same delete legal.
	if code := doJSON(t, "DELETE", ts.URL+"/v2/blobs/"+info.SHA256, nil, nil); code != http.StatusConflict {
		t.Fatalf("referenced blob delete status %d, want 409", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v2/datasets/m", nil, nil); code != http.StatusOK {
		t.Fatalf("dataset delete status %d", code)
	}
	// The dataset removal already unlinked the unreferenced blob; a
	// tier-level delete of the now-absent address is a clean no-op.
	if code := doJSON(t, "DELETE", ts.URL+"/v2/blobs/"+info.SHA256, nil, nil); code != http.StatusOK {
		t.Fatalf("unreferenced blob delete status %d, want 200", code)
	}
}
