// Package server exposes the store's decomposition-as-a-service over an
// HTTP/JSON API — the serving tier of graphdiamd.
//
// Endpoints (all JSON):
//
//	POST   /v1/graphs          register a graph: generate from a spec
//	                           ({"name","spec","seed"}) or upload inline
//	                           data ({"name","format","data"} with format
//	                           edgelist | dimacs | metis)
//	GET    /v1/graphs          list registered graphs
//	GET    /v1/graphs/{name}   describe one graph
//	DELETE /v1/graphs/{name}   deregister a graph and drop its results
//	POST   /v1/decompose       run/fetch a CLUSTER(2) decomposition
//	POST   /v1/diameter        run/fetch a CL-DIAM diameter approximation
//	GET    /v1/stats           store counters, cache state, job counts,
//	                           BSP cost totals
//	GET    /healthz            liveness probe (the process is up)
//	GET    /readyz             readiness probe (catalog present, blob
//	                           tier reachable; fleet view attached)
//	GET    /metrics            Prometheus text exposition (mounted when
//	                           Config.Registry is set)
//
//	POST   /v2/jobs            submit an asynchronous computation
//	                           ({"op":"decompose"|"diameter","graph",...params})
//	GET    /v2/jobs            list retained jobs
//	GET    /v2/jobs/{id}       poll one job
//	GET    /v2/jobs/{id}/events  Server-Sent Events progress stream
//	DELETE /v2/jobs/{id}       cancel a job
//
//	POST   /v2/datasets        ingest a graph into the persistent catalog
//	                           (?name=, raw body, format auto-sniffed)
//	GET    /v2/datasets        list cataloged datasets + sweep telemetry
//	GET    /v2/datasets/{name} one dataset's record
//	DELETE /v2/datasets/{name} drop a dataset from the catalog
//	POST   /v2/datasets/{name}/load  fault a dataset into memory now
//	POST   /v2/datasets/{name}/append  stream an edge delta onto the
//	                           dataset's lineage (owner-routed)
//	POST   /v2/datasets/{name}/compact fold the delta chain into a
//	                           fresh snapshot (identity preserved)
//
//	GET    /v2/blobs           list snapshot content addresses
//	GET    /v2/blobs/{sha}     stream one snapshot blob
//	PUT    /v2/blobs/{sha}     store a blob (verified before admission)
//	DELETE /v2/blobs/{sha}     drop a blob's local copy
//
//	POST   /v2/bsp/frames      BSP frame delivery (distributed data plane;
//	                           ?run=&step=&from=, raw body)
//	POST   /v2/distributed/run  start this daemon's rank of a fleet run
//	POST   /v2/distributed/jobs coordinate a fleet-wide computation and
//	                           return the result
//	GET    /v2/distributed     fleet membership (rank, peer URLs)
//
//	GET    /v2/cache/{key}     fleet result-cache probe (peer-to-peer)
//	PUT    /v2/cache/{key}     fleet result-cache push (peer-to-peer)
//	GET    /v2/fleet           query-plane membership + health; with
//	                           ?dataset=<name>, that dataset's owner and
//	                           failover chain
//
// When Config.Fleet is set the server also owner-routes: a request
// placed by dataset name (or by a job ID's home rank) whose rendezvous
// owner is another live member is transparently proxied there, with
// byte-identical responses, SSE streaming, and cancel-on-disconnect
// preserved. See internal/fleet for the placement rules.
//
// Dataset routes (see datasets.go) require the daemon's -data-dir; a
// graph name queried via /v1//v2 compute endpoints that is not resident
// in memory is faulted in from the catalog transparently, so an ingested
// dataset survives restarts with no client-visible difference beyond the
// first query's load time (an O(1) mmap). The blob routes are the server
// side of the shared snapshot tier: a peer daemon started with -blob-url
// pointing here fetches snapshots by content address (read-through
// cached) and resolves unknown dataset names against this catalog, so a
// fleet serves one snapshot set while each node keeps its own manifest.
// Ingest failures are classified: bad client bytes are 400, an over-cap
// body 413, a snapshot too big for the catalog budget 507, and
// server-side disk or backend faults 500.
//
// A v2 job moves through queued → running → done|failed|cancelled; its
// snapshots carry the latest progress (phase, stage, Δ, coverage fraction,
// BSP cost) and, once done, the result. Cancellation is cooperative: the
// BSP engine observes it at the next superstep barrier, so an abort lands
// within one superstep. The v1 compute endpoints are thin synchronous
// wrappers over the same job path — submit, wait, unwrap — so both APIs
// share the store's LRU cache and singleflight deduplication.
//
// Compute responses carry a "cached" flag: true when the result came from
// the store's LRU cache or by joining a concurrent identical request
// (singleflight), false when this request triggered the BSP run. Errors are
// rendered as {"error": "..."} with a matching HTTP status.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"graphdiam/internal/dataset"
	"graphdiam/internal/fleet"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/obs"
	"graphdiam/internal/store"
)

// Config tunes the HTTP layer. Zero values select the defaults.
type Config struct {
	// MaxRequestBytes bounds request bodies (graph uploads dominate).
	// Default 64 MiB.
	MaxRequestBytes int64
	// MaxDatasetBytes separately bounds dataset ingest bodies
	// (POST /v2/datasets), which stream straight into the CSR builder and
	// are legitimately multi-gigabyte for the road networks the paper
	// targets — the general cap would reject them mid-stream. 0 means
	// unlimited: the catalog's own byte budget is the backstop.
	MaxDatasetBytes int64
	// Log receives one structured span record per request (route, status,
	// duration, request_id, tenant, epoch); nil disables request logging.
	Log *slog.Logger
	// Registry, when non-nil, mounts GET /metrics (Prometheus text
	// exposition) and registers the server's graphdiam_http_* family on it.
	Registry *obs.Registry
	// FleetMetrics is the fleet-layer observability bundle shared with the
	// Table/Proxy/Cache; the server records the fleet events only it sees
	// (classified 409s, replica-local serves, drain phases). nil disables.
	FleetMetrics *fleet.Metrics
	// Datasets, when non-nil, enables the /v2/datasets catalog endpoints.
	// It should be the same catalog the store was configured with so
	// ingested datasets are lazily loadable by queries.
	Datasets *dataset.Catalog
	// Fleet, when non-nil, enables owner routing: dataset-placed requests
	// whose rendezvous owner is another live member are transparently
	// forwarded there, and /v2/fleet reports placement. The table should
	// be the daemon's own rank in the shared -peers list.
	Fleet *fleet.Table
	// FleetTransport performs forwarded requests; nil selects
	// http.DefaultTransport. It must not impose a global timeout (SSE
	// streams live as long as their job).
	FleetTransport http.RoundTripper
	// Quotas, when non-nil, enables per-tenant admission control on
	// compute-cost requests (429 + Retry-After when a tenant's token
	// bucket empties).
	Quotas *fleet.Quotas
	// Replicas is the read replication factor k: a node that is one of a
	// dataset's top-k live preference members serves v1 computes from its
	// local cache instead of forwarding to the owner. Values <= 1 keep
	// owner-only serving.
	Replicas int
	// OnDrain is called once a POST /v2/fleet/drain sequence finishes
	// (in-flight work done, successors pre-warmed); the daemon uses it to
	// begin its graceful shutdown. nil leaves the process running in the
	// draining state.
	OnDrain func()
	// DrainTimeout bounds how long a drain waits for in-flight work
	// before pre-warming and handing off anyway. Default 30s.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// Server is an http.Handler serving the v1 API on top of a store.
type Server struct {
	st       *store.Store
	cfg      Config
	mux      *http.ServeMux
	proxy    *fleet.Proxy     // non-nil iff cfg.Fleet is set
	metrics  *obs.HTTPMetrics // non-nil iff cfg.Registry is set
	draining atomic.Bool      // set by POST /v2/fleet/drain, surfaced in /readyz
}

// New builds the API handler around st.
func New(st *store.Store, cfg Config) *Server {
	s := &Server{st: st, cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	if s.cfg.Registry != nil {
		s.metrics = obs.NewHTTPMetrics(s.cfg.Registry)
		s.mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	}
	if s.cfg.Fleet != nil {
		s.proxy = &fleet.Proxy{
			Transport: s.cfg.FleetTransport,
			Table:     s.cfg.Fleet,
			SelfRank:  s.cfg.Fleet.Self(),
			Log:       s.cfg.Log,
			Metrics:   s.cfg.FleetMetrics,
		}
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /v1/decompose", s.handleDecompose)
	s.mux.HandleFunc("POST /v1/diameter", s.handleDiameter)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v2/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v2/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v2/datasets", s.handleIngestDataset)
	s.mux.HandleFunc("GET /v2/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v2/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v2/datasets/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /v2/datasets/{name}/load", s.handleLoadDataset)
	s.mux.HandleFunc("POST /v2/datasets/{name}/append", s.handleAppendDataset)
	s.mux.HandleFunc("POST /v2/datasets/{name}/compact", s.handleCompactDataset)
	bh := s.blobHandler()
	s.mux.Handle("/v2/blobs", bh)
	s.mux.Handle("/v2/blobs/", bh)
	s.mux.HandleFunc("POST /v2/bsp/frames", s.handleBSPFrame)
	s.mux.HandleFunc("POST /v2/distributed/run", s.handleDistributedRun)
	s.mux.HandleFunc("POST /v2/distributed/jobs", s.handleDistributedJob)
	s.mux.HandleFunc("GET /v2/distributed", s.handleDistributedInfo)
	s.mux.HandleFunc("GET /v2/cache/{key}", s.handleFleetCacheGet)
	s.mux.HandleFunc("PUT /v2/cache/{key}", s.handleFleetCachePut)
	s.mux.HandleFunc("GET /v2/fleet", s.handleFleetInfo)
	s.mux.HandleFunc("POST /v2/fleet/config", s.handleFleetConfig)
	s.mux.HandleFunc("POST /v2/fleet/drain", s.handleFleetDrain)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Pure liveness: the process is up. Readiness lives at /readyz.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler: capture the status and latency of
// the whole middleware-plus-handler chain, then emit the metric sample
// and the structured span record. The span logs after the response so it
// carries the real status and duration — for SSE streams that is when
// the stream closes, which is the span's end by any definition.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := s.requestID(w, r)
	route := normalizeRoute(r.URL.Path)
	done := s.metrics.Begin()
	rec := obs.WrapWriter(w)
	start := time.Now()
	s.dispatch(rec, r)
	elapsed := time.Since(start)
	done(route, r.Method, rec.Code())
	if s.cfg.Log != nil {
		attrs := []any{
			"route", route,
			"method", r.Method,
			"status", rec.Code(),
			"duration_ms", durationMS(elapsed),
			"request_id", rid,
		}
		if ds := routeDataset(r.URL.Path); ds != "" {
			attrs = append(attrs, "dataset", ds)
		}
		if tenant := r.Header.Get(fleet.TenantHeader); tenant != "" {
			attrs = append(attrs, "tenant", tenant)
		}
		if s.cfg.Fleet != nil {
			attrs = append(attrs, "epoch", s.cfg.Fleet.Epoch())
		}
		s.cfg.Log.Info("http request", attrs...)
	}
}

// dispatch is the pre-observability request path. The middleware order is
// deliberate: epoch enforcement before anything acts on placement (a
// mis-epoched hop must never be answered), the draining gate before
// admission (rejected work must not charge a tenant), admission control
// before body limits (reject over-rate tenants before reading their
// bytes), body limits before routing (a peeked routing field must ride
// the same cap the handler would), routing last.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	if !s.checkEpoch(w, r) {
		return
	}
	if !s.checkDraining(w, r) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	isDatasetBody := (r.Method == http.MethodPost && r.URL.Path == "/v2/datasets") ||
		(r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v2/datasets/") &&
			strings.HasSuffix(r.URL.Path, "/append")) ||
		(r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v2/blobs/"))
	if isDatasetBody {
		if s.cfg.MaxDatasetBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxDatasetBytes)
		}
	} else {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	}
	if s.routeAway(w, r) {
		return
	}
	s.mux.ServeHTTP(w, r)
}

// AddGraphRequest is the POST /v1/graphs body. Exactly one of Spec or Data
// must be set.
type AddGraphRequest struct {
	// Name registers the graph for later queries.
	Name string `json:"name"`
	// Spec generates a synthetic graph, e.g. "mesh:256", "rmat:16",
	// "road:128", "gnm:10000:80000" (see gen.FromSpec for the grammar).
	Spec string `json:"spec,omitempty"`
	// Seed drives generation (topology and weights).
	Seed uint64 `json:"seed,omitempty"`
	// Format names the encoding of Data: "edgelist" (default), "dimacs",
	// or "metis".
	Format string `json:"format,omitempty"`
	// Data is the inline graph text for uploads.
	Data string `json:"data,omitempty"`
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var req AddGraphRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	var (
		g      *graph.Graph
		source string
		err    error
	)
	switch {
	case req.Spec != "" && req.Data != "":
		writeError(w, http.StatusBadRequest, fmt.Errorf("spec and data are mutually exclusive"))
		return
	case req.Spec != "":
		g, err = gen.FromSpec(req.Spec, req.Seed)
		source = fmt.Sprintf("spec %s seed=%d", req.Spec, req.Seed)
	case req.Data != "":
		g, err = decodeGraphData(req.Format, req.Data)
		source = "upload " + formatName(req.Format)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("one of spec or data is required"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.st.AddGraph(req.Name, g, source)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// decodeGraphData parses inline upload text in the named format.
func decodeGraphData(format, data string) (*graph.Graph, error) {
	r := strings.NewReader(data)
	switch formatName(format) {
	case "edgelist":
		return gio.ReadEdgeList(r)
	case "dimacs":
		return gio.ReadDIMACS(r)
	case "metis":
		return gio.ReadMETIS(r)
	default:
		return nil, fmt.Errorf("unknown format %q (want edgelist, dimacs, or metis)", format)
	}
}

func formatName(format string) string {
	if format == "" {
		return "edgelist"
	}
	return strings.ToLower(format)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.st.Graphs()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, info, ok := s.st.Graph(name)
	if !ok {
		writeError(w, http.StatusNotFound, &store.NotFoundError{Name: name})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.st.RemoveGraph(name) {
		writeError(w, http.StatusNotFound, &store.NotFoundError{Name: name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ComputeRequest is the POST /v1/decompose and /v1/diameter body: the
// target graph plus the full algorithm parameter set (cache key fields).
type ComputeRequest struct {
	Graph string `json:"graph"`
	store.Params
}

// DecomposeResponse wraps a decomposition result with its cache provenance.
type DecomposeResponse struct {
	store.DecomposeResult
	Cached bool `json:"cached"`
}

// DiameterResponse wraps a diameter result with its cache provenance.
type DiameterResponse struct {
	store.DiameterResult
	Cached bool `json:"cached"`
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req ComputeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	final, ok := s.runSyncJob(w, r, store.JobDecompose, req)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, DecomposeResponse{
		DecomposeResult: final.Result.(store.DecomposeResult),
		Cached:          final.Cached,
	})
}

func (s *Server) handleDiameter(w http.ResponseWriter, r *http.Request) {
	var req ComputeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	final, ok := s.runSyncJob(w, r, store.JobDiameter, req)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, DiameterResponse{
		DiameterResult: final.Result.(store.DiameterResult),
		Cached:         final.Cached,
	})
}

// runSyncJob is the v1 compatibility path: submit a job, wait for it, and
// unwrap its outcome to the v1 error mapping. RunJobSync preserves the
// typed error (NotFoundError → 404, context errors → 408, the rest →
// 400, exactly as the pre-job direct path mapped them) and a client
// disconnect while waiting cancels the job. Returns ok=false after
// writing an error response.
func (s *Server) runSyncJob(w http.ResponseWriter, r *http.Request, kind store.JobKind, req ComputeRequest) (store.JobView, bool) {
	final, err := s.st.RunJobSync(r.Context(), kind, req.Graph, req.Params)
	if err != nil {
		writeComputeError(w, err)
		return store.JobView{}, false
	}
	return final, true
}

// JobRequest is the POST /v2/jobs body: the operation, the target graph,
// and the full algorithm parameter set.
type JobRequest struct {
	// Op selects the computation: "decompose" or "diameter".
	Op    string `json:"op"`
	Graph string `json:"graph"`
	store.Params
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	view, err := s.st.SubmitJob(store.JobKind(req.Op), req.Graph, req.Params)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.st.Jobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.st.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q is not registered", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.st.CancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q is not registered", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobEvents streams a job's lifecycle over Server-Sent Events:
// "state" events for queued/running/terminal transitions, "progress"
// events for per-stage snapshots, and a final "done" event carrying the
// terminal JobView before the stream closes. Intermediate events are
// delivered best-effort; the "done" event is always emitted (slow
// consumers may only see the initial snapshot and "done").
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snapshot, events, cancelSub, ok := s.st.SubscribeJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q is not registered", id))
		return
	}
	defer cancelSub()
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Initial snapshot, taken atomically with the subscription, so the
	// consumer needs no separate poll and every later event is newer.
	writeSSE(w, "state", snapshot)
	fl.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				if final, ok := s.st.Job(id); ok {
					writeSSE(w, "done", final)
					fl.Flush()
				}
				return
			}
			writeSSE(w, ev.Type, ev.Job)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one Server-Sent Event with a JSON payload.
func writeSSE(w io.Writer, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"encoding failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.st.Stats())
}

// writeComputeError maps store errors to HTTP statuses.
func writeComputeError(w http.ResponseWriter, err error) {
	var nf *store.NotFoundError
	switch {
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// decodeJSON parses the request body into v, writing a 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	// Reject trailing garbage so "two JSON objects" is not silently half-read.
	if dec.More() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: trailing data"))
		return false
	}
	io.Copy(io.Discard, r.Body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
