// Package server exposes the store's decomposition-as-a-service over an
// HTTP/JSON API — the serving tier of graphdiamd.
//
// Endpoints (all JSON):
//
//	POST   /v1/graphs          register a graph: generate from a spec
//	                           ({"name","spec","seed"}) or upload inline
//	                           data ({"name","format","data"} with format
//	                           edgelist | dimacs | metis)
//	GET    /v1/graphs          list registered graphs
//	GET    /v1/graphs/{name}   describe one graph
//	DELETE /v1/graphs/{name}   deregister a graph and drop its results
//	POST   /v1/decompose       run/fetch a CLUSTER(2) decomposition
//	POST   /v1/diameter        run/fetch a CL-DIAM diameter approximation
//	GET    /v1/stats           store counters, cache state, BSP cost totals
//	GET    /healthz            liveness probe
//
// Compute responses carry a "cached" flag: true when the result came from
// the store's LRU cache or by joining a concurrent identical request
// (singleflight), false when this request triggered the BSP run. Errors are
// rendered as {"error": "..."} with a matching HTTP status.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/graph"
	"graphdiam/internal/store"
)

// Config tunes the HTTP layer. Zero values select the defaults.
type Config struct {
	// MaxRequestBytes bounds request bodies (graph uploads dominate).
	// Default 64 MiB.
	MaxRequestBytes int64
	// Log receives one line per request; nil disables request logging.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// Server is an http.Handler serving the v1 API on top of a store.
type Server struct {
	st  *store.Store
	cfg Config
	mux *http.ServeMux
}

// New builds the API handler around st.
func New(st *store.Store, cfg Config) *Server {
	s := &Server{st: st, cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /v1/decompose", s.handleDecompose)
	s.mux.HandleFunc("POST /v1/diameter", s.handleDiameter)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("%s %s", r.Method, r.URL.Path)
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	s.mux.ServeHTTP(w, r)
}

// AddGraphRequest is the POST /v1/graphs body. Exactly one of Spec or Data
// must be set.
type AddGraphRequest struct {
	// Name registers the graph for later queries.
	Name string `json:"name"`
	// Spec generates a synthetic graph, e.g. "mesh:256", "rmat:16",
	// "road:128", "gnm:10000:80000" (see gen.FromSpec for the grammar).
	Spec string `json:"spec,omitempty"`
	// Seed drives generation (topology and weights).
	Seed uint64 `json:"seed,omitempty"`
	// Format names the encoding of Data: "edgelist" (default), "dimacs",
	// or "metis".
	Format string `json:"format,omitempty"`
	// Data is the inline graph text for uploads.
	Data string `json:"data,omitempty"`
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var req AddGraphRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	var (
		g      *graph.Graph
		source string
		err    error
	)
	switch {
	case req.Spec != "" && req.Data != "":
		writeError(w, http.StatusBadRequest, fmt.Errorf("spec and data are mutually exclusive"))
		return
	case req.Spec != "":
		g, err = gen.FromSpec(req.Spec, req.Seed)
		source = fmt.Sprintf("spec %s seed=%d", req.Spec, req.Seed)
	case req.Data != "":
		g, err = decodeGraphData(req.Format, req.Data)
		source = "upload " + formatName(req.Format)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("one of spec or data is required"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.st.AddGraph(req.Name, g, source)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// decodeGraphData parses inline upload text in the named format.
func decodeGraphData(format, data string) (*graph.Graph, error) {
	r := strings.NewReader(data)
	switch formatName(format) {
	case "edgelist":
		return gio.ReadEdgeList(r)
	case "dimacs":
		return gio.ReadDIMACS(r)
	case "metis":
		return gio.ReadMETIS(r)
	default:
		return nil, fmt.Errorf("unknown format %q (want edgelist, dimacs, or metis)", format)
	}
}

func formatName(format string) string {
	if format == "" {
		return "edgelist"
	}
	return strings.ToLower(format)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.st.Graphs()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	_, info, ok := s.st.Graph(name)
	if !ok {
		writeError(w, http.StatusNotFound, &store.NotFoundError{Name: name})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.st.RemoveGraph(name) {
		writeError(w, http.StatusNotFound, &store.NotFoundError{Name: name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ComputeRequest is the POST /v1/decompose and /v1/diameter body: the
// target graph plus the full algorithm parameter set (cache key fields).
type ComputeRequest struct {
	Graph string `json:"graph"`
	store.Params
}

// DecomposeResponse wraps a decomposition result with its cache provenance.
type DecomposeResponse struct {
	store.DecomposeResult
	Cached bool `json:"cached"`
}

// DiameterResponse wraps a diameter result with its cache provenance.
type DiameterResponse struct {
	store.DiameterResult
	Cached bool `json:"cached"`
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req ComputeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	res, cached, err := s.st.Decompose(r.Context(), req.Graph, req.Params)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DecomposeResponse{DecomposeResult: res, Cached: cached})
}

func (s *Server) handleDiameter(w http.ResponseWriter, r *http.Request) {
	var req ComputeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	res, cached, err := s.st.Diameter(r.Context(), req.Graph, req.Params)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DiameterResponse{DiameterResult: res, Cached: cached})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.st.Stats())
}

// writeComputeError maps store errors to HTTP statuses.
func writeComputeError(w http.ResponseWriter, err error) {
	var nf *store.NotFoundError
	switch {
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// decodeJSON parses the request body into v, writing a 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	// Reject trailing garbage so "two JSON objects" is not silently half-read.
	if dec.More() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: trailing data"))
		return false
	}
	io.Copy(io.Discard, r.Body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
