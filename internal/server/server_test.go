package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"graphdiam/internal/store"
)

func newTestServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st := store.New(store.Config{MaxConcurrent: 4})
	ts := httptest.NewServer(New(st, Config{}))
	t.Cleanup(ts.Close)
	return ts, st
}

// doJSON posts body (marshalled) to url and decodes the response into out,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func addSpecGraph(t *testing.T, ts *httptest.Server, name, spec string, seed uint64) {
	t.Helper()
	var info store.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		map[string]any{"name": name, "spec": spec, "seed": seed}, &info)
	if code != http.StatusCreated {
		t.Fatalf("add graph: status %d", code)
	}
	if info.Name != name || info.NumNodes == 0 {
		t.Fatalf("add graph: info %+v", info)
	}
}

func TestEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	addSpecGraph(t, ts, "m", "mesh:16", 1)

	// Decompose.
	var dec DecomposeResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose",
		map[string]any{"graph": "m", "tau": 16, "seed": 5}, &dec); code != http.StatusOK {
		t.Fatalf("decompose: status %d", code)
	}
	if dec.Cached || dec.NumClusters <= 0 || dec.Radius <= 0 {
		t.Fatalf("decompose: %+v", dec)
	}

	// Diameter, twice: the second must be served from the cache with an
	// identical result.
	var d1, d2 DiameterResponse
	body := map[string]any{"graph": "m", "tau": 16, "seed": 5, "workers": 2}
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter", body, &d1); code != http.StatusOK {
		t.Fatalf("diameter: status %d", code)
	}
	if d1.Cached || d1.Estimate <= 0 {
		t.Fatalf("first diameter: %+v", d1)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter", body, &d2); code != http.StatusOK {
		t.Fatalf("repeat diameter: status %d", code)
	}
	if !d2.Cached || d2.Estimate != d1.Estimate || d2.Metrics != d1.Metrics {
		t.Fatalf("repeat diameter not cached or differs: %+v vs %+v", d2, d1)
	}

	// Stats reflect the two computations (decompose + diameter) and one hit.
	var st store.Stats
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Counters.Computations != 2 || st.Counters.Hits != 1 {
		t.Fatalf("stats counters %+v", st.Counters)
	}
	if st.TotalCost.Rounds <= 0 {
		t.Fatalf("stats missing BSP cost: %+v", st.TotalCost)
	}
	if len(st.Graphs) != 1 || st.Graphs[0].Name != "m" {
		t.Fatalf("stats graphs %+v", st.Graphs)
	}
}

// TestConcurrentRequestsShareOneRun is the acceptance-criterion test at the
// HTTP layer: concurrent identical queries cause exactly one BSP run.
func TestConcurrentRequestsShareOneRun(t *testing.T) {
	ts, st := newTestServer(t)
	addSpecGraph(t, ts, "m", "mesh:16", 1)

	const N = 8
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		resps [N]DiameterResponse
	)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			code := doJSON(t, "POST", ts.URL+"/v1/diameter",
				map[string]any{"graph": "m", "tau": 16, "seed": 9, "workers": 2}, &resps[i])
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < N; i++ {
		if resps[i].Estimate != resps[0].Estimate {
			t.Fatalf("request %d returned a different estimate", i)
		}
	}
	if c := st.Stats().Counters.Computations; c != 1 {
		t.Fatalf("want exactly 1 underlying BSP run, got %d", c)
	}
}

func TestUploadEdgeList(t *testing.T) {
	ts, _ := newTestServer(t)
	// A 4-path: diameter 3.
	data := "0 1 1\n1 2 1\n2 3 1\n"
	var info store.GraphInfo
	code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		map[string]any{"name": "p", "format": "edgelist", "data": data}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if info.NumNodes != 4 || info.NumEdges != 3 {
		t.Fatalf("upload info %+v", info)
	}
	var d DiameterResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter",
		map[string]any{"graph": "p", "tau": 4}, &d); code != http.StatusOK {
		t.Fatalf("diameter: status %d", code)
	}
	// CL-DIAM is conservative: estimate ≥ true diameter (3).
	if d.Estimate < 3 {
		t.Fatalf("estimate %v below true diameter 3", d.Estimate)
	}
}

func TestGraphLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	addSpecGraph(t, ts, "a", "path:64", 1)
	addSpecGraph(t, ts, "b", "cycle:64", 1)

	var listing struct {
		Graphs []store.GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs", nil, &listing); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(listing.Graphs) != 2 {
		t.Fatalf("list %+v", listing)
	}

	var info store.GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/a", nil, &info); code != http.StatusOK || info.NumNodes != 64 {
		t.Fatalf("get: status %d info %+v", code, info)
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v1/graphs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/graphs/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
}

func TestErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	addSpecGraph(t, ts, "m", "mesh:8", 1)

	cases := []struct {
		name, method, path string
		body               string
		want               int
	}{
		{"missing name", "POST", "/v1/graphs", `{"spec":"mesh:8"}`, http.StatusBadRequest},
		{"spec and data", "POST", "/v1/graphs", `{"name":"x","spec":"mesh:8","data":"0 1 1"}`, http.StatusBadRequest},
		{"neither spec nor data", "POST", "/v1/graphs", `{"name":"x"}`, http.StatusBadRequest},
		{"bad spec", "POST", "/v1/graphs", `{"name":"x","spec":"nope:1"}`, http.StatusBadRequest},
		{"bad format", "POST", "/v1/graphs", `{"name":"x","format":"xml","data":"hi"}`, http.StatusBadRequest},
		{"malformed json", "POST", "/v1/diameter", `{"graph":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/diameter", `{"graph":"m","bogus":1}`, http.StatusBadRequest},
		{"trailing data", "POST", "/v1/diameter", `{"graph":"m"}{"x":1}`, http.StatusBadRequest},
		{"unregistered graph", "POST", "/v1/diameter", `{"graph":"ghost"}`, http.StatusNotFound},
		{"conflicting params", "POST", "/v1/decompose", `{"graph":"m","cluster2":true,"weightOblivious":true}`, http.StatusBadRequest},
		{"unknown route", "GET", "/v1/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	st := store.New(store.Config{})
	ts := httptest.NewServer(New(st, Config{MaxRequestBytes: 128}))
	defer ts.Close()
	big := fmt.Sprintf(`{"name":"x","format":"edgelist","data":%q}`,
		strings.Repeat("0 1 1\n", 100))
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
}
