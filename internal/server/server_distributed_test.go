package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/store"
)

// newFleet boots n daemons (store + HTTP server each) wired into one
// distributed fleet over loopback. The graph g, when non-nil, is
// registered on the daemons whose index is in haveGraph (nil = all) —
// withholding it from one daemon models a peer that fails its run
// immediately, the server-layer analogue of mid-run peer death.
func newFleet(t *testing.T, n int, g *graph.Graph, haveGraph map[int]bool, barrier time.Duration) ([]*store.Store, []*httptest.Server) {
	t.Helper()
	dcs := make([]*store.DistributedConfig, n)
	sts := make([]*store.Store, n)
	srvs := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		dcs[i] = &store.DistributedConfig{Rank: i, BarrierTimeout: barrier}
		sts[i] = store.New(store.Config{Distributed: dcs[i]})
		srvs[i] = httptest.NewServer(New(sts[i], Config{}))
		urls[i] = srvs[i].URL
	}
	for i := 0; i < n; i++ {
		dcs[i].Peers = urls // rank order = boot order
	}
	if g != nil {
		for i := 0; i < n; i++ {
			if haveGraph == nil || haveGraph[i] {
				if _, err := sts[i].AddGraph("g", g, "test"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			srvs[i].Close()
			sts[i].Close()
		}
	})
	return sts, srvs
}

func postDistributedJob(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/distributed/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestDistributedJobMatchesSingleNode: a two-daemon fleet run through the
// public API returns the same decomposition — results and the paper's
// accounting — as one daemon computing alone with the same worker count.
func TestDistributedJobMatchesSingleNode(t *testing.T) {
	g, err := gen.FromSpec("mesh:20", 5)
	if err != nil {
		t.Fatal(err)
	}
	p := store.Params{Tau: 16, Seed: 42, Workers: 8}

	single := store.New(store.Config{})
	defer single.Close()
	if _, err := single.AddGraph("g", g, "test"); err != nil {
		t.Fatal(err)
	}
	want, _, err := single.Decompose(t.Context(), "g", p)
	if err != nil {
		t.Fatal(err)
	}

	_, srvs := newFleet(t, 2, g, nil, 0)
	resp, body := postDistributedJob(t, srvs[0].URL, map[string]any{
		"op": "decompose", "graph": "g", "tau": 16, "seed": 42, "workers": 8,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed job: HTTP %d: %s", resp.StatusCode, body)
	}
	var got store.DecomposeResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Metrics != want.Metrics {
		t.Errorf("metrics diverged: fleet %+v vs single-node %+v", got.Metrics, want.Metrics)
	}
	if got.NumClusters != want.NumClusters || got.Radius != want.Radius ||
		got.Stages != want.Stages || got.MinCluster != want.MinCluster || got.MaxCluster != want.MaxCluster {
		t.Errorf("result diverged: fleet %+v vs single-node %+v", got, want)
	}
}

// TestDistributedPeerFailureFailsJob: when a peer's participant dies (here:
// its run fails at once because the graph is missing on that daemon), the
// coordinator's job must fail with a gateway-classified error — not hang —
// and shutting the fleet down afterwards must drain every goroutine the
// aborted run spawned.
func TestDistributedPeerFailureFailsJob(t *testing.T) {
	g, err := gen.FromSpec("mesh:12", 5)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	sts, srvs := newFleet(t, 2, g, map[int]bool{0: true}, 300*time.Millisecond)
	resp, body := postDistributedJob(t, srvs[0].URL, map[string]any{
		"op": "decompose", "graph": "g", "tau": 16, "seed": 42, "workers": 4,
	})
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("peer failure: HTTP %d (want 502/504): %s", resp.StatusCode, body)
	}
	// Fleet teardown must join the dead participant's goroutine and the
	// coordinator's transport helpers (the PR 2 cancel-drain contract).
	for i := range sts {
		srvs[i].Close()
		sts[i].Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain after fleet failure: %d vs baseline %d",
		runtime.NumGoroutine(), baseline)
}

// TestDistributedUnconfigured: a daemon outside any fleet answers the
// control endpoints with 503 (the frames data plane stays mounted and
// simply buffers-and-expires).
func TestDistributedUnconfigured(t *testing.T) {
	st := store.New(store.Config{})
	defer st.Close()
	srv := httptest.NewServer(New(st, Config{}))
	defer srv.Close()
	resp, body := postDistributedJob(t, srv.URL, map[string]any{"op": "decompose", "graph": "g"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured daemon: HTTP %d (want 503): %s", resp.StatusCode, body)
	}
	r2, err := http.Get(srv.URL + "/v2/distributed")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v2/distributed: HTTP %d (want 503)", r2.StatusCode)
	}
	// The frames endpoint accepts deliveries regardless (they expire).
	r3, err := http.Post(srv.URL+"/v2/bsp/frames?run=x&step=0&from=1", "application/octet-stream", bytes.NewReader([]byte("blob")))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNoContent {
		t.Fatalf("frame delivery: HTTP %d (want 204)", r3.StatusCode)
	}
}
