package server

import (
	"strings"
	"time"
)

// Request observability: route-pattern normalization for the metric label
// and the structured per-request span line. The route label must be the
// *pattern*, never the raw path — dataset names are bounded operator
// vocabulary and acceptable in logs, but job IDs, blob SHAs, and cache
// keys are unbounded and would explode metric cardinality, so every
// parameterized segment collapses to its placeholder and anything
// unrecognized collapses to "other".

// normalizeRoute maps a request path to its mux-pattern label.
func normalizeRoute(path string) string {
	p := strings.TrimSuffix(path, "/")
	if p == "" {
		p = "/"
	}
	switch p {
	case "/v1/graphs", "/v1/decompose", "/v1/diameter", "/v1/stats",
		"/v2/jobs", "/v2/datasets", "/v2/blobs", "/v2/bsp/frames",
		"/v2/distributed/run", "/v2/distributed/jobs", "/v2/distributed",
		"/v2/fleet", "/v2/fleet/config", "/v2/fleet/drain",
		"/healthz", "/readyz", "/metrics":
		return p
	}
	seg := strings.Split(strings.TrimPrefix(p, "/"), "/")
	switch {
	case len(seg) == 3 && seg[0] == "v1" && seg[1] == "graphs":
		return "/v1/graphs/{name}"
	case len(seg) == 3 && seg[0] == "v2" && seg[1] == "jobs":
		return "/v2/jobs/{id}"
	case len(seg) == 4 && seg[0] == "v2" && seg[1] == "jobs" && seg[3] == "events":
		return "/v2/jobs/{id}/events"
	case len(seg) == 3 && seg[0] == "v2" && seg[1] == "datasets":
		return "/v2/datasets/{name}"
	case len(seg) == 4 && seg[0] == "v2" && seg[1] == "datasets" && seg[3] == "load":
		return "/v2/datasets/{name}/load"
	case len(seg) == 4 && seg[0] == "v2" && seg[1] == "datasets" && seg[3] == "append":
		return "/v2/datasets/{name}/append"
	case len(seg) == 4 && seg[0] == "v2" && seg[1] == "datasets" && seg[3] == "compact":
		return "/v2/datasets/{name}/compact"
	case len(seg) == 3 && seg[0] == "v2" && seg[1] == "blobs":
		return "/v2/blobs/{sha}"
	case len(seg) == 3 && seg[0] == "v2" && seg[1] == "cache":
		return "/v2/cache/{key}"
	}
	return "other"
}

// routeDataset extracts the dataset name from a dataset-keyed path, or ""
// — the one path parameter that is fine to log (bounded vocabulary).
func routeDataset(path string) string {
	p := strings.TrimPrefix(path, "/v2/datasets/")
	if p == path || p == "" {
		return ""
	}
	return strings.SplitN(p, "/", 2)[0]
}

// durationMS renders a duration as fractional milliseconds for log spans.
func durationMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}
