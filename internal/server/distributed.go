package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"graphdiam/internal/bsp/transport"
	"graphdiam/internal/store"
)

// Distributed endpoints (see the package doc for the rest of the API):
//
//	POST /v2/bsp/frames?run=&step=&from=  deliver one BSP frame blob
//	                                      (raw body; the data plane)
//	POST /v2/distributed/run              start this daemon's rank of a
//	                                      fleet run (coordinator fan-out)
//	POST /v2/distributed/jobs             coordinate a fleet run and wait
//	                                      for this daemon's replica of the
//	                                      result
//	GET  /v2/distributed                  fleet membership info
//
// The frames endpoint is mounted unconditionally (frames for unknown runs
// are buffered briefly and expire); the control endpoints answer 503 until
// the daemon is started with -peers/-worker-id, mirroring how the dataset
// endpoints behave without -data-dir.

// handleBSPFrame ingests one frame blob from a remote peer into the
// registry. The body is the opaque frame payload; run identity travels in
// query parameters so the body needs no envelope (and stays zero-copy into
// the inbox).
func (s *Server) handleBSPFrame(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	runID := q.Get("run")
	step, err1 := strconv.ParseUint(q.Get("step"), 10, 64)
	from, err2 := strconv.Atoi(q.Get("from"))
	if runID == "" || err1 != nil || err2 != nil || from < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("frames need run, step, and from parameters"))
		return
	}
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read frame body: %w", err))
		return
	}
	if err := s.st.BSPRegistry().Deliver(runID, step, from, blob); err != nil {
		// Delivery refusals are protocol errors on the sender's part
		// (diverged step window, finished run): 4xx tells the sender's
		// retry loop not to bother.
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDistributedRun starts this daemon's participant for a fleet run.
// It returns 202 immediately: the run proceeds in the background, speaking
// to its peers through the frames endpoint.
func (s *Server) handleDistributedRun(w http.ResponseWriter, r *http.Request) {
	if !s.st.DistributedEnabled() {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("this daemon is not part of a fleet (start with -peers and -worker-id)"))
		return
	}
	var req store.DistJobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.st.StartDistributedParticipant(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"runId": req.RunID, "state": "running"})
}

// handleDistributedJob coordinates one fleet run: fans the job out to the
// other daemons, participates as this daemon's rank, and answers with the
// (fleet-identical) result. Transport failures map to gateway statuses so
// clients can tell a sick fleet from a bad request.
func (s *Server) handleDistributedJob(w http.ResponseWriter, r *http.Request) {
	if !s.st.DistributedEnabled() {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("this daemon is not part of a fleet (start with -peers and -worker-id)"))
		return
	}
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	switch req.Op {
	case "decompose":
		res, err := s.st.DistributedDecompose(r.Context(), req.Graph, req.Params)
		if err != nil {
			writeDistributedError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	case "diameter":
		res, err := s.st.DistributedDiameter(r.Context(), req.Graph, req.Params)
		if err != nil {
			writeDistributedError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q (want decompose or diameter)", req.Op))
	}
}

// handleDistributedInfo reports fleet membership.
func (s *Server) handleDistributedInfo(w http.ResponseWriter, _ *http.Request) {
	rank, peers, ok := s.st.DistributedInfo()
	if !ok {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("this daemon is not part of a fleet (start with -peers and -worker-id)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rank": rank, "peers": peers})
}

// writeDistributedError maps fleet-run failures: peer and barrier faults
// are the fleet's problem (502/504), everything else follows the usual
// compute mapping.
func writeDistributedError(w http.ResponseWriter, err error) {
	var terr *transport.Error
	if errors.As(err, &terr) {
		switch terr.Kind {
		case transport.ErrBarrierTimeout:
			writeError(w, http.StatusGatewayTimeout, err)
			return
		case transport.ErrUnreachable, transport.ErrPeerDown, transport.ErrClosed:
			writeError(w, http.StatusBadGateway, err)
			return
		}
	}
	writeComputeError(w, err)
}
