package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"time"

	"graphdiam/internal/fleet"
)

// The fleet-facing half of the serving tier: owner routing, the fleet
// cache peer endpoints, the liveness/readiness split, request-ID
// propagation, and per-tenant admission control. Everything here is
// inert unless Config.Fleet (routing) or Config.Quotas (admission) is
// set, so a standalone daemon's request path is unchanged.

// requestID ensures the request carries an X-Request-Id — minting one at
// the first hop, preserving the inbound value on routed hops — and
// echoes it on the response so clients can quote it. Returns the ID for
// the request log.
func (s *Server) requestID(w http.ResponseWriter, r *http.Request) string {
	rid := r.Header.Get(fleet.RequestIDHeader)
	if rid == "" {
		rid = fleet.NewRequestID()
		r.Header.Set(fleet.RequestIDHeader, rid)
	}
	w.Header().Set(fleet.RequestIDHeader, rid)
	return rid
}

// admit applies per-tenant admission control to compute-cost requests.
// Requests forwarded by the front door (EdgeHeader) were already charged
// at the edge and pass freely — double-charging a routed request would
// halve every tenant's effective rate. Returns false after writing the
// 429.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Quotas == nil || !fleet.CostsJob(r.Method, r.URL.Path) {
		return true
	}
	if r.Header.Get(fleet.EdgeHeader) != "" || r.Header.Get(fleet.RoutedHeader) != "" {
		return true
	}
	tenant := r.Header.Get(fleet.TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	ok, retry := s.cfg.Quotas.Allow(tenant)
	if ok {
		return true
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q is over its admission rate; retry after %ds", tenant, secs))
	return false
}

// routeAway forwards the request to the fleet member that owns it and
// reports whether it did (or wrote an error). A request that already
// crossed a daemon→daemon hop (RoutedHeader) is always served locally:
// the sender computed ownership from the same shared member list, so a
// second hop could only mean divergent health views — one extra hop is
// the bounded cost of a stale view, a loop is not.
func (s *Server) routeAway(w http.ResponseWriter, r *http.Request) bool {
	if s.proxy == nil || r.Header.Get(fleet.RoutedHeader) != "" {
		return false
	}
	t := s.cfg.Fleet
	d := fleet.Classify(r.Method, r.URL.Path)
	switch d.Class {
	case fleet.RouteJob:
		rank, ok := fleet.JobHomeRank(d.JobID)
		if !ok || rank == t.Self() || rank >= len(t.Members()) || !t.Live(rank) {
			// Pre-fleet ID, our own job, or an unreachable home: serve
			// locally (an absent job 404s exactly as it would at home).
			return false
		}
		s.proxy.Forward(w, r, t.Members()[rank])
		return true
	case fleet.RouteDataset:
		name := d.Dataset
		if name == "" && d.BodyField != "" {
			var err error
			name, err = fleet.PeekBodyField(r, d.BodyField)
			if err != nil {
				fleet.WriteJSONError(w, http.StatusBadRequest, err)
				return true
			}
		}
		if name == "" {
			return false // the handler will produce its usual 400/404
		}
		owner, ok := t.Owner(name)
		if !ok || owner.Rank == t.Self() {
			return false
		}
		s.proxy.Forward(w, r, owner)
		return true
	default: // RouteLocal, RouteAny
		return false
	}
}

// handleFleetCacheGet serves a peer's fleet-cache probe from the local
// LRU (raw bytes, no re-encoding — byte identity across nodes is what
// makes the cache transparent).
func (s *Server) handleFleetCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.st.FleetCacheGet(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet cache miss"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleFleetCachePut accepts a peer's pushed result.
func (s *Server) handleFleetCachePut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read cache body: %w", err))
		return
	}
	if err := s.st.FleetCachePut(r.PathValue("key"), body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ReadyCheck is one readiness probe's outcome.
type ReadyCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyResponse is the GET /readyz payload.
type ReadyResponse struct {
	Status string       `json:"status"` // "ready" | "unready"
	Checks []ReadyCheck `json:"checks"`
	// Fleet is informational: readiness never depends on peers (two nodes
	// each waiting for the other to become ready would deadlock a rolling
	// restart), but operators and the front door want the view.
	Fleet []fleet.MemberStatus `json:"fleet,omitempty"`
}

// blobPinger is the optional deep-reachability probe a blob backend may
// implement (RemoteStore does); backends without it are checked by
// enumerating their local state.
type blobPinger interface {
	Ping(ctx context.Context) error
}

// handleReadyz is the readiness probe: 200 only when this node can
// actually serve (catalog directory present, blob tier answering).
// /healthz stays pure liveness — the process is up — so an unready node
// is routed around, not restarted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Status: "ready"}
	if cat := s.cfg.Datasets; cat != nil {
		check := ReadyCheck{Name: "catalog", OK: true}
		if _, err := os.Stat(cat.Dir()); err != nil {
			check.OK, check.Detail = false, err.Error()
		}
		resp.Checks = append(resp.Checks, check)

		check = ReadyCheck{Name: "blobs", OK: true}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		if p, ok := cat.Blobs().(blobPinger); ok {
			if err := p.Ping(ctx); err != nil {
				check.OK, check.Detail = false, err.Error()
			}
		} else if _, err := cat.Blobs().List(); err != nil {
			check.OK, check.Detail = false, err.Error()
		}
		cancel()
		resp.Checks = append(resp.Checks, check)
	}
	if t := s.cfg.Fleet; t != nil {
		resp.Fleet = t.Snapshot()
	}
	status := http.StatusOK
	for _, c := range resp.Checks {
		if !c.OK {
			resp.Status = "unready"
			status = http.StatusServiceUnavailable
			break
		}
	}
	writeJSON(w, status, resp)
}

// FleetInfoResponse is the GET /v2/fleet payload: membership, and —
// with ?dataset=<name> — where that dataset's queries land.
type FleetInfoResponse struct {
	Self    int                  `json:"self"`
	Members []fleet.MemberStatus `json:"members"`
	Dataset string               `json:"dataset,omitempty"`
	// Owner is the dataset's current owner under this node's health view.
	Owner *fleet.Member `json:"owner,omitempty"`
	// Preference is the dataset's full failover chain, live or not.
	Preference []fleet.Member `json:"preference,omitempty"`
}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	t := s.cfg.Fleet
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode is not enabled (start with -peers)"))
		return
	}
	resp := FleetInfoResponse{Self: t.Self(), Members: t.Snapshot()}
	if ds := r.URL.Query().Get("dataset"); ds != "" {
		resp.Dataset = ds
		resp.Preference = t.Preference(ds)
		if owner, ok := t.Owner(ds); ok {
			resp.Owner = &owner
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
