package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"graphdiam/internal/fleet"
	"graphdiam/internal/store"
)

// The fleet-facing half of the serving tier: owner routing, the fleet
// cache peer endpoints, the liveness/readiness split, request-ID
// propagation, per-tenant admission control, and elastic membership
// (epoch enforcement, config pushes, graceful drain). Everything here is
// inert unless Config.Fleet (routing) or Config.Quotas (admission) is
// set, so a standalone daemon's request path is unchanged.

// requestID ensures the request carries an X-Request-Id — minting one at
// the first hop, preserving the inbound value on routed hops — and
// echoes it on the response so clients can quote it. Returns the ID for
// the request log.
func (s *Server) requestID(w http.ResponseWriter, r *http.Request) string {
	rid := r.Header.Get(fleet.RequestIDHeader)
	if rid == "" {
		rid = fleet.NewRequestID()
		r.Header.Set(fleet.RequestIDHeader, rid)
	}
	w.Header().Set(fleet.RequestIDHeader, rid)
	return rid
}

// epochExempt lists the paths a node must answer regardless of placement
// epoch: health and membership endpoints are how divergent views get
// *repaired*, so rejecting them would wedge convergence.
func epochExempt(path string) bool {
	return path == "/healthz" || path == "/readyz" ||
		path == "/v2/fleet" || strings.HasPrefix(path, "/v2/fleet/")
}

// checkEpoch enforces the placement-epoch contract on fleet-internal
// hops: a request stamped with an epoch other than this node's view is
// rejected with a classified 409 carrying our view, never answered under
// divergent placement. Unstamped requests (external clients) pass.
// Returns false after writing the rejection.
func (s *Server) checkEpoch(w http.ResponseWriter, r *http.Request) bool {
	t := s.cfg.Fleet
	if t == nil || epochExempt(r.URL.Path) {
		return true
	}
	e, ok := fleet.RequestEpoch(r.Header)
	if !ok || e == t.Epoch() {
		return true
	}
	s.cfg.FleetMetrics.EpochMismatchRejected()
	fleet.WriteEpochMismatch(w, strconv.FormatUint(e, 10), t.View())
	return false
}

// checkDraining rejects new compute work while the node drains, with the
// classified 503 + Retry-After the proxies turn into a failover. Reads,
// cache probes, and routing all keep working — drain degrades a node to
// read-only, it does not black-hole it. Returns false after writing.
func (s *Server) checkDraining(w http.ResponseWriter, r *http.Request) bool {
	if !s.draining.Load() || !fleet.CostsJob(r.Method, r.URL.Path) {
		return true
	}
	fleet.WriteDraining(w, 2)
	return false
}

// admit applies per-tenant admission control to compute-cost requests.
// Requests forwarded by the front door (EdgeHeader) were already charged
// at the edge and pass freely — double-charging a routed request would
// halve every tenant's effective rate. Returns false after writing the
// 429.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Quotas == nil || !fleet.CostsJob(r.Method, r.URL.Path) {
		return true
	}
	if r.Header.Get(fleet.EdgeHeader) != "" || r.Header.Get(fleet.RoutedHeader) != "" {
		return true
	}
	tenant := r.Header.Get(fleet.TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	ok, retry := s.cfg.Quotas.Allow(tenant)
	if ok {
		return true
	}
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	s.metrics.Throttled(tenant)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q is over its admission rate; retry after %ds", tenant, secs))
	return false
}

// computePeek is the routing-relevant subset of a compute request body:
// enough to place it (Graph) and to decide whether a replica can serve
// it from local cache (Op + Params).
type computePeek struct {
	Op    string `json:"op"`
	Graph string `json:"graph"`
	Name  string `json:"name"`
	store.Params
}

// peekCompute buffers the request body (bounded by the MaxBytesReader
// already installed), parses the routing-relevant fields, and reinstates
// the body. A non-JSON body yields the zero peek — the handler will
// produce its usual 400.
func peekCompute(r *http.Request) (computePeek, error) {
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return computePeek{}, fmt.Errorf("read request body: %w", err)
	}
	r.Body = io.NopCloser(strings.NewReader(string(body)))
	r.ContentLength = int64(len(body))
	var pk computePeek
	json.Unmarshal(body, &pk)
	return pk, nil
}

// replicaOp maps a compute path to the operation name used in fleet
// cache keys, or "" when the path is not replica-servable. Only the v1
// synchronous compute endpoints qualify: their responses are pure
// functions of (dataset bytes, params), so a replica answering from its
// pushed copy is byte-identical to the owner answering from its LRU.
// Job submissions stay owner-homed — a job's ID embeds the rank that
// created it.
func replicaOp(method, path string) string {
	if method != http.MethodPost {
		return ""
	}
	switch path {
	case "/v1/decompose":
		return string(store.JobDecompose)
	case "/v1/diameter":
		return string(store.JobDiameter)
	default:
		return ""
	}
}

// routeAway forwards the request to the fleet member that owns it and
// reports whether it did (or wrote an error). A request that already
// crossed a daemon→daemon hop (RoutedHeader) is always served locally:
// the sender computed ownership from the same shared placement view, so
// a second hop could only mean divergent health views — one extra hop is
// the bounded cost of a stale view, a loop is not.
//
// With replication factor k>1, a node that is one of the key's top-k
// live preference members serves a v1 compute itself when the result
// already sits in its local cache (a replica push), skipping the hop to
// the owner; on a local miss it still forwards, so computes stay
// single-homed and cross-node singleflight intact.
func (s *Server) routeAway(w http.ResponseWriter, r *http.Request) bool {
	if s.proxy == nil || r.Header.Get(fleet.RoutedHeader) != "" {
		return false
	}
	t := s.cfg.Fleet
	d := fleet.Classify(r.Method, r.URL.Path)
	switch d.Class {
	case fleet.RouteJob:
		rank, ok := fleet.JobHomeRank(d.JobID)
		if !ok || rank == t.Self() || rank >= len(t.Members()) || !t.Live(rank) {
			// Pre-fleet ID, our own job, or an unreachable home: serve
			// locally (an absent job 404s exactly as it would at home).
			return false
		}
		s.proxy.Forward(w, r, t.Members()[rank])
		return true
	case fleet.RouteDataset:
		name := d.Dataset
		var pk computePeek
		if name == "" && d.BodyField != "" {
			var err error
			pk, err = peekCompute(r)
			if err != nil {
				fleet.WriteJSONError(w, http.StatusBadRequest, err)
				return true
			}
			if d.BodyField == "name" {
				name = pk.Name
			} else {
				name = pk.Graph
			}
		}
		if name == "" {
			return false // the handler will produce its usual 400/404
		}
		chain := t.Replicas(name, len(t.Members())) // all live, preference order
		if len(chain) == 0 || chain[0].Rank == t.Self() {
			return false
		}
		if k := s.cfg.Replicas; k > 1 {
			if op := replicaOp(r.Method, r.URL.Path); op != "" {
				// Replica placement follows the cache key's preference chain
				// (that is where Put lands pushes), not the dataset name's.
				if fkey, ok := s.st.FleetKeyFor(name, op, pk.Params); ok && s.st.CachedLocally(name, op, pk.Params) {
					for _, m := range t.Replicas(fkey, k) {
						if m.Rank == t.Self() {
							s.cfg.FleetMetrics.ReplicaLocalServe()
							return false // replica-local hit: serve it here
						}
					}
				}
			}
		}
		if len(chain) > 3 {
			chain = chain[:3] // bound the failover walk; retries are capped anyway
		}
		s.proxy.ForwardChain(w, r, chain)
		return true
	default: // RouteLocal, RouteAny
		return false
	}
}

// handleFleetCacheGet serves a peer's fleet-cache probe from the local
// LRU (raw bytes, no re-encoding — byte identity across nodes is what
// makes the cache transparent).
func (s *Server) handleFleetCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := s.st.FleetCacheGet(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet cache miss"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleFleetCachePut accepts a peer's pushed result.
func (s *Server) handleFleetCachePut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read cache body: %w", err))
		return
	}
	if err := s.st.FleetCachePut(r.PathValue("key"), body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFleetConfig is POST /v2/fleet/config: swap in a newer placement
// view. Rejections (stale epoch, invalid members, a view that would
// orphan this node) are 409s carrying the current view, so a pushing
// peer converges instead of flying blind.
func (s *Server) handleFleetConfig(w http.ResponseWriter, r *http.Request) {
	t := s.cfg.Fleet
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode is not enabled (start with -peers)"))
		return
	}
	fleet.HandleConfigPush(t, w, r)
}

// handleFleetDrain is POST /v2/fleet/drain: flip this node to draining
// (readyz 503, new compute work rejected with the classified 503), then
// in the background wait for in-flight work, pre-warm the successors'
// caches with the hot fleet entries, and hand control to Config.OnDrain
// (the daemon exits clean). Idempotent — a second drain request reports
// the drain already in progress.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fleet == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode is not enabled (start with -peers)"))
		return
	}
	if s.draining.Swap(true) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "already draining"})
		return
	}
	timeout := s.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		t0 := time.Now()
		if err := s.st.WaitIdle(ctx); err != nil && s.cfg.Log != nil {
			s.cfg.Log.Warn("fleet drain proceeding with work still in flight",
				"error", err.Error(), "waited_ms", durationMS(time.Since(t0)))
		}
		s.cfg.FleetMetrics.DrainPhase("wait_idle", time.Since(t0))
		t1 := time.Now()
		warmed := s.st.PrewarmSuccessors(drainPrewarmMax)
		s.cfg.FleetMetrics.DrainPhase("prewarm", time.Since(t1))
		if s.cfg.Log != nil {
			s.cfg.Log.Info("fleet drain complete",
				"prewarmed_entries", warmed, "duration_ms", durationMS(time.Since(t0)))
		}
		if s.cfg.OnDrain != nil {
			s.cfg.OnDrain()
		}
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

// drainPrewarmMax caps how many hot fleet-cache entries a draining node
// hands to its successors — enough to keep the working set warm, bounded
// so drain latency stays dominated by in-flight work, not cache size.
const drainPrewarmMax = 64

// ReadyCheck is one readiness probe's outcome.
type ReadyCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyResponse is the GET /readyz payload.
type ReadyResponse struct {
	Status string       `json:"status"` // "ready" | "unready" | "draining"
	Checks []ReadyCheck `json:"checks"`
	// Fleet is informational: readiness never depends on peers (two nodes
	// each waiting for the other to become ready would deadlock a rolling
	// restart), but operators and the front door want the view.
	Fleet []fleet.MemberStatus `json:"fleet,omitempty"`
	// View advertises this node's placement view. Probes parse it, so a
	// node that missed a config push adopts the newer view within one
	// probe interval (anti-entropy).
	View *fleet.View `json:"view,omitempty"`
}

// blobPinger is the optional deep-reachability probe a blob backend may
// implement (RemoteStore does); backends without it are checked by
// enumerating their local state.
type blobPinger interface {
	Ping(ctx context.Context) error
}

// handleReadyz is the readiness probe: 200 only when this node can
// actually serve (catalog directory present, blob tier answering, not
// draining). /healthz stays pure liveness — the process is up — so an
// unready node is routed around, not restarted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Status: "ready"}
	if cat := s.cfg.Datasets; cat != nil {
		check := ReadyCheck{Name: "catalog", OK: true}
		if _, err := os.Stat(cat.Dir()); err != nil {
			check.OK, check.Detail = false, err.Error()
		}
		resp.Checks = append(resp.Checks, check)

		check = ReadyCheck{Name: "blobs", OK: true}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		if p, ok := cat.Blobs().(blobPinger); ok {
			if err := p.Ping(ctx); err != nil {
				check.OK, check.Detail = false, err.Error()
			}
		} else if _, err := cat.Blobs().List(); err != nil {
			check.OK, check.Detail = false, err.Error()
		}
		cancel()
		resp.Checks = append(resp.Checks, check)
	}
	if t := s.cfg.Fleet; t != nil {
		resp.Fleet = t.Snapshot()
		v := t.View()
		resp.View = &v
	}
	status := http.StatusOK
	for _, c := range resp.Checks {
		if !c.OK {
			resp.Status = "unready"
			status = http.StatusServiceUnavailable
			break
		}
	}
	if s.draining.Load() {
		// Draining outranks ready: the prober must route new work away
		// while the node finishes what it has.
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// FleetInfoResponse is the GET /v2/fleet payload: membership, and —
// with ?dataset=<name> — where that dataset's queries land.
type FleetInfoResponse struct {
	Self    int                  `json:"self"`
	Epoch   uint64               `json:"epoch"`
	Members []fleet.MemberStatus `json:"members"`
	Dataset string               `json:"dataset,omitempty"`
	// Owner is the dataset's current owner under this node's health view.
	Owner *fleet.Member `json:"owner,omitempty"`
	// Preference is the dataset's full failover chain, live or not.
	Preference []fleet.Member `json:"preference,omitempty"`
}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	t := s.cfg.Fleet
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fleet mode is not enabled (start with -peers)"))
		return
	}
	resp := FleetInfoResponse{Self: t.Self(), Epoch: t.Epoch(), Members: t.Snapshot()}
	if ds := r.URL.Query().Get("dataset"); ds != "" {
		resp.Dataset = ds
		resp.Preference = t.Preference(ds)
		if owner, ok := t.Owner(ds); ok {
			resp.Owner = &owner
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
