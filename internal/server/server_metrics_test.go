package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"graphdiam/internal/obs"
	"graphdiam/internal/store"
)

// scrapeMetrics fetches /metrics and parses the text exposition into a
// sample map, validating the lines it walks (comments well-formed, every
// sample line "name[{labels}] value").
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	samples := make(map[string]float64)
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value on %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

func newMetricsServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	st := store.New(store.Config{MaxConcurrent: 4, Metrics: store.NewMetrics(reg)})
	t.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(New(st, Config{Registry: reg}))
	t.Cleanup(ts.Close)
	return ts, st
}

// TestMetricsObserveJobLifecycle drives real compute traffic and checks
// the scrape tells the same story the store's own stats do: the paper-
// accounting counters equal Stats().TotalCost exactly (observed from the
// same snapshots, never recomputed), cache tiers and job outcomes move,
// and no counter ever decreases across scrapes.
func TestMetricsObserveJobLifecycle(t *testing.T) {
	ts, st := newMetricsServer(t)
	before := scrapeMetrics(t, ts.URL)
	addSpecGraph(t, ts, "g", "mesh:12", 7)

	var resp DecomposeResponse
	for i := 0; i < 3; i++ {
		code := doJSON(t, "POST", ts.URL+"/v1/decompose",
			map[string]any{"graph": "g", "tau": 16, "seed": uint64(i + 1)}, &resp)
		if code != http.StatusOK {
			t.Fatalf("decompose %d: status %d", i, code)
		}
	}
	// Repeat the last query: a local LRU hit.
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose",
		map[string]any{"graph": "g", "tau": 16, "seed": uint64(3)}, &resp); code != http.StatusOK {
		t.Fatalf("repeat decompose: status %d", code)
	}

	after := scrapeMetrics(t, ts.URL)

	stats := st.Stats()
	if got := after["graphdiam_bsp_rounds_total"]; got != float64(stats.TotalCost.Rounds) {
		t.Errorf("rounds: metric %v != stats %d (must be observed, not recomputed)", got, stats.TotalCost.Rounds)
	}
	if got := after["graphdiam_bsp_messages_total"]; got != float64(stats.TotalCost.Messages) {
		t.Errorf("messages: metric %v != stats %d", got, stats.TotalCost.Messages)
	}
	if got := after["graphdiam_bsp_updates_total"]; got != float64(stats.TotalCost.Updates) {
		t.Errorf("updates: metric %v != stats %d", got, stats.TotalCost.Updates)
	}

	checks := map[string]float64{
		"graphdiam_store_computations_total":                                            3,
		"graphdiam_store_cache_misses_total":                                            3,
		`graphdiam_store_cache_hits_total{tier="local"}`:                                1,
		`graphdiam_store_jobs_total{state="done"}`:                                      4, // v1 sync path runs through jobs
		`graphdiam_http_requests_total{route="/v1/decompose",method="POST",code="200"}`: 4,
		`graphdiam_http_requests_total{route="/v1/graphs",method="POST",code="201"}`:    1,
	}
	for k, want := range checks {
		if got := after[k]; got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
	if after["graphdiam_store_compute_slots"] != 4 {
		t.Errorf("slot capacity gauge = %v, want 4", after["graphdiam_store_compute_slots"])
	}
	if after[`graphdiam_bsp_superstep_compute_seconds_count`] == 0 {
		t.Error("superstep tracer recorded no compute observations")
	}
	if after[`graphdiam_store_job_seconds_count{state="done"}`] != 4 {
		t.Errorf("job duration histogram count = %v, want 4",
			after[`graphdiam_store_job_seconds_count{state="done"}`])
	}
	if after["go_goroutines"] <= 0 {
		t.Error("runtime gauges not sampled on scrape")
	}

	// Monotonicity across the job lifecycle: every *_total counter present
	// in the first scrape must be <= its value in the second.
	for k, v0 := range before {
		if !strings.Contains(k, "_total") {
			continue
		}
		if v1, ok := after[k]; ok && v1 < v0 {
			t.Errorf("counter %s went backwards: %v -> %v", k, v0, v1)
		}
	}
}

// TestMetricsScrapeDuringLiveJobs scrapes in a tight loop while BSP jobs
// run — with -race this proves exposition is safe against live engines,
// and each scrape must stay internally consistent.
func TestMetricsScrapeDuringLiveJobs(t *testing.T) {
	ts, _ := newMetricsServer(t)
	addSpecGraph(t, ts, "g", "mesh:16", 3)

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := scrapeMetrics(t, ts.URL)
			if inf, cnt := s[`graphdiam_bsp_superstep_compute_seconds_bucket{le="+Inf"}`],
				s["graphdiam_bsp_superstep_compute_seconds_count"]; inf != cnt {
				t.Errorf("inconsistent scrape: +Inf %v != count %v", inf, cnt)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp DiameterResponse
			code := doJSON(t, "POST", ts.URL+"/v1/diameter",
				map[string]any{"graph": "g", "tau": 16, "seed": uint64(i + 1)}, &resp)
			if code != http.StatusOK {
				t.Errorf("diameter %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-scraped

	final := scrapeMetrics(t, ts.URL)
	if final["graphdiam_store_computations_total"] != 6 {
		t.Errorf("computations = %v, want 6", final["graphdiam_store_computations_total"])
	}
	if final["graphdiam_store_compute_slots_busy"] != 0 {
		t.Errorf("slots busy gauge stuck at %v after idle", final["graphdiam_store_compute_slots_busy"])
	}
}

// TestNormalizeRoute pins the cardinality contract: parameterized
// segments collapse to placeholders, unknown paths to "other".
func TestNormalizeRoute(t *testing.T) {
	cases := map[string]string{
		"/v1/decompose":           "/v1/decompose",
		"/v1/graphs":              "/v1/graphs",
		"/v1/graphs/usa-road":     "/v1/graphs/{name}",
		"/v2/jobs/j-abc123":       "/v2/jobs/{id}",
		"/v2/jobs/j-1/events":     "/v2/jobs/{id}/events",
		"/v2/datasets/usa":        "/v2/datasets/{name}",
		"/v2/datasets/usa/load":   "/v2/datasets/{name}/load",
		"/v2/blobs/deadbeef":      "/v2/blobs/{sha}",
		"/v2/cache/abc%7Cdelta=2": "/v2/cache/{key}",
		"/metrics":                "/metrics",
		"/v2/fleet/drain":         "/v2/fleet/drain",
		"/completely/unknown":     "other",
		"/v2/jobs/j-1/extra/deep": "other",
	}
	for path, want := range cases {
		if got := normalizeRoute(path); got != want {
			t.Errorf("normalizeRoute(%q) = %q, want %q", path, got, want)
		}
	}
}
