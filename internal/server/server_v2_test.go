package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphdiam/internal/store"
)

func waitForHTTP(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestJobsAsyncLifecycle drives the v2 happy path: submit, list, poll to
// completion, and check that the result matches the synchronous v1 answer
// byte for byte (same store, same cache).
func TestJobsAsyncLifecycle(t *testing.T) {
	ts, st := newTestServer(t)
	t.Cleanup(st.Close)
	addSpecGraph(t, ts, "m", "mesh:16", 1)

	var job store.JobView
	code := doJSON(t, "POST", ts.URL+"/v2/jobs",
		map[string]any{"op": "diameter", "graph": "m", "tau": 16, "seed": 5, "workers": 2}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if job.ID == "" || job.Kind != store.JobDiameter {
		t.Fatalf("submit view %+v", job)
	}

	var listing struct {
		Jobs []store.JobView `json:"jobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v2/jobs", nil, &listing); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != job.ID {
		t.Fatalf("listing %+v", listing)
	}

	// Poll until terminal.
	var final store.JobView
	waitForHTTP(t, "job terminal", func() bool {
		if code := doJSON(t, "GET", ts.URL+"/v2/jobs/"+job.ID, nil, &final); code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		return final.State.Terminal()
	})
	if final.State != store.JobDone || final.Cached {
		t.Fatalf("final %+v", final)
	}

	// v1 with identical params is a cache hit returning the same numbers.
	var d DiameterResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/diameter",
		map[string]any{"graph": "m", "tau": 16, "seed": 5, "workers": 2}, &d); code != http.StatusOK {
		t.Fatalf("v1 after job: status %d", code)
	}
	if !d.Cached {
		t.Fatal("v1 request after identical job should hit the cache")
	}
	// Compare via re-marshalled job result (it decoded as map[string]any).
	jb, _ := json.Marshal(final.Result)
	var jobRes store.DiameterResult
	if err := json.Unmarshal(jb, &jobRes); err != nil {
		t.Fatal(err)
	}
	if jobRes.Estimate != d.Estimate || jobRes.Metrics != d.Metrics {
		t.Fatalf("job result %+v differs from v1 result %+v", jobRes, d.DiameterResult)
	}
	if c := st.Stats().Counters.Computations; c != 1 {
		t.Fatalf("want 1 BSP run across v2+v1, got %d", c)
	}
}

// TestJobCancelOverHTTP: a long decompose submitted via POST /v2/jobs is
// cancelled via DELETE and reaches the cancelled state with partial
// coverage.
func TestJobCancelOverHTTP(t *testing.T) {
	ts, st := newTestServer(t)
	t.Cleanup(st.Close)
	// A long unit path decomposes in O(n) supersteps — a wide cancel window.
	addSpecGraph(t, ts, "usa", "path:300000", 7)

	var job store.JobView
	if code := doJSON(t, "POST", ts.URL+"/v2/jobs",
		map[string]any{"op": "decompose", "graph": "usa", "tau": 2, "workers": 2}, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitForHTTP(t, "first progress", func() bool {
		var v store.JobView
		doJSON(t, "GET", ts.URL+"/v2/jobs/"+job.ID, nil, &v)
		return v.Progress != nil
	})
	if code := doJSON(t, "DELETE", ts.URL+"/v2/jobs/"+job.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	var final store.JobView
	waitForHTTP(t, "cancelled", func() bool {
		doJSON(t, "GET", ts.URL+"/v2/jobs/"+job.ID, nil, &final)
		return final.State.Terminal()
	})
	if final.State != store.JobCancelled {
		t.Fatalf("state %s after DELETE", final.State)
	}
	if final.Progress == nil || final.Progress.Coverage >= 1 {
		t.Fatalf("expected partial coverage on cancelled job, got %+v", final.Progress)
	}
	if final.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
}

// TestJobEventsSSE consumes the /events stream of a running job and checks
// the SSE framing, monotone coverage, and the terminal "done" event.
func TestJobEventsSSE(t *testing.T) {
	ts, st := newTestServer(t)
	t.Cleanup(st.Close)
	// Long-running instance so the SSE connection attaches mid-flight.
	addSpecGraph(t, ts, "usa", "path:200000", 3)

	var job store.JobView
	if code := doJSON(t, "POST", ts.URL+"/v2/jobs",
		map[string]any{"op": "decompose", "graph": "usa", "tau": 2, "seed": 2}, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	// Parse SSE frames until the stream ends.
	type frame struct {
		event string
		job   store.JobView
	}
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur frame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.job); err != nil {
				t.Fatalf("bad SSE payload: %v", err)
			}
		case line == "":
			frames = append(frames, cur)
			cur = frame{}
		}
	}
	if len(frames) < 2 {
		t.Fatalf("want at least initial + done frames, got %d", len(frames))
	}
	last := frames[len(frames)-1]
	if last.event != "done" || last.job.State != store.JobDone {
		t.Fatalf("last frame %q state %s", last.event, last.job.State)
	}
	coverage := -1.0
	progressFrames := 0
	for _, f := range frames {
		if f.event != "progress" || f.job.Progress == nil {
			continue
		}
		progressFrames++
		if c := f.job.Progress.Coverage; c < coverage {
			t.Fatalf("SSE coverage regressed %v -> %v", coverage, c)
		} else {
			coverage = c
		}
	}
	if progressFrames == 0 {
		t.Fatal("no progress frames streamed")
	}
}

func TestJobEndpointErrors(t *testing.T) {
	ts, st := newTestServer(t)
	t.Cleanup(st.Close)
	addSpecGraph(t, ts, "m", "mesh:8", 1)

	cases := []struct {
		name, method, path string
		body               string
		want               int
	}{
		{"bad op", "POST", "/v2/jobs", `{"op":"nope","graph":"m"}`, http.StatusBadRequest},
		{"missing graph", "POST", "/v2/jobs", `{"op":"decompose","graph":"ghost"}`, http.StatusNotFound},
		{"bad params", "POST", "/v2/jobs", `{"op":"diameter","graph":"m","deltaInit":"zzz"}`, http.StatusBadRequest},
		{"unknown job", "GET", "/v2/jobs/job-999999", ``, http.StatusNotFound},
		{"unknown job cancel", "DELETE", "/v2/jobs/job-999999", ``, http.StatusNotFound},
		{"unknown job events", "GET", "/v2/jobs/job-999999/events", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestV1DisconnectCancelsJob: a v1 client that gives up mid-computation
// cancels the underlying job, exactly like the pre-job direct path did.
func TestV1DisconnectCancelsJob(t *testing.T) {
	st := store.New(store.Config{MaxConcurrent: 2})
	t.Cleanup(st.Close)
	ts := httptest.NewServer(New(st, Config{}))
	t.Cleanup(ts.Close)
	addSpecGraph(t, ts, "usa", "path:400000", 7)

	ctxReq, err := http.NewRequest("POST", ts.URL+"/v1/decompose",
		strings.NewReader(`{"graph":"usa","tau":2,"workers":2}`))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 100 * time.Millisecond}
	if _, err := client.Do(ctxReq); err == nil {
		t.Fatal("expected the client timeout to abort the request")
	}
	// The job the v1 wrapper submitted must reach cancelled, not run on.
	waitForHTTP(t, "job cancelled after disconnect", func() bool {
		jobs := st.Jobs()
		return len(jobs) == 1 && jobs[0].State == store.JobCancelled
	})
}
