package server

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"testing"

	"graphdiam/internal/dataset"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/store"
)

// postDelta streams a text delta body to the append endpoint.
func postDelta(t *testing.T, url, name, body string, out any) int {
	t.Helper()
	return uploadBody(t, url+"/v2/datasets/"+name+"/append", []byte(body), out)
}

// decomposeFields strips cache provenance and wall time from a
// DecomposeResponse for exact comparison.
func decomposeFields(r DecomposeResponse) store.DecomposeResult {
	res := r.DecomposeResult
	res.WallMillis = 0
	return res
}

// TestStreamingAppendEndToEnd is the server-tier acceptance scenario:
// ingest, decompose, stream a delta, and observe (a) the head move in
// the catalog record, (b) the maintenance report, (c) the post-append
// decomposition byte-identical to a cold full recompute of the
// materialized graph on an untouched server — never the stale result.
func TestStreamingAppendEndToEnd(t *testing.T) {
	ts, _, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:12", 3)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	var base dataset.Info
	if code := uploadBody(t, ts.URL+"/v2/datasets?name=dyn", el.Bytes(), &base); code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}

	query := map[string]any{"graph": "dyn", "seed": 5}
	var before DecomposeResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose", query, &before); code != http.StatusOK {
		t.Fatalf("pre-append decompose status %d", code)
	}

	// Stream a mixed delta: one removal of a real mesh edge, one
	// long-range insertion.
	var ar AppendResponse
	if code := postDelta(t, ts.URL, "dyn", "- 0 1\n+ 0 143 0.5\n", &ar); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	if !ar.Applied || ar.Inserted != 1 || ar.Removed != 1 {
		t.Fatalf("append response %+v", ar)
	}
	if ar.PrevSHA != base.SHA256 || ar.HeadSHA == base.SHA256 {
		t.Fatalf("head did not move off the base: %+v", ar)
	}
	if ar.ChainLength != 1 {
		t.Fatalf("chain length %d, want 1", ar.ChainLength)
	}
	if ar.Maintenance == nil || ar.Maintenance.Invalidated == 0 {
		t.Fatalf("maintenance report missing or empty: %+v", ar.Maintenance)
	}

	// The catalog record now carries the lineage head.
	var info dataset.Info
	if code := doJSON(t, "GET", ts.URL+"/v2/datasets/dyn", nil, &info); code != http.StatusOK {
		t.Fatalf("info status %d", code)
	}
	if info.SHA256 != ar.HeadSHA || info.ChainLen() != 1 || info.BaseSHA256 != base.SHA256 {
		t.Fatalf("catalog record after append: %+v", info)
	}

	// Query again: must be the new graph's answer, not the stale one.
	var after DecomposeResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose", query, &after); code != http.StatusOK {
		t.Fatalf("post-append decompose status %d", code)
	}
	if decomposeFields(after) == decomposeFields(before) {
		t.Fatal("post-append decomposition identical to pre-append (stale cache)")
	}

	// Ground truth: a second, untouched server stack materializes the
	// same lineage cold and must agree byte for byte.
	ts2, _, _ := newDatasetServer(t, t.TempDir())
	d, err := dataset.DecodeDeltaStream(bytes.NewReader([]byte("- 0 1\n+ 0 143 0.5\n")))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := dataset.ApplyEdgeDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	var mel bytes.Buffer
	if err := gio.WriteBinary(&mel, merged); err != nil {
		t.Fatal(err)
	}
	var mergedInfo dataset.Info
	if code := uploadBody(t, ts2.URL+"/v2/datasets?name=dyn", mel.Bytes(), &mergedInfo); code != http.StatusCreated {
		t.Fatalf("merged ingest status %d", code)
	}
	if mergedInfo.SHA256 != ar.HeadSHA {
		t.Fatalf("one-shot ingest address %s != streamed head %s", mergedInfo.SHA256, ar.HeadSHA)
	}
	var full DecomposeResponse
	if code := doJSON(t, "POST", ts2.URL+"/v1/decompose", query, &full); code != http.StatusOK {
		t.Fatalf("ground-truth decompose status %d", code)
	}
	if decomposeFields(after) != decomposeFields(full) {
		t.Fatalf("maintained decomposition diverges from full recompute:\n got  %+v\n want %+v",
			decomposeFields(after), decomposeFields(full))
	}
}

func TestAppendEndpointGzipAndNoOp(t *testing.T) {
	ts, _, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:10", 1)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	var base dataset.Info
	if code := uploadBody(t, ts.URL+"/v2/datasets?name=z", el.Bytes(), &base); code != http.StatusCreated {
		t.Fatalf("ingest status %d", code)
	}

	// Gzip-wrapped delta body is sniffed like ingest.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("+ 0 99 2.5\n"))
	zw.Close()
	var ar AppendResponse
	if code := uploadBody(t, ts.URL+"/v2/datasets/z/append", gz.Bytes(), &ar); code != http.StatusOK {
		t.Fatalf("gzipped append status %d", code)
	}
	if !ar.Applied || ar.ChainLength != 1 {
		t.Fatalf("gzipped append %+v", ar)
	}

	// A no-op delta (removing an absent edge) keeps the head, stores
	// nothing, and reports no maintenance.
	var noop AppendResponse
	if code := postDelta(t, ts.URL, "z", "- 0 98\n", &noop); code != http.StatusOK {
		t.Fatalf("no-op append status %d", code)
	}
	if noop.Applied || noop.HeadSHA != ar.HeadSHA || noop.ChainLength != 1 {
		t.Fatalf("no-op append %+v", noop)
	}
	if noop.Maintenance != nil {
		t.Fatalf("no-op append carried maintenance %+v", noop.Maintenance)
	}
}

func TestAppendEndpointErrorClassification(t *testing.T) {
	ts, _, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:8", 1)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if code := uploadBody(t, ts.URL+"/v2/datasets?name=e", el.Bytes(), nil); code != http.StatusCreated {
		t.Fatal("ingest failed")
	}

	// Malformed records are the client's fault.
	if code := postDelta(t, ts.URL, "e", "not a delta\n", nil); code != http.StatusBadRequest {
		t.Fatalf("garbage delta status %d, want 400", code)
	}
	if code := postDelta(t, ts.URL, "e", "+ 1 1 3\n", nil); code != http.StatusBadRequest {
		t.Fatalf("self-loop delta status %d, want 400", code)
	}
	// Appending to a dataset that does not exist is 404.
	if code := postDelta(t, ts.URL, "ghost", "+ 0 1 1\n", nil); code != http.StatusNotFound {
		t.Fatalf("append to missing dataset status %d, want 404", code)
	}
	// Compacting a missing dataset is 404 too.
	if code := doJSON(t, "POST", ts.URL+"/v2/datasets/ghost/compact", nil, nil); code != http.StatusNotFound {
		t.Fatalf("compact missing dataset status %d, want 404", code)
	}
	// Without a catalog, both routes answer 503 like their siblings.
	bare, _ := newTestServer(t)
	if code := uploadBody(t, bare.URL+"/v2/datasets/e/append", []byte("+ 0 1 1\n"), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("append without catalog status %d, want 503", code)
	}
	if code := doJSON(t, "POST", bare.URL+"/v2/datasets/e/compact", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("compact without catalog status %d, want 503", code)
	}
}

func TestAppendEndpointBodyCap(t *testing.T) {
	ts, _, _ := newDatasetServerOpts(t, t.TempDir(), dataset.Options{}, Config{MaxDatasetBytes: 32})
	// The append body shares MaxDatasetBytes with ingest: over-cap is 413.
	big := bytes.Repeat([]byte("+ 1 2 3\n"), 64)
	if code := uploadBody(t, ts.URL+"/v2/datasets/x/append", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized append status %d, want 413", code)
	}
}

func TestCompactEndpointPreservesIdentity(t *testing.T) {
	ts, st, _ := newDatasetServer(t, t.TempDir())
	g, err := gen.FromSpec("mesh:12", 3)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if code := uploadBody(t, ts.URL+"/v2/datasets?name=c", el.Bytes(), nil); code != http.StatusCreated {
		t.Fatal("ingest failed")
	}
	var ar AppendResponse
	if code := postDelta(t, ts.URL, "c", "+ 0 143 0.5\n", &ar); code != http.StatusOK || !ar.Applied {
		t.Fatalf("append status %d (%+v)", code, ar)
	}

	// Warm the result cache on the lineage head.
	query := map[string]any{"graph": "c", "seed": 7}
	var warm DecomposeResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose", query, &warm); code != http.StatusOK {
		t.Fatalf("decompose status %d", code)
	}

	var cr struct {
		Dataset     string `json:"dataset"`
		Compacted   bool   `json:"compacted"`
		HeadSHA     string `json:"headSha"`
		ChainLength int    `json:"chainLength"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v2/datasets/c/compact", nil, &cr); code != http.StatusOK {
		t.Fatalf("compact status %d", code)
	}
	if !cr.Compacted || cr.HeadSHA != ar.HeadSHA || cr.ChainLength != 0 {
		t.Fatalf("compact response %+v, want chain folded under head %s", cr, ar.HeadSHA)
	}

	// Identity survived: the cached decomposition is still served (no
	// invalidation), and the store's registered graph is untouched.
	var again DecomposeResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/decompose", query, &again); code != http.StatusOK {
		t.Fatalf("post-compact decompose status %d", code)
	}
	if !again.Cached {
		t.Fatal("compaction invalidated the cache despite the head being preserved")
	}
	if decomposeFields(again) != decomposeFields(warm) {
		t.Fatal("compaction changed the decomposition")
	}
	if _, _, ok := st.Graph("c"); !ok {
		t.Fatal("compaction deregistered the graph")
	}
}
