package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"graphdiam/internal/fleet"
	"graphdiam/internal/store"
)

// Elastic-membership tests: the epoch-stamped config endpoint, the epoch
// middleware, graceful drain with successor pre-warming, and k-replica
// local serving.

// rawGet GETs a URL with optional headers and returns status, body, and
// response headers.
func rawGet(t *testing.T, url string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// memberURLs extracts the table's member URLs in rank order.
func memberURLs(tab *fleet.Table) []string {
	ms := tab.Members()
	urls := make([]string, len(ms))
	for i, m := range ms {
		urls[i] = m.URL
	}
	return urls
}

// TestFleetConfigEndpoint: POST /v2/fleet/config swaps in a strictly
// newer view (visible in /v2/fleet), rejects a stale epoch with a 409
// carrying the current view, and rejects a view that would orphan the
// node itself — keeping the old view — which is the guard against a
// fat-fingered member list taking a node out of its own placement.
func TestFleetConfigEndpoint(t *testing.T) {
	ds := newQueryFleet(t, 2, false)
	urls := memberURLs(ds[0].tab)

	push := func(v fleet.View) (int, []byte) {
		t.Helper()
		code, raw, _ := rawPost(t, ds[0].url+"/v2/fleet/config", v, nil)
		return code, raw
	}

	// Grow the fleet under epoch 2.
	code, raw := push(fleet.View{Epoch: 2, Members: append(append([]string{}, urls...), "http://extra:1")})
	if code != http.StatusOK {
		t.Fatalf("grow push: status %d: %s", code, raw)
	}
	code, raw, _ = rawGet(t, ds[0].url+"/v2/fleet", nil)
	if code != http.StatusOK {
		t.Fatalf("/v2/fleet: status %d", code)
	}
	var info FleetInfoResponse
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 || len(info.Members) != 3 {
		t.Fatalf("after grow: epoch=%d members=%d, want 2/3", info.Epoch, len(info.Members))
	}

	// A stale epoch is a classified 409 carrying the node's current view,
	// so the pusher can converge instead of flying blind.
	code, raw = push(fleet.View{Epoch: 2, Members: urls})
	if code != http.StatusConflict {
		t.Fatalf("stale push: status %d, want 409", code)
	}
	if v, ok := fleet.DecodeViewError(bytes.NewReader(raw)); !ok || v.Epoch != 2 {
		t.Errorf("stale 409 body must carry the current view, got (%+v,%v)", v, ok)
	}

	// A newer view that drops this node's own entry is refused outright
	// and the old view kept.
	code, _ = push(fleet.View{Epoch: 3, Members: []string{"http://x:1", "http://y:1"}})
	if code != http.StatusConflict {
		t.Fatalf("orphan push: status %d, want 409", code)
	}
	if e := ds[0].tab.Epoch(); e != 2 {
		t.Errorf("epoch after refused orphan push = %d, want 2 (old view kept)", e)
	}
}

// TestEpochMiddleware: a fleet-internal hop stamped with a divergent
// placement epoch gets the classified 409 + current view instead of a
// possibly-wrong answer; unstamped (external) requests and the exempt
// repair endpoints pass.
func TestEpochMiddleware(t *testing.T) {
	ds := newQueryFleet(t, 2, false)

	stamp := map[string]string{fleet.EpochHeader: "99"}
	code, raw, hdr := rawGet(t, ds[0].url+"/v1/graphs/nope", stamp)
	if code != http.StatusConflict {
		t.Fatalf("stamped mismatch: status %d, want 409", code)
	}
	if got := hdr.Get(fleet.ErrClassHeader); got != fleet.ErrClassEpochMismatch {
		t.Errorf("%s = %q, want %q", fleet.ErrClassHeader, got, fleet.ErrClassEpochMismatch)
	}
	if v, ok := fleet.DecodeViewError(bytes.NewReader(raw)); !ok || v.Epoch != 1 {
		t.Errorf("409 body must carry the node's view, got (%+v,%v)", v, ok)
	}

	// Unstamped external requests are never epoch-checked.
	if code, _, _ := rawGet(t, ds[0].url+"/v1/graphs/nope", nil); code == http.StatusConflict {
		t.Error("unstamped request must not be epoch-rejected")
	}

	// Health and membership endpoints answer regardless of epoch — they
	// are how divergence gets repaired.
	for _, path := range []string{"/readyz", "/healthz", "/v2/fleet"} {
		if code, _, _ := rawGet(t, ds[0].url+path, stamp); code == http.StatusConflict {
			t.Errorf("%s must be epoch-exempt", path)
		}
	}

	// The correct epoch passes: a matching stamp on a local-served path.
	ok := map[string]string{fleet.EpochHeader: strconv.FormatUint(ds[0].tab.Epoch(), 10)}
	if code, _, _ := rawGet(t, ds[0].url+"/v2/stats", ok); code == http.StatusConflict {
		t.Error("matching epoch must not be rejected")
	}
}

// TestFleetDrain is the graceful-departure lifecycle: drain flips readyz
// to draining (503) and rejects new compute with the classified 503, the
// hot fleet-cache entries land on the successor, OnDrain fires, and the
// survivor then answers the drained node's queries byte-identically from
// the pre-warmed cache — zero recomputation.
func TestFleetDrain(t *testing.T) {
	drained := make(chan struct{})
	ds := newQueryFleet(t, 2, true, fleetTestOptions{
		DrainTimeout: 5 * time.Second,
		OnDrain:      func() { close(drained) },
	})
	ingestEverywhere(t, ds, "mesh:14", 5, "dr")
	owner, other := ownerOf(t, ds, "dr")
	info, err := owner.cat.Info("dr")
	if err != nil || info.SHA256 == "" {
		t.Fatalf("ingested dataset has no sha: %v", err)
	}
	sha := info.SHA256
	// Pick a seed whose cache key places on the owner itself, so the
	// normal background publish stays local and only the drain's prewarm
	// can move the entry to the survivor.
	var seed uint64
	var fkey string
	for seed = 1; ; seed++ {
		fkey = store.FleetKey(sha, "diameter", store.Params{Seed: seed})
		if m, ok := owner.tab.Owner(fkey); ok && m.Rank == owner.tab.Self() {
			break
		}
	}
	query := map[string]any{"graph": "dr", "seed": seed}

	if code, raw, _ := rawPost(t, owner.url+"/v1/diameter", query, nil); code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", code, raw)
	}
	_, warm, _ := rawPost(t, owner.url+"/v1/diameter", query, nil)
	if _, ok := other.st.FleetCacheGet(fkey); ok {
		t.Fatal("survivor unexpectedly has the entry before drain (key placed on owner: no push)")
	}

	code, raw, _ := rawPost(t, owner.url+"/v2/fleet/drain", nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("drain: status %d: %s", code, raw)
	}
	// Draining outranks ready.
	code, raw, _ = rawGet(t, owner.url+"/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d", code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(raw, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "draining" {
		t.Errorf("readyz status = %q, want draining", ready.Status)
	}
	// New compute is rejected with the classified retryable 503.
	code, _, hdr := rawPost(t, owner.url+"/v1/diameter", query, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("compute while draining: status %d, want 503", code)
	}
	if hdr.Get(fleet.ErrClassHeader) != fleet.ErrClassDraining {
		t.Errorf("%s = %q, want %q", fleet.ErrClassHeader, hdr.Get(fleet.ErrClassHeader), fleet.ErrClassDraining)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining rejection must carry Retry-After")
	}
	// Idempotent: a second drain reports the one in progress.
	if code, raw, _ := rawPost(t, owner.url+"/v2/fleet/drain", nil, nil); code != http.StatusOK {
		t.Fatalf("second drain: status %d: %s", code, raw)
	}

	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("OnDrain never fired")
	}

	// The successor was pre-warmed with the hot entry.
	if _, ok := other.st.FleetCacheGet(fkey); !ok {
		t.Fatal("drain did not pre-warm the successor's cache")
	}

	// The node is gone; the survivor answers byte-identically from the
	// pushed copy — no BSP run.
	owner.srv.Close()
	other.tab.SetLive(owner.tab.Self(), false)
	code, raw, _ = rawPost(t, other.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("survivor query: status %d: %s", code, raw)
	}
	if !bytes.Equal(raw, warm) {
		t.Errorf("survivor answer diverged from pre-drain answer:\n pre  %s\n post %s", warm, raw)
	}
	if c := other.st.Stats().Counters.Computations; c != 0 {
		t.Errorf("survivor computations = %d, want 0 (served from pre-warmed cache)", c)
	}
}

// TestReplicaLocalServing: with replication factor k=2, the owner's
// computed result is pushed to the second preference member, and that
// replica then serves the query from its own copy — byte-identical to
// the owner's answer, no forward, no recompute. Proven by killing the
// owner's listener while the replica still believes it live: a forward
// would fail, so a 200 can only be the replica-local path.
func TestReplicaLocalServing(t *testing.T) {
	ds := newQueryFleet(t, 3, true, fleetTestOptions{Replicas: 2})
	ingestEverywhere(t, ds, "mesh:14", 5, "rep")
	ownerMember, _ := ds[0].tab.Owner("rep")
	owner := ds[ownerMember.Rank]
	query := map[string]any{"graph": "rep", "seed": 11}

	if code, raw, _ := rawPost(t, owner.url+"/v1/diameter", query, nil); code != http.StatusOK {
		t.Fatalf("prime: status %d: %s", code, raw)
	}
	_, warm, _ := rawPost(t, owner.url+"/v1/diameter", query, nil)

	sha, ok := owner.st.DatasetSHA("rep")
	if !ok {
		t.Fatal("dataset-backed graph has no sha")
	}
	fkey := store.FleetKey(sha, "diameter", store.Params{Seed: 11})

	// The k=2 push lands on the cache key's preference chain; wait for it
	// to arrive at a non-owner member (the replica under test).
	var replica *fleetDaemon
	deadline := time.Now().Add(5 * time.Second)
	for replica == nil {
		for _, d := range ds {
			if d == owner {
				continue
			}
			if _, ok := d.st.FleetCacheGet(fkey); ok {
				replica = d
				break
			}
		}
		if replica == nil {
			if time.Now().After(deadline) {
				t.Fatal("replica push never arrived")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Kill the owner but leave it live in the replica's view: if the
	// replica tried to forward, this query would fail.
	owner.srv.Close()
	code, raw, _ := rawPost(t, replica.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("replica-local query: status %d: %s", code, raw)
	}
	if !bytes.Equal(raw, warm) {
		t.Errorf("replica answer diverged from owner's:\n owner   %s\n replica %s", warm, raw)
	}
	if c := replica.st.Stats().Counters.Computations; c != 0 {
		t.Errorf("replica computations = %d, want 0", c)
	}

	// Members outside the key's top-k preference chain hold no copy —
	// the push never leaks past the replica set.
	inTopK := map[int]bool{}
	for _, m := range replica.tab.Replicas(fkey, 2) {
		inTopK[m.Rank] = true
	}
	for _, d := range ds {
		if d == owner || inTopK[d.tab.Self()] {
			continue
		}
		if _, ok := d.st.FleetCacheGet(fkey); ok {
			t.Errorf("k=2 push leaked to rank %d, outside the replica set", d.tab.Self())
		}
	}
}
