package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"graphdiam/internal/dataset"
	"graphdiam/internal/fleet"
	"graphdiam/internal/gen"
	"graphdiam/internal/gio"
	"graphdiam/internal/store"
)

// fleetDaemon is one node of a query-plane test fleet.
type fleetDaemon struct {
	st    *store.Store
	cat   *dataset.Catalog
	tab   *fleet.Table
	cache *fleet.Cache
	srv   *httptest.Server
	url   string
}

// fleetTestOptions tunes the daemons newQueryFleet boots beyond the
// defaults: read replication factor and drain wiring. Zero values leave
// the defaults (k=1, no drain hook) in place.
type fleetTestOptions struct {
	Replicas     int
	DrainTimeout time.Duration
	OnDrain      func()
}

// newQueryFleet boots n daemons wired into one query plane: every daemon
// knows every URL (listeners are created before the servers so the
// shared member list exists up front), health is driven manually
// (Interval 0) and everyone starts seeing everyone live. withCatalog
// gives each daemon its own dataset catalog — fleet-cache tests ingest
// the same bytes everywhere so content addressing aligns the nodes.
func newQueryFleet(t *testing.T, n int, withCatalog bool, opts ...fleetTestOptions) []*fleetDaemon {
	t.Helper()
	var opt fleetTestOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	ds := make([]*fleetDaemon, n)
	for i := 0; i < n; i++ {
		d := &fleetDaemon{url: urls[i]}
		tab, err := fleet.NewTable(urls, i, fleet.TableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d.tab = tab
		d.cache = fleet.NewCache(tab, fleet.CacheOptions{Replicas: opt.Replicas})
		scfg := store.Config{
			MaxConcurrent: 4,
			FleetCache:    d.cache,
			Distributed:   &store.DistributedConfig{Rank: i, Peers: urls},
		}
		cfg := Config{
			Fleet:        tab,
			Replicas:     opt.Replicas,
			DrainTimeout: opt.DrainTimeout,
			OnDrain:      opt.OnDrain,
		}
		if withCatalog {
			cat, err := dataset.Open(filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i)), dataset.Options{})
			if err != nil {
				t.Fatal(err)
			}
			d.cat = cat
			scfg.Catalog = cat
			cfg.Datasets = cat
		}
		d.st = store.New(scfg)
		srv := httptest.NewUnstartedServer(New(d.st, cfg))
		srv.Listener.Close()
		srv.Listener = listeners[i]
		srv.Start()
		d.srv = srv
		ds[i] = d
	}
	for _, d := range ds {
		for r := 0; r < n; r++ {
			d.tab.SetLive(r, true)
		}
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.srv.Close()
			d.st.Close()
			d.cache.Close()
			d.tab.Close()
			if d.cat != nil {
				d.cat.Close()
			}
		}
	})
	return ds
}

// ownerOf returns the (owner, non-owner) daemons for a dataset name in a
// two-daemon fleet.
func ownerOf(t *testing.T, ds []*fleetDaemon, name string) (owner, other *fleetDaemon) {
	t.Helper()
	m, ok := ds[0].tab.Owner(name)
	if !ok {
		t.Fatalf("no owner for %q", name)
	}
	return ds[m.Rank], ds[1-m.Rank]
}

// rawPost POSTs JSON and returns the status, raw body, and headers.
func rawPost(t *testing.T, url string, body any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// ingestEverywhere uploads the same graph bytes to every daemon's
// catalog, returning the (shared, content-addressed) dataset name.
func ingestEverywhere(t *testing.T, ds []*fleetDaemon, spec string, seed uint64, name string) {
	t.Helper()
	g, err := gen.FromSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	var el bytes.Buffer
	if err := gio.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if code := uploadBody(t, d.url+"/v2/datasets?name="+name, el.Bytes(), nil); code != http.StatusCreated {
			t.Fatalf("ingest on %s: status %d", d.url, code)
		}
	}
}

// TestFleetRoutedQueryLandsOnOwner: a query sent to the wrong daemon is
// transparently proxied to the dataset's rendezvous owner — the owner
// does the BSP run (exactly once), the non-owner computes nothing, and
// the routed response is byte-identical to asking the owner directly.
func TestFleetRoutedQueryLandsOnOwner(t *testing.T) {
	ds := newQueryFleet(t, 2, false)
	g, err := gen.FromSpec("mesh:16", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if _, err := d.st.AddGraph("g", g, "test"); err != nil {
			t.Fatal(err)
		}
	}
	owner, other := ownerOf(t, ds, "g")
	query := map[string]any{"graph": "g", "seed": 7}

	code, _, _ := rawPost(t, other.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("routed query: status %d", code)
	}
	if c := owner.st.Stats().Counters.Computations; c != 1 {
		t.Errorf("owner computations = %d, want 1", c)
	}
	if c := other.st.Stats().Counters.Computations; c != 0 {
		t.Errorf("non-owner computations = %d, want 0", c)
	}

	// Warm on both paths, the answers must now be byte-identical.
	_, direct, _ := rawPost(t, owner.url+"/v1/diameter", query, nil)
	_, routed, _ := rawPost(t, other.url+"/v1/diameter", query, nil)
	if !bytes.Equal(direct, routed) {
		t.Errorf("routed response diverged from direct:\n direct %s\n routed %s", direct, routed)
	}

	// Path-placed requests route the same way.
	r1, err := http.Get(owner.url + "/v1/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	r2, err := http.Get(other.url + "/v1/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if !bytes.Equal(b1, b2) {
		t.Errorf("GET /v1/graphs/g diverged across nodes:\n %s\n %s", b1, b2)
	}
}

// TestFleetJobRouting: jobs submitted anywhere run on the dataset's
// owner under a rank-qualified ID, and polling or streaming that job
// from any other daemon follows the ID home.
func TestFleetJobRouting(t *testing.T) {
	ds := newQueryFleet(t, 2, false)
	g, err := gen.FromSpec("mesh:12", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if _, err := d.st.AddGraph("g", g, "test"); err != nil {
			t.Fatal(err)
		}
	}
	owner, other := ownerOf(t, ds, "g")
	ownerRank := owner.tab.Self()

	code, raw, _ := rawPost(t, other.url+"/v2/jobs", map[string]any{"op": "decompose", "graph": "g", "seed": 5}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit via non-owner: status %d: %s", code, raw)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	wantPrefix := fmt.Sprintf("job-r%d-", ownerRank)
	if !strings.HasPrefix(view.ID, wantPrefix) {
		t.Fatalf("job id %q does not carry owner rank (want prefix %q)", view.ID, wantPrefix)
	}

	// The SSE stream, opened against the daemon that does NOT run the
	// job, proxies through to the home node and ends with "done".
	resp, err := http.Get(other.url + "/v2/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "event: done") {
		t.Fatalf("routed SSE stream missing done event:\n%s", events)
	}

	// Poll from the non-owner: the ID routes home.
	r, err := http.Get(other.url + "/v2/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	var polled struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(r.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if polled.ID != view.ID || polled.State != "done" {
		t.Fatalf("routed poll: %+v", polled)
	}
	if c := other.st.Stats().Counters.Computations; c != 0 {
		t.Errorf("non-owner computations = %d, want 0", c)
	}
}

// TestFleetCrossNodeSingleflight: the same uncached query fired at both
// daemons concurrently costs exactly one BSP run fleet-wide — owner
// routing funnels both into one node whose singleflight collapses them.
func TestFleetCrossNodeSingleflight(t *testing.T) {
	ds := newQueryFleet(t, 2, true)
	ingestEverywhere(t, ds, "road:32", 11, "roadnet")
	query := map[string]any{"graph": "roadnet", "seed": 11}

	type outcome struct {
		code int
		resp DiameterResponse
	}
	outs := make([]outcome, 2)
	var wg sync.WaitGroup
	for i, d := range ds {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			code, raw, _ := rawPost(t, url+"/v1/diameter", query, nil)
			outs[i].code = code
			if code == http.StatusOK {
				if err := json.Unmarshal(raw, &outs[i].resp); err != nil {
					t.Error(err)
				}
			}
		}(i, d.url)
	}
	wg.Wait()
	for i, o := range outs {
		if o.code != http.StatusOK {
			t.Fatalf("daemon %d: status %d", i, o.code)
		}
	}
	if fieldsOf(outs[0].resp) != fieldsOf(outs[1].resp) {
		t.Errorf("concurrent answers diverged:\n %+v\n %+v", fieldsOf(outs[0].resp), fieldsOf(outs[1].resp))
	}
	total := ds[0].st.Stats().Counters.Computations + ds[1].st.Stats().Counters.Computations
	if total != 1 {
		t.Errorf("fleet-wide computations = %d, want exactly 1", total)
	}
}

// TestFleetFollowerSurvivesCancelledLeader: a client cancelling its
// routed query mid-run must not poison a concurrent identical query —
// the follower retries and completes (the store's follower-retry
// composing through the proxy hop).
func TestFleetFollowerSurvivesCancelledLeader(t *testing.T) {
	ds := newQueryFleet(t, 2, true)
	ingestEverywhere(t, ds, "road:64", 7, "roadnet")
	query := map[string]any{"graph": "roadnet", "seed": 7}
	owner, other := ownerOf(t, ds, "roadnet")

	// Leader: routed through the non-owner, cancelled mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		b, _ := json.Marshal(query)
		req, _ := http.NewRequestWithContext(ctx, "POST", other.url+"/v1/diameter", bytes.NewReader(b))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()

	// Follower: direct to the owner, must succeed no matter when the
	// leader's disconnect lands.
	code, raw, _ := rawPost(t, owner.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("follower after cancelled leader: status %d: %s", code, raw)
	}
	var got DiameterResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Estimate <= 0 {
		t.Fatalf("follower result looks empty: %+v", got)
	}
	<-leaderDone
}

// TestFleetCacheEndpointsAndPromotion: a computed result is served to
// peers over GET /v2/cache/{key}, a pushed result is accepted over PUT
// and — once the dataset's queries land here after a failover — served
// from the raw slot without any BSP run.
func TestFleetCacheEndpointsAndPromotion(t *testing.T) {
	ds := newQueryFleet(t, 2, true)
	ingestEverywhere(t, ds, "mesh:14", 5, "m")
	owner, other := ownerOf(t, ds, "m")
	query := map[string]any{"graph": "m", "seed": 4}

	code, raw, _ := rawPost(t, owner.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("prime: status %d", code)
	}
	var primed DiameterResponse
	if err := json.Unmarshal(raw, &primed); err != nil {
		t.Fatal(err)
	}

	sha, ok := owner.st.DatasetSHA("m")
	if !ok {
		t.Fatal("dataset-backed graph has no sha")
	}
	fkey := store.FleetKey(sha, "diameter", store.Params{Seed: 4})

	// The computed result answers peer probes.
	resp, err := http.Get(owner.url + "/v2/cache/" + url.PathEscape(fkey))
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/cache: status %d (key %q)", resp.StatusCode, fkey)
	}
	var fromCache store.DiameterResult
	if err := json.Unmarshal(cached, &fromCache); err != nil {
		t.Fatal(err)
	}
	if fromCache.Estimate != primed.Estimate {
		t.Fatalf("cache body diverged: %+v vs %+v", fromCache, primed.DiameterResult)
	}

	// Push it to the other daemon, as the owner's background publish (or
	// any peer) would.
	req, err := http.NewRequest("PUT", other.url+"/v2/cache/"+url.PathEscape(fkey), bytes.NewReader(cached))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT /v2/cache: status %d", pr.StatusCode)
	}

	// Fail the owner over (in the other daemon's view only): the dataset
	// now belongs to the other daemon, which serves the pushed result —
	// faulting the dataset in by content address, never running BSP.
	other.tab.SetLive(owner.tab.Self(), false)
	code, raw, _ = rawPost(t, other.url+"/v1/diameter", query, nil)
	if code != http.StatusOK {
		t.Fatalf("failover query: status %d: %s", code, raw)
	}
	var after DiameterResponse
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if !after.Cached {
		t.Error("failover query not served from fleet cache")
	}
	if fieldsOf(after) != fieldsOf(primed) {
		t.Errorf("failover answer diverged:\n %+v\n %+v", fieldsOf(after), fieldsOf(primed))
	}
	ctrs := other.st.Stats().Counters
	if ctrs.Computations != 0 {
		t.Errorf("failover daemon computations = %d, want 0", ctrs.Computations)
	}
	if ctrs.FleetHits != 1 {
		t.Errorf("failover daemon fleetHits = %d, want 1", ctrs.FleetHits)
	}
}

// TestFleetCachePeerProbe: a daemon that receives a query it would not
// normally own (a routed hop — the sender's health view said so) probes
// live peers for the result before computing, so a stale view costs one
// HTTP round-trip, not a BSP run.
func TestFleetCachePeerProbe(t *testing.T) {
	ds := newQueryFleet(t, 2, true)
	ingestEverywhere(t, ds, "mesh:14", 9, "m")
	owner, other := ownerOf(t, ds, "m")
	query := map[string]any{"graph": "m", "seed": 2}

	if code, _, _ := rawPost(t, owner.url+"/v1/diameter", query, nil); code != http.StatusOK {
		t.Fatal("prime failed")
	}

	// Simulate a misrouted hop: the Routed header pins the request to the
	// non-owner, which must probe the fleet instead of recomputing.
	code, raw, _ := rawPost(t, other.url+"/v1/diameter", query,
		map[string]string{fleet.RoutedHeader: "0"})
	if code != http.StatusOK {
		t.Fatalf("misrouted query: status %d: %s", code, raw)
	}
	var got DiameterResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Error("misrouted query not served from fleet cache")
	}
	ctrs := other.st.Stats().Counters
	if ctrs.Computations != 0 || ctrs.FleetHits != 1 {
		t.Errorf("misrouted daemon counters: %+v (want 0 computations, 1 fleetHit)", ctrs)
	}
}

// TestTenantQuota: per-tenant admission control returns 429 with a
// Retry-After once a tenant's burst is spent, without touching other
// tenants or edge-charged (already admitted) requests.
func TestTenantQuota(t *testing.T) {
	st := store.New(store.Config{})
	defer st.Close()
	g, err := gen.FromSpec("mesh:8", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddGraph("g", g, "test"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(st, Config{Quotas: fleet.NewQuotas(0.01, 1)}))
	defer ts.Close()
	query := map[string]any{"graph": "g"}

	if code, raw, _ := rawPost(t, ts.URL+"/v1/diameter", query, map[string]string{"X-Tenant": "alice"}); code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", code, raw)
	}
	code, raw, hdr := rawPost(t, ts.URL+"/v1/diameter", query, map[string]string{"X-Tenant": "alice"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d: %s", code, raw)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(raw), "alice") {
		t.Errorf("429 body does not name the tenant: %s", raw)
	}
	// Another tenant is unaffected.
	if code, _, _ := rawPost(t, ts.URL+"/v1/diameter", query, map[string]string{"X-Tenant": "bob"}); code != http.StatusOK {
		t.Fatalf("independent tenant: status %d", code)
	}
	// Edge-admitted requests are not double-charged.
	if code, _, _ := rawPost(t, ts.URL+"/v1/diameter", query,
		map[string]string{"X-Tenant": "alice", fleet.EdgeHeader: "lb"}); code != http.StatusOK {
		t.Fatalf("edge-admitted request: status %d", code)
	}
	// Reads are never charged.
	if r, err := http.Get(ts.URL + "/v1/stats"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("read charged against quota: %v", err)
	} else {
		r.Body.Close()
	}
}

// TestReadyzSplit: /healthz is pure liveness; /readyz reflects whether
// the node can actually serve (and flips to 503 when its catalog
// directory vanishes).
func TestReadyzSplit(t *testing.T) {
	dir := t.TempDir()
	ts, _, _ := newDatasetServer(t, dir)

	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after losing data dir: status %d: %s", r.StatusCode, body)
	}
	// Liveness is unaffected: the process is still up.
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after losing data dir: status %d", r2.StatusCode)
	}
}

// TestRequestIDPropagation: a client-sent X-Request-Id survives to the
// response across a routed hop, and requests without one get a minted
// ID.
func TestRequestIDPropagation(t *testing.T) {
	ds := newQueryFleet(t, 2, false)
	g, err := gen.FromSpec("mesh:10", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if _, err := d.st.AddGraph("g", g, "test"); err != nil {
			t.Fatal(err)
		}
	}
	_, other := ownerOf(t, ds, "g")

	code, _, hdr := rawPost(t, other.url+"/v1/diameter", map[string]any{"graph": "g"},
		map[string]string{fleet.RequestIDHeader: "rid-test-42"})
	if code != http.StatusOK {
		t.Fatalf("routed query: status %d", code)
	}
	if got := hdr.Get(fleet.RequestIDHeader); got != "rid-test-42" {
		t.Errorf("request id across routed hop: %q, want rid-test-42", got)
	}

	_, _, hdr = rawPost(t, other.url+"/v1/diameter", map[string]any{"graph": "g"}, nil)
	if got := hdr.Get(fleet.RequestIDHeader); len(got) != 16 {
		t.Errorf("minted request id %q, want 16 hex chars", got)
	}
}

// TestFleetInfoEndpoint: /v2/fleet reports membership and, per dataset,
// the owner every node agrees on.
func TestFleetInfoEndpoint(t *testing.T) {
	ds := newQueryFleet(t, 2, false)
	var owners [2]int
	for i, d := range ds {
		r, err := http.Get(d.url + "/v2/fleet?dataset=x")
		if err != nil {
			t.Fatal(err)
		}
		var resp FleetInfoResponse
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if resp.Self != i {
			t.Errorf("daemon %d reports self=%d", i, resp.Self)
		}
		if len(resp.Members) != 2 || resp.Owner == nil || len(resp.Preference) != 2 {
			t.Fatalf("daemon %d fleet view: %+v", i, resp)
		}
		owners[i] = resp.Owner.Rank
	}
	if owners[0] != owners[1] {
		t.Errorf("daemons disagree on ownership: %v", owners)
	}

	// Outside a fleet the endpoint 404s.
	st := store.New(store.Config{})
	defer st.Close()
	solo := httptest.NewServer(New(st, Config{}))
	defer solo.Close()
	r, err := http.Get(solo.URL + "/v2/fleet")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("solo /v2/fleet: status %d, want 404", r.StatusCode)
	}
}
