package server

import (
	"errors"
	"fmt"
	"net/http"

	"graphdiam/internal/dataset"
	"graphdiam/internal/store"
)

// The /v2/datasets endpoints manage the persistent graph catalog (see
// internal/dataset). They exist only when the daemon was started with
// -data-dir; otherwise every dataset route answers 503 so clients can
// distinguish "not configured" from "not found".
//
//	POST   /v2/datasets?name=N[&format=F][&source=S]
//	       ingest the raw request body (edgelist | dimacs | metis |
//	       binary, each optionally gzip-wrapped; format defaults to
//	       auto-sniffing) into a content-addressed snapshot
//	GET    /v2/datasets               list cataloged datasets, catalog
//	       byte totals, and integrity-sweep telemetry
//	GET    /v2/datasets/{name}        one dataset's catalog record
//	DELETE /v2/datasets/{name}        drop the record (and the snapshot
//	       file once unreferenced); already-loaded graphs stay usable
//	POST   /v2/datasets/{name}/load   fault the dataset into the
//	       in-memory registry now (queries do this lazily anyway)
//	POST   /v2/datasets/{name}/append stream an edge delta ("+ u v w" /
//	       "- u v" lines, optionally gzip-wrapped) onto the dataset's
//	       lineage; the head SHA moves, stale caches are invalidated,
//	       and decompositions are maintained per the churn policy
//	POST   /v2/datasets/{name}/compact fold the delta chain into a
//	       fresh snapshot (the head — and every cache key — survives)
//
//	GET    /v2/blobs                  list snapshot content addresses
//	GET    /v2/blobs/{sha}            stream one snapshot blob
//	PUT    /v2/blobs/{sha}            store one blob (verified against
//	       the address before admission)
//	DELETE /v2/blobs/{sha}            drop one blob's local copy
//
// The blob routes expose the catalog's storage tier so peers started
// with -blob-url can share this daemon's snapshots (see
// dataset.RemoteStore). Uploads stream: the body is decoded straight
// into the CSR builder, so the daemon never holds both the full text
// and the graph in memory.

// requireDatasets answers 503 when no catalog is configured.
func (s *Server) requireDatasets(w http.ResponseWriter) (*dataset.Catalog, bool) {
	if s.cfg.Datasets == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("dataset catalog not configured (start the daemon with -data-dir)"))
		return nil, false
	}
	return s.cfg.Datasets, true
}

// writeDatasetError maps catalog errors to HTTP statuses. The
// classification matters most on ingest: a client must be able to tell
// "my bytes are bad" (400) from "the daemon's disk or backend failed"
// (500) from "the catalog cannot hold a snapshot this large" (507) —
// before this mapping every failure, ENOSPC included, surfaced as a 400.
func writeDatasetError(w http.ResponseWriter, err error) {
	var (
		badIn  *dataset.BadInputError
		tooBig *http.MaxBytesError
	)
	switch {
	case errors.Is(err, dataset.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, dataset.ErrHeadMoved):
		writeError(w, http.StatusConflict, err)
	case errors.As(err, &tooBig):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.As(err, &badIn):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, dataset.ErrBudgetExceeded):
		writeError(w, http.StatusInsufficientStorage, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleIngestDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?name= query parameter"))
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "upload"
	}
	info, err := cat.Ingest(name, r.Body, r.URL.Query().Get("format"), source)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"datasets":   cat.List(),
		"totalBytes": cat.TotalBytes(),
		"sweep":      cat.SweepStatus(),
	})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	info, err := cat.Info(r.PathValue("name"))
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := cat.Remove(name); err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// blobHandler serves the catalog's blob storage tier under /v2/blobs —
// the server side of the shared-snapshot protocol dataset.RemoteStore
// speaks. Without a catalog it answers 503 like every dataset route.
func (s *Server) blobHandler() http.Handler {
	var h http.Handler
	if cat := s.cfg.Datasets; cat != nil {
		h = http.StripPrefix("/v2/blobs", dataset.BlobServer(cat.Blobs(), cat.ReferencesBlob))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h == nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("dataset catalog not configured (start the daemon with -data-dir)"))
			return
		}
		h.ServeHTTP(w, r)
	})
}

func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireDatasets(w); !ok {
		return
	}
	info, err := s.st.LoadDataset(r.Context(), r.PathValue("name"))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// AppendResponse is the POST /v2/datasets/{name}/append payload: the
// head movement plus what the store's delta maintenance did about it.
type AppendResponse struct {
	Dataset     string `json:"dataset"`
	PrevSHA     string `json:"prevSha"`
	HeadSHA     string `json:"headSha"`
	Applied     bool   `json:"applied"`
	Inserted    int    `json:"inserted"`
	Removed     int    `json:"removed"`
	ChainLength int    `json:"chainLength"`
	// Maintenance is present when the head actually moved.
	Maintenance *store.MaintenanceResult `json:"maintenance,omitempty"`
}

// handleAppendDataset streams an edge delta onto the named dataset's
// lineage. The body is the text delta format (gzip-sniffed like
// ingest), decoded straight into a frame; malformed records are 400,
// over-cap bodies 413, budget overflows 507 — the same classification
// as ingest. On a real head movement the store invalidates every cache
// entry keyed on the superseded head and maintains retained
// decompositions before the response is written, so a client that
// appends and immediately queries can never see a stale result from
// this node.
func (s *Server) handleAppendDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	d, err := dataset.DecodeDeltaStream(r.Body)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "append"
	}
	res, err := cat.AppendDelta(name, d, source)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	resp := AppendResponse{
		Dataset:     name,
		PrevSHA:     res.PrevSHA,
		HeadSHA:     res.Info.SHA256,
		Applied:     res.Applied,
		Inserted:    res.Ins,
		Removed:     res.Rem,
		ChainLength: res.Info.ChainLen(),
	}
	if res.Applied {
		m := s.st.ApplyDelta(r.Context(), name, res.PrevSHA, res.Info.SHA256, res.Touched)
		resp.Maintenance = &m
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCompactDataset folds the named dataset's delta chain into a
// fresh snapshot. Identity is preserved by construction (the snapshot's
// content address equals the head), so no cache invalidation follows.
func (s *Server) handleCompactDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	info, compacted, err := cat.Compact(name)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":     name,
		"compacted":   compacted,
		"headSha":     info.SHA256,
		"chainLength": info.ChainLen(),
	})
}
