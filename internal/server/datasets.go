package server

import (
	"errors"
	"fmt"
	"net/http"

	"graphdiam/internal/dataset"
)

// The /v2/datasets endpoints manage the persistent graph catalog (see
// internal/dataset). They exist only when the daemon was started with
// -data-dir; otherwise every dataset route answers 503 so clients can
// distinguish "not configured" from "not found".
//
//	POST   /v2/datasets?name=N[&format=F][&source=S]
//	       ingest the raw request body (edgelist | dimacs | metis |
//	       binary, each optionally gzip-wrapped; format defaults to
//	       auto-sniffing) into a content-addressed snapshot
//	GET    /v2/datasets               list cataloged datasets, catalog
//	       byte totals, and integrity-sweep telemetry
//	GET    /v2/datasets/{name}        one dataset's catalog record
//	DELETE /v2/datasets/{name}        drop the record (and the snapshot
//	       file once unreferenced); already-loaded graphs stay usable
//	POST   /v2/datasets/{name}/load   fault the dataset into the
//	       in-memory registry now (queries do this lazily anyway)
//
//	GET    /v2/blobs                  list snapshot content addresses
//	GET    /v2/blobs/{sha}            stream one snapshot blob
//	PUT    /v2/blobs/{sha}            store one blob (verified against
//	       the address before admission)
//	DELETE /v2/blobs/{sha}            drop one blob's local copy
//
// The blob routes expose the catalog's storage tier so peers started
// with -blob-url can share this daemon's snapshots (see
// dataset.RemoteStore). Uploads stream: the body is decoded straight
// into the CSR builder, so the daemon never holds both the full text
// and the graph in memory.

// requireDatasets answers 503 when no catalog is configured.
func (s *Server) requireDatasets(w http.ResponseWriter) (*dataset.Catalog, bool) {
	if s.cfg.Datasets == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("dataset catalog not configured (start the daemon with -data-dir)"))
		return nil, false
	}
	return s.cfg.Datasets, true
}

// writeDatasetError maps catalog errors to HTTP statuses. The
// classification matters most on ingest: a client must be able to tell
// "my bytes are bad" (400) from "the daemon's disk or backend failed"
// (500) from "the catalog cannot hold a snapshot this large" (507) —
// before this mapping every failure, ENOSPC included, surfaced as a 400.
func writeDatasetError(w http.ResponseWriter, err error) {
	var (
		badIn  *dataset.BadInputError
		tooBig *http.MaxBytesError
	)
	switch {
	case errors.Is(err, dataset.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.As(err, &tooBig):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.As(err, &badIn):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, dataset.ErrBudgetExceeded):
		writeError(w, http.StatusInsufficientStorage, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleIngestDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?name= query parameter"))
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "upload"
	}
	info, err := cat.Ingest(name, r.Body, r.URL.Query().Get("format"), source)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"datasets":   cat.List(),
		"totalBytes": cat.TotalBytes(),
		"sweep":      cat.SweepStatus(),
	})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	info, err := cat.Info(r.PathValue("name"))
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := cat.Remove(name); err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// blobHandler serves the catalog's blob storage tier under /v2/blobs —
// the server side of the shared-snapshot protocol dataset.RemoteStore
// speaks. Without a catalog it answers 503 like every dataset route.
func (s *Server) blobHandler() http.Handler {
	var h http.Handler
	if cat := s.cfg.Datasets; cat != nil {
		h = http.StripPrefix("/v2/blobs", dataset.BlobServer(cat.Blobs(), cat.ReferencesBlob))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h == nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("dataset catalog not configured (start the daemon with -data-dir)"))
			return
		}
		h.ServeHTTP(w, r)
	})
}

func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireDatasets(w); !ok {
		return
	}
	info, err := s.st.LoadDataset(r.Context(), r.PathValue("name"))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}
