package server

import (
	"errors"
	"fmt"
	"net/http"

	"graphdiam/internal/dataset"
)

// The /v2/datasets endpoints manage the persistent graph catalog (see
// internal/dataset). They exist only when the daemon was started with
// -data-dir; otherwise every dataset route answers 503 so clients can
// distinguish "not configured" from "not found".
//
//	POST   /v2/datasets?name=N[&format=F][&source=S]
//	       ingest the raw request body (edgelist | dimacs | metis |
//	       binary, each optionally gzip-wrapped; format defaults to
//	       auto-sniffing) into a content-addressed snapshot
//	GET    /v2/datasets               list cataloged datasets
//	GET    /v2/datasets/{name}        one dataset's catalog record
//	DELETE /v2/datasets/{name}        drop the record (and the snapshot
//	       file once unreferenced); already-loaded graphs stay usable
//	POST   /v2/datasets/{name}/load   fault the dataset into the
//	       in-memory registry now (queries do this lazily anyway)
//
// Uploads stream: the body is decoded straight into the CSR builder, so
// the daemon never holds both the full text and the graph in memory.

// requireDatasets answers 503 when no catalog is configured.
func (s *Server) requireDatasets(w http.ResponseWriter) (*dataset.Catalog, bool) {
	if s.cfg.Datasets == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("dataset catalog not configured (start the daemon with -data-dir)"))
		return nil, false
	}
	return s.cfg.Datasets, true
}

// writeDatasetError maps catalog errors to HTTP statuses.
func writeDatasetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dataset.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleIngestDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?name= query parameter"))
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "upload"
	}
	info, err := cat.Ingest(name, r.Body, r.URL.Query().Get("format"), source)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"datasets":   cat.List(),
		"totalBytes": cat.TotalBytes(),
	})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	info, err := cat.Info(r.PathValue("name"))
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	cat, ok := s.requireDatasets(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := cat.Remove(name); err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.requireDatasets(w); !ok {
		return
	}
	info, err := s.st.LoadDataset(r.Context(), r.PathValue("name"))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}
