package fleet

import (
	"time"

	"graphdiam/internal/obs"
)

// Metrics is the fleet layer's observability bundle: probe hysteresis
// flips, epoch lifecycle (adoptions and 409 repairs), proxy retry and
// failover traffic, fleet-cache probe outcomes, chaos-classified faults,
// replica-local serves, and drain phase durations. A nil *Metrics is a
// valid no-op — every method checks, so the Table, Cache, Proxy, and
// ChaosTransport instrument unconditionally and wiring decides.
//
// Recording methods are exported because the server layer shares the
// bundle: it records the fleet events only it can see (409s it writes,
// replica-local serves, drain phases) into the same families.
type Metrics struct {
	probeFlips         *obs.CounterVec // direction: up | down
	epoch              *obs.Gauge
	liveMembers        *obs.Gauge
	epochAdoptions     *obs.Counter
	epochMismatches    *obs.Counter
	proxyAttempts      *obs.Counter
	proxyRetries       *obs.CounterVec // reason: epoch | draining | net
	proxyFailoverHops  *obs.Counter
	cacheProbes        *obs.CounterVec // outcome: hit | miss | transient
	chaosFaults        *obs.CounterVec // kind: drop | 500 | cut
	replicaLocalServes *obs.Counter
	drainSeconds       *obs.HistogramVec // phase: wait_idle | prewarm
}

// NewMetrics registers the graphdiam_fleet_* family on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		probeFlips: r.CounterVec("graphdiam_fleet_probe_flips_total",
			"Member liveness transitions that cleared the hysteresis filter, by direction.",
			"direction"),
		epoch: r.Gauge("graphdiam_fleet_epoch",
			"Epoch of the placement view currently routing requests."),
		liveMembers: r.Gauge("graphdiam_fleet_live_members",
			"Members of the current view observed live."),
		epochAdoptions: r.Counter("graphdiam_fleet_epoch_adoptions_total",
			"Placement view swaps accepted (config push, SIGHUP, or anti-entropy adoption)."),
		epochMismatches: r.Counter("graphdiam_fleet_epoch_mismatches_total",
			"Mis-epoched fleet hops this node rejected with a classified 409."),
		proxyAttempts: r.Counter("graphdiam_fleet_proxy_attempts_total",
			"Outbound forwarding attempts by the owner-routing proxy."),
		proxyRetries: r.CounterVec("graphdiam_fleet_proxy_retries_total",
			"Proxy attempts that were rejected and retried or failed over, by rejection class.",
			"reason"),
		proxyFailoverHops: r.Counter("graphdiam_fleet_proxy_failover_hops_total",
			"Times the proxy advanced to the next preference-chain member."),
		cacheProbes: r.CounterVec("graphdiam_fleet_cache_probes_total",
			"Fleet result-cache peer probes, by outcome.", "outcome"),
		chaosFaults: r.CounterVec("graphdiam_fleet_chaos_faults_total",
			"Faults injected by the chaos transport, by kind.", "kind"),
		replicaLocalServes: r.Counter("graphdiam_fleet_replica_local_serves_total",
			"Queries served locally because this node is a warm top-k replica for the key."),
		drainSeconds: r.HistogramVec("graphdiam_fleet_drain_seconds",
			"Graceful-drain phase durations.", obs.DefBuckets, "phase"),
	}
}

// ProbeFlip records one hysteresis-cleared liveness transition.
func (m *Metrics) ProbeFlip(up bool) {
	if m == nil {
		return
	}
	if up {
		m.probeFlips.With("up").Inc()
	} else {
		m.probeFlips.With("down").Inc()
	}
}

// SetEpoch records the epoch of the view now routing requests.
func (m *Metrics) SetEpoch(epoch uint64) {
	if m != nil {
		m.epoch.Set(float64(epoch))
	}
}

// SetLiveMembers records the current live-member count.
func (m *Metrics) SetLiveMembers(n int) {
	if m != nil {
		m.liveMembers.Set(float64(n))
	}
}

// EpochAdopted counts one accepted view swap.
func (m *Metrics) EpochAdopted() {
	if m != nil {
		m.epochAdoptions.Inc()
	}
}

// EpochMismatchRejected counts one classified 409 this node wrote.
func (m *Metrics) EpochMismatchRejected() {
	if m != nil {
		m.epochMismatches.Inc()
	}
}

// ProxyAttempt counts one outbound forwarding attempt.
func (m *Metrics) ProxyAttempt() {
	if m != nil {
		m.proxyAttempts.Inc()
	}
}

// ProxyRetry counts one rejected attempt by its classification.
func (m *Metrics) ProxyRetry(reason string) {
	if m != nil {
		m.proxyRetries.With(reason).Inc()
	}
}

// ProxyFailoverHop counts one advance along the preference chain.
func (m *Metrics) ProxyFailoverHop() {
	if m != nil {
		m.proxyFailoverHops.Inc()
	}
}

// CacheProbe records one fleet-cache peer probe outcome.
func (m *Metrics) CacheProbe(o probeOutcome) {
	if m == nil {
		return
	}
	switch o {
	case probeHit:
		m.cacheProbes.With("hit").Inc()
	case probeMiss:
		m.cacheProbes.With("miss").Inc()
	default:
		m.cacheProbes.With("transient").Inc()
	}
}

// ChaosFault records one injected fault by kind ("drop", "500", "cut").
func (m *Metrics) ChaosFault(kind string) {
	if m != nil {
		m.chaosFaults.With(kind).Inc()
	}
}

// ReplicaLocalServe counts one query answered from the local warm
// replica instead of being routed to the owner.
func (m *Metrics) ReplicaLocalServe() {
	if m != nil {
		m.replicaLocalServes.Inc()
	}
}

// DrainPhase records the duration of one graceful-drain phase
// ("wait_idle", "prewarm").
func (m *Metrics) DrainPhase(phase string, d time.Duration) {
	if m != nil {
		m.drainSeconds.With(phase).ObserveDuration(d)
	}
}
