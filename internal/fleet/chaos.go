package fleet

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ChaosTransport is a deterministic fault-injecting http.RoundTripper —
// PR 6's seeded-fault philosophy applied to the query plane. Every fault
// decision is a pure function of (seed, request key, per-key attempt
// number): the same seed replays the exact same drop/500/cut/delay
// schedule, so a chaos test that passes once passes always, and a
// failure reproduces from its seed alone. The request key is
// method+host+path, so retries of the same logical call advance through
// the schedule while unrelated calls stay independent.
type ChaosTransport struct {
	// Base performs the real requests; nil selects http.DefaultTransport.
	Base http.RoundTripper
	// Seed selects the fault schedule.
	Seed uint64
	// DropProb is the probability an attempt fails with a transport
	// error before reaching the wire.
	DropProb float64
	// FailProb is the probability a delivered response is replaced with
	// a synthetic 500.
	FailProb float64
	// CutProb is the probability a delivered response body is cut mid-
	// stream (the reader yields half the bytes, then an error).
	CutProb float64
	// DelayProb is the probability an attempt is delayed by Delay first.
	DelayProb float64
	// Delay is the injected latency for delayed attempts. Default 5ms.
	Delay time.Duration
	// Metrics observes injected faults by kind; nil disables.
	Metrics *Metrics

	mu       sync.Mutex
	attempts map[string]uint64
	faults   uint64 // total faults injected, for test assertions
}

// chaosRoll derives the nth uniform [0,1) variate for one attempt of one
// request key under one seed.
func chaosRoll(seed uint64, key string, attempt, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := mix64(seed ^ mix64(h.Sum64()) ^ mix64(attempt*0x9e3779b97f4a7c15+n))
	return float64(x>>11) / float64(1<<53)
}

// Faults reports how many faults the transport has injected.
func (c *ChaosTransport) Faults() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

func (c *ChaosTransport) recordFault(kind string) {
	c.mu.Lock()
	c.faults++
	c.mu.Unlock()
	c.Metrics.ChaosFault(kind)
}

// RoundTrip applies the seeded fault schedule to one attempt.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.Method + " " + req.URL.Host + req.URL.Path
	c.mu.Lock()
	if c.attempts == nil {
		c.attempts = make(map[string]uint64)
	}
	attempt := c.attempts[key]
	c.attempts[key] = attempt + 1
	c.mu.Unlock()

	if c.DelayProb > 0 && chaosRoll(c.Seed, key, attempt, 3) < c.DelayProb {
		d := c.Delay
		if d <= 0 {
			d = 5 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if c.DropProb > 0 && chaosRoll(c.Seed, key, attempt, 0) < c.DropProb {
		c.recordFault("drop")
		return nil, fmt.Errorf("chaos: dropped %s (attempt %d)", key, attempt)
	}

	base := c.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if c.FailProb > 0 && chaosRoll(c.Seed, key, attempt, 1) < c.FailProb {
		c.recordFault("500")
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		body := []byte(`{"error":"chaos: injected internal error"}`)
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        http.Header{"Content-Type": {"application/json"}, "Content-Length": {strconv.Itoa(len(body))}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if c.CutProb > 0 && chaosRoll(c.Seed, key, attempt, 2) < c.CutProb {
		c.recordFault("cut")
		resp.Body = &cutBody{rc: resp.Body}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// cutBody relays roughly half of the underlying body, then fails the
// stream — the mid-body network cut. The consumer sees a read error,
// never an EOF it could mistake for a complete response.
type cutBody struct {
	rc   io.ReadCloser
	read int
	done bool
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.done {
		return 0, fmt.Errorf("chaos: body cut after %d bytes", c.read)
	}
	if len(p) > 512 {
		p = p[:512]
	}
	n, err := c.rc.Read(p)
	c.read += n
	if c.read >= 512 || err == io.EOF {
		// Cut before a clean EOF can be observed.
		c.done = true
		if n > 0 {
			n /= 2
		}
		return n, fmt.Errorf("chaos: body cut after %d bytes", c.read)
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
