package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Request-routing rules shared by the daemon-side proxy (internal/server)
// and the front door (cmd/graphdiamlb). Classification is purely
// syntactic — method and path, plus at most one JSON field peeked from
// the body — so both proxies route identically.

// Routing headers. RoutedHeader marks a daemon→daemon hop: the receiver
// serves locally instead of re-routing, so a stale health view costs one
// extra hop, never a loop. EdgeHeader marks a front-door hop: the tenant
// was already charged at the edge, so daemons skip admission control for
// it (but may still re-route once). Both are trust-the-fleet headers; the
// query plane assumes one administrative domain, like the blob tier.
const (
	RoutedHeader    = "X-Graphdiam-Routed"
	EdgeHeader      = "X-Graphdiam-Edge"
	RequestIDHeader = "X-Request-Id"
	TenantHeader    = "X-Tenant"
	// EpochHeader stamps every fleet-internal hop with the sender's
	// placement-view epoch; a receiver on a different epoch rejects the
	// hop (409 + its view) instead of answering under divergent placement.
	EpochHeader = "X-Graphdiam-Epoch"
)

// RouteClass says where a request must execute.
type RouteClass int

const (
	// RouteLocal requests must run on the receiving node (health, cache
	// probes, the distributed BSP data plane, catalog administration).
	RouteLocal RouteClass = iota
	// RouteDataset requests are placed by dataset name (Decision.Dataset,
	// or peeked from the JSON body field Decision.BodyField).
	RouteDataset
	// RouteJob requests follow a job ID home (Decision.JobID).
	RouteJob
	// RouteAny requests have nothing to place: a daemon serves them
	// itself, the front door sends them to the first live member.
	RouteAny
)

// Decision is one request's routing classification.
type Decision struct {
	Class RouteClass
	// Dataset is the placement key when it was present in the path.
	Dataset string
	// BodyField names the JSON body field holding the placement key when
	// it must be peeked ("graph" or "name"); empty otherwise.
	BodyField string
	// JobID is the job identifier for RouteJob.
	JobID string
}

// Classify maps a request to its routing decision. It never reads the
// body — callers peek BodyField themselves (PeekBodyField) so they
// control buffering.
func Classify(method, path string) Decision {
	switch {
	case method == http.MethodPost && (path == "/v1/decompose" || path == "/v1/diameter"):
		return Decision{Class: RouteDataset, BodyField: "graph"}
	case method == http.MethodPost && path == "/v2/jobs":
		return Decision{Class: RouteDataset, BodyField: "graph"}
	case method == http.MethodPost && path == "/v1/graphs":
		return Decision{Class: RouteDataset, BodyField: "name"}
	case path == "/v1/graphs" || path == "/v2/jobs":
		return Decision{Class: RouteAny} // listings
	case strings.HasPrefix(path, "/v1/graphs/"):
		name := strings.TrimPrefix(path, "/v1/graphs/")
		if un, err := url.PathUnescape(name); err == nil {
			name = un // hash the name the handler will see, not its escaping
		}
		return Decision{Class: RouteDataset, Dataset: name}
	case strings.HasPrefix(path, "/v2/jobs/"):
		rest := strings.TrimPrefix(path, "/v2/jobs/")
		id := strings.TrimSuffix(rest, "/events")
		return Decision{Class: RouteJob, JobID: id}
	case method == http.MethodPost && strings.HasPrefix(path, "/v2/datasets/") &&
		(strings.HasSuffix(path, "/append") || strings.HasSuffix(path, "/compact")):
		// Lineage mutations move a dataset's head and must land on its
		// owner so the head moves exactly once and replicas adopt the new
		// frame by content address, like any other placed write.
		name := strings.TrimPrefix(path, "/v2/datasets/")
		name = strings.TrimSuffix(strings.TrimSuffix(name, "/append"), "/compact")
		if un, err := url.PathUnescape(name); err == nil {
			name = un
		}
		return Decision{Class: RouteDataset, Dataset: name}
	case path == "/v1/stats" || path == "/v2/datasets" || strings.HasPrefix(path, "/v2/datasets/"):
		// Stats are per-node; catalog administration targets the node the
		// operator addressed (ingest topology — hub vs mesh — is a
		// deployment choice the router must not second-guess).
		return Decision{Class: RouteLocal}
	case strings.HasPrefix(path, "/v2/cache/"),
		strings.HasPrefix(path, "/v2/bsp/"),
		strings.HasPrefix(path, "/v2/blobs"),
		strings.HasPrefix(path, "/v2/distributed"),
		path == "/healthz", path == "/readyz",
		path == "/v2/fleet", strings.HasPrefix(path, "/v2/fleet/"):
		// Membership administration (/v2/fleet/config, /v2/fleet/drain)
		// targets the node the operator addressed, never a routed peer.
		return Decision{Class: RouteLocal}
	default:
		return Decision{Class: RouteAny}
	}
}

// CostsJob reports whether a request submits BSP work and therefore
// charges the tenant's admission quota.
func CostsJob(method, path string) bool {
	return method == http.MethodPost &&
		(path == "/v1/decompose" || path == "/v1/diameter" ||
			path == "/v2/jobs" || path == "/v2/distributed/jobs")
}

// JobHomeRank extracts the home rank from a fleet-qualified job ID
// ("job-r<rank>-<seq>"). Pre-fleet IDs ("job-<seq>") report ok=false and
// are served locally.
func JobHomeRank(id string) (int, bool) {
	rest, found := strings.CutPrefix(id, "job-r")
	if !found {
		return 0, false
	}
	rankStr, _, found := strings.Cut(rest, "-")
	if !found {
		return 0, false
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil || rank < 0 {
		return 0, false
	}
	return rank, true
}

// PeekBodyField reads the request body (bounded by the MaxBytesReader
// the caller already installed), extracts the named top-level string
// field from its JSON object, and reinstates the body for forwarding or
// local handling. A body that is not a JSON object, or lacks the field,
// yields "" — the caller serves locally and the handler produces its
// usual 400/404.
func PeekBodyField(r *http.Request, field string) (string, error) {
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return "", fmt.Errorf("read request body: %w", err)
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	var probe map[string]json.RawMessage
	if json.Unmarshal(body, &probe) != nil {
		return "", nil
	}
	var val string
	if raw, ok := probe[field]; ok {
		json.Unmarshal(raw, &val)
	}
	return val, nil
}
