package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Elastic membership: the member list plus an epoch number form a placement
// *view* that every routing decision reads atomically and that can be
// replaced at runtime (admin config push, SIGHUP reload, or anti-entropy
// adoption from a peer). Views are totally ordered by epoch and the higher
// epoch always wins, so the fleet converges without coordination: every
// fleet-internal request is stamped with the sender's epoch, a receiver on
// a different epoch rejects it with a classified, retryable mismatch that
// carries the receiver's full view, and whichever side is behind adopts the
// newer view before the bounded retry. A node therefore never answers a
// request placed under a different view than its own — an epoch mismatch is
// one round-trip of convergence, never a silent wrong-owner answer.

// View is the epoch-stamped placement view: the rank-ordered member URL
// list all routing math runs over, and the epoch that versions it. Boot
// views (from -peers) are epoch 1; every config push must strictly raise
// the epoch.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// Equal reports whether two views agree on epoch and membership.
func (v View) Equal(o View) bool {
	if v.Epoch != o.Epoch || len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// memberHealth is one member's observed-health state. The structs are
// carried across view swaps by URL, so a member that survives a membership
// change keeps its liveness and its hysteresis streak.
type memberHealth struct {
	live atomic.Bool
	// contrary counts consecutive probe results contradicting the current
	// liveness state; the state flips only when it reaches the hysteresis
	// threshold, so a flapping peer cannot thrash placement.
	contrary atomic.Int32
}

// tableView is one immutable placement view plus its health column. A
// Table swaps the whole struct atomically; readers snapshot the pointer
// once and never see a torn view.
type tableView struct {
	epoch   uint64
	members []Member
	self    int // index of the table's own URL in members, or -1
	health  []*memberHealth
}

// Epoch returns the current placement view's epoch.
func (t *Table) Epoch() uint64 { return t.cur.Load().epoch }

// View returns the current placement view in wire form.
func (t *Table) View() View {
	v := t.cur.Load()
	urls := make([]string, len(v.members))
	for i, m := range v.members {
		urls[i] = m.URL
	}
	return View{Epoch: v.epoch, Members: urls}
}

// buildView validates a wire view against this table's identity and
// materializes it, carrying member health over from prev by URL. New
// members start dead (the prober brings them up); self is always live.
func (t *Table) buildView(v View, prev *tableView) (*tableView, error) {
	norm, err := NormalizePeers(v.Members)
	if err != nil {
		return nil, err
	}
	if v.Epoch == 0 {
		return nil, fmt.Errorf("fleet: view epoch must be positive")
	}
	self := -1
	for i, u := range norm {
		if t.selfURL != "" && u == t.selfURL {
			self = i
		}
	}
	if t.selfURL != "" && self < 0 {
		// Satellite of the membership protocol: a view that would orphan
		// this node's own entry is rejected outright — adopting it would
		// leave the node routing every request away from itself while
		// telling nobody it exists.
		return nil, fmt.Errorf("fleet: view epoch %d does not contain this node (%s); refusing to orphan self, keeping epoch %d",
			v.Epoch, t.selfURL, prev.epoch)
	}
	carried := make(map[string]*memberHealth, len(prev.members))
	for i, m := range prev.members {
		carried[m.URL] = prev.health[i]
	}
	nv := &tableView{
		epoch:   v.Epoch,
		members: make([]Member, len(norm)),
		self:    self,
		health:  make([]*memberHealth, len(norm)),
	}
	for i, u := range norm {
		nv.members[i] = Member{Rank: i, URL: u}
		if h, ok := carried[u]; ok {
			nv.health[i] = h
		} else {
			nv.health[i] = &memberHealth{}
		}
	}
	if self >= 0 {
		nv.health[self].live.Store(true)
	}
	return nv, nil
}

// SwapView replaces the placement view with v. The swap is rejected — old
// view kept, clear error returned — when v fails validation, does not
// strictly raise the epoch (an identical re-post of the current view is an
// idempotent no-op), or would orphan this node's own entry. Health state
// of members present in both views is preserved.
func (t *Table) SwapView(v View) error {
	t.swapMu.Lock()
	defer t.swapMu.Unlock()
	cur := t.cur.Load()
	if v.Epoch == cur.epoch && t.View().Equal(v) {
		return nil // idempotent re-post of the live view
	}
	if v.Epoch <= cur.epoch {
		return fmt.Errorf("fleet: view epoch %d is not newer than current epoch %d", v.Epoch, cur.epoch)
	}
	nv, err := t.buildView(v, cur)
	if err != nil {
		return err
	}
	t.cur.Store(nv)
	t.opts.Metrics.EpochAdopted()
	t.opts.Metrics.SetEpoch(nv.epoch)
	t.noteHealth(nv)
	if t.opts.Log != nil {
		t.opts.Log.Info("fleet placement view swapped",
			"epoch", nv.epoch, "members", len(nv.members), "self_rank", nv.self)
	}
	return nil
}

// AdoptIfNewer installs v only when its epoch is strictly newer than the
// current view's, reporting whether a swap happened. Validation failures
// (including a view that would orphan self) are swallowed — anti-entropy
// must never crash the adopter — but logged.
func (t *Table) AdoptIfNewer(v View) bool {
	if v.Epoch <= t.Epoch() {
		return false
	}
	if err := t.SwapView(v); err != nil {
		if t.opts.Log != nil {
			t.opts.Log.Warn("fleet refusing advertised view",
				"epoch", v.Epoch, "error", err.Error())
		}
		return false
	}
	return true
}

// Error-classification header values. A fleet hop that cannot be served
// as routed sets ErrClassHeader so the sending proxy can distinguish
// retry-here (epoch mismatch, after adopting the attached view) from
// retry-elsewhere (draining / dead backend) without parsing error prose.
const (
	// ErrClassHeader carries the machine-readable error class of a fleet
	// rejection.
	ErrClassHeader = "X-Graphdiam-Error"
	// ErrClassEpochMismatch marks a 409: the request's placement epoch is
	// not the receiver's. The response body carries the receiver's view.
	ErrClassEpochMismatch = "epoch-mismatch"
	// ErrClassDraining marks a 503: the receiver is draining and refuses
	// new compute work; retry against the next preference member.
	ErrClassDraining = "draining"
)

// viewError is the JSON body of an epoch-mismatch rejection: the error
// prose plus the receiver's full view, so the sender can adopt it (when
// newer) or push its own (when the receiver is behind) before retrying.
type viewError struct {
	Error string `json:"error"`
	View  View   `json:"view"`
}

// WriteEpochMismatch rejects a mis-epoched request with 409, the receiver's
// epoch in EpochHeader, the classification in ErrClassHeader, and the
// receiver's full view in the body.
func WriteEpochMismatch(w http.ResponseWriter, got string, v View) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ErrClassHeader, ErrClassEpochMismatch)
	w.Header().Set(EpochHeader, strconv.FormatUint(v.Epoch, 10))
	w.WriteHeader(http.StatusConflict)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(viewError{
		Error: fmt.Sprintf("fleet: request placement epoch %s does not match this node's epoch %d", got, v.Epoch),
		View:  v,
	})
}

// WriteDraining rejects new compute work on a draining node with 503, a
// Retry-After, and the draining classification — a retryable signal the
// proxies turn into a failover to the next preference member.
func WriteDraining(w http.ResponseWriter, retryAfterSecs int) {
	if retryAfterSecs < 1 {
		retryAfterSecs = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ErrClassHeader, ErrClassDraining)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{
		"error": "fleet: node is draining; retry against the next preference member",
	})
}

// IsEpochMismatch reports whether resp is a classified epoch-mismatch
// rejection.
func IsEpochMismatch(resp *http.Response) bool {
	return resp.StatusCode == http.StatusConflict &&
		resp.Header.Get(ErrClassHeader) == ErrClassEpochMismatch
}

// IsDrainingResponse reports whether resp is a classified draining
// rejection.
func IsDrainingResponse(resp *http.Response) bool {
	return resp.StatusCode == http.StatusServiceUnavailable &&
		resp.Header.Get(ErrClassHeader) == ErrClassDraining
}

// DecodeViewError extracts the receiver's view from an epoch-mismatch body
// (bounded read; the caller owns closing the body).
func DecodeViewError(body io.Reader) (View, bool) {
	var ve viewError
	if err := json.NewDecoder(io.LimitReader(body, 1<<20)).Decode(&ve); err != nil {
		return View{}, false
	}
	if ve.View.Epoch == 0 || len(ve.View.Members) == 0 {
		return View{}, false
	}
	return ve.View, true
}

// StampEpoch marks an outbound fleet-internal request with the sender's
// placement epoch so the receiver can detect divergent views.
func StampEpoch(h http.Header, epoch uint64) {
	h.Set(EpochHeader, strconv.FormatUint(epoch, 10))
}

// RequestEpoch parses the placement epoch stamped on a request; ok is
// false when the header is absent or malformed (external clients).
func RequestEpoch(h http.Header) (uint64, bool) {
	raw := h.Get(EpochHeader)
	if raw == "" {
		return 0, false
	}
	e, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// PushView posts a view to a peer's /v2/fleet/config (the sender-is-newer
// half of anti-entropy: a receiver that rejected our epoch because it is
// *behind* learns the newer view this way). Best-effort.
func PushView(client *http.Client, base string, v View) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v2/fleet/config", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: view push to %s: status %d", base, resp.StatusCode)
	}
	return nil
}
