// Package fleet is the query plane of a graphdiam fleet: deterministic
// dataset→owner placement over a health-checked member list, the client
// side of the fleet-wide result cache, per-tenant admission control, and
// the request-classification rules the owner-routing proxies (in
// internal/server and cmd/graphdiamlb) share.
//
// Placement is rendezvous (highest-random-weight) hashing: every node
// scores each (member URL, key) pair with the same hash function and the
// key's owner is the live member with the highest score. All nodes run
// the identical epoch-stamped placement view (boot -peers list, or a
// newer view swapped in at runtime — see membership.go), so they agree
// on ownership without any coordination, and when the owner dies the key
// deterministically fails over to the next-ranked live member — exactly
// the "first live node in score order" every other node also computes.
// Content addressing (PR 4) makes this safe: any node can adopt any
// dataset from the shared blob tier and serve bit-identical answers, so
// a stale health view misroutes a query at worst to a correct-but-cold
// node, never to a wrong answer.
package fleet

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Member is one node of the fleet.
type Member struct {
	// Rank is the member's index in the current placement view.
	Rank int `json:"rank"`
	// URL is the member's base URL (no trailing slash).
	URL string `json:"url"`
}

// MemberStatus is a Member plus its last observed health, for /readyz
// and /v2/fleet payloads.
type MemberStatus struct {
	Member
	// Live reports the last health probe's outcome (self is always live).
	Live bool `json:"live"`
	// Self marks the reporting node's own row.
	Self bool `json:"self,omitempty"`
}

// TableOptions tunes a Table. Zero values select the defaults.
type TableOptions struct {
	// Interval is the background health-probe cadence; 0 disables the
	// background prober (callers drive ProbeOnce themselves — tests, or
	// single-shot tools).
	Interval time.Duration
	// ProbeTimeout bounds one member's health probe. Default 2s.
	ProbeTimeout time.Duration
	// FlipThreshold is the hysteresis width: how many consecutive probe
	// failures it takes to mark a live member down. Default 2, so one
	// flaky probe (or a peer mid-GC-pause) does not reshuffle placement.
	// Recovery is asymmetric — a single successful probe marks a dead
	// member up — because serving from a freshly-returned member is
	// cheap, while abandoning a healthy owner is not.
	FlipThreshold int
	// Client performs health probes; nil selects http.DefaultClient.
	Client *http.Client
	// Log receives membership transitions as structured records (rank,
	// url, epoch fields); nil disables logging.
	Log *slog.Logger
	// Metrics observes probe flips, epoch adoptions, and live-member
	// counts; nil disables metric recording.
	Metrics *Metrics
}

// Table is the fleet membership view of one node: the epoch-stamped
// rank-ordered member list, each member's last observed health, and the
// placement function. The whole view swaps atomically (SwapView), so
// routing decisions never observe a half-applied membership change. All
// methods are safe for concurrent use.
type Table struct {
	// selfURL is this node's identity across view swaps ("" for a node
	// outside the fleet, like the lb). The node's rank is derived from
	// the current view, not fixed at boot.
	selfURL string
	opts    TableOptions

	cur    atomic.Pointer[tableView]
	swapMu sync.Mutex // serializes SwapView's check-then-store

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
}

// NewTable builds a membership table over the boot peer list, which
// becomes placement view epoch 1. self is this node's rank in urls, or
// -1 for a front door that is not itself a member (cmd/graphdiamlb).
// Until the first probe, every member except self is considered down —
// run ProbeOnce (or Start the background prober) before routing.
func NewTable(urls []string, self int, opts TableOptions) (*Table, error) {
	norm, err := NormalizePeers(urls)
	if err != nil {
		return nil, err
	}
	if self < -1 || self >= len(norm) {
		return nil, fmt.Errorf("fleet: self rank %d out of range for %d members", self, len(norm))
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FlipThreshold <= 0 {
		opts.FlipThreshold = 2
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	t := &Table{
		opts:    opts,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if self >= 0 {
		t.selfURL = norm[self]
	}
	v, err := t.buildView(View{Epoch: 1, Members: norm}, &tableView{})
	if err != nil {
		return nil, err
	}
	t.cur.Store(v)
	t.opts.Metrics.SetEpoch(v.epoch)
	t.noteHealth(v)
	return t, nil
}

// noteHealth refreshes the live-member gauge from one view's health
// column. Called after any flip or view swap; cheap (one pass, atomic
// loads), so it rides the transition paths rather than scrape time.
func (t *Table) noteHealth(v *tableView) {
	if t.opts.Metrics == nil {
		return
	}
	n := 0
	for i := range v.health {
		if v.health[i].live.Load() {
			n++
		}
	}
	t.opts.Metrics.SetLiveMembers(n)
}

// NormalizePeers canonicalizes a -peers list: whitespace trimmed, one
// trailing slash stripped, every entry a non-empty absolute http(s) URL,
// no duplicates. Every fleet node must normalize identically or placement
// diverges, which is why this lives here and not in flag parsing.
func NormalizePeers(urls []string) ([]string, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: member list is empty")
	}
	out := make([]string, len(urls))
	seen := make(map[string]int, len(urls))
	for i, raw := range urls {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("fleet: empty member URL at rank %d", i)
		}
		parsed, err := url.Parse(u)
		if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
			return nil, fmt.Errorf("fleet: member %d URL %q is not an absolute http(s) URL", i, raw)
		}
		if prev, dup := seen[u]; dup {
			return nil, fmt.Errorf("fleet: member URL %q appears at both rank %d and rank %d", u, prev, i)
		}
		seen[u] = i
		out[i] = u
	}
	return out, nil
}

// ValidateDaemonFlags checks the fleet-facing boot flags of one daemon
// for the inconsistencies that previously surfaced only at first query:
// a -worker-id outside the -peers range, and a -blob-url naming the
// daemon's own peer entry (a node cannot adopt snapshots from itself —
// the first remote fetch would recurse into the very handler waiting on
// it). Returns the normalized peer list.
func ValidateDaemonFlags(peers []string, workerID int, blobURL string) ([]string, error) {
	norm, err := NormalizePeers(peers)
	if err != nil {
		return nil, err
	}
	if workerID < 0 || workerID >= len(norm) {
		return nil, fmt.Errorf("fleet: -worker-id %d out of range for %d peers (want 0..%d)",
			workerID, len(norm), len(norm)-1)
	}
	if blobURL != "" {
		b := strings.TrimRight(strings.TrimSpace(blobURL), "/")
		if b == norm[workerID] {
			return nil, fmt.Errorf("fleet: -blob-url %s is this daemon's own -peers entry (rank %d): a daemon cannot adopt snapshots from itself — point -blob-url at a peer or omit it on the hub",
				blobURL, workerID)
		}
	}
	return norm, nil
}

// Self returns this node's rank in the current view, or -1 outside the
// fleet. The rank can change across view swaps (a swap that would drop
// the node entirely is rejected — see buildView); callers needing a
// stable identity should use SelfURL.
func (t *Table) Self() int { return t.cur.Load().self }

// SelfURL returns this node's canonical member URL, or "" outside the
// fleet. Unlike the rank, the URL is stable across view swaps.
func (t *Table) SelfURL() string { return t.selfURL }

// Members returns the rank-ordered member list of the current view.
func (t *Table) Members() []Member {
	v := t.cur.Load()
	return append([]Member(nil), v.members...)
}

// Live reports the last observed health of the member with the given
// rank in the current view. Self is always live.
func (t *Table) Live(rank int) bool {
	v := t.cur.Load()
	return rank >= 0 && rank < len(v.health) && v.health[rank].live.Load()
}

// SetLive overrides one member's health (tests, and direct operator
// action). A direct override also resets the hysteresis streak.
func (t *Table) SetLive(rank int, live bool) {
	v := t.cur.Load()
	if rank < 0 || rank >= len(v.health) || (rank == v.self && !live) {
		return // self never goes dead in its own view
	}
	h := v.health[rank]
	h.contrary.Store(0)
	was := h.live.Swap(live)
	if was != live {
		t.opts.Metrics.ProbeFlip(live)
		t.noteHealth(v)
		if t.opts.Log != nil {
			t.opts.Log.Info("fleet member health overridden",
				"rank", rank, "url", v.members[rank].URL, "live", live, "epoch", v.epoch)
		}
	}
}

// reportProbe feeds one probe observation into a member's hysteresis
// state. Coming up takes a single success; going down takes
// FlipThreshold consecutive failures, so a flapping peer (alternating
// up/down) never leaves the live set and placement stays stable.
func (t *Table) reportProbe(v *tableView, rank int, up bool) {
	if rank < 0 || rank >= len(v.health) || rank == v.self {
		return
	}
	h := v.health[rank]
	was := h.live.Load()
	if up == was {
		h.contrary.Store(0)
		return
	}
	if up {
		// Single-success recovery: a dead member answering readyz is
		// immediately eligible again.
		h.contrary.Store(0)
		if !h.live.Swap(true) {
			t.opts.Metrics.ProbeFlip(true)
			t.noteHealth(v)
			if t.opts.Log != nil {
				t.opts.Log.Info("fleet member up",
					"rank", rank, "url", v.members[rank].URL, "epoch", v.epoch)
			}
		}
		return
	}
	if h.contrary.Add(1) < int32(t.opts.FlipThreshold) {
		return // within hysteresis: keep serving through a blip
	}
	h.contrary.Store(0)
	if h.live.Swap(false) {
		t.opts.Metrics.ProbeFlip(false)
		t.noteHealth(v)
		if t.opts.Log != nil {
			t.opts.Log.Warn("fleet member down",
				"rank", rank, "url", v.members[rank].URL,
				"consecutive_failures", t.opts.FlipThreshold, "epoch", v.epoch)
		}
	}
}

// Snapshot reports every member of the current view with its last
// observed health.
func (t *Table) Snapshot() []MemberStatus {
	v := t.cur.Load()
	out := make([]MemberStatus, len(v.members))
	for i, m := range v.members {
		out[i] = MemberStatus{Member: m, Live: v.health[i].live.Load(), Self: i == v.self}
	}
	return out
}

// LiveCount counts members currently observed live.
func (t *Table) LiveCount() int {
	v := t.cur.Load()
	n := 0
	for i := range v.health {
		if v.health[i].live.Load() {
			n++
		}
	}
	return n
}

// score is the rendezvous weight of (member, key): FNV-1a over the
// member's canonical URL, a separator that cannot appear in a URL, and
// the key, passed through a 64-bit avalanche finalizer. The finalizer
// matters: raw FNV-1a keeps enough ordering correlation between
// near-identical member URLs that one member can win every key — the
// mix makes per-member scores behave independently. Every node computes
// the same number, so ownership needs no coordination.
func score(memberURL, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(memberURL))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijection whose output bits
// each depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Preference returns every member of the current view in descending
// rendezvous-score order for key — the deterministic failover chain.
// Ties (only possible with colliding hashes) break toward the lower
// rank, keeping the order total.
func (t *Table) Preference(key string) []Member {
	v := t.cur.Load()
	type scored struct {
		m Member
		s uint64
	}
	sc := make([]scored, len(v.members))
	for i, m := range v.members {
		sc[i] = scored{m: m, s: score(m.URL, key)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].m.Rank < sc[j].m.Rank
	})
	out := make([]Member, len(sc))
	for i, s := range sc {
		out[i] = s.m
	}
	return out
}

// Owner returns the key's current owner: the first live member in
// preference order. ok is false when no member is live (only possible on
// a node outside the fleet — a member always counts itself live).
func (t *Table) Owner(key string) (Member, bool) {
	v := t.cur.Load()
	for _, m := range t.Preference(key) {
		if m.Rank < len(v.health) && v.health[m.Rank].live.Load() {
			return m, true
		}
	}
	return Member{}, false
}

// Replicas returns the first k live members of the key's preference
// chain — the owner plus its read replicas. k<=1 degrades to the owner
// alone; fewer than k live members yields fewer replicas.
func (t *Table) Replicas(key string, k int) []Member {
	if k < 1 {
		k = 1
	}
	v := t.cur.Load()
	out := make([]Member, 0, k)
	for _, m := range t.Preference(key) {
		if m.Rank < len(v.health) && v.health[m.Rank].live.Load() {
			out = append(out, m)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// FirstLive returns the lowest-ranked live member — the front door's
// target for requests that have no dataset to place.
func (t *Table) FirstLive() (Member, bool) {
	v := t.cur.Load()
	for i, m := range v.members {
		if v.health[i].live.Load() {
			return m, true
		}
	}
	return Member{}, false
}

// ProbeOnce health-checks every member (except self) once, in parallel,
// against GET /readyz, feeding results through the hysteresis filter. A
// probe is a success iff the member answers 2xx within the probe
// timeout. Probes double as anti-entropy: a readyz body advertising a
// newer placement view than ours is adopted after the sweep, so a node
// that missed a config push converges within one probe interval.
func (t *Table) ProbeOnce(ctx context.Context) {
	v := t.cur.Load()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		newest View
	)
	for i := range v.members {
		if i == v.self {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			up, adv := t.probe(ctx, v.members[i].URL)
			t.reportProbe(v, i, up)
			if adv.Epoch > 0 {
				mu.Lock()
				if adv.Epoch > newest.Epoch {
					newest = adv
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if newest.Epoch > t.Epoch() {
		t.AdoptIfNewer(newest)
	}
}

// probe health-checks one member and parses any placement view its
// readyz body advertises (readyz carries the view even on 503, so a
// draining or not-ready peer still gossips membership).
func (t *Table) probe(ctx context.Context, baseURL string) (bool, View) {
	ctx, cancel := context.WithTimeout(ctx, t.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
	if err != nil {
		return false, View{}
	}
	resp, err := t.opts.Client.Do(req)
	if err != nil {
		return false, View{}
	}
	defer resp.Body.Close()
	var adv struct {
		View *View `json:"view"`
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	view := View{}
	if err == nil && json.Unmarshal(body, &adv) == nil && adv.View != nil {
		view = *adv.View
	}
	return resp.StatusCode >= 200 && resp.StatusCode < 300, view
}

// Start launches the background prober at the configured interval (no-op
// when Interval is 0). The first sweep runs immediately so a freshly
// booted node converges before its first routed request.
func (t *Table) Start() {
	if t.opts.Interval <= 0 || !t.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(t.stopped)
		ctx := context.Background()
		t.ProbeOnce(ctx)
		tick := time.NewTicker(t.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.ProbeOnce(ctx)
			case <-t.stop:
				return
			}
		}
	}()
}

// Close stops the background prober (if running) and waits for it to
// exit. Safe regardless of whether Start was called.
func (t *Table) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	if t.started.Load() {
		<-t.stopped
	}
}

// NewRequestID mints an edge request ID: 16 hex characters of
// crypto/rand entropy, compact enough for log lines and unique enough to
// trace one query across every routed hop.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a reason to drop a request; a
		// constant marker still distinguishes "no id" from "id lost".
		return "00000000ffffffff"
	}
	return hex.EncodeToString(b[:])
}
