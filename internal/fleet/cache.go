package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Cache is the client side of the fleet-wide result cache: before a node
// runs a BSP computation for a dataset-backed query it probes its peers'
// GET /v2/cache/{key} endpoints (a cache key is dataset SHA-256 plus the
// canonical query parameters, so content addressing makes cross-node
// reuse exact); after computing it pushes the result to the key's
// rendezvous owner with PUT, so deterministic routing finds it there no
// matter which node did the work. Both sides are best-effort: a probe
// miss or a failed push costs one recomputation, never correctness.
//
// Cache implements store.FleetCache.
type Cache struct {
	t *Table

	// client performs probe/push requests.
	client *http.Client
	// timeout bounds one probe or push.
	timeout time.Duration
	// maxProbes caps how many peers one Get consults.
	maxProbes int
	// maxBody caps an accepted cached-result body.
	maxBody int64

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// CacheOptions tunes a Cache. Zero values select the defaults.
type CacheOptions struct {
	// Client performs probe and push requests; nil selects a dedicated
	// client (probes must not ride a client with unbounded timeouts).
	Client *http.Client
	// Timeout bounds one probe or push. Default 3s.
	Timeout time.Duration
	// MaxProbes caps the peers consulted per Get, in preference order.
	// Default 3.
	MaxProbes int
	// MaxBody caps the size of an accepted cached result. Default 8 MiB.
	MaxBody int64
}

// NewCache builds the fleet cache client over a membership table.
func NewCache(t *Table, opts CacheOptions) *Cache {
	if opts.Timeout <= 0 {
		opts.Timeout = 3 * time.Second
	}
	if opts.MaxProbes <= 0 {
		opts.MaxProbes = 3
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 8 << 20
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: opts.Timeout}
	}
	return &Cache{
		t:         t,
		client:    opts.Client,
		timeout:   opts.Timeout,
		maxProbes: opts.MaxProbes,
		maxBody:   opts.MaxBody,
	}
}

// cacheURL renders the /v2/cache URL for key on a member. The key holds
// '|' and '=' from the canonical parameter string, so it travels
// path-escaped.
func cacheURL(base, key string) string {
	return base + "/v2/cache/" + url.PathEscape(key)
}

// Get probes live peers for key in rendezvous-preference order (the
// owner first — deterministic routing makes it the most likely holder),
// capped at MaxProbes, and returns the first cached result found. Self
// is skipped: the caller already missed its local cache.
func (c *Cache) Get(ctx context.Context, key string) ([]byte, bool) {
	probed := 0
	for _, m := range c.t.Preference(key) {
		if probed >= c.maxProbes {
			break
		}
		if m.Rank == c.t.Self() || !c.t.Live(m.Rank) {
			continue
		}
		probed++
		if b, ok := c.probe(ctx, m.URL, key); ok {
			return b, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

func (c *Cache) probe(ctx context.Context, base, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(base, key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
	if err != nil || int64(len(b)) > c.maxBody || len(b) == 0 {
		return nil, false
	}
	return b, true
}

// Put pushes a freshly computed result to the key's rendezvous owner in
// the background (fire-and-forget with a bounded timeout). When this
// node is the owner — the common case under deterministic routing — the
// result already sits in the local LRU and no push happens.
func (c *Cache) Put(key string, body []byte) {
	owner, ok := c.t.Owner(key)
	if !ok || owner.Rank == c.t.Self() {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(owner.URL, key), bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
	}()
}

// Close waits for in-flight background pushes; new pushes are dropped.
func (c *Cache) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}
