package fleet

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Cache is the client side of the fleet-wide result cache: before a node
// runs a BSP computation for a dataset-backed query it probes its peers'
// GET /v2/cache/{key} endpoints (a cache key is dataset SHA-256 plus the
// canonical query parameters, so content addressing makes cross-node
// reuse exact); after computing it pushes the result to the key's top-k
// rendezvous replicas, so deterministic routing finds it on the owner
// and the failover chain keeps serving it when the owner dies. Both
// sides are best-effort: a probe miss or a failed push costs one
// recomputation, never correctness.
//
// Probes are classified, not all-or-nothing: a 4xx from a peer is a
// definitive miss (skip it), while a 5xx or transport error is transient
// — worth one jittered retry against the same peer before moving down
// the preference chain. Every probe and push is epoch-stamped; a peer on
// a newer view rejects with its view attached, which the client adopts.
//
// Cache implements store.FleetCache.
type Cache struct {
	t *Table

	// client performs probe/push requests.
	client *http.Client
	// timeout bounds one probe or push attempt.
	timeout time.Duration
	// maxProbes caps how many peers one Get consults.
	maxProbes int
	// maxBody caps an accepted cached-result body.
	maxBody int64
	// replicas is how many preference-chain members receive a Put.
	replicas int
	// metrics observes probe outcomes; nil disables.
	metrics *Metrics

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// CacheOptions tunes a Cache. Zero values select the defaults.
type CacheOptions struct {
	// Client performs probe and push requests; nil selects a dedicated
	// client (probes must not ride a client with unbounded timeouts).
	Client *http.Client
	// Timeout bounds one probe or push attempt. Default 3s.
	Timeout time.Duration
	// MaxProbes caps the peers consulted per Get, in preference order.
	// Default 3.
	MaxProbes int
	// MaxBody caps the size of an accepted cached result. Default 8 MiB.
	MaxBody int64
	// Replicas is the read replication factor k: a Put lands on the
	// first k live members of the key's preference chain (self included
	// in the count — it already holds the result locally). Default 1
	// (owner only).
	Replicas int
	// Metrics observes probe outcomes; nil disables metric recording.
	Metrics *Metrics
}

// NewCache builds the fleet cache client over a membership table.
func NewCache(t *Table, opts CacheOptions) *Cache {
	if opts.Timeout <= 0 {
		opts.Timeout = 3 * time.Second
	}
	if opts.MaxProbes <= 0 {
		opts.MaxProbes = 3
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 8 << 20
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: opts.Timeout}
	}
	return &Cache{
		t:         t,
		client:    opts.Client,
		timeout:   opts.Timeout,
		maxProbes: opts.MaxProbes,
		maxBody:   opts.MaxBody,
		replicas:  opts.Replicas,
		metrics:   opts.Metrics,
	}
}

// cacheURL renders the /v2/cache URL for key on a member. The key holds
// '|' and '=' from the canonical parameter string, so it travels
// path-escaped.
func cacheURL(base, key string) string {
	return base + "/v2/cache/" + url.PathEscape(key)
}

// Get probes live peers for key in rendezvous-preference order (the
// owner first — deterministic routing makes it the most likely holder),
// capped at MaxProbes, and returns the first cached result found. Self
// is skipped: the caller already missed its local cache. A transient
// failure (5xx, timeout, connection refused) earns the peer one jittered
// retry; a definitive 4xx moves straight to the next preference member.
func (c *Cache) Get(ctx context.Context, key string) ([]byte, bool) {
	probed := 0
	for _, m := range c.t.Preference(key) {
		if probed >= c.maxProbes {
			break
		}
		if m.Rank == c.t.Self() || !c.t.Live(m.Rank) {
			continue
		}
		probed++
		b, outcome := c.probe(ctx, m.URL, key)
		c.metrics.CacheProbe(outcome)
		if outcome == probeTransient {
			// One jittered retry before giving up on this peer: flaky is
			// not dead, and the owner is by far the most likely holder.
			select {
			case <-time.After(time.Duration(rand.Int63n(int64(50 * time.Millisecond)))):
			case <-ctx.Done():
				return nil, false
			}
			b, outcome = c.probe(ctx, m.URL, key)
			c.metrics.CacheProbe(outcome)
		}
		if outcome == probeHit {
			return b, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

// probe outcomes.
type probeOutcome int

const (
	probeHit       probeOutcome = iota // cached bytes returned
	probeMiss                          // definitive miss (404/other 4xx) — skip peer
	probeTransient                     // 5xx or transport error — retry once
)

func (c *Cache) probe(ctx context.Context, base, key string) ([]byte, probeOutcome) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(base, key), nil)
	if err != nil {
		return nil, probeMiss
	}
	StampEpoch(req.Header, c.t.Epoch())
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, probeTransient
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
		if err != nil || int64(len(b)) > c.maxBody || len(b) == 0 {
			// A cut-off or oversized body is transient damage, not a miss.
			return nil, probeTransient
		}
		return b, probeHit
	case IsEpochMismatch(resp):
		// The peer runs a different view; adopt it when newer and treat
		// the probe as transient — the retry goes out under the repaired
		// epoch.
		if v, ok := DecodeViewError(resp.Body); ok {
			c.t.AdoptIfNewer(v)
		}
		return nil, probeTransient
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, probeMiss
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, probeTransient
	}
}

// Put pushes a freshly computed result to the first k live members of
// the key's preference chain in the background (fire-and-forget with a
// bounded timeout per target). Self is skipped — the result already
// sits in the local LRU — but still counts toward k, so with k=1 an
// owner that computed its own key pushes nothing, exactly the pre-
// replication behavior.
func (c *Cache) Put(key string, body []byte) {
	for _, m := range c.t.Replicas(key, c.replicas) {
		if m.Rank == c.t.Self() {
			continue
		}
		c.push(m.URL, key, body)
	}
}

// PushSuccessor hands key's cached bytes to the first live non-self
// member of its preference chain, synchronously — the drain path's
// cache pre-warming, where "fire and forget" would race the process
// exit. Reports whether a successor accepted the entry.
func (c *Cache) PushSuccessor(key string, body []byte) bool {
	for _, m := range c.t.Preference(key) {
		if m.Rank == c.t.Self() || !c.t.Live(m.Rank) {
			continue
		}
		return c.pushOnce(m.URL, key, body) == nil
	}
	return false
}

// push enqueues one background best-effort push.
func (c *Cache) push(base, key string, body []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		c.pushOnce(base, key, body)
	}()
}

// pushOnce performs one epoch-stamped PUT, adopting the peer's view on
// an epoch-mismatch rejection and retrying once under the new epoch.
func (c *Cache) pushOnce(base, key string, body []byte) error {
	for attempt := 0; attempt < 2; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, cacheURL(base, key), bytes.NewReader(body))
		if err != nil {
			cancel()
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		StampEpoch(req.Header, c.t.Epoch())
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			return err
		}
		mismatch := IsEpochMismatch(resp)
		if mismatch {
			if v, ok := DecodeViewError(resp.Body); ok {
				c.t.AdoptIfNewer(v)
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		cancel()
		if !mismatch {
			if resp.StatusCode >= 300 {
				return &url.Error{Op: "Put", URL: cacheURL(base, key), Err: errStatus(resp.StatusCode)}
			}
			return nil
		}
	}
	return &url.Error{Op: "Put", URL: cacheURL(base, key), Err: errStatus(http.StatusConflict)}
}

type errStatus int

func (e errStatus) Error() string { return "unexpected status " + http.StatusText(int(e)) }

// Close waits for in-flight background pushes; new pushes are dropped.
func (c *Cache) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}
