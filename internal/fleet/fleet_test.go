package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestTable(t *testing.T, urls []string, self int) *Table {
	t.Helper()
	tab, err := NewTable(urls, self, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNormalizePeers(t *testing.T) {
	got, err := NormalizePeers([]string{" http://a:8080/ ", "http://b:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "http://a:8080" || got[1] != "http://b:8080" {
		t.Fatalf("normalize: %v", got)
	}
	for _, bad := range [][]string{
		{},
		{""},
		{"http://a:8080", "   "},
		{"a:8080"},                // no scheme
		{"ftp://a:8080"},          // wrong scheme
		{"http://"},               // no host
		{"http://a", "http://a/"}, // duplicate after normalization
	} {
		if _, err := NormalizePeers(bad); err == nil {
			t.Errorf("NormalizePeers(%v): want error", bad)
		}
	}
}

func TestValidateDaemonFlags(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080"}
	if _, err := ValidateDaemonFlags(peers, 1, "http://a:8080"); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if _, err := ValidateDaemonFlags(peers, 2, ""); err == nil {
		t.Error("worker-id beyond peers: want error")
	}
	if _, err := ValidateDaemonFlags(peers, -1, ""); err == nil {
		t.Error("negative worker-id: want error")
	}
	// A daemon must not adopt snapshots from itself: -blob-url equal to
	// its own -peers entry (even spelled with a trailing slash) is a
	// boot-time error now, not a first-query hang.
	if _, err := ValidateDaemonFlags(peers, 0, "http://a:8080/"); err == nil {
		t.Error("blob-url == own peer entry: want error")
	}
}

// TestPlacementAgreement: every node — members and a front door outside
// the fleet — computes the identical preference chain for a key, with no
// coordination. That agreement is the whole routing design.
func TestPlacementAgreement(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	tables := []*Table{
		newTestTable(t, urls, 0),
		newTestTable(t, urls, 1),
		newTestTable(t, urls, 2),
		newTestTable(t, urls, -1), // the lb
	}
	for _, key := range []string{"usa-road", "twitter", "", "a|b|weird key"} {
		want := tables[0].Preference(key)
		for i, tab := range tables[1:] {
			got := tab.Preference(key)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("table %d disagrees on %q: %v vs %v", i+1, key, got, want)
				}
			}
		}
	}
}

// TestOwnerFailover: when the owner goes down the key deterministically
// fails over to the next live member of its preference chain, and comes
// home when the owner recovers.
func TestOwnerFailover(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	tab := newTestTable(t, urls, -1)
	for r := 0; r < 3; r++ {
		tab.SetLive(r, true)
	}
	key := "dataset-x"
	pref := tab.Preference(key)
	owner, ok := tab.Owner(key)
	if !ok || owner != pref[0] {
		t.Fatalf("owner %v, want head of preference %v", owner, pref)
	}
	tab.SetLive(pref[0].Rank, false)
	next, ok := tab.Owner(key)
	if !ok || next != pref[1] {
		t.Fatalf("failover owner %v, want %v", next, pref[1])
	}
	tab.SetLive(pref[0].Rank, true)
	back, ok := tab.Owner(key)
	if !ok || back != pref[0] {
		t.Fatalf("recovered owner %v, want %v", back, pref[0])
	}
	tab.SetLive(0, false)
	tab.SetLive(1, false)
	tab.SetLive(2, false)
	if _, ok := tab.Owner(key); ok {
		t.Fatal("all members down: want no owner")
	}
}

// TestPlacementDistribution: rendezvous hashing should spread keys over
// the members rather than pile onto one. The bound is loose — this
// guards against a broken hash (everything on one node), not imbalance.
func TestPlacementDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	tab := newTestTable(t, urls, -1)
	for r := range urls {
		tab.SetLive(r, true)
	}
	counts := make([]int, len(urls))
	const n = 400
	for i := 0; i < n; i++ {
		owner, ok := tab.Owner(fmt.Sprintf("dataset-%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner.Rank]++
	}
	for r, c := range counts {
		if c < n/len(urls)/4 {
			t.Errorf("member %d owns %d of %d keys — distribution collapsed: %v", r, c, n, counts)
		}
	}
}

func TestSelfStaysLive(t *testing.T) {
	tab := newTestTable(t, []string{"http://a:1", "http://b:1"}, 0)
	tab.SetLive(0, false) // a node never marks itself dead
	if !tab.Live(0) {
		t.Fatal("self must stay live in its own view")
	}
	if tab.Live(1) {
		t.Fatal("peers start dead until probed")
	}
}

func TestProbeOnce(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ready.Close()
	unready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer unready.Close()

	tab := newTestTable(t, []string{ready.URL, unready.URL, "http://127.0.0.1:1"}, -1)
	tab.ProbeOnce(context.Background())
	if !tab.Live(0) {
		t.Error("2xx /readyz member must be live")
	}
	if tab.Live(1) {
		t.Error("503 /readyz member must be down")
	}
	if tab.Live(2) {
		t.Error("unreachable member must be down")
	}
	if tab.LiveCount() != 1 {
		t.Errorf("LiveCount = %d, want 1", tab.LiveCount())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		method, path string
		want         Decision
	}{
		{"POST", "/v1/decompose", Decision{Class: RouteDataset, BodyField: "graph"}},
		{"POST", "/v1/diameter", Decision{Class: RouteDataset, BodyField: "graph"}},
		{"POST", "/v2/jobs", Decision{Class: RouteDataset, BodyField: "graph"}},
		{"POST", "/v1/graphs", Decision{Class: RouteDataset, BodyField: "name"}},
		{"GET", "/v1/graphs", Decision{Class: RouteAny}},
		{"GET", "/v2/jobs", Decision{Class: RouteAny}},
		{"GET", "/v1/graphs/usa", Decision{Class: RouteDataset, Dataset: "usa"}},
		{"DELETE", "/v1/graphs/usa%20road", Decision{Class: RouteDataset, Dataset: "usa road"}},
		{"GET", "/v2/jobs/job-r1-000002", Decision{Class: RouteJob, JobID: "job-r1-000002"}},
		{"GET", "/v2/jobs/job-r1-000002/events", Decision{Class: RouteJob, JobID: "job-r1-000002"}},
		{"DELETE", "/v2/jobs/job-000009", Decision{Class: RouteJob, JobID: "job-000009"}},
		{"GET", "/v1/stats", Decision{Class: RouteLocal}},
		{"POST", "/v2/datasets", Decision{Class: RouteLocal}},
		{"GET", "/v2/datasets/usa", Decision{Class: RouteLocal}},
		{"POST", "/v2/datasets/usa/load", Decision{Class: RouteLocal}},
		{"POST", "/v2/datasets/usa/append", Decision{Class: RouteDataset, Dataset: "usa"}},
		{"POST", "/v2/datasets/usa/compact", Decision{Class: RouteDataset, Dataset: "usa"}},
		{"POST", "/v2/datasets/usa%20road/append", Decision{Class: RouteDataset, Dataset: "usa road"}},
		{"GET", "/v2/datasets/usa/append", Decision{Class: RouteLocal}},
		{"GET", "/v2/cache/abc", Decision{Class: RouteLocal}},
		{"POST", "/v2/bsp/frames", Decision{Class: RouteLocal}},
		{"GET", "/v2/blobs", Decision{Class: RouteLocal}},
		{"POST", "/v2/distributed/jobs", Decision{Class: RouteLocal}},
		{"GET", "/healthz", Decision{Class: RouteLocal}},
		{"GET", "/readyz", Decision{Class: RouteLocal}},
		{"GET", "/v2/fleet", Decision{Class: RouteLocal}},
	}
	for _, c := range cases {
		if got := Classify(c.method, c.path); got != c.want {
			t.Errorf("Classify(%s %s) = %+v, want %+v", c.method, c.path, got, c.want)
		}
	}
}

func TestJobHomeRank(t *testing.T) {
	if rank, ok := JobHomeRank("job-r2-000017"); !ok || rank != 2 {
		t.Errorf("job-r2-000017: rank=%d ok=%v", rank, ok)
	}
	for _, id := range []string{"job-000017", "job-r-000017", "job-rX-1", "job-r-1-", "nonsense", "job-r2"} {
		if _, ok := JobHomeRank(id); ok {
			t.Errorf("JobHomeRank(%q): want ok=false", id)
		}
	}
}

func TestPeekBodyField(t *testing.T) {
	body := `{"op":"diameter","graph":"usa","tau":4}`
	r := httptest.NewRequest("POST", "/v2/jobs", strings.NewReader(body))
	name, err := PeekBodyField(r, "graph")
	if err != nil || name != "usa" {
		t.Fatalf("peek: name=%q err=%v", name, err)
	}
	// The body must be fully reinstated for the handler or the proxy.
	got, _ := io.ReadAll(r.Body)
	if string(got) != body {
		t.Fatalf("body after peek: %q", got)
	}
	if r.ContentLength != int64(len(body)) {
		t.Fatalf("ContentLength after peek: %d", r.ContentLength)
	}

	r = httptest.NewRequest("POST", "/v2/jobs", strings.NewReader("not json"))
	if name, err := PeekBodyField(r, "graph"); err != nil || name != "" {
		t.Fatalf("non-JSON body: name=%q err=%v (want empty, nil)", name, err)
	}
	r = httptest.NewRequest("POST", "/v2/jobs", strings.NewReader(`{"graph":42}`))
	if name, _ := PeekBodyField(r, "graph"); name != "" {
		t.Fatalf("non-string field: %q", name)
	}
}

func TestQuotas(t *testing.T) {
	q := NewQuotas(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("alice"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := q.Allow("alice")
	if ok {
		t.Fatal("third instant request must be rejected")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// Another tenant is unaffected by alice's exhaustion.
	if ok, _ := q.Allow("bob"); !ok {
		t.Fatal("independent tenant rejected")
	}
	// After the refill interval alice proceeds again.
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := q.Allow("alice"); !ok {
		t.Fatal("refilled tenant rejected")
	}
}

func TestQuotasPruneInvisible(t *testing.T) {
	q := NewQuotas(1000, 1) // refills instantly: every bucket prunable
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	for i := 0; i < maxTenants+10; i++ {
		now = now.Add(time.Millisecond)
		if ok, _ := q.Allow(fmt.Sprintf("t%d", i)); !ok {
			t.Fatalf("tenant %d rejected", i)
		}
	}
	if len(q.buckets) > maxTenants {
		t.Fatalf("bucket map grew past the bound: %d", len(q.buckets))
	}
}

// TestCacheGetPut exercises the client side of the fleet cache against a
// fake peer: Get probes live peers in preference order and returns the
// first hit; Put pushes to the key's owner in the background.
func TestCacheGetPut(t *testing.T) {
	stored := map[string][]byte{}
	put := make(chan string, 1)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v2/cache/") {
			t.Errorf("peer hit %s", r.URL.Path)
		}
		k := strings.TrimPrefix(r.URL.Path, "/v2/cache/")
		switch r.Method {
		case http.MethodGet:
			if b, ok := stored[k]; ok {
				w.Write(b)
				return
			}
			w.WriteHeader(http.StatusNotFound)
		case http.MethodPut:
			b, _ := io.ReadAll(r.Body)
			stored[k] = b
			w.WriteHeader(http.StatusNoContent)
			put <- k
		}
	}))
	defer peer.Close()

	// Rank 0 is "self" (never probed — use an unroutable URL to prove it);
	// rank 1 is the fake peer, and the only live non-self member, so it
	// owns every key.
	tab := newTestTable(t, []string{"http://127.0.0.1:1", peer.URL}, 0)
	tab.SetLive(1, true)
	c := NewCache(tab, CacheOptions{Timeout: 2 * time.Second})
	defer c.Close()

	// Put only pushes when the key's owner is a peer (an owned key already
	// sits in the local LRU), so pick a key the peer owns.
	key := ""
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("sha%d|diameter|tau=0", i)
		if owner, ok := tab.Owner(k); ok && owner.Rank == 1 {
			key = k
		}
	}

	if _, ok := c.Get(context.Background(), key); ok {
		t.Fatal("empty fleet: want miss")
	}
	c.Put(key, []byte(`{"x":1}`))
	select {
	case <-put:
	case <-time.After(5 * time.Second):
		t.Fatal("background push never arrived")
	}
	body, ok := c.Get(context.Background(), key)
	if !ok || !bytes.Equal(body, []byte(`{"x":1}`)) {
		t.Fatalf("Get after Put: ok=%v body=%s", ok, body)
	}
}
