package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"time"
)

// Proxy forwards requests to fleet members, preserving bodies, streaming
// responses (SSE job events flush immediately — httputil.ReverseProxy
// switches to immediate flushing for text/event-stream), and
// cancel-on-disconnect (the outbound request rides the inbound context,
// so a client hanging up mid-proxy cancels the job on the owner exactly
// as a direct disconnect would).
//
// Every hop is stamped with the sender's placement epoch. A receiver on
// a divergent view rejects the hop with a classified 409 carrying its
// own view; the proxy repairs the divergence (adopt the newer view, or
// push its own to a lagging receiver) and retries with jittered backoff
// — bounded, and only before the first response byte has been relayed,
// so a retry can never corrupt a stream. Draining and freshly-dead
// backends fail over along the preference chain (ForwardChain) or
// surface as a retryable 503 + Retry-After (Forward), never a 502.
type Proxy struct {
	// Transport performs the forwarded requests; nil selects
	// http.DefaultTransport. It must NOT have a global timeout — SSE
	// streams live as long as the job runs.
	Transport http.RoundTripper
	// Table is the sender's membership view: the source of the stamped
	// epoch, the target of view adoption, and the liveness oracle for
	// classifying connect failures. nil disables epoch handling (tests).
	Table *Table
	// SelfRank stamps RoutedHeader on daemon→daemon hops; -1 (the front
	// door) stamps EdgeHeader instead and leaves re-routing to the
	// receiving daemon. When Table is set and the node is a member, the
	// current view's self rank wins (ranks can move across view swaps).
	SelfRank int
	// MaxAttempts bounds the total outbound attempts one Forward or
	// ForwardChain makes. Default 4.
	MaxAttempts int
	// RetryBase is the backoff unit between attempts; each retry sleeps
	// base·2^n plus up to one extra base of jitter. Default 25ms.
	RetryBase time.Duration
	// Log receives forwarding failures as structured records (target,
	// class, request_id fields); nil disables logging.
	Log *slog.Logger
	// Metrics observes attempts, classified retries, and failover hops;
	// nil disables metric recording.
	Metrics *Metrics
}

// hopReject classifies one failed forwarding attempt. It travels through
// httputil.ReverseProxy as the ModifyResponse error so the ErrorHandler
// can record it without writing to the client.
type hopReject struct {
	class string // ErrClassEpochMismatch, ErrClassDraining, or "net"
	view  View   // receiver's view (epoch mismatch only)
	err   error
}

func (h *hopReject) Error() string {
	if h.err != nil {
		return fmt.Sprintf("fleet: hop rejected (%s): %v", h.class, h.err)
	}
	return fmt.Sprintf("fleet: hop rejected (%s)", h.class)
}

func (p *Proxy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 4
}

func (p *Proxy) retryBase() time.Duration {
	if p.RetryBase > 0 {
		return p.RetryBase
	}
	return 25 * time.Millisecond
}

// selfRank resolves the rank stamped on routed hops against the current
// view, so a daemon whose rank moved in a view swap stamps the truth.
func (p *Proxy) selfRank() int {
	if p.Table != nil && p.SelfRank >= 0 {
		return p.Table.Self()
	}
	return p.SelfRank
}

// Forward sends the request to the member and relays the response.
// An epoch-mismatch rejection is repaired and retried against the same
// member; a draining rejection or a connect failure to a member the
// prober has since marked dead surfaces as 503 + Retry-After (the edge
// retries its next preference member), any other failure as 502.
func (p *Proxy) Forward(w http.ResponseWriter, r *http.Request, target Member) {
	p.forward(w, r, []Member{target}, false)
}

// ForwardChain tries each member of the preference chain in order until
// one serves the request: draining and unreachable members are skipped,
// epoch mismatches repaired and retried in place. Exhausting the chain
// on retryable conditions yields 503 + Retry-After; a hard failure 502.
func (p *Proxy) ForwardChain(w http.ResponseWriter, r *http.Request, chain []Member) {
	p.forward(w, r, chain, true)
}

func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, chain []Member, failover bool) {
	if len(chain) == 0 {
		WriteJSONError(w, http.StatusServiceUnavailable, errors.New("fleet: no live member to forward to"))
		return
	}
	// Buffer the body once so every attempt replays identical bytes. The
	// body is already bounded by the MaxBytesReader the edge installed.
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			WriteJSONError(w, http.StatusBadRequest, fmt.Errorf("fleet: read request body: %w", err))
			return
		}
		body = b
	}

	attempts := 0
	retryable := false // saw a draining/dead condition worth a client retry
	var lastErr error
	for ci := 0; ci < len(chain) && attempts < p.maxAttempts(); ci++ {
		target := chain[ci]
		if ci > 0 {
			// The loop condition guarantees at least one attempt follows,
			// so every hop counted here carried real traffic.
			p.Metrics.ProxyFailoverHop()
		}
		epochRetries := 0
		for attempts < p.maxAttempts() {
			attempts++
			p.Metrics.ProxyAttempt()
			rej := p.attempt(w, r, target, body, failover)
			if rej == nil {
				return // response relayed (success or a terminal status)
			}
			lastErr = rej
			switch rej.class {
			case ErrClassEpochMismatch:
				p.Metrics.ProxyRetry("epoch")
				// Repair the divergence, then retry the same member: adopt
				// the receiver's newer view, or push ours to a lagging
				// receiver so the retry lands on a converged pair.
				if p.Table != nil {
					if !p.Table.AdoptIfNewer(rej.view) && rej.view.Epoch < p.Table.Epoch() {
						client := &http.Client{Transport: p.Transport, Timeout: 5 * time.Second}
						if err := PushView(client, target.URL, p.Table.View()); err != nil && p.Log != nil {
							p.Log.Warn("fleet view push to lagging member failed",
								"target", target.URL, "error", err.Error(),
								"request_id", r.Header.Get(RequestIDHeader))
						}
					}
				}
				epochRetries++
				if epochRetries > 2 {
					WriteJSONError(w, http.StatusBadGateway,
						fmt.Errorf("fleet: member %s keeps rejecting placement epoch after convergence attempts", target.URL))
					return
				}
				p.backoff(r, attempts)
				continue // same target
			case ErrClassDraining:
				p.Metrics.ProxyRetry("draining")
				retryable = true
			default:
				p.Metrics.ProxyRetry("net")
				// Transport error before the first response byte (a rejection
				// always means nothing was written): the member just died or
				// restarted and the prober has not caught up yet. That is a
				// transient placement change, not a gateway fault — the next
				// chain member (or a client retry) will land somewhere live.
				retryable = true
			}
			if p.Log != nil {
				p.Log.Warn("fleet proxy attempt failed",
					"target", target.URL, "class", rej.class,
					"request_id", r.Header.Get(RequestIDHeader),
					"error", rej.Error())
			}
			p.backoff(r, attempts)
			break // next member in the chain (or exhaustion)
		}
		if !failover {
			break
		}
	}
	if retryable {
		w.Header().Set("Retry-After", "1")
		WriteJSONError(w, http.StatusServiceUnavailable,
			fmt.Errorf("fleet: no member could serve the request (draining or failed over); retry shortly: %v", lastErr))
		return
	}
	WriteJSONError(w, http.StatusBadGateway, fmt.Errorf("fleet: forwarding failed: %v", lastErr))
}

// attempt makes one outbound try. A nil return means the response (any
// response — including terminal errors the receiver meant for the
// client) was relayed; a non-nil hopReject means nothing was written and
// the caller may retry or fail over.
func (p *Proxy) attempt(w http.ResponseWriter, r *http.Request, target Member, body []byte, failover bool) *hopReject {
	u, err := url.Parse(target.URL)
	if err != nil {
		return &hopReject{class: "net", err: fmt.Errorf("bad member URL %q: %v", target.URL, err)}
	}
	out := r.Clone(r.Context())
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	} else {
		out.Body = http.NoBody
		out.ContentLength = 0
	}

	var rejected *hopReject
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(u)
			pr.Out.Host = u.Host
			if rank := p.selfRank(); rank >= 0 {
				pr.Out.Header.Set(RoutedHeader, strconv.Itoa(rank))
			} else {
				pr.Out.Header.Set(EdgeHeader, "lb")
			}
			if p.Table != nil {
				StampEpoch(pr.Out.Header, p.Table.Epoch())
			}
		},
		Transport: p.Transport,
		ModifyResponse: func(resp *http.Response) error {
			// The hop that received the request already echoed the request
			// ID; dropping the backend's copy keeps the header single-valued
			// across any number of routed hops.
			resp.Header.Del(RequestIDHeader)
			if IsEpochMismatch(resp) {
				// Parse the receiver's view now — ReverseProxy closes the
				// body once ModifyResponse errors.
				v, _ := DecodeViewError(resp.Body)
				return &hopReject{class: ErrClassEpochMismatch, view: v}
			}
			if failover && IsDrainingResponse(resp) {
				return &hopReject{class: ErrClassDraining}
			}
			return nil
		},
		// ErrorHandler records the classified rejection and writes nothing:
		// both transport errors and ModifyResponse sentinels fire strictly
		// before the first response byte reaches the client, so the outer
		// loop stays free to retry or fail over.
		ErrorHandler: func(_ http.ResponseWriter, _ *http.Request, err error) {
			var hr *hopReject
			if errors.As(err, &hr) {
				rejected = hr
				return
			}
			rejected = &hopReject{class: "net", err: err}
		},
	}
	rp.ServeHTTP(w, out)
	return rejected
}

// backoff sleeps base·2^(attempt-1) plus up to one base of jitter,
// bailing early if the client hung up.
func (p *Proxy) backoff(r *http.Request, attempt int) {
	base := p.retryBase()
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	d += time.Duration(rand.Int63n(int64(base) + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
	}
}

// HandleConfigPush is the shared /v2/fleet/config handler body: decode a
// view, SwapView it (idempotent re-posts are 200s), surface rejections
// as 409 with the current view attached so the pusher can converge.
func HandleConfigPush(t *Table, w http.ResponseWriter, r *http.Request) {
	var v View
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&v); err != nil {
		WriteJSONError(w, http.StatusBadRequest, fmt.Errorf("fleet: decode view: %w", err))
		return
	}
	if err := t.SwapView(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(EpochHeader, strconv.FormatUint(t.Epoch(), 10))
		w.WriteHeader(http.StatusConflict)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(viewError{Error: err.Error(), View: t.View()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.View())
}

// WriteJSONError renders an error in the API's {"error": "..."} shape.
func WriteJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{"error": err.Error()})
}
