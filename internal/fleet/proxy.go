package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
)

// Proxy forwards requests to fleet members, preserving bodies, streaming
// responses (SSE job events flush immediately — httputil.ReverseProxy
// switches to immediate flushing for text/event-stream), and
// cancel-on-disconnect (the outbound request rides the inbound context,
// so a client hanging up mid-proxy cancels the job on the owner exactly
// as a direct disconnect would).
type Proxy struct {
	// Transport performs the forwarded requests; nil selects
	// http.DefaultTransport. It must NOT have a global timeout — SSE
	// streams live as long as the job runs.
	Transport http.RoundTripper
	// SelfRank stamps RoutedHeader on daemon→daemon hops; -1 (the front
	// door) stamps EdgeHeader instead and leaves re-routing to the
	// receiving daemon.
	SelfRank int
	// ErrorLog receives forwarding failures; nil disables logging.
	ErrorLog interface{ Printf(string, ...any) }
}

// Forward sends the request to the member and relays the response.
func (p *Proxy) Forward(w http.ResponseWriter, r *http.Request, target Member) {
	u, err := url.Parse(target.URL)
	if err != nil {
		WriteJSONError(w, http.StatusBadGateway, fmt.Errorf("fleet: bad member URL %q: %v", target.URL, err))
		return
	}
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(u)
			pr.Out.Host = u.Host
			if p.SelfRank >= 0 {
				pr.Out.Header.Set(RoutedHeader, fmt.Sprintf("%d", p.SelfRank))
			} else {
				pr.Out.Header.Set(EdgeHeader, "lb")
			}
		},
		Transport: p.Transport,
		ModifyResponse: func(resp *http.Response) error {
			// The hop that received the request already echoed the request
			// ID; dropping the backend's copy keeps the header single-valued
			// across any number of routed hops.
			resp.Header.Del(RequestIDHeader)
			return nil
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			if p.ErrorLog != nil {
				p.ErrorLog.Printf("fleet: proxy to %s failed: %v", target.URL, err)
			}
			WriteJSONError(w, http.StatusBadGateway,
				fmt.Errorf("fleet: member %d (%s) unreachable: %v", target.Rank, target.URL, err))
		},
	}
	rp.ServeHTTP(w, r)
}

// WriteJSONError renders an error in the API's {"error": "..."} shape.
func WriteJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]string{"error": err.Error()})
}
