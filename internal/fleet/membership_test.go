package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- Epoch-stamped placement views -----------------------------------

func TestSwapViewEpochRules(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	tab := newTestTable(t, urls, 1)
	if tab.Epoch() != 1 {
		t.Fatalf("boot epoch = %d, want 1", tab.Epoch())
	}

	// Stale and equal epochs are rejected; the identical current view is
	// an idempotent no-op.
	if err := tab.SwapView(View{Epoch: 1, Members: []string{"http://x:1", "http://b:1"}}); err == nil {
		t.Error("equal-epoch different-members swap must be rejected")
	}
	if err := tab.SwapView(tab.View()); err != nil {
		t.Errorf("re-posting the current view must be a no-op, got %v", err)
	}
	if err := tab.SwapView(View{Epoch: 0, Members: urls}); err == nil {
		t.Error("epoch 0 must be rejected")
	}

	// A valid newer view swaps in; ranks are re-derived from the new list.
	grown := []string{"http://d:1", "http://a:1", "http://b:1", "http://c:1"}
	if err := tab.SwapView(View{Epoch: 5, Members: grown}); err != nil {
		t.Fatalf("grow swap: %v", err)
	}
	if tab.Epoch() != 5 {
		t.Errorf("epoch = %d, want 5", tab.Epoch())
	}
	if tab.Self() != 2 {
		t.Errorf("self rank = %d, want 2 (b moved to index 2)", tab.Self())
	}
	if len(tab.Members()) != 4 {
		t.Errorf("members = %d, want 4", len(tab.Members()))
	}
	if !tab.Live(tab.Self()) {
		t.Error("self must stay live across a swap")
	}
}

func TestSwapViewRefusesToOrphanSelf(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1"}
	tab := newTestTable(t, urls, 0) // identity: http://a:1
	err := tab.SwapView(View{Epoch: 2, Members: []string{"http://b:1", "http://c:1"}})
	if err == nil {
		t.Fatal("a view dropping this node's own entry must be rejected")
	}
	if !strings.Contains(err.Error(), "orphan") {
		t.Errorf("error should name the orphan condition, got: %v", err)
	}
	// The old view survives intact.
	if tab.Epoch() != 1 || len(tab.Members()) != 2 || tab.Self() != 0 {
		t.Errorf("rejected swap must keep the old view (epoch=%d self=%d members=%d)",
			tab.Epoch(), tab.Self(), len(tab.Members()))
	}
}

func TestSwapViewCarriesHealthByURL(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	tab := newTestTable(t, urls, -1)
	tab.SetLive(0, true)
	tab.SetLive(2, true)
	// Reorder + drop b + add d: a and c keep their health, d starts dead.
	if err := tab.SwapView(View{Epoch: 2, Members: []string{"http://c:1", "http://d:1", "http://a:1"}}); err != nil {
		t.Fatal(err)
	}
	if !tab.Live(0) { // c
		t.Error("c was live before the swap and must stay live")
	}
	if tab.Live(1) { // d
		t.Error("new member d must start dead")
	}
	if !tab.Live(2) { // a
		t.Error("a was live before the swap and must stay live")
	}
}

func TestAdoptIfNewer(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1"}
	tab := newTestTable(t, urls, 0)
	if tab.AdoptIfNewer(View{Epoch: 1, Members: urls}) {
		t.Error("same epoch must not be adopted")
	}
	// A newer-but-orphaning view is refused without error (anti-entropy
	// must not crash), old view kept.
	if tab.AdoptIfNewer(View{Epoch: 9, Members: []string{"http://b:1"}}) {
		t.Error("orphaning view must not be adopted")
	}
	if tab.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1 after refused adoption", tab.Epoch())
	}
	if !tab.AdoptIfNewer(View{Epoch: 2, Members: []string{"http://a:1", "http://b:1", "http://c:1"}}) {
		t.Error("valid newer view must be adopted")
	}
	if tab.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", tab.Epoch())
	}
}

func TestEpochHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	StampEpoch(h, 42)
	e, ok := RequestEpoch(h)
	if !ok || e != 42 {
		t.Fatalf("RequestEpoch = (%d,%v), want (42,true)", e, ok)
	}
	if _, ok := RequestEpoch(http.Header{}); ok {
		t.Error("absent header must report ok=false")
	}
	h.Set(EpochHeader, "not-a-number")
	if _, ok := RequestEpoch(h); ok {
		t.Error("malformed header must report ok=false")
	}
}

func TestWriteEpochMismatchRoundTrip(t *testing.T) {
	v := View{Epoch: 7, Members: []string{"http://a:1", "http://b:1"}}
	rec := httptest.NewRecorder()
	WriteEpochMismatch(rec, "3", v)
	resp := rec.Result()
	if !IsEpochMismatch(resp) {
		t.Fatalf("response not classified as epoch mismatch (status %d, class %q)",
			resp.StatusCode, resp.Header.Get(ErrClassHeader))
	}
	got, ok := DecodeViewError(resp.Body)
	if !ok || !got.Equal(v) {
		t.Fatalf("DecodeViewError = (%+v,%v), want original view", got, ok)
	}
}

// --- Hysteresis ------------------------------------------------------

// flappingPeer alternates /readyz between ready and unready per probe.
type flappingPeer struct {
	n atomic.Int64
}

func (f *flappingPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.n.Add(1)%2 == 1 {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
}

// TestHysteresisFlappingPeer: a peer whose readyz alternates up/down
// every probe must not thrash placement — after its first success it
// stays in the live set (each single failure is within the hysteresis
// threshold), so ownership never moves. Probes are driven manually
// (Interval 0), which is the fleet tests' fake clock.
func TestHysteresisFlappingPeer(t *testing.T) {
	peer := httptest.NewServer(&flappingPeer{})
	defer peer.Close()
	tab, err := NewTable([]string{peer.URL, "http://127.0.0.1:1"}, -1,
		TableOptions{FlipThreshold: 2, ProbeTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	key := "dataset-x"
	tab.SetLive(0, true) // reach steady state: peer live
	wantOwner, _ := tab.Owner(key)

	flips := 0
	wasLive := true
	for i := 0; i < 8; i++ {
		tab.ProbeOnce(context.Background())
		if live := tab.Live(0); live != wasLive {
			flips++
			wasLive = live
		}
		if owner, _ := tab.Owner(key); owner != wantOwner {
			t.Fatalf("probe %d: owner moved to %+v — flapping peer thrashed placement", i, owner)
		}
	}
	if flips != 0 {
		t.Errorf("flapping peer flipped liveness %d times, want 0 (hysteresis)", flips)
	}
}

// TestHysteresisDownAfterThreshold: a live member goes down only after
// FlipThreshold consecutive failures, and a single success revives it.
func TestHysteresisDownAfterThreshold(t *testing.T) {
	var code atomic.Int64
	code.Store(http.StatusOK)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(code.Load()))
	}))
	defer peer.Close()
	tab, err := NewTable([]string{peer.URL, "http://b:1"}, 1,
		TableOptions{FlipThreshold: 3, ProbeTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tab.SetLive(0, true)

	code.Store(http.StatusServiceUnavailable)
	for i := 1; i <= 2; i++ {
		tab.ProbeOnce(context.Background())
		if !tab.Live(0) {
			t.Fatalf("member went down after %d failures, threshold is 3", i)
		}
	}
	tab.ProbeOnce(context.Background())
	if tab.Live(0) {
		t.Fatal("member must be down after 3 consecutive failures")
	}
	// Recovery is single-success.
	code.Store(http.StatusOK)
	tab.ProbeOnce(context.Background())
	if !tab.Live(0) {
		t.Fatal("one successful probe must revive a dead member")
	}
}

// TestProbeAdoptsAdvertisedView: the prober is the anti-entropy channel —
// a peer whose readyz body advertises a newer placement view gets that
// view adopted after the sweep.
func TestProbeAdoptsAdvertisedView(t *testing.T) {
	var adv atomic.Pointer[View]
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{"status": "ready"}
		if v := adv.Load(); v != nil {
			resp["view"] = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}))
	defer peer.Close()

	tab, err := NewTable([]string{peer.URL, "http://b:1"}, -1, TableOptions{ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tab.ProbeOnce(context.Background())
	if tab.Epoch() != 1 {
		t.Fatalf("no advertisement: epoch = %d, want 1", tab.Epoch())
	}
	adv.Store(&View{Epoch: 4, Members: []string{peer.URL, "http://b:1", "http://c:1"}})
	tab.ProbeOnce(context.Background())
	if tab.Epoch() != 4 {
		t.Errorf("epoch = %d, want 4 (adopted from readyz advertisement)", tab.Epoch())
	}
	if len(tab.Members()) != 3 {
		t.Errorf("members = %d, want 3", len(tab.Members()))
	}
}

// --- Cache client classification (4xx skip vs 5xx/net retry) ---------

// TestCacheRetriesTransientPeer: a peer answering 500 once then 200 is
// retried in place and still serves the hit; the probe chain never
// advances past it.
func TestCacheRetriesTransientPeer(t *testing.T) {
	want := []byte(`{"v":1}`)
	var calls atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write(want)
	}))
	defer peer.Close()

	tab := newTestTable(t, []string{peer.URL, "http://b:1"}, 1)
	tab.SetLive(0, true)
	c := NewCache(tab, CacheOptions{Timeout: time.Second})
	defer c.Close()
	got, ok := c.Get(context.Background(), "sha|diameter|x")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = (%q,%v), want transient-retried hit", got, ok)
	}
	if calls.Load() != 2 {
		t.Errorf("peer saw %d calls, want 2 (one failure + one retry)", calls.Load())
	}
}

// TestCacheSkips4xxPeer: a definitive 404 advances the chain immediately
// — exactly one request to the missing peer, then the next preference
// member serves the hit.
func TestCacheSkips4xxPeer(t *testing.T) {
	want := []byte(`{"v":2}`)
	var missCalls, hitCalls atomic.Int64
	miss := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		missCalls.Add(1)
		http.Error(w, "no", http.StatusNotFound)
	}))
	defer miss.Close()
	hit := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitCalls.Add(1)
		w.Write(want)
	}))
	defer hit.Close()

	// Find a key whose preference order puts the missing peer first, so
	// the test exercises skip-then-next-member.
	tab := newTestTable(t, []string{miss.URL, hit.URL}, -1)
	tab.SetLive(0, true)
	tab.SetLive(1, true)
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("sha|diameter|k=%d", i)
		if tab.Preference(key)[0].URL == miss.URL {
			break
		}
	}
	c := NewCache(tab, CacheOptions{Timeout: time.Second})
	defer c.Close()
	got, ok := c.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = (%q,%v), want hit from second preference member", got, ok)
	}
	if missCalls.Load() != 1 {
		t.Errorf("4xx peer saw %d calls, want exactly 1 (no retry on definitive miss)", missCalls.Load())
	}
	if hitCalls.Load() != 1 {
		t.Errorf("hit peer saw %d calls, want 1", hitCalls.Load())
	}
}

// TestCachePutReplicates: with replication factor k, a Put lands on the
// key's top-k preference members (self excluded from pushes).
func TestCachePutReplicates(t *testing.T) {
	var got [2]atomic.Int64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPut {
				got[i].Add(1)
			}
			w.WriteHeader(http.StatusNoContent)
		}))
	}
	p0, p1 := mk(0), mk(1)
	defer p0.Close()
	defer p1.Close()

	tab := newTestTable(t, []string{p0.URL, p1.URL, "http://c:1"}, 2)
	tab.SetLive(0, true)
	tab.SetLive(1, true)
	c := NewCache(tab, CacheOptions{Timeout: time.Second, Replicas: 3})
	c.Put("sha|diameter|r", []byte(`{"v":3}`))
	c.Close() // waits for background pushes
	if got[0].Load() != 1 || got[1].Load() != 1 {
		t.Errorf("replica pushes = (%d,%d), want (1,1)", got[0].Load(), got[1].Load())
	}
}

// --- Chaos harness ---------------------------------------------------

// TestChaosDeterministic: the fault schedule is a pure function of
// (seed, key, attempt) — two transports with the same seed make
// identical decisions, and a different seed diverges.
func TestChaosDeterministic(t *testing.T) {
	schedule := func(seed uint64) []bool {
		var out []bool
		for attempt := uint64(0); attempt < 64; attempt++ {
			out = append(out, chaosRoll(seed, "GET host/v2/cache/k", attempt, 0) < 0.3)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d", i)
		}
	}
	c := schedule(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestCacheUnderChaos: with drops, 500s, and mid-body cuts injected, the
// cache client never hangs and never returns wrong bytes — every Get is
// either a byte-identical hit or a clean miss.
func TestCacheUnderChaos(t *testing.T) {
	want := []byte(`{"result":"exact-bytes","n":12345}`)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(want)
	}))
	defer peer.Close()

	for seed := uint64(1); seed <= 20; seed++ {
		tab := newTestTable(t, []string{peer.URL, "http://b:1"}, 1)
		tab.SetLive(0, true)
		chaos := &ChaosTransport{Seed: seed, DropProb: 0.25, FailProb: 0.25, CutProb: 0.25}
		c := NewCache(tab, CacheOptions{
			Client:  &http.Client{Transport: chaos, Timeout: 2 * time.Second},
			Timeout: 2 * time.Second,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		for i := 0; i < 10; i++ {
			got, ok := c.Get(ctx, fmt.Sprintf("sha|diameter|seed=%d|i=%d", seed, i))
			if ok && !bytes.Equal(got, want) {
				t.Fatalf("seed %d: chaos produced WRONG bytes: %q", seed, got)
			}
		}
		cancel()
		c.Close()
	}
}

// TestProberUnderChaos: seeded faults on the probe path flip liveness in
// a bounded way — the hysteresis keeps a healthy-but-chaotic peer from
// oscillating every sweep, and the sweep itself never hangs.
func TestProberUnderChaos(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()
	chaos := &ChaosTransport{Seed: 7, DropProb: 0.3}
	tab, err := NewTable([]string{peer.URL, "http://b:1"}, 1, TableOptions{
		FlipThreshold: 2,
		ProbeTimeout:  time.Second,
		Client:        &http.Client{Transport: chaos, Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	flips, wasLive := 0, false
	for i := 0; i < 24; i++ {
		tab.ProbeOnce(context.Background())
		if live := tab.Live(0); live != wasLive {
			flips++
			wasLive = live
		}
	}
	// With p=0.3 drops and threshold 2, a down-flip needs two consecutive
	// drops (p≈0.09 per sweep); hysteresis must keep flips well below the
	// sweep count.
	if flips > 8 {
		t.Errorf("chaotic probes flipped liveness %d times in 24 sweeps — hysteresis not damping", flips)
	}
	if !tab.Live(0) && flips == 0 {
		t.Error("peer never came up under 0.3 drop rate")
	}
}

// --- Proxy: failover, draining, epoch repair -------------------------

func member(t *testing.T, rank int, rawURL string) Member {
	t.Helper()
	if _, err := url.Parse(rawURL); err != nil {
		t.Fatal(err)
	}
	return Member{Rank: rank, URL: rawURL}
}

// TestForwardChainSkipsDraining: a draining first choice fails over to
// the next member; the client sees only the successful response.
func TestForwardChainSkipsDraining(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteDraining(w, 1)
	}))
	defer draining.Close()
	want := `{"answer":42}`
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, want)
	}))
	defer healthy.Close()

	p := &Proxy{SelfRank: -1, RetryBase: time.Millisecond}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/diameter", strings.NewReader(`{"graph":"g"}`))
	p.ForwardChain(rec, req, []Member{
		member(t, 0, draining.URL),
		member(t, 1, healthy.URL),
	})
	if rec.Code != http.StatusOK || rec.Body.String() != want {
		t.Fatalf("ForwardChain = %d %q, want 200 %q", rec.Code, rec.Body.String(), want)
	}
}

// TestForwardChainExhaustedIs503: every candidate draining → the client
// gets a retryable 503 with Retry-After, not a 502.
func TestForwardChainExhaustedIs503(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteDraining(w, 1)
	}))
	defer draining.Close()
	p := &Proxy{SelfRank: -1, RetryBase: time.Millisecond}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/diameter", strings.NewReader(`{"graph":"g"}`))
	p.ForwardChain(rec, req, []Member{member(t, 0, draining.URL)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("exhausted failover must carry Retry-After")
	}
}

// TestForwardDeadBackendIs503: a connect failure to a member the table
// already marks dead is a transient placement change (503 + Retry-After),
// not a gateway fault (502).
func TestForwardDeadBackendIs503(t *testing.T) {
	tab := newTestTable(t, []string{"http://127.0.0.1:1", "http://b:1"}, 1)
	// rank 0 never marked live: the prober view says it is dead.
	p := &Proxy{Table: tab, SelfRank: 1, RetryBase: time.Millisecond}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/graphs/g", nil)
	p.Forward(rec, req, tab.Members()[0])
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for dead backend", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("dead-backend rejection must carry Retry-After")
	}
}

// TestForwardRepairsEpochMismatch: a receiver on a newer view rejects
// the hop with 409 + its view; the proxy adopts it and the retry (under
// the new epoch) succeeds. The client sees only the 200.
func TestForwardRepairsEpochMismatch(t *testing.T) {
	var peerURL string
	want := `{"repaired":true}`
	receiver := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e, _ := RequestEpoch(r.Header); e != 6 {
			WriteEpochMismatch(w, r.Header.Get(EpochHeader),
				View{Epoch: 6, Members: []string{peerURL, "http://b:1"}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, want)
	}))
	defer receiver.Close()
	peerURL = receiver.URL

	tab := newTestTable(t, []string{receiver.URL, "http://b:1"}, -1) // epoch 1
	p := &Proxy{Table: tab, SelfRank: -1, RetryBase: time.Millisecond}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/diameter", strings.NewReader(`{"graph":"g"}`))
	p.Forward(rec, req, tab.Members()[0])
	if rec.Code != http.StatusOK || rec.Body.String() != want {
		t.Fatalf("Forward = %d %q, want repaired 200 %q", rec.Code, rec.Body.String(), want)
	}
	if tab.Epoch() != 6 {
		t.Errorf("sender epoch = %d, want 6 (adopted from the 409)", tab.Epoch())
	}
}

// TestForwardChainUnderChaos: seeded drops and 500s across a two-member
// chain — every request either lands byte-identically on some member or
// fails with a classified retryable status; no hang, no corruption.
func TestForwardChainUnderChaos(t *testing.T) {
	want := `{"chaos":"survived"}`
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, want)
		}))
	}
	s0, s1 := mk(), mk()
	defer s0.Close()
	defer s1.Close()

	for seed := uint64(1); seed <= 20; seed++ {
		p := &Proxy{
			SelfRank:  -1,
			RetryBase: time.Millisecond,
			Transport: &ChaosTransport{Seed: seed, DropProb: 0.3},
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/diameter", strings.NewReader(`{"graph":"g"}`))
		p.ForwardChain(rec, req, []Member{member(t, 0, s0.URL), member(t, 1, s1.URL)})
		switch rec.Code {
		case http.StatusOK:
			if rec.Body.String() != want {
				t.Fatalf("seed %d: wrong bytes %q", seed, rec.Body.String())
			}
		case http.StatusServiceUnavailable, http.StatusBadGateway:
			// Exhausted under chaos: classified, never silent.
		default:
			t.Fatalf("seed %d: unexpected status %d", seed, rec.Code)
		}
	}
}

// TestHandleConfigPush: the endpoint body — valid swap 200 with the new
// view echoed; stale epoch 409 carrying the current view.
func TestHandleConfigPush(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1"}
	tab := newTestTable(t, urls, 0)

	body, _ := json.Marshal(View{Epoch: 3, Members: []string{"http://a:1", "http://b:1", "http://c:1"}})
	rec := httptest.NewRecorder()
	HandleConfigPush(tab, rec, httptest.NewRequest(http.MethodPost, "/v2/fleet/config", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("valid push: status %d, body %s", rec.Code, rec.Body.String())
	}
	if tab.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", tab.Epoch())
	}

	stale, _ := json.Marshal(View{Epoch: 2, Members: urls})
	rec = httptest.NewRecorder()
	HandleConfigPush(tab, rec, httptest.NewRequest(http.MethodPost, "/v2/fleet/config", bytes.NewReader(stale)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale push: status %d, want 409", rec.Code)
	}
	if v, ok := DecodeViewError(rec.Body); !ok || v.Epoch != 3 {
		t.Errorf("409 body must carry the current view, got (%+v,%v)", v, ok)
	}
}
