package fleet

import (
	"math"
	"sync"
	"time"
)

// Quotas is per-tenant admission control for compute-cost requests: one
// token bucket per X-Tenant value, refilled at Rate tokens/second up to
// Burst. A request that finds the bucket empty is rejected with the time
// until one token refills — the server layers turn that into
// 429 + Retry-After. Tenancy is cooperative (the header is not
// authenticated); the quota protects the fleet's BSP capacity from a
// noisy tenant, it is not a security boundary.
type Quotas struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map; beyond it, full (= inactive long
// enough to have refilled completely) buckets are pruned. A tenant whose
// bucket was pruned starts fresh at Burst, which is exactly the state a
// full bucket encodes — pruning is invisible.
const maxTenants = 4096

// NewQuotas builds per-tenant admission control. rate must be positive;
// burst below 1 is raised to max(1, rate) so a conforming tenant can
// always make progress.
func NewQuotas(rate, burst float64) *Quotas {
	if burst < 1 {
		burst = math.Max(1, rate)
	}
	return &Quotas{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow charges one token to the tenant's bucket. When the bucket is
// empty it reports false and how long until one token refills.
func (q *Quotas) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, found := q.buckets[tenant]
	if !found {
		if len(q.buckets) >= maxTenants {
			q.pruneLocked(now)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.tokens = math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneLocked drops buckets that have fully refilled — their tenants are
// indistinguishable from never-seen ones. Caller holds q.mu.
func (q *Quotas) pruneLocked(now time.Time) {
	for tenant, b := range q.buckets {
		if b.tokens+q.rate*now.Sub(b.last).Seconds() >= q.burst {
			delete(q.buckets, tenant)
		}
	}
}
