package core

import (
	"context"
	"math"

	"graphdiam/internal/graph"
)

// ClusterUnweighted runs the weight-oblivious decomposition of [CPPU15]
// ("Space and time efficient parallel graph decomposition, clustering, and
// diameter approximation", SPAA 2015) on a weighted graph: clusters grow by
// BFS hops, ignoring edge weights, while the cumulative weighted distance
// to each node's center is still tracked so the quotient construction and
// radius remain well-defined.
//
// The paper this repository reproduces points out (Section 1) that "no
// analytical guarantees would be provided by the weight-oblivious execution
// of these algorithms on a weighted graph since, for a given topology, the
// system of shortest paths may radically change once weights are
// introduced". ClusterUnweighted exists precisely to measure that effect —
// the weight-obliviousness ablation of the experiments harness shows its
// radius (and hence the diameter estimate) degrade on weighted road
// networks where CLUSTER stays tight.
func ClusterUnweighted(ctx context.Context, g *graph.Graph, opts Options) (*Clustering, error) {
	o := opts.withDefaults(g)
	e := o.Engine.Bind(ctx)
	n := g.NumNodes()
	if n == 0 {
		return &Clustering{Metrics: e.GlobalSnapshot()}, nil
	}
	before := e.GlobalSnapshot()

	st := newGrowState(g, e)
	st.unitGrowth = true
	// Hop growth has no Δ threshold: any hop count is admissible; stages
	// stop on the half-coverage goal exactly as in [CPPU15].
	hopLimit := math.Inf(1)

	stopThresh := o.StopFactor * float64(o.Tau)
	if o.UseLogFactor {
		stopThresh *= log2n(n)
	}

	uncovered := n
	stage := 0
	var growingSteps int64
	maxPGSteps := 0
	for float64(uncovered) >= stopThresh && uncovered > 0 {
		p := o.Gamma * float64(o.Tau) / float64(uncovered)
		if o.UseLogFactor {
			p *= logn(n)
		}
		newCenters := st.selectCenters(o.Seed, stage, p)
		if newCenters == 0 {
			if st.forceCenter(o.Seed, stage) {
				newCenters = 1
			}
		}
		st.beginStageProxies(stage, false, 0)
		st.reseedFrontier()

		reached := newCenters
		half := float64(uncovered) / 2
		steps := 0
		for {
			changed, newly := st.growStep(hopLimit, stage)
			if err := e.Err(); err != nil {
				return nil, err
			}
			growingSteps++
			steps++
			reached += int(newly)
			if float64(reached) >= half || !changed {
				break
			}
			if o.StepCap > 0 && steps >= o.StepCap {
				break
			}
		}
		if steps > maxPGSteps {
			maxPGSteps = steps
		}
		covered := st.finishStage(stage)
		uncovered -= covered
		stage++
		if err := e.Err(); err != nil {
			return nil, err
		}
		o.Progress.emit("cluster", stage, hopLimit, n-uncovered, n,
			diff(before, e.GlobalSnapshot()))
	}
	if uncovered > 0 {
		st.coverSingletons(stage)
		stage++
	}
	st.syncResult()
	after := e.GlobalSnapshot()
	if err := e.Err(); err != nil {
		return nil, err
	}

	c := buildClustering(st, stage, math.Inf(1), growingSteps, diff(before, after))
	c.MaxPartialGrowthSteps = maxPGSteps
	o.Progress.emit("cluster", stage, hopLimit, n, n, c.Metrics)
	return c, nil
}
