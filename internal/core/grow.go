package core

import (
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// growMsg is a relaxation request: "node can be reached by center with
// stage-distance sd and cumulative center distance td".
type growMsg struct {
	node   graph.NodeID
	center int32
	sd     float64
	td     float64
}

// growState holds the per-node state of a decomposition run — the (c_u, d_u)
// pairs of the paper, split into the per-stage threshold distance (stageD,
// the d_u the Δ-growing step compares against Δ) and the cumulative distance
// bound totalD ≥ the weight of an actual path from the assigned center.
// Contraction is virtual: nodes covered in earlier stages keep their center
// and totalD and act as zero-potential proxies (see DESIGN.md).
type growState struct {
	g *graph.Graph
	e *bsp.Engine
	n int

	// unitGrowth makes growing steps advance by hop count instead of edge
	// weight (the weight-oblivious decomposition of [CPPU15]); totalD still
	// accumulates true edge weights so radii and quotient weights remain
	// meaningful. Used by ClusterUnweighted for the weight-obliviousness
	// ablation.
	unitGrowth bool

	center       []int32   // assigned center, -1 if none yet
	stageD       []float64 // stage potential; +Inf if unreached this stage
	totalD       []float64 // weight of a realized path center→node
	coveredStage []int32   // stage of coverage, -1 if uncovered
	queued       []bool    // membership in the next frontier

	frontiers [][]int32 // per-worker current frontier (global IDs, owned)
	nextFront [][]int32
	mail      *bsp.CoalescingMailboxes[growMsg]
	route     bsp.Router // O(1) owner lookup, hoisted once per run

	// per-round accumulators (written via the engine, read after barriers)
	roundUpdates []int64
	roundNewly   []int64
}

// coalesceMessages gates sender-side mailbox coalescing; the equivalence
// tests flip it to prove the coalesced and uncoalesced paths produce
// identical clusterings and identical metric snapshots.
var coalesceMessages = true

// lessGrow is the sender-side coalescing order for growMsg: the receiver
// applies the lexicographically smallest (distance, center) candidate, so a
// candidate is worth sending only if it strictly improves on that order.
func lessGrow(a, b growMsg) bool {
	return a.sd < b.sd || (a.sd == b.sd && a.center < b.center)
}

func newGrowState(g *graph.Graph, e *bsp.Engine) *growState {
	n := g.NumNodes()
	P := e.Workers()
	st := &growState{
		g: g, e: e, n: n,
		center:       make([]int32, n),
		stageD:       make([]float64, n),
		totalD:       make([]float64, n),
		coveredStage: make([]int32, n),
		queued:       make([]bool, n),
		frontiers:    make([][]int32, P),
		nextFront:    make([][]int32, P),
		mail:         bsp.NewCoalescingMailboxes[growMsg](P, n, lessGrow),
		route:        e.Router(n),
		roundUpdates: make([]int64, P),
		roundNewly:   make([]int64, P),
	}
	st.mail.SetPassthrough(!coalesceMessages)
	for i := 0; i < n; i++ {
		st.center[i] = -1
		st.stageD[i] = math.Inf(1)
		st.totalD[i] = math.Inf(1)
		st.coveredStage[i] = -1
	}
	return st
}

// hash01 maps (seed, stage, node) to a deterministic uniform value in [0,1),
// independent of worker count — the basis of reproducible center selection.
func hash01(seed uint64, stage int, node int) float64 {
	x := seed ^ (uint64(stage)+1)*0x9e3779b97f4a7c15 ^ (uint64(node)+1)*0xbf58476d1ce4e5b9
	sm := rng.NewSplitMix64(x)
	return float64(sm.Next()>>11) / (1 << 53)
}

// selectCenters marks every uncovered node u with hash01 < p as a new
// center of the given stage (c_u = u, d_u = 0), returning how many were
// selected. One metered round (the selection map phase).
func (st *growState) selectCenters(seed uint64, stage int, p float64) int {
	count := st.e.ReduceInt(st.n, func(_, start, end int) int {
		local := 0
		for u := start; u < end; u++ {
			if st.coveredStage[u] >= 0 {
				continue
			}
			if hash01(seed, stage, u) < p {
				st.center[u] = int32(u)
				st.stageD[u] = 0
				st.totalD[u] = 0
				st.coveredStage[u] = int32(stage)
				local++
			}
		}
		return local
	})
	st.e.Metrics().AddRounds(1)
	if st.e.Primary() {
		// count is already the fleet-wide total (ReduceInt sums across
		// peers); meter it once so the globally-summed snapshot matches the
		// single-process run.
		st.e.Metrics().AddUpdates(int64(count))
	}
	return count
}

// forceCenter deterministically selects the uncovered node with the
// smallest hash as a center when random selection came up empty. Returns
// false if no uncovered node exists.
func (st *growState) forceCenter(seed uint64, stage int) bool {
	type cand struct {
		h float64
		u int
	}
	P := st.e.Workers()
	cands := make([]cand, P)
	for i := range cands {
		cands[i] = cand{h: 2, u: -1} // non-executed workers must not win
	}
	st.e.ParallelFor(st.n, func(w, start, end int) {
		best := cand{h: 2, u: -1}
		for u := start; u < end; u++ {
			if st.coveredStage[u] >= 0 {
				continue
			}
			if h := hash01(seed, stage, u); h < best.h {
				best = cand{h, u}
			}
		}
		cands[w] = best
	})
	best := cand{h: 2, u: -1}
	lo, hi := st.e.OwnedWorkers()
	for _, c := range cands[lo:hi] {
		if c.u >= 0 && c.h < best.h {
			best = c
		}
	}
	if st.e.Distributed() {
		// Peer worker ranges are rank-ordered, so folding peer bests in rank
		// order with the same strict < reproduces the single-process fold.
		h, u := st.e.GlobalArgMin(best.h, int64(best.u))
		best = cand{h: h, u: int(u)}
	}
	if best.u < 0 {
		return false
	}
	u := best.u
	// Replicated write: every peer records the same center with the same
	// values, keeping the full state arrays consistent without a sync.
	st.center[u] = int32(u)
	st.stageD[u] = 0
	st.totalD[u] = 0
	st.coveredStage[u] = int32(stage)
	if st.e.Primary() {
		st.e.Metrics().AddUpdates(1)
	}
	return true
}

// beginStageProxies resets the stage potentials: nodes covered before the
// given stage become proxies with the supplied potential offset added to
// their current potential if carry is true (CLUSTER2's weight rescaling) or
// exactly zero otherwise (CLUSTER's Contract); uncovered nodes get +Inf.
// New centers selected for this stage keep their zero potential. One
// metered round (the contraction map phase).
func (st *growState) beginStageProxies(stage int, carry bool, rescale float64) {
	st.e.Superstep(st.n, func(_, start, end int) {
		for u := start; u < end; u++ {
			switch {
			case st.coveredStage[u] < 0:
				st.stageD[u] = math.Inf(1)
			case st.coveredStage[u] == int32(stage):
				// freshly selected center: keep stageD = 0
			case carry:
				st.stageD[u] -= rescale
			default:
				st.stageD[u] = 0
			}
		}
	})
}

// reseedFrontier loads every node with a finite stage potential into the
// frontier of its owner, so the next growing step relaxes from all cluster
// boundaries. One metered round.
func (st *growState) reseedFrontier() {
	st.e.Superstep(st.n, func(w, start, end int) {
		f := st.frontiers[w][:0]
		for u := start; u < end; u++ {
			if !math.IsInf(st.stageD[u], 1) {
				f = append(f, int32(u))
			}
		}
		st.frontiers[w] = f
	})
}

// growStep performs one Δ-growing step (one metered round): every frontier
// node u with d_u < Δ relaxes its light edges (d_u + w ≤ Δ), and each
// target applies the lexicographically smallest (distance, center)
// candidate — the paper's tie-break rule. Nodes covered before the current
// stage are frozen (they exist only as contracted proxies). It returns
// whether any state changed and how many nodes were newly reached this
// stage (∞ → finite transitions), both deterministic in (graph, options)
// regardless of worker count.
func (st *growState) growStep(delta float64, stage int) (changed bool, newly int64) {
	e := st.e
	n := st.n
	// Send half: generate relaxation requests. Edges whose two endpoints
	// were both covered in earlier stages do not exist in the contracted
	// graph (Procedure Contract removes them), so they generate no
	// messages; coveredStage is read-only during growth, making the
	// cross-partition read safe.
	e.ParallelFor(n, func(w, _, _ int) {
		var sent int64
		st.mail.BeginSend(w)
		for _, ui := range st.frontiers[w] {
			u := int(ui)
			st.queued[u] = false
			du := st.stageD[u]
			if du >= delta {
				continue
			}
			cu := st.center[u]
			tu := st.totalD[u]
			ts, ws := st.g.Neighbors(graph.NodeID(u))
			for i, v := range ts {
				step := ws[i]
				if st.unitGrowth {
					step = 1
				}
				cand := du + step
				if cand > delta {
					continue
				}
				cs := st.coveredStage[v]
				if cs >= 0 && cs < int32(stage) {
					continue // target contracted away (frozen)
				}
				st.mail.Send(w, st.route.Owner(v), int32(v), growMsg{v, cu, cand, tu + ws[i]})
				sent++
			}
		}
		if sent > 0 {
			e.Metrics().AddMessages(sent) // logical relaxations, pre-coalescing
		}
	})
	// Cross-process shipment of the boxes addressed to remote owners; a
	// no-op for single-process engines. Errors are sticky in the engine and
	// surface through the drivers' e.Err() checks.
	if err := bsp.ExchangeCoalescing(e, st.mail, growWire); err != nil {
		return false, 0
	}
	// Apply half: owners take the minimum candidate per node.
	e.ParallelFor(n, func(w, _, _ int) {
		var updates, reached int64
		nf := st.nextFront[w][:0]
		st.mail.Recv(w, func(m growMsg) {
			v := int(m.node)
			cs := st.coveredStage[v]
			if cs >= 0 && cs < int32(stage) {
				return // frozen: contracted into its center
			}
			dv := st.stageD[v]
			if m.sd > dv || (m.sd == dv && (st.center[v] >= 0 && m.center >= st.center[v])) {
				return
			}
			if math.IsInf(dv, 1) {
				reached++
			}
			st.stageD[v] = m.sd
			st.totalD[v] = m.td
			st.center[v] = m.center
			updates++
			if !st.queued[v] {
				st.queued[v] = true
				nf = append(nf, int32(v))
			}
		})
		st.mail.ClearTo(w)
		st.nextFront[w] = nf
		st.roundUpdates[w] = updates
		st.roundNewly[w] = reached
		if updates > 0 {
			e.Metrics().AddUpdates(updates)
		}
	})
	e.Metrics().AddRounds(1)
	var updates int64
	lo, hi := e.OwnedWorkers()
	for w := lo; w < hi; w++ { // remote workers' slots are stale locally
		updates += st.roundUpdates[w]
		newly += st.roundNewly[w]
	}
	updates, newly = e.GlobalSum2(updates, newly)
	st.frontiers, st.nextFront = st.nextFront, st.frontiers
	return updates > 0, newly
}

// finishStage covers every node reached during the stage (finite stage
// potential, not yet covered), returning how many nodes the stage covered
// in total including its fresh centers. One metered round (the reduce that
// materializes cluster assignment).
func (st *growState) finishStage(stage int) int {
	count := st.e.ReduceInt(st.n, func(_, start, end int) int {
		local := 0
		for u := start; u < end; u++ {
			if st.coveredStage[u] == int32(stage) {
				local++ // fresh center
				continue
			}
			if st.coveredStage[u] < 0 && !math.IsInf(st.stageD[u], 1) {
				st.coveredStage[u] = int32(stage)
				local++
			}
		}
		return local
	})
	st.e.Metrics().AddRounds(1)
	// coveredStage is the one array the growing step reads across
	// partitions (the frozen-proxy check), and the check only distinguishes
	// "covered before the current stage" from everything else — so syncing
	// at stage boundaries is exactly enough to keep every peer's reads
	// identical to the single-process run.
	st.e.SyncInt32s(st.coveredStage)
	return count
}

// coverSingletons turns every still-uncovered node into a singleton cluster
// (the final step of Algorithm 1). One metered round.
func (st *growState) coverSingletons(stage int) int {
	count := st.e.ReduceInt(st.n, func(_, start, end int) int {
		local := 0
		for u := start; u < end; u++ {
			if st.coveredStage[u] < 0 {
				st.center[u] = int32(u)
				st.stageD[u] = 0
				st.totalD[u] = 0
				st.coveredStage[u] = int32(stage)
				local++
			}
		}
		return local
	})
	st.e.Metrics().AddRounds(1)
	if st.e.Primary() {
		st.e.Metrics().AddUpdates(int64(count)) // fleet-wide total: meter once
	}
	return count
}

// syncResult makes the result arrays (center assignment and realized path
// weights) identical on every peer, so each one can materialize the full
// Clustering locally. Called once per run, before buildClustering; a no-op
// for single-process engines.
func (st *growState) syncResult() {
	st.e.SyncInt32s(st.center)
	st.e.SyncFloat64s(st.totalD)
}

// radius returns the maximum cumulative center distance over covered nodes.
func (st *growState) radius() float64 {
	return st.e.ReduceFloat64(st.n, func(_, start, end int) float64 {
		best := 0.0
		for u := start; u < end; u++ {
			if st.coveredStage[u] >= 0 && st.totalD[u] > best {
				best = st.totalD[u]
			}
		}
		return best
	}, math.Max)
}

// uncoveredCount returns the number of nodes not yet assigned to a cluster.
func (st *growState) uncoveredCount() int {
	return st.e.ReduceInt(st.n, func(_, start, end int) int {
		local := 0
		for u := start; u < end; u++ {
			if st.coveredStage[u] < 0 {
				local++
			}
		}
		return local
	})
}
