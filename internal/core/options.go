// Package core implements the paper's primary contribution: the weighted
// graph decomposition algorithms CLUSTER (Algorithm 1) and CLUSTER2
// (Algorithm 2), and the diameter approximation CL-DIAM built on them
// (Sections 3–5).
//
// CLUSTER grows disjoint clusters in stages. Each stage selects a random
// batch of new centers among the still-uncovered nodes and grows all
// clusters with Δ-growing steps — Bellman–Ford-style relaxations limited to
// paths of weight at most Δ — doubling Δ until at least half of the
// uncovered nodes are absorbed. Covered nodes are (virtually) contracted
// into their centers, so later stages grow from the cluster boundaries at
// zero stage-distance, exactly the distance structure of the paper's
// Contract procedure. CLUSTER2 refines the decomposition with doubling
// selection probabilities and the weight rescaling of Contract2, which
// yields the paper's O(log³ n) approximation guarantee.
//
// CL-DIAM (ApproxDiameter) estimates the weighted diameter as
// Φ(G_C) + 2·R where G_C is the weighted quotient graph of the clustering
// and R its radius — a conservative estimate: Φapprox ≥ Φ(G).
package core

import (
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
)

// DeltaInit selects the initial guess for the growth threshold Δ.
type DeltaInit int

const (
	// DeltaAvgWeight starts Δ at the average edge weight — the paper's
	// recommended practical initial guess (Section 5), which "reduces the
	// round complexity without affecting the approximation quality
	// significantly".
	DeltaAvgWeight DeltaInit = iota
	// DeltaMinWeight starts Δ at the minimum edge weight, as in the
	// pseudocode of Algorithm 1. Most doublings, best radius control.
	DeltaMinWeight
	// DeltaFixed starts Δ at Options.FixedDelta and still doubles as
	// needed. Used by the Δ-sensitivity experiment.
	DeltaFixed
)

// Options configures CLUSTER / CLUSTER2 / CL-DIAM.
type Options struct {
	// Tau is the decomposition granularity parameter τ: the expected
	// number of new cluster centers per stage. More clusters mean smaller
	// radius and fewer rounds but a larger quotient graph.
	Tau int

	// Gamma scales the center-selection probability
	// p = Gamma·τ·(ln n if UseLogFactor)/|uncovered|.
	// The paper's analysis uses γ = 4 ln 2 together with UseLogFactor;
	// the practical default (mirroring the authors' CL-DIAM choices) is 1
	// without the log factor. Zero selects the default for the mode.
	Gamma float64

	// UseLogFactor multiplies the selection probability numerator by ln n
	// and the stopping threshold by log₂ n (theory mode).
	UseLogFactor bool

	// StopFactor stops cluster growth and covers the remaining nodes as
	// singletons when |uncovered| < StopFactor·τ·(log₂ n if UseLogFactor).
	// The paper's analysis uses 8; the practical default is 1.
	// Zero selects the default.
	StopFactor float64

	// InitialDelta selects the initial Δ guess; FixedDelta is the value
	// used when InitialDelta == DeltaFixed.
	InitialDelta DeltaInit
	FixedDelta   float64

	// StepCap, when positive, bounds the number of Δ-growing steps in a
	// single PartialGrowth invocation (the Section 4.1 remark: capping at
	// O(n/τ) bounds round complexity for skewed topologies at the cost of
	// an extra approximation factor). 0 means unlimited.
	StepCap int

	// Seed drives all randomness. Runs are deterministic in
	// (graph, Options) including across worker counts.
	Seed uint64

	// Engine supplies parallelism and metrics; nil creates a default. The
	// run's context is bound to the engine, so callers sharing an engine
	// across runs must not run them concurrently.
	Engine *bsp.Engine

	// Progress, when non-nil, receives snapshots at stage boundaries —
	// never inside the Δ-growing hot loop. It does not affect the computed
	// result and is not part of any cache identity.
	Progress ProgressFunc
}

// withDefaults fills zero fields with the practical defaults.
func (o Options) withDefaults(g *graph.Graph) Options {
	if o.Tau <= 0 {
		o.Tau = defaultTau(g.NumNodes())
	}
	if o.Gamma <= 0 {
		if o.UseLogFactor {
			o.Gamma = 4 * math.Ln2
		} else {
			o.Gamma = 1
		}
	}
	if o.StopFactor <= 0 {
		if o.UseLogFactor {
			o.StopFactor = 8
		} else {
			o.StopFactor = 1
		}
	}
	if o.Engine == nil {
		o.Engine = bsp.New(0)
	}
	return o
}

// defaultTau picks τ so the final quotient stays comfortably below the
// paper's 100k-node target at our scales: √n clamped to [1, 4096].
func defaultTau(n int) int {
	tau := int(math.Sqrt(float64(n)))
	if tau < 1 {
		tau = 1
	}
	if tau > 4096 {
		tau = 4096
	}
	return tau
}

// initialDelta computes the starting Δ for the options.
func (o Options) initialDelta(g *graph.Graph) float64 {
	switch o.InitialDelta {
	case DeltaMinWeight:
		d := g.MinEdgeWeight()
		if math.IsInf(d, 1) {
			return 1
		}
		return d
	case DeltaFixed:
		if o.FixedDelta <= 0 {
			panic("core: DeltaFixed requires positive FixedDelta")
		}
		return o.FixedDelta
	default:
		d := g.AvgEdgeWeight()
		if d <= 0 {
			return 1
		}
		return d
	}
}

// logn returns ln n, at least 1, for probability scaling.
func logn(n int) float64 {
	l := math.Log(float64(n))
	if l < 1 {
		l = 1
	}
	return l
}

// log2n returns log₂ n, at least 1, for stopping thresholds.
func log2n(n int) float64 {
	l := math.Log2(float64(n))
	if l < 1 {
		l = 1
	}
	return l
}
