package core

import (
	"context"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

func TestClusterUnweightedCoversAll(t *testing.T) {
	r := rng.New(51)
	graphs := map[string]*graph.Graph{
		"mesh": gen.UniformWeights(gen.Mesh(10), r),
		"gnm":  gen.UniformWeights(gen.GNM(150, 400, r), r),
		"road": gen.RoadNetwork(gen.DefaultRoadNetworkOptions(12), r),
	}
	for name, g := range graphs {
		cl := mustUnweighted(t, g, Options{Tau: 8, Seed: 9})
		if err := cl.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkDistUpperBounds(t, g, cl)
	}
}

func TestClusterUnweightedDeterministic(t *testing.T) {
	r := rng.New(52)
	g := gen.UniformWeights(gen.Mesh(12), r)
	a := mustUnweighted(t, g, Options{Tau: 6, Seed: 4, Engine: bsp.New(1)})
	b := mustUnweighted(t, g, Options{Tau: 6, Seed: 4, Engine: bsp.New(8)})
	for u := range a.Center {
		if a.Center[u] != b.Center[u] || a.Dist[u] != b.Dist[u] {
			t.Fatalf("node %d differs across worker counts", u)
		}
	}
}

func TestClusterUnweightedIgnoresWeightsForGrowth(t *testing.T) {
	// A path with one enormous edge in the middle: hop-based growth from a
	// center on the left marches straight across the heavy edge, so the
	// radius includes it. CLUSTER with the same τ never crosses it (the
	// heavy edge exceeds every reasonable Δ guess), keeping the radius
	// small.
	weights := make([]float64, 40)
	for i := range weights {
		weights[i] = 1
	}
	weights[20] = 1e6
	g := gen.WeightedPath(weights)
	unw := mustUnweighted(t, g, Options{Tau: 2, Seed: 1})
	w := mustCluster(t, g, Options{Tau: 2, Seed: 1})
	if err := unw.Validate(g); err != nil {
		t.Fatal(err)
	}
	if unw.Radius < 1e5 && w.Radius > 1e5 {
		t.Fatalf("expected the weight-oblivious radius (%v) to be the one at risk, weighted %v",
			unw.Radius, w.Radius)
	}
	if w.Radius > 1e5 {
		t.Fatalf("weighted CLUSTER absorbed the heavy edge: radius %v", w.Radius)
	}
}

func TestWeightObliviousAblationOnRoads(t *testing.T) {
	// The ablation behind the paper's Section 1 remark: on weighted
	// near-planar graphs the weight-oblivious decomposition yields larger
	// radii, hence looser estimates, than CLUSTER with the same τ.
	r := rng.New(53)
	// Roads with heavy-tailed weights exaggerate the effect.
	g := gen.ExponentialWeights(gen.RoadNetwork(gen.DefaultRoadNetworkOptions(24), r), 1, r)
	exact := validate.ExactDiameter(g, bsp.New(4))

	weighted := mustDiam(t, g, DiamOptions{Options: Options{Tau: 16, Seed: 2}})
	oblivious := mustDiam(t, g, DiamOptions{
		Options:         Options{Tau: 16, Seed: 2},
		WeightOblivious: true,
	})
	if weighted.Estimate+1e-9 < exact || oblivious.Estimate+1e-9 < exact {
		t.Fatal("estimates must stay conservative")
	}
	if oblivious.Radius < weighted.Radius {
		t.Fatalf("weight-oblivious radius %v unexpectedly below weighted %v",
			oblivious.Radius, weighted.Radius)
	}
}

func TestWeightObliviousMutuallyExclusive(t *testing.T) {
	_, err := ApproxDiameter(context.Background(), gen.Path(4),
		DiamOptions{UseCluster2: true, WeightOblivious: true})
	if err == nil {
		t.Fatal("expected an error for UseCluster2 + WeightOblivious")
	}
}
