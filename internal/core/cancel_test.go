package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
)

// waitGoroutines polls until the goroutine count drops back to (near) the
// baseline, tolerating runtime housekeeping goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now vs %d before", runtime.NumGoroutine(), baseline)
}

// TestClusterCancelledMidRun is the cancellation acceptance test: a
// decomposition of a large road network cancelled mid-flight returns
// context.Canceled promptly (within one superstep plus scheduling slack)
// and leaves no goroutines behind.
func TestClusterCancelledMidRun(t *testing.T) {
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(128), rng.New(3))
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel from inside the first stage-boundary progress callback: the
	// run is then provably mid-flight, with most coverage still to go
	// (road networks at τ=2 need many stages).
	var once sync.Once
	var cancelledAt time.Time
	engine := bsp.New(4)
	defer engine.Close()
	opts := Options{
		Tau:    2,
		Seed:   1,
		Engine: engine,
		Progress: func(p Progress) {
			once.Do(func() {
				if p.Coverage >= 1 {
					t.Errorf("first progress snapshot already fully covered (%v)", p)
				}
				cancelledAt = time.Now()
				cancel()
			})
		},
	}

	cl, err := Cluster(ctx, g, opts)
	elapsed := time.Since(cancelledAt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got cl=%v err=%v", cl, err)
	}
	if cl != nil {
		t.Fatal("cancelled run must not return a clustering")
	}
	if cancelledAt.IsZero() {
		t.Fatal("progress callback never fired")
	}
	// "Promptly": one superstep on this graph is far below a second; allow
	// generous CI slack.
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to land", elapsed)
	}
	engine.Close() // release the persistent pool before counting goroutines
	waitGoroutines(t, baseline)
}

// TestApproxDiameterAlreadyCancelled: a pre-cancelled context fails fast
// without doing any metered work.
func TestApproxDiameterAlreadyCancelled(t *testing.T) {
	g := gen.UniformWeights(gen.Mesh(16), rng.New(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := bsp.New(2)
	_, err := ApproxDiameter(ctx, g, DiamOptions{Options: Options{Tau: 8, Seed: 1, Engine: e}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if r := e.Metrics().Snapshot().Rounds; r > 3 {
		t.Fatalf("pre-cancelled run still executed %d rounds", r)
	}
}

// TestClusterProgressMonotoneCoverage: coverage snapshots never regress and
// the final snapshot reports full coverage.
func TestClusterProgressMonotoneCoverage(t *testing.T) {
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(32), rng.New(5))
	var snaps []Progress
	cl, err := Cluster(context.Background(), g, Options{
		Tau: 4, Seed: 2,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("want several stage snapshots, got %d", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Coverage < snaps[i-1].Coverage {
			t.Fatalf("coverage regressed: %v after %v", snaps[i], snaps[i-1])
		}
		if snaps[i].Metrics.Rounds < snaps[i-1].Metrics.Rounds {
			t.Fatalf("metrics regressed at snapshot %d", i)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Coverage != 1 || last.Covered != g.NumNodes() {
		t.Fatalf("final snapshot not fully covered: %+v", last)
	}
	if last.Stage != cl.Stages {
		t.Fatalf("final snapshot stage %d != clustering stages %d", last.Stage, cl.Stages)
	}
}
