package core

import (
	"testing"
	"testing/quick"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

func TestApproxDiameterConservative(t *testing.T) {
	// The paper's core invariant: Φapprox(G) ≥ Φ(G), always.
	r := rng.New(2)
	graphs := map[string]*graph.Graph{
		"mesh":   gen.UniformWeights(gen.Mesh(12), r),
		"gnm":    gen.UniformWeights(gen.GNM(200, 600, r), r),
		"road":   gen.RoadNetwork(gen.DefaultRoadNetworkOptions(14), r),
		"path":   gen.Path(120),
		"rmat":   gen.UniformWeights(gen.RMatDefault(7, r), r),
		"binary": gen.BinaryTree(127),
	}
	for name, g := range graphs {
		exact := validate.ExactDiameter(g, bsp.New(4))
		res := mustDiam(t, g, DiamOptions{Options: Options{Tau: 8, Seed: 11}})
		if res.Estimate+1e-9 < exact {
			t.Fatalf("%s: estimate %v below exact %v", name, res.Estimate, exact)
		}
	}
}

func TestApproxDiameterRatioReasonable(t *testing.T) {
	// The paper reports ratios below 1.4; at our reduced scales with a
	// generous quotient the ratio should comfortably stay under 2.
	r := rng.New(3)
	cases := map[string]*graph.Graph{
		"mesh": gen.UniformWeights(gen.Mesh(20), r),
		"road": gen.RoadNetwork(gen.DefaultRoadNetworkOptions(18), r),
	}
	for name, g := range cases {
		exact := validate.ExactDiameter(g, bsp.New(4))
		res := mustDiam(t, g, DiamOptions{Options: Options{Tau: 32, Seed: 7}})
		ratio := res.Estimate / exact
		if ratio > 2.0 {
			t.Fatalf("%s: ratio %.3f (estimate %v, exact %v)", name, ratio, res.Estimate, exact)
		}
		if ratio < 1.0-1e-9 {
			t.Fatalf("%s: ratio %.3f below 1 — estimate not conservative", name, ratio)
		}
	}
}

func TestApproxDiameterSingletonClusteringIsExact(t *testing.T) {
	// With τ ≥ n every node is a singleton, the quotient equals G, the
	// radius is 0, and the estimate is the exact diameter.
	r := rng.New(4)
	g := gen.UniformWeights(gen.Mesh(8), r)
	exact := validate.ExactDiameter(g, bsp.New(2))
	res := mustDiam(t, g, DiamOptions{Options: Options{Tau: g.NumNodes() + 1, Seed: 1}})
	if res.Radius != 0 {
		t.Fatalf("radius = %v, want 0", res.Radius)
	}
	if res.QuotientNodes != g.NumNodes() {
		t.Fatalf("quotient nodes = %d, want %d", res.QuotientNodes, g.NumNodes())
	}
	if diffAbs(res.Estimate, exact) > 1e-9 {
		t.Fatalf("estimate %v != exact %v", res.Estimate, exact)
	}
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestApproxDiameterEmptyGraph(t *testing.T) {
	res := mustDiam(t, graph.NewBuilder(0, 0).Build(), DiamOptions{})
	if res.Estimate != 0 {
		t.Fatalf("empty estimate = %v", res.Estimate)
	}
}

func TestApproxDiameterDisconnected(t *testing.T) {
	// Diameter of a disconnected graph = max within components.
	b := graph.NewBuilder(10, 8)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 5; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 3)
	}
	g := b.Build()
	exact := validate.ExactDiameter(g, bsp.New(2)) // 4*3 = 12
	res := mustDiam(t, g, DiamOptions{Options: Options{Tau: 2, Seed: 5}})
	if res.Estimate+1e-9 < exact {
		t.Fatalf("disconnected estimate %v below exact %v", res.Estimate, exact)
	}
}

func TestApproxDiameterFewerRoundsThanDeltaStepping(t *testing.T) {
	// The headline comparison (Table 2 / Figure 2): CL-DIAM needs far
	// fewer rounds than a Δ-stepping SSSP on high-diameter graphs.
	r := rng.New(6)
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(28), r)
	res := mustDiam(t, g, DiamOptions{Options: Options{Tau: 32, Seed: 3}})
	ds := sssp.DeltaSteppingSeq(g, 0, sssp.SuggestDelta(g))
	if res.Metrics.Rounds >= ds.Rounds {
		t.Fatalf("CL-DIAM rounds %d not below Δ-stepping rounds %d",
			res.Metrics.Rounds, ds.Rounds)
	}
}

func TestApproxDiameterCluster2Variant(t *testing.T) {
	r := rng.New(7)
	g := gen.UniformWeights(gen.Mesh(12), r)
	exact := validate.ExactDiameter(g, bsp.New(4))
	res := mustDiam(t, g, DiamOptions{
		Options:     Options{Tau: 8, Seed: 13},
		UseCluster2: true,
	})
	if res.Estimate+1e-9 < exact {
		t.Fatalf("CLUSTER2 estimate %v below exact %v", res.Estimate, exact)
	}
	if err := res.Clustering.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestApproxDiameterDeterministic(t *testing.T) {
	r := rng.New(8)
	g := gen.UniformWeights(gen.GNM(150, 450, r), r)
	a := mustDiam(t, g, DiamOptions{Options: Options{Tau: 8, Seed: 21}})
	b := mustDiam(t, g, DiamOptions{Options: Options{Tau: 8, Seed: 21, Engine: bsp.New(7)}})
	if a.Estimate != b.Estimate || a.QuotientNodes != b.QuotientNodes {
		t.Fatalf("estimate depends on workers: %v/%d vs %v/%d",
			a.Estimate, a.QuotientNodes, b.Estimate, b.QuotientNodes)
	}
}

// Property: on random connected-ish graphs the estimate is conservative.
func TestApproxDiameterConservativeProperty(t *testing.T) {
	check := func(seed uint64, tauRaw uint8) bool {
		r := rng.New(seed)
		g := gen.UniformWeights(gen.GNM(80, 240, r), r)
		tau := int(tauRaw)%16 + 1
		exact := validate.ExactDiameter(g, bsp.New(2))
		res := mustDiam(t, g, DiamOptions{Options: Options{Tau: tau, Seed: seed}})
		return res.Estimate+1e-9 >= exact
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTauForQuotientTarget(t *testing.T) {
	if tau := TauForQuotientTarget(1000, 100); tau < 1 || tau > 1000 {
		t.Fatalf("tau = %d out of range", tau)
	}
	if tau := TauForQuotientTarget(10, 0); tau != 1 {
		t.Fatalf("tau for target 0 = %d, want 1", tau)
	}
	if tau := TauForQuotientTarget(5, 1000); tau > 5 {
		t.Fatalf("tau = %d exceeds n", tau)
	}
}

func TestDeltaSensitivityMeshExperiment(t *testing.T) {
	// Section 5's Δ-sensitivity experiment, scaled down: mesh with
	// bimodal weights (1 w.p. 0.1, 1e-6 otherwise). Starting Δ at the
	// minimum weight lets the algorithm self-tune and produce a tight
	// estimate; starting Δ at the graph diameter forces heavy edges into
	// clusters and inflates the estimate.
	// The heavy-edge probability is raised to 0.3 (vs the paper's 0.1) so
	// that at 48×48 — vs the paper's 2048×2048 — some nodes are enclosed
	// by heavy edges and the diameter is governed by a couple of heavy
	// crossings, the regime the experiment is about.
	r := rng.New(77)
	g := gen.BimodalWeights(gen.Mesh(48), 1e-6, 1, 0.3, r)
	exact := validate.ExactDiameter(g, bsp.New(8))

	tuned := mustDiam(t, g, DiamOptions{Options: Options{
		Tau: 64, Seed: 1, InitialDelta: DeltaMinWeight}})
	avg := mustDiam(t, g, DiamOptions{Options: Options{
		Tau: 64, Seed: 1, InitialDelta: DeltaAvgWeight}})
	huge := mustDiam(t, g, DiamOptions{Options: Options{
		Tau: 64, Seed: 1, InitialDelta: DeltaFixed, FixedDelta: exact}})

	rTuned := tuned.Estimate / exact
	rAvg := avg.Estimate / exact
	rHuge := huge.Estimate / exact
	// Paper: 1.0001 for self-tuned Δ, ~2.5× for diameter-sized initial Δ,
	// with the average weight a safe default.
	if rTuned > 1.1 {
		t.Fatalf("min-Δ ratio %.4f, want ~1", rTuned)
	}
	if rAvg > 1.1 {
		t.Fatalf("avg-Δ ratio %.4f, want ~1", rAvg)
	}
	if rHuge < 1.5*rTuned {
		t.Fatalf("diameter-sized initial Δ (%.4f) should be much worse than tuned (%.4f)",
			rHuge, rTuned)
	}
}
