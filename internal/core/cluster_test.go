package core

import (
	"math"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
)

// checkDistUpperBounds verifies that every node's Dist is at least the true
// shortest-path distance from its assigned center (the clustering's d_u are
// upper bounds realized by actual paths).
func checkDistUpperBounds(t *testing.T, g *graph.Graph, c *Clustering) {
	t.Helper()
	for _, ctr := range c.Centers {
		dist := sssp.Dijkstra(g, ctr)
		for u := range c.Center {
			if c.Center[u] != int32(ctr) {
				continue
			}
			if c.Dist[u]+1e-9 < dist[u] {
				t.Fatalf("node %d: Dist %v below true distance %v from center %d",
					u, c.Dist[u], dist[u], ctr)
			}
		}
	}
}

func TestClusterCoversAllNodes(t *testing.T) {
	r := rng.New(1)
	graphs := map[string]*graph.Graph{
		"mesh":  gen.UniformWeights(gen.Mesh(12), r),
		"gnm":   gen.UniformWeights(gen.GNM(200, 500, r), r),
		"path":  gen.Path(100),
		"star":  gen.Star(50),
		"road":  gen.RoadNetwork(gen.DefaultRoadNetworkOptions(16), r),
		"cycle": gen.Cycle(64),
	}
	for name, g := range graphs {
		cl := mustCluster(t, g, Options{Tau: 8, Seed: 42})
		if err := cl.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cl.NumClusters() < 1 {
			t.Fatalf("%s: no clusters", name)
		}
		checkDistUpperBounds(t, g, cl)
	}
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(7)
	g := gen.UniformWeights(gen.Mesh(16), r)
	var ref *Clustering
	for _, workers := range []int{1, 2, 4, 8} {
		cl := mustCluster(t, g, Options{Tau: 10, Seed: 5, Engine: bsp.New(workers)})
		if ref == nil {
			ref = cl
			continue
		}
		if cl.NumClusters() != ref.NumClusters() || cl.Radius != ref.Radius {
			t.Fatalf("P=%d: clusters=%d radius=%v vs ref %d/%v",
				workers, cl.NumClusters(), cl.Radius, ref.NumClusters(), ref.Radius)
		}
		for u := range cl.Center {
			if cl.Center[u] != ref.Center[u] || cl.Dist[u] != ref.Dist[u] {
				t.Fatalf("P=%d: node %d state (%d,%v) vs ref (%d,%v)",
					workers, u, cl.Center[u], cl.Dist[u], ref.Center[u], ref.Dist[u])
			}
		}
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	r := rng.New(8)
	g := gen.UniformWeights(gen.GNM(150, 400, r), r)
	a := mustCluster(t, g, Options{Tau: 6, Seed: 99})
	b := mustCluster(t, g, Options{Tau: 6, Seed: 99})
	for u := range a.Center {
		if a.Center[u] != b.Center[u] {
			t.Fatalf("same seed diverged at node %d", u)
		}
	}
	c := mustCluster(t, g, Options{Tau: 6, Seed: 100})
	same := true
	for u := range a.Center {
		if a.Center[u] != c.Center[u] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical clusterings (suspicious)")
	}
}

func TestClusterSingletonRegime(t *testing.T) {
	// τ ≥ n stops immediately: every node becomes a singleton cluster.
	g := gen.Path(10)
	cl := mustCluster(t, g, Options{Tau: 100, Seed: 1})
	if cl.NumClusters() != 10 {
		t.Fatalf("clusters = %d, want 10 singletons", cl.NumClusters())
	}
	if cl.Radius != 0 {
		t.Fatalf("singleton radius = %v, want 0", cl.Radius)
	}
	if err := cl.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestClusterRadiusShrinksWithMoreClusters(t *testing.T) {
	r := rng.New(11)
	g := gen.UniformWeights(gen.Mesh(20), r)
	coarse := mustCluster(t, g, Options{Tau: 2, Seed: 3})
	fine := mustCluster(t, g, Options{Tau: 64, Seed: 3})
	if fine.NumClusters() <= coarse.NumClusters() {
		t.Fatalf("cluster counts not ordered: fine %d <= coarse %d",
			fine.NumClusters(), coarse.NumClusters())
	}
	if fine.Radius > coarse.Radius*1.5 {
		t.Fatalf("radius did not shrink: fine %v vs coarse %v", fine.Radius, coarse.Radius)
	}
}

func TestClusterEmptyAndTinyGraphs(t *testing.T) {
	empty := mustCluster(t, graph.NewBuilder(0, 0).Build(), Options{Tau: 1})
	if empty.NumClusters() != 0 {
		t.Fatal("empty graph should have no clusters")
	}
	single := mustCluster(t, graph.NewBuilder(1, 0).Build(), Options{Tau: 1, Seed: 2})
	if single.NumClusters() != 1 || single.Center[0] != 0 {
		t.Fatalf("singleton graph: %+v", single)
	}
}

func TestClusterDisconnectedGraph(t *testing.T) {
	// Two far-apart components must still be fully covered.
	b := graph.NewBuilder(8, 6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	b.AddEdge(6, 7, 1)
	g := b.Build()
	cl := mustCluster(t, g, Options{Tau: 1, Seed: 4})
	if err := cl.Validate(g); err != nil {
		t.Fatal(err)
	}
	// No cluster may span components.
	for u, ctr := range cl.Center {
		if (u < 4) != (ctr < 4) {
			t.Fatalf("cluster spans components: node %d center %d", u, ctr)
		}
	}
}

func TestClusterTheoryModeBounds(t *testing.T) {
	// Theory mode on a mesh: the number of clusters stays within the
	// O(τ log² n) bound (with explicit constants) and Δ_end within
	// O(R_G(τ)): we check the weaker sanity versions on a small mesh.
	// Theory-mode constants (8τ log n stop threshold) need n comfortably
	// above 8τ log₂ n; mesh(40) has n = 1600.
	r := rng.New(13)
	g := gen.UniformWeights(gen.Mesh(40), r)
	n := g.NumNodes()
	tau := 2
	cl := mustCluster(t, g, Options{Tau: tau, Seed: 6, UseLogFactor: true})
	if err := cl.Validate(g); err != nil {
		t.Fatal(err)
	}
	log2 := math.Log2(float64(n))
	maxClusters := float64(8*tau)*log2*log2 + float64(n) // slack: singleton tail
	if float64(cl.NumClusters()) > maxClusters {
		t.Fatalf("clusters = %d exceeds bound %v", cl.NumClusters(), maxClusters)
	}
	if cl.GrowingSteps < 1 {
		t.Fatal("no growing steps recorded")
	}
}

func TestClusterStepCapReducesRounds(t *testing.T) {
	// Section 4.1 remark: capping growing steps bounds rounds at an
	// approximation cost. The capped run must use no more growing steps
	// per stage and still produce a valid clustering.
	g := gen.Path(400) // worst case for ℓ: long unit path
	uncapped := mustCluster(t, g, Options{Tau: 2, Seed: 9})
	capped := mustCluster(t, g, Options{Tau: 2, Seed: 9, StepCap: 5})
	if err := capped.Validate(g); err != nil {
		t.Fatal(err)
	}
	if capped.GrowingSteps >= uncapped.GrowingSteps {
		t.Fatalf("step cap did not reduce growing steps: %d vs %d",
			capped.GrowingSteps, uncapped.GrowingSteps)
	}
}

func TestClusterMetricsAccounted(t *testing.T) {
	r := rng.New(17)
	g := gen.UniformWeights(gen.Mesh(10), r)
	e := bsp.New(4)
	cl := mustCluster(t, g, Options{Tau: 8, Seed: 2, Engine: e})
	if cl.Metrics.Rounds < int64(cl.Stages) {
		t.Fatalf("rounds %d below stage count %d", cl.Metrics.Rounds, cl.Stages)
	}
	if cl.Metrics.Updates == 0 || cl.Metrics.Messages == 0 {
		t.Fatalf("work not accounted: %+v", cl.Metrics)
	}
	if cl.GrowingSteps > cl.Metrics.Rounds {
		t.Fatalf("growing steps %d exceed rounds %d", cl.GrowingSteps, cl.Metrics.Rounds)
	}
}

func TestClusterIndexDense(t *testing.T) {
	r := rng.New(19)
	g := gen.UniformWeights(gen.GNM(80, 200, r), r)
	cl := mustCluster(t, g, Options{Tau: 4, Seed: 3})
	idx := cl.ClusterIndex()
	k := cl.NumClusters()
	seen := make([]bool, k)
	for u, i := range idx {
		if i < 0 || int(i) >= k {
			t.Fatalf("node %d has cluster index %d out of [0,%d)", u, i, k)
		}
		seen[i] = true
		if cl.Centers[i] != graph.NodeID(cl.Center[u]) {
			t.Fatalf("index %d inconsistent with center %d", i, cl.Center[u])
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("cluster index %d unused", i)
		}
	}
}

func TestInitialDeltaModes(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 2, 3, 10})
	if d := (Options{InitialDelta: DeltaMinWeight}).initialDelta(g); d != 1 {
		t.Fatalf("min delta = %v", d)
	}
	if d := (Options{InitialDelta: DeltaAvgWeight}).initialDelta(g); d != 4 {
		t.Fatalf("avg delta = %v", d)
	}
	if d := (Options{InitialDelta: DeltaFixed, FixedDelta: 7}).initialDelta(g); d != 7 {
		t.Fatalf("fixed delta = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DeltaFixed without value must panic")
		}
	}()
	(Options{InitialDelta: DeltaFixed}).initialDelta(g)
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := gen.Path(6)
	cl := mustCluster(t, g, Options{Tau: 2, Seed: 1})
	if err := cl.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := *cl
	bad.Dist = append([]float64(nil), cl.Dist...)
	bad.Dist[3] = cl.Radius + 100
	if bad.Validate(g) == nil {
		t.Fatal("Validate missed a dist above radius")
	}
	bad2 := *cl
	bad2.Center = append([]int32(nil), cl.Center...)
	bad2.Center[0] = -1
	if bad2.Validate(g) == nil {
		t.Fatal("Validate missed an invalid center")
	}
}
