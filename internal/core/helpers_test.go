package core

import (
	"context"
	"testing"

	"graphdiam/internal/graph"
)

// Test-side adapters over the cancellable API: every decomposition in this
// package's tests runs under context.Background, where the only possible
// error — a context error — cannot occur, so the helpers fold the error
// return into the test failure path.

func mustCluster(t testing.TB, g *graph.Graph, o Options) *Clustering {
	t.Helper()
	cl, err := Cluster(context.Background(), g, o)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	return cl
}

func mustCluster2(t testing.TB, g *graph.Graph, o Options) *Cluster2Result {
	t.Helper()
	res, err := Cluster2(context.Background(), g, o)
	if err != nil {
		t.Fatalf("Cluster2: %v", err)
	}
	return res
}

func mustUnweighted(t testing.TB, g *graph.Graph, o Options) *Clustering {
	t.Helper()
	cl, err := ClusterUnweighted(context.Background(), g, o)
	if err != nil {
		t.Fatalf("ClusterUnweighted: %v", err)
	}
	return cl
}

func mustDiam(t testing.TB, g *graph.Graph, o DiamOptions) DiamResult {
	t.Helper()
	res, err := ApproxDiameter(context.Background(), g, o)
	if err != nil {
		t.Fatalf("ApproxDiameter: %v", err)
	}
	return res
}
