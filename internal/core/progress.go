package core

import "graphdiam/internal/bsp"

// Progress is a point-in-time snapshot of a running decomposition or
// diameter approximation, delivered to Options.Progress. Snapshots are
// emitted at stage boundaries (superstep barriers), so Coverage within one
// Phase is non-decreasing across successive snapshots.
type Progress struct {
	// Phase names the pipeline step being reported: "cluster" while the
	// decomposition grows, "quotient" while the quotient graph and its
	// diameter are computed (ApproxDiameter only), "done" for the final
	// snapshot of a completed run.
	Phase string `json:"phase"`
	// Stage is the number of completed decomposition stages (outer
	// iterations of Algorithm 1/2).
	Stage int `json:"stage"`
	// Delta is the current growth threshold Δ.
	Delta float64 `json:"delta"`
	// Covered and Total count nodes assigned to clusters versus all nodes;
	// Coverage is their ratio in [0, 1].
	Covered  int     `json:"covered"`
	Total    int     `json:"total"`
	Coverage float64 `json:"coverage"`
	// Metrics is the BSP cost accumulated by this run so far.
	Metrics bsp.Snapshot `json:"metrics"`
}

// ProgressFunc receives Progress snapshots. It is called synchronously from
// the algorithm's coordinating goroutine between supersteps, so it must be
// fast and must not block; hand off to a channel or goroutine for slow
// consumers. A nil ProgressFunc disables reporting at zero cost.
type ProgressFunc func(Progress)

// emit reports a snapshot if fn is non-nil, deriving Coverage from the
// counts.
func (fn ProgressFunc) emit(phase string, stage int, delta float64, covered, total int, m bsp.Snapshot) {
	if fn == nil {
		return
	}
	p := Progress{
		Phase:   phase,
		Stage:   stage,
		Delta:   delta,
		Covered: covered,
		Total:   total,
		Metrics: m,
	}
	if total > 0 {
		p.Coverage = float64(covered) / float64(total)
	}
	fn(p)
}
