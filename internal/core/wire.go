package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
)

// growWire serializes growMsg relaxation requests for cross-process
// shipping: uvarint node, uvarint center (two's-complement cast, so the -1
// sentinel round-trips), then the two distances as raw little-endian
// float64 bits — distances cross the wire bit-exactly, which the
// transport-equivalence guarantee depends on.
var growWire = bsp.WireCodec[growMsg]{
	MinSize: 1 + 1 + 8 + 8,
	Append: func(buf []byte, m growMsg) []byte {
		buf = binary.AppendUvarint(buf, uint64(m.node))
		buf = binary.AppendUvarint(buf, uint64(uint32(m.center)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.sd))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.td))
		return buf
	},
	Read: func(data []byte) (growMsg, int, error) {
		var m growMsg
		node, n := binary.Uvarint(data)
		if n <= 0 || node > math.MaxUint32 {
			return m, 0, fmt.Errorf("bad node field")
		}
		pos := n
		center, n := binary.Uvarint(data[pos:])
		if n <= 0 || center > math.MaxUint32 {
			return m, 0, fmt.Errorf("bad center field")
		}
		pos += n
		if len(data)-pos < 16 {
			return m, 0, fmt.Errorf("truncated distances")
		}
		m.node = graph.NodeID(node)
		m.center = int32(uint32(center))
		m.sd = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		m.td = math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8:]))
		return m, pos + 16, nil
	},
}
