package core

import (
	"context"
	"fmt"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/quotient"
)

// DiamOptions configures ApproxDiameter (the paper's CL-DIAM).
type DiamOptions struct {
	// Options configures the underlying decomposition.
	Options
	// Quotient controls how the quotient diameter is computed.
	Quotient quotient.DiameterOptions
	// UseCluster2 selects the theoretically-grounded CLUSTER2
	// decomposition instead of CLUSTER. The paper's CL-DIAM uses CLUSTER
	// "for efficiency … CLUSTER2 … does not seem to provide a significant
	// improvement to the quality of the approximation in practice"
	// (Section 5); this flag exists for the comparison experiment.
	UseCluster2 bool
	// WeightOblivious selects the [CPPU15] unweighted decomposition
	// (ClusterUnweighted) — the ablation showing why the weighted
	// Δ-growing strategy is necessary. Mutually exclusive with
	// UseCluster2.
	WeightOblivious bool
}

// DiamResult is the outcome of a CL-DIAM run.
type DiamResult struct {
	// Estimate is Φapprox(G) = Φ(G_C) + 2R ≥ Φ(G).
	Estimate float64
	// QuotientDiameter is Φ(G_C).
	QuotientDiameter float64
	// Radius is the clustering radius R.
	Radius float64
	// QuotientNodes and QuotientEdges give the size of G_C.
	QuotientNodes, QuotientEdges int
	// Clustering is the decomposition used.
	Clustering *Clustering
	// Metrics is the total platform-independent cost (decomposition +
	// quotient construction + quotient diameter).
	Metrics bsp.Snapshot
	// WallTime is the end-to-end elapsed time.
	WallTime time.Duration
}

// ApproxDiameter runs the paper's practical diameter approximation CL-DIAM:
// decompose g with CLUSTER(G, τ) (Section 3), build the weighted quotient
// graph (Section 4), and return Φ(G_C) + 2R. The estimate is conservative —
// Φapprox(G) ≥ Φ(G) — and, per the paper's experiments and the ones in
// EXPERIMENTS.md, within a factor ~1.4 of the true diameter in practice,
// far below the O(log³ n) worst-case guarantee.
//
// Cancellation of ctx is observed at superstep barriers throughout the
// decomposition and between the quotient phases; a cancelled run returns
// ctx's error. Progress snapshots carry Phase "cluster" during the
// decomposition and "quotient"/"done" afterwards.
func ApproxDiameter(ctx context.Context, g *graph.Graph, opts DiamOptions) (DiamResult, error) {
	o := opts
	o.Options = o.Options.withDefaults(g)
	e := o.Engine.Bind(ctx)
	start := time.Now()
	before := e.Metrics().Snapshot()

	var cl *Clustering
	var err error
	switch {
	case o.UseCluster2 && o.WeightOblivious:
		return DiamResult{}, fmt.Errorf("core: UseCluster2 and WeightOblivious are mutually exclusive")
	case o.UseCluster2:
		var c2 *Cluster2Result
		if c2, err = Cluster2(ctx, g, o.Options); err == nil {
			cl = c2.Clustering
		}
	case o.WeightOblivious:
		cl, err = ClusterUnweighted(ctx, g, o.Options)
	default:
		cl, err = Cluster(ctx, g, o.Options)
	}
	if err != nil {
		return DiamResult{}, err
	}

	res := DiamResult{Clustering: cl, Radius: cl.Radius}
	n := g.NumNodes()
	if n == 0 {
		res.Metrics = diff(before, e.Metrics().Snapshot())
		res.WallTime = time.Since(start)
		return res, nil
	}

	o.Progress.emit("quotient", cl.Stages, cl.DeltaEnd, n, n,
		diff(before, e.Metrics().Snapshot()))
	q, _ := quotient.Build(g, cl.Center, cl.Dist, e)
	if err := e.Err(); err != nil {
		return DiamResult{}, err
	}
	res.QuotientNodes = q.NumNodes()
	res.QuotientEdges = q.NumEdges()
	res.QuotientDiameter = quotient.Diameter(q, e, o.Quotient)
	if err := e.Err(); err != nil {
		return DiamResult{}, err
	}
	// The quotient diameter is computed inside one reducer's local memory
	// in O(1) rounds (paper, Section 4.1); charge one round for it.
	e.Metrics().AddRounds(1)

	res.Estimate = res.QuotientDiameter + 2*cl.Radius
	res.Metrics = diff(before, e.Metrics().Snapshot())
	res.WallTime = time.Since(start)
	o.Progress.emit("done", cl.Stages, cl.DeltaEnd, n, n, res.Metrics)
	return res, nil
}

// TauForQuotientTarget returns a τ that keeps the expected quotient size
// near target for an n-node graph: the decomposition creates roughly τ
// clusters per stage over a handful of stages in practical mode, so τ is
// set to target divided by a small stage estimate, clamped to [1, n].
func TauForQuotientTarget(n, target int) int {
	if target < 1 {
		target = 1
	}
	// Practical-mode stages until coverage are ~log₂(n/τ) but the bulk of
	// clusters appear in the first few stages; 4 is a robust divisor at
	// benchmark scales (validated in the experiments harness).
	tau := target / 4
	if tau < 1 {
		tau = 1
	}
	if tau > n {
		tau = n
	}
	return tau
}
