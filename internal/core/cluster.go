package core

import (
	"context"
	"fmt"
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
)

// Clustering is the decomposition produced by Cluster or Cluster2: a
// partition of the nodes into clusters of bounded weighted radius.
type Clustering struct {
	// Center[u] is the node ID of u's cluster center.
	Center []int32
	// Dist[u] is the weight of a realized path from Center[u] to u, an
	// upper bound on dist(Center[u], u). This is the d_u used by the
	// quotient graph construction.
	Dist []float64
	// Centers lists the distinct cluster centers in increasing node order.
	Centers []graph.NodeID
	// Radius is max_u Dist[u] — the clustering radius R.
	Radius float64
	// Stages is the number of outer stages (iterations) executed.
	Stages int
	// DeltaEnd is the final value of the growth threshold Δ (the paper's
	// Δ_end, shown to be O(R_G(τ)) w.h.p. in Lemma 1).
	DeltaEnd float64
	// GrowingSteps counts the Δ-growing steps performed.
	GrowingSteps int64
	// MaxPartialGrowthSteps is the largest number of Δ-growing steps any
	// single PartialGrowth invocation used; with Options.StepCap set it
	// never exceeds the cap (the Section 4.1 bound).
	MaxPartialGrowthSteps int
	// Metrics is the cost snapshot accumulated during the run.
	Metrics bsp.Snapshot
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Centers) }

// ClusterIndex returns a dense renumbering: for each node, the index of its
// cluster in Centers. O(n), using a dense lookup array — centers are node
// IDs in [0, n), so no map is needed.
func (c *Clustering) ClusterIndex() []int32 {
	idx := make([]int32, len(c.Center))
	for i, ctr := range c.Centers {
		idx[ctr] = int32(i)
	}
	out := make([]int32, len(c.Center))
	for u, ctr := range c.Center {
		out[u] = idx[ctr]
	}
	return out
}

// Validate checks structural invariants of the clustering against g,
// returning a descriptive error on the first violation. Intended for tests
// and debugging; O(n + m).
func (c *Clustering) Validate(g *graph.Graph) error {
	n := g.NumNodes()
	if len(c.Center) != n || len(c.Dist) != n {
		return fmt.Errorf("core: clustering arrays sized %d/%d for n=%d",
			len(c.Center), len(c.Dist), n)
	}
	isCenter := make(map[int32]bool, len(c.Centers))
	for _, ctr := range c.Centers {
		isCenter[int32(ctr)] = true
	}
	for u := 0; u < n; u++ {
		ctr := c.Center[u]
		if ctr < 0 || int(ctr) >= n {
			return fmt.Errorf("core: node %d has invalid center %d", u, ctr)
		}
		if !isCenter[ctr] {
			return fmt.Errorf("core: node %d assigned to unlisted center %d", u, ctr)
		}
		if c.Center[ctr] != ctr {
			return fmt.Errorf("core: center %d not its own center", ctr)
		}
		if int32(u) == ctr && c.Dist[u] != 0 {
			return fmt.Errorf("core: center %d has nonzero dist %v", u, c.Dist[u])
		}
		if c.Dist[u] < 0 || math.IsInf(c.Dist[u], 1) || math.IsNaN(c.Dist[u]) {
			return fmt.Errorf("core: node %d has invalid dist %v", u, c.Dist[u])
		}
		if c.Dist[u] > c.Radius+1e-9 {
			return fmt.Errorf("core: node %d dist %v exceeds radius %v", u, c.Dist[u], c.Radius)
		}
	}
	return nil
}

// Cluster runs Algorithm 1, CLUSTER(G, τ): a progressive decomposition of g
// into clusters of bounded weighted radius. See the package documentation
// for the algorithm outline and Options for the theory/practice knobs.
//
// The returned clustering is deterministic in (g, opts) — including across
// engine worker counts. Cancellation of ctx is observed cooperatively at
// superstep barriers: the run stops within one Δ-growing step and returns
// ctx's error with a nil clustering. Progress snapshots, when requested via
// Options.Progress, are emitted at stage boundaries.
func Cluster(ctx context.Context, g *graph.Graph, opts Options) (*Clustering, error) {
	o := opts.withDefaults(g)
	e := o.Engine.Bind(ctx)
	n := g.NumNodes()
	if n == 0 {
		return &Clustering{Metrics: e.GlobalSnapshot()}, nil
	}
	before := e.GlobalSnapshot()

	st := newGrowState(g, e)
	delta := o.initialDelta(g)
	// Once Δ exceeds any possible path weight, further doubling cannot help
	// (only disconnection can stall growth then).
	deltaFutile := g.MaxEdgeWeight() * float64(n)
	if deltaFutile <= 0 {
		deltaFutile = 1
	}

	stopThresh := o.StopFactor * float64(o.Tau)
	if o.UseLogFactor {
		stopThresh *= log2n(n)
	}

	uncovered := n
	stage := 0
	var growingSteps int64
	maxPGSteps := 0
	for float64(uncovered) >= stopThresh && uncovered > 0 {
		// Center selection: p = γ·τ·(ln n)/|uncovered| in theory mode,
		// γ·τ/|uncovered| in practical mode.
		p := o.Gamma * float64(o.Tau) / float64(uncovered)
		if o.UseLogFactor {
			p *= logn(n)
		}
		newCenters := st.selectCenters(o.Seed, stage, p)
		if newCenters == 0 {
			// Extremely unlikely for τ ≥ 1 but possible; Algorithm 1 needs
			// at least one growth source to make progress on a graph with
			// no prior clusters.
			if st.forceCenter(o.Seed, stage) {
				newCenters = 1
			}
		}
		st.beginStageProxies(stage, false, 0)
		st.reseedFrontier()

		reached := newCenters
		half := float64(uncovered) / 2
		capped := false
		for {
			// PartialGrowth(G_i, Δ): Δ-growing steps until fixpoint, half
			// coverage, or the Section 4.1 step cap.
			steps := 0
			fixpoint := false
			for {
				changed, newly := st.growStep(delta, stage)
				if err := e.Err(); err != nil {
					return nil, err
				}
				growingSteps++
				steps++
				reached += int(newly)
				if float64(reached) >= half {
					break
				}
				if !changed {
					fixpoint = true
					break
				}
				if o.StepCap > 0 && steps >= o.StepCap {
					capped = true
					break
				}
			}
			if steps > maxPGSteps {
				maxPGSteps = steps
			}
			if float64(reached) >= half || capped {
				break
			}
			if fixpoint && delta >= deltaFutile {
				break // remaining uncovered nodes unreachable at any Δ
			}
			delta *= 2
			st.reseedFrontier()
		}
		covered := st.finishStage(stage)
		uncovered -= covered
		stage++
		if err := e.Err(); err != nil {
			return nil, err
		}
		o.Progress.emit("cluster", stage, delta, n-uncovered, n,
			diff(before, e.GlobalSnapshot()))
	}
	if uncovered > 0 {
		st.coverSingletons(stage)
		stage++
	}
	st.syncResult()
	after := e.GlobalSnapshot()
	if err := e.Err(); err != nil {
		return nil, err
	}

	c := buildClustering(st, stage, delta, growingSteps, diff(before, after))
	c.MaxPartialGrowthSteps = maxPGSteps
	o.Progress.emit("cluster", stage, delta, n, n, c.Metrics)
	return c, nil
}

// diff returns the metric delta between two snapshots.
func diff(before, after bsp.Snapshot) bsp.Snapshot {
	return bsp.Snapshot{
		Rounds:   after.Rounds - before.Rounds,
		Messages: after.Messages - before.Messages,
		Updates:  after.Updates - before.Updates,
	}
}

// buildClustering materializes the result from the grow state.
func buildClustering(st *growState, stages int, deltaEnd float64, steps int64, m bsp.Snapshot) *Clustering {
	n := st.n
	c := &Clustering{
		Center:       st.center,
		Dist:         st.totalD,
		Stages:       stages,
		DeltaEnd:     deltaEnd,
		GrowingSteps: steps,
		Metrics:      m,
	}
	c.Radius = st.radius()
	seen := make([]bool, n)
	for u := 0; u < n; u++ {
		ctr := st.center[u]
		if !seen[ctr] {
			seen[ctr] = true
		}
	}
	for u := 0; u < n; u++ {
		if seen[u] {
			c.Centers = append(c.Centers, graph.NodeID(u))
		}
	}
	return c
}
