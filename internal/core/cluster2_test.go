package core

import (
	"math"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func TestCluster2CoversAllNodes(t *testing.T) {
	r := rng.New(31)
	graphs := map[string]*graph.Graph{
		"mesh": gen.UniformWeights(gen.Mesh(10), r),
		"gnm":  gen.UniformWeights(gen.GNM(150, 400, r), r),
		"path": gen.Path(80),
	}
	for name, g := range graphs {
		res := mustCluster2(t, g, Options{Tau: 4, Seed: 8})
		if err := res.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.RCL <= 0 && g.NumEdges() > 0 {
			t.Fatalf("%s: RCL = %v", name, res.RCL)
		}
		checkDistUpperBounds(t, g, res.Clustering)
	}
}

func TestCluster2DeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(37)
	g := gen.UniformWeights(gen.Mesh(12), r)
	a := mustCluster2(t, g, Options{Tau: 4, Seed: 10, Engine: bsp.New(1)})
	b := mustCluster2(t, g, Options{Tau: 4, Seed: 10, Engine: bsp.New(8)})
	if a.NumClusters() != b.NumClusters() || a.Radius != b.Radius {
		t.Fatalf("cluster2 depends on workers: %d/%v vs %d/%v",
			a.NumClusters(), a.Radius, b.NumClusters(), b.Radius)
	}
	for u := range a.Center {
		if a.Center[u] != b.Center[u] {
			t.Fatalf("center of %d differs across worker counts", u)
		}
	}
}

func TestCluster2GrowthIsRateLimited(t *testing.T) {
	// The key structural property behind Theorem 2: a center selected at
	// iteration i cannot cover a node at light distance d in fewer than
	// ⌈d/(2·RCL)⌉ iterations, because Contract2 rescales potentials by
	// 2·RCL per iteration. Consequence: on a long unit path with a single
	// early center, per-iteration coverage growth from that center is
	// bounded by ~2·RCL per side per iteration (in weight).
	g := gen.Path(200)
	res := mustCluster2(t, g, Options{Tau: 1, Seed: 3})
	if err := res.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Every node's Dist is a true path weight, so it is bounded by the
	// number of iterations times the per-iteration growth budget 2·RCL.
	budget := float64(res.Stages)*2*res.RCL + 1e-9
	for u, d := range res.Dist {
		if d > budget {
			t.Fatalf("node %d dist %v exceeds iteration budget %v (stages=%d RCL=%v)",
				u, d, budget, res.Stages, res.RCL)
		}
	}
}

func TestCluster2ClusterCountWithinBound(t *testing.T) {
	// Lemma 2 bounds the cluster count by O(τ log⁴ n). At our scales the
	// growth threshold 2·R_CL is large relative to the graph, so the count
	// is typically far below the bound — often below CLUSTER's too, which
	// is fine: the lemma gives an upper bound only.
	r := rng.New(41)
	g := gen.UniformWeights(gen.Mesh(16), r)
	n := float64(g.NumNodes())
	c2 := mustCluster2(t, g, Options{Tau: 8, Seed: 5})
	l := math.Log2(n)
	bound := 8 * 8 * l * l * l * l // generous constant on τ log⁴ n
	if float64(c2.NumClusters()) > bound {
		t.Fatalf("CLUSTER2 clusters %d exceed O(τ log⁴ n) bound %v", c2.NumClusters(), bound)
	}
	if c2.NumClusters() < 1 {
		t.Fatal("no clusters")
	}
}

func TestCluster2EmptyGraph(t *testing.T) {
	res := mustCluster2(t, graph.NewBuilder(0, 0).Build(), Options{Tau: 1})
	if res.NumClusters() != 0 {
		t.Fatal("empty graph should produce no clusters")
	}
}

func TestCluster2Disconnected(t *testing.T) {
	b := graph.NewBuilder(10, 8)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 5; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g := b.Build()
	res := mustCluster2(t, g, Options{Tau: 2, Seed: 12})
	if err := res.Validate(g); err != nil {
		t.Fatal(err)
	}
	for u, ctr := range res.Center {
		if (u < 5) != (ctr < 5) {
			t.Fatalf("cluster2 cluster spans components: node %d center %d", u, ctr)
		}
	}
}

func TestCluster2RadiusBoundedByIterationsTimesThreshold(t *testing.T) {
	r := rng.New(43)
	g := gen.UniformWeights(gen.GNM(120, 360, r), r)
	res := mustCluster2(t, g, Options{Tau: 4, Seed: 9})
	n := g.NumNodes()
	// Radius ≤ iterations · 2·RCL: each iteration adds at most the growth
	// threshold to any realized center path.
	bound := (math.Log2(float64(n)) + 2) * 2 * res.RCL
	if res.Radius > bound+1e-9 {
		t.Fatalf("radius %v exceeds bound %v", res.Radius, bound)
	}
}
