package core

import (
	"context"
	"math"

	"graphdiam/internal/graph"
)

// Cluster2Result bundles the refined decomposition of Algorithm 2 with the
// radius of the preliminary CLUSTER run it calibrates against.
type Cluster2Result struct {
	*Clustering
	// RCL is the radius R_CL(τ) of the preliminary CLUSTER(G, τ) run; the
	// growth threshold of every iteration is 2·RCL.
	RCL float64
}

// Cluster2 runs Algorithm 2, CLUSTER2(G, τ): it first runs CLUSTER(G, τ) to
// obtain the radius estimate R_CL(τ), then executes ⌈log₂ n⌉ iterations in
// which uncovered nodes become new centers with probability 2^i/n and all
// clusters grow by 2·R_CL-growing steps until fixpoint. The weight
// rescaling of Contract2 is realized by lowering every covered node's stage
// potential by 2·R_CL per iteration, so a cluster reaches light distance d
// only after ⌈d/(2R_CL)⌉ iterations — the key property behind the paper's
// O(log³ n) approximation bound (Theorem 2).
//
// CLUSTER2 trades a larger cluster count and weaker radius for that
// provable approximation; the practical CL-DIAM (ApproxDiameter) uses
// CLUSTER directly, as in the paper's Section 5.
//
// Cancellation of ctx is observed at superstep barriers (including inside
// the preliminary CLUSTER run); a cancelled run returns ctx's error.
func Cluster2(ctx context.Context, g *graph.Graph, opts Options) (*Cluster2Result, error) {
	o := opts.withDefaults(g)
	e := o.Engine.Bind(ctx)
	n := g.NumNodes()
	if n == 0 {
		return &Cluster2Result{Clustering: &Clustering{Metrics: e.GlobalSnapshot()}}, nil
	}
	before := e.GlobalSnapshot()

	// The preliminary run only calibrates R_CL; suppress its progress so
	// observers see a single monotone coverage series for the main pass.
	preOpts := o
	preOpts.Progress = nil
	pre, err := Cluster(ctx, g, preOpts)
	if err != nil {
		return nil, err
	}
	rcl := pre.Radius
	if rcl <= 0 {
		// Degenerate decomposition (e.g. every node a singleton): fall
		// back to the average weight so growth is still possible.
		rcl = g.AvgEdgeWeight()
		if rcl <= 0 {
			rcl = 1
		}
	}
	threshold := 2 * rcl

	st := newGrowState(g, e)
	iterations := int(math.Ceil(log2n(n)))
	if iterations < 1 {
		iterations = 1
	}
	uncovered := n
	var growingSteps int64
	stage := 0
	for ; stage < iterations && uncovered > 0; stage++ {
		p := math.Pow(2, float64(stage+1)) / float64(n)
		if stage == iterations-1 {
			p = 1 // final iteration selects every uncovered node (paper)
		}
		newCenters := st.selectCenters(o.Seed+1, stage, p)
		st.beginStageProxies(stage, true, threshold)
		st.reseedFrontier()
		reached := newCenters
		for {
			changed, newly := st.growStep(threshold, stage)
			if err := e.Err(); err != nil {
				return nil, err
			}
			growingSteps++
			reached += int(newly)
			if !changed {
				break
			}
		}
		covered := st.finishStage(stage)
		uncovered -= covered
		o.Progress.emit("cluster", stage+1, threshold, n-uncovered, n,
			diff(before, e.GlobalSnapshot()))
	}
	if uncovered > 0 {
		// Unreachable leftovers (disconnected inputs): singletons.
		st.coverSingletons(stage)
		stage++
	}
	st.syncResult()
	after := e.GlobalSnapshot()
	if err := e.Err(); err != nil {
		return nil, err
	}

	c := buildClustering(st, stage, threshold, growingSteps, diff(before, after))
	o.Progress.emit("cluster", stage, threshold, n, n, c.Metrics)
	return &Cluster2Result{Clustering: c, RCL: rcl}, nil
}
