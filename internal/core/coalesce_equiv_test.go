package core

import (
	"context"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
)

// TestClusterCoalescingEquivalence is the acceptance test of sender-side
// message coalescing: with coalescing on and off, CLUSTER, CLUSTER2 and the
// weight-oblivious decomposition must produce identical Center/Dist arrays
// AND identical metric snapshots (rounds, logical messages, updates), at
// several worker counts.
func TestClusterCoalescingEquivalence(t *testing.T) {
	type variant struct {
		name string
		run  func(o Options) (*Clustering, error)
	}
	variants := []variant{
		{"cluster", func(o Options) (*Clustering, error) {
			return Cluster(context.Background(), testGraphCoalesce, o)
		}},
		{"cluster2", func(o Options) (*Clustering, error) {
			c2, err := Cluster2(context.Background(), testGraphCoalesce, o)
			if err != nil {
				return nil, err
			}
			return c2.Clustering, nil
		}},
		{"unweighted", func(o Options) (*Clustering, error) {
			return ClusterUnweighted(context.Background(), testGraphCoalesce, o)
		}},
	}
	defer func() { coalesceMessages = true }()
	for _, v := range variants {
		for _, workers := range []int{1, 3, 8} {
			run := func(coalesce bool) *Clustering {
				coalesceMessages = coalesce
				e := bsp.New(workers)
				defer e.Close()
				cl, err := v.run(Options{Tau: 8, Seed: 5, Engine: e})
				if err != nil {
					t.Fatalf("%s workers=%d coalesce=%t: %v", v.name, workers, coalesce, err)
				}
				return cl
			}
			on := run(true)
			off := run(false)
			if on.Metrics != off.Metrics {
				t.Fatalf("%s workers=%d: metrics differ: coalesced %+v vs uncoalesced %+v",
					v.name, workers, on.Metrics, off.Metrics)
			}
			for u := range on.Center {
				if on.Center[u] != off.Center[u] {
					t.Fatalf("%s workers=%d: center[%d] %d vs %d",
						v.name, workers, u, on.Center[u], off.Center[u])
				}
				if on.Dist[u] != off.Dist[u] {
					t.Fatalf("%s workers=%d: dist[%d] %v vs %v",
						v.name, workers, u, on.Dist[u], off.Dist[u])
				}
			}
			if on.Radius != off.Radius || on.Stages != off.Stages {
				t.Fatalf("%s workers=%d: radius/stages differ", v.name, workers)
			}
		}
	}
}

// testGraphCoalesce is the shared instance of the equivalence test: a road
// network is the topology where Δ-growing generates the densest bursts of
// competing candidates per target.
var testGraphCoalesce = gen.RoadNetwork(gen.DefaultRoadNetworkOptions(24), rng.New(123))
