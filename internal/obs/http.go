package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics is the per-route serving bundle shared by graphdiamd and
// graphdiamlb: request counts, latency histograms, an in-flight gauge,
// and per-tenant throttle counts. A nil *HTTPMetrics is a valid no-op —
// callers instrument unconditionally and wiring decides.
type HTTPMetrics struct {
	requests  *CounterVec   // route, method, code
	seconds   *HistogramVec // route
	inflight  *Gauge
	throttled *CounterVec // tenant
}

// NewHTTPMetrics registers the graphdiam_http_* family on r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec("graphdiam_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"route", "method", "code"),
		seconds: r.HistogramVec("graphdiam_http_request_seconds",
			"HTTP request latency by route pattern.", DefBuckets, "route"),
		inflight: r.Gauge("graphdiam_http_inflight",
			"Requests currently being served."),
		throttled: r.CounterVec("graphdiam_http_throttled_total",
			"Requests rejected 429 by the per-tenant token bucket.", "tenant"),
	}
}

// Begin marks a request in flight; the returned func observes the
// terminal status and latency. Usage: done := m.Begin(); ... done(route, method, code).
func (m *HTTPMetrics) Begin() func(route, method string, code int) {
	if m == nil {
		return func(string, string, int) {}
	}
	m.inflight.Inc()
	start := time.Now()
	return func(route, method string, code int) {
		m.inflight.Dec()
		m.requests.With(route, method, strconv.Itoa(code)).Inc()
		m.seconds.With(route).ObserveDuration(time.Since(start))
	}
}

// Throttled counts one 429 for the tenant.
func (m *HTTPMetrics) Throttled(tenant string) {
	if m == nil {
		return
	}
	m.throttled.With(tenant).Inc()
}

// StatusRecorder wraps a ResponseWriter to capture the status code while
// passing Flush through — the SSE job-events stream type-asserts
// http.Flusher on the writer it is handed, so the wrapper must keep
// satisfying it.
type StatusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WrapWriter returns w wrapped for status capture.
func WrapWriter(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// WriteHeader records the first status code written.
func (r *StatusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write implies 200 on first write without an explicit header.
func (r *StatusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.code = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Code reports the status written, defaulting to 200 for handlers that
// never wrote (a bare return after hijack-free success).
func (r *StatusRecorder) Code() int {
	if !r.wrote {
		return http.StatusOK
	}
	return r.code
}
