package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition validates text-format 0.0.4 line by line and returns
// the sample values keyed by full sample name (metric + label string).
// It fails the test on any malformed line, out-of-order TYPE/HELP, or a
// sample appearing before its family's TYPE.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string) // family -> type
	var lastFamily string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			typed[fields[0]] = fields[1]
			if fields[0] < lastFamily {
				t.Fatalf("line %d: families not sorted: %s after %s", ln+1, fields[0], lastFamily)
			}
			lastFamily = fields[0]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name{labels} value
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
		}
		if !validName(name) {
			t.Fatalf("line %d: invalid sample name %q", ln+1, name)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			if _, ok := typed[name]; !ok {
				t.Fatalf("line %d: sample %q before its TYPE", ln+1, name)
			}
		}
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value on %q", ln+1, line)
		}
		key, valText := rest[:sp], rest[sp+1:]
		var v float64
		switch valText {
		case "+Inf", "-Inf", "NaN":
			t.Fatalf("line %d: non-finite sample value %q", ln+1, line)
		default:
			f, err := strconv.ParseFloat(valText, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valText, err)
			}
			v = f
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = v
	}
	return samples
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	cv := r.CounterVec("test_hits_total", "Hits by tier.", "tier")
	g := r.Gauge("test_depth", "Queue depth.")
	r.GaugeFunc("test_sampled", "Sampled at scrape.", func() float64 { return 42 })
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	hv := r.HistogramVec("test_phase_seconds", "Phase latency.", nil, "phase")

	c.Add(3)
	c.Inc()
	cv.With("local").Inc()
	cv.With("fleet").Add(2)
	cv.With(`we"ird\label` + "\n").Inc()
	g.Set(7.5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	hv.With("warm").ObserveDuration(250 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parseExposition(t, b.String())

	want := map[string]float64{
		"test_ops_total":                                    4,
		`test_hits_total{tier="local"}`:                     1,
		`test_hits_total{tier="fleet"}`:                     2,
		"test_depth":                                        7.5,
		"test_sampled":                                      42,
		`test_seconds_bucket{le="0.1"}`:                     1,
		`test_seconds_bucket{le="1"}`:                       2,
		`test_seconds_bucket{le="10"}`:                      2,
		`test_seconds_bucket{le="+Inf"}`:                    3,
		"test_seconds_count":                                3,
		`test_phase_seconds_count{phase="warm"}`:            1,
		`test_phase_seconds_bucket{phase="warm",le="+Inf"}`: 1,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok {
			t.Errorf("missing sample %s", k)
		} else if got != v {
			t.Errorf("sample %s = %v, want %v", k, got, v)
		}
	}
	if got := samples["test_seconds_sum"]; got < 100.5 || got > 100.6 {
		t.Errorf("test_seconds_sum = %v, want ~100.55", got)
	}
	// Escaped label values survive the round trip as escaped text.
	if !strings.Contains(b.String(), `tier="we\"ird\\label\n"`) {
		t.Errorf("label escaping missing from exposition:\n%s", b.String())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "h", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 2.0} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	samples := parseExposition(t, b.String())
	// Cumulative le buckets must be non-decreasing and end at _count.
	prev := -1.0
	for _, le := range []string{"1", "2", "3", "+Inf"} {
		v, ok := samples[`test_h_bucket{le="`+le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v < prev {
			t.Fatalf("bucket le=%s (%v) decreased below %v", le, v, prev)
		}
		prev = v
	}
	if samples["test_h_count"] != 5 || prev != 5 {
		t.Fatalf("count=%v, +Inf=%v, want 5", samples["test_h_count"], prev)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	c.Add(5)
	c.Add(-3) // dropped: counters only go up
	if c.Value() != 5 {
		t.Fatalf("negative Add mutated counter: %d", c.Value())
	}
}

func TestVecIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_total", "t", "a", "b")
	c1 := cv.With("x", "y")
	c2 := cv.With("x", "y")
	c3 := cv.With("x", "z")
	if c1 != c2 {
		t.Fatal("same label values returned distinct counters")
	}
	if c1 == c3 {
		t.Fatal("distinct label values returned the same counter")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("test_total", "t")
	mustPanic("duplicate", func() { r.Counter("test_total", "t") })
	mustPanic("invalid name", func() { r.Counter("9bad", "t") })
	mustPanic("reserved le label", func() { r.HistogramVec("test_h", "t", nil, "le") })
	mustPanic("unsorted buckets", func() { r.Histogram("test_h2", "t", []float64{2, 1}) })
	mustPanic("label arity", func() { r.CounterVec("test_v", "t", "a").With("x", "y") })
}

// TestConcurrentScrape hammers every metric type from many goroutines
// while scraping in a loop — the race detector (CI runs -race) proves the
// registry is scrape-safe during live traffic, and every intermediate
// scrape must be internally consistent (+Inf bucket == _count).
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	c := r.Counter("test_ops_total", "t")
	cv := r.CounterVec("test_hits_total", "t", "tier")
	g := r.Gauge("test_depth", "t")
	h := r.Histogram("test_seconds", "t", FastBuckets)
	hv := r.HistogramVec("test_phase_seconds", "t", nil, "phase")

	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			tier := []string{"local", "fleet_raw", "fleet_probe"}[wkr%3]
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(tier).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) * 1e-6)
				hv.With("warm").Observe(0.01)
			}
		}(wkr)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape failed: %v", err)
				return
			}
			samples := parseExposition(t, b.String())
			if inf, cnt := samples[`test_seconds_bucket{le="+Inf"}`], samples["test_seconds_count"]; inf != cnt {
				t.Errorf("scrape inconsistency: +Inf bucket %v != _count %v", inf, cnt)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scrapeDone
	if c.Value() != writers*iters {
		t.Fatalf("lost increments: %d, want %d", c.Value(), writers*iters)
	}
	if h.Count() != writers*iters {
		t.Fatalf("lost observations: %d, want %d", h.Count(), writers*iters)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "t").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
