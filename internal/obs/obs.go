// Package obs is the repo's zero-dependency observability layer: typed
// counters, gauges, and fixed-bucket histograms in a race-clean registry
// with Prometheus text exposition (format 0.0.4) served over HTTP.
//
// Everything is stdlib-only on purpose — go.mod has no dependencies and
// this package keeps it that way. The API mirrors the small useful core
// of prometheus/client_golang: construct metrics through a *Registry,
// hold the returned handle, and mutate it on the hot path with a single
// atomic op. Exposition walks the registry under short locks and reads
// every value atomically, so scraping during live BSP jobs is safe under
// the race detector.
//
// Conventions (enforced socially, documented in DESIGN.md):
//   - metric names carry the graphdiam_ prefix except the go_* runtime
//     family;
//   - label cardinality must be bounded: dataset names and route
//     patterns are fine, request ids and raw URLs never;
//   - counters only go up — restarts are the only reset.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets covers request-scale latencies (5ms .. 10s), matching the
// Prometheus client default so dashboards port over unchanged.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// FastBuckets covers engine-scale latencies (1µs .. 1s): superstep
// compute, barrier waits, and in-process collectives live far below the
// request buckets' floor.
var FastBuckets = []float64{1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, .25, 1}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing integer. The zero value is ready
// to use, but counters should be created through a Registry so they are
// scraped.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are dropped to preserve monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value that can move both ways.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop (safe from any goroutine).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. All
// mutation is atomic; exposition derives _count from the bucket counts
// so every scrape is internally consistent (+Inf bucket == _count).
type Histogram struct {
	bounds  []float64      // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// child is one labeled series inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
}

// family is one named metric with a fixed label schema and a child per
// distinct label-value tuple.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*child
	order    []*child
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	gather   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnGather registers a hook run at the start of every scrape, before
// values are read — the seam for sampled sources (runtime stats, queue
// depths) that are cheaper to refresh per scrape than per event.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gather = append(r.gather, fn)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register creates a family or panics on misuse (duplicate or invalid
// names are programmer errors, caught at process start).
func (r *Registry) register(name, help string, typ metricType, bounds []float64, labels []string) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic("obs: invalid label name " + strconv.Quote(l) + " on " + name)
		}
	}
	if typ == typeHistogram {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic("obs: histogram buckets for " + name + " are not sorted")
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		bounds:   bounds,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric registration " + name)
	}
	r.families[name] = f
	return f
}

// childFor returns (creating on first use) the series for the given
// label values.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		c.counter = &Counter{}
	case typeGauge:
		c.gauge = &Gauge{}
	case typeHistogram:
		c.hist = &Histogram{
			bounds:  f.bounds,
			buckets: make([]atomic.Int64, len(f.bounds)+1),
		}
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).childFor(nil).counter
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, nil, labels)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.childFor(values).counter
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).childFor(nil).gauge
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, nil, labels)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.childFor(values).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil, nil)
	c := f.childFor(nil)
	c.gauge = nil
	c.gaugeFn = fn
}

// Histogram registers an unlabeled histogram; nil buckets selects
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, buckets, nil).childFor(nil).hist
}

// HistogramVec registers a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, buckets, labels)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.childFor(values).hist
}

// --- exposition ---

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} with extra appended last (used for
// the histogram le label); empty when there are no pairs.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	kids := append([]*child(nil), f.order...)
	f.mu.RUnlock()
	if len(kids) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range kids {
		ls := labelString(f.labels, c.labelValues)
		switch f.typ {
		case typeCounter:
			b.WriteString(f.name)
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(c.counter.Value(), 10))
			b.WriteByte('\n')
		case typeGauge:
			v := 0.0
			if c.gaugeFn != nil {
				v = c.gaugeFn()
			} else {
				v = c.gauge.Value()
			}
			b.WriteString(f.name)
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		case typeHistogram:
			h := c.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				b.WriteString(labelString(f.labels, c.labelValues, "le", formatFloat(bound)))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(cum, 10))
				b.WriteByte('\n')
			}
			cum += h.buckets[len(h.bounds)].Load()
			b.WriteString(f.name)
			b.WriteString("_bucket")
			b.WriteString(labelString(f.labels, c.labelValues, "le", "+Inf"))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')

			b.WriteString(f.name)
			b.WriteString("_sum")
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(formatFloat(h.Sum()))
			b.WriteByte('\n')

			b.WriteString(f.name)
			b.WriteString("_count")
			b.WriteString(ls)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
	}
}

// WritePrometheus renders the full registry in text exposition format
// 0.0.4, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	hooks := append([]func(){}, r.gather...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at GET /metrics with the standard
// text-format content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// RegisterRuntimeMetrics adds the go_* process family: goroutine count,
// heap usage, and GC activity, sampled once per scrape via a gather hook
// (runtime.ReadMemStats briefly stops the world — per scrape, not per
// event, keeps that off every hot path).
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles since process start.")
	gcPause := r.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	r.OnGather(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}
