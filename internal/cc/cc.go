// Package cc computes connected components of undirected graphs.
//
// The paper defines the diameter of a disconnected graph as the largest
// distance within a component, and all generators here extract the largest
// component of their raw output, so component extraction is a core
// substrate. Two implementations are provided: a sequential BFS labelling
// and a union-find (used by the generators, which know edges before the CSR
// graph exists).
package cc

import (
	"graphdiam/internal/graph"
)

// Components labels every node with a component ID in [0, #components) and
// returns the label array together with the component count. Labels are
// assigned in order of the smallest node ID in each component.
func Components(g *graph.Graph) ([]int32, int) {
	n := g.NumNodes()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	next := int32(0)
	queue := make([]graph.NodeID, 0, 1024)
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], graph.NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ts, _ := g.Neighbors(u)
			for _, v := range ts {
				if label[v] < 0 {
					label[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return label, int(next)
}

// LargestComponent returns the induced subgraph of g's largest connected
// component and the mapping from new node IDs to original IDs. If g is
// connected it still returns a (renumbered) copy; callers that want to avoid
// the copy should check IsConnected first.
func LargestComponent(g *graph.Graph) (*graph.Graph, []graph.NodeID) {
	label, k := Components(g)
	if k == 0 {
		return g, nil
	}
	sizes := make([]int, k)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	keep := make([]graph.NodeID, 0, sizes[best])
	for u, l := range label {
		if int(l) == best {
			keep = append(keep, graph.NodeID(u))
		}
	}
	return g.Subgraph(keep)
}

// IsConnected reports whether g has exactly one connected component.
// The empty graph is considered connected.
func IsConnected(g *graph.Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, k := Components(g)
	return k == 1
}

// UnionFind is a disjoint-set structure with union by rank and path
// halving. It operates on dense integer IDs.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	p := uf.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets of x and y, returning true if they were distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }
