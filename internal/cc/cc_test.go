package cc

import (
	"testing"
	"testing/quick"

	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// twoTriangles returns two disjoint triangles {0,1,2} and {3,4,5} plus an
// isolated node 6.
func twoTriangles() *graph.Graph {
	b := graph.NewBuilder(7, 6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 3, 1)
	return b.Build()
}

func TestComponents(t *testing.T) {
	g := twoTriangles()
	label, k := Components(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatalf("first triangle split: %v", label[:3])
	}
	if label[3] != label[4] || label[4] != label[5] {
		t.Fatalf("second triangle split: %v", label[3:6])
	}
	if label[0] == label[3] || label[0] == label[6] || label[3] == label[6] {
		t.Fatalf("components merged: %v", label)
	}
}

func TestIsConnected(t *testing.T) {
	if IsConnected(twoTriangles()) {
		t.Fatal("disconnected graph reported connected")
	}
	b := graph.NewBuilder(3, 2)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	if !IsConnected(b.Build()) {
		t.Fatal("path reported disconnected")
	}
	if !IsConnected(graph.NewBuilder(0, 0).Build()) {
		t.Fatal("empty graph should be connected")
	}
	if IsConnected(graph.NewBuilder(2, 0).Build()) {
		t.Fatal("two isolated nodes reported connected")
	}
}

func TestLargestComponent(t *testing.T) {
	// Triangle {0,1,2} and a larger path {3,4,5,6}.
	b := graph.NewBuilder(7, 6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(3, 4, 2)
	b.AddEdge(4, 5, 2)
	b.AddEdge(5, 6, 2)
	g := b.Build()
	sub, orig := LargestComponent(g)
	if sub.NumNodes() != 4 {
		t.Fatalf("largest component size = %d, want 4", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("largest component edges = %d, want 3", sub.NumEdges())
	}
	want := []graph.NodeID{3, 4, 5, 6}
	for i, o := range orig {
		if o != want[i] {
			t.Fatalf("orig = %v, want %v", orig, want)
		}
	}
	if !IsConnected(sub) {
		t.Fatal("extracted component not connected")
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("Count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if uf.Count() != 3 {
		t.Fatalf("Count = %d, want 3", uf.Count())
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Fatal("Same mismatch")
	}
}

// Property: union-find component count must agree with BFS component count
// on random graphs.
func TestUnionFindAgreesWithBFS(t *testing.T) {
	check := func(seed uint64, nEdges uint8) bool {
		r := rng.New(seed)
		const n = 24
		b := graph.NewBuilder(n, int(nEdges))
		uf := NewUnionFind(n)
		for i := 0; i < int(nEdges); i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
			uf.Union(u, v)
		}
		_, k := Components(b.Build())
		return k == uf.Count()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkComponents(b *testing.B) {
	r := rng.New(1)
	const n, m = 1 << 15, 1 << 16
	bld := graph.NewBuilder(n, m)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			bld.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
		}
	}
	g := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g)
	}
}
