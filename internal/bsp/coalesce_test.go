package bsp

import (
	"math/rand"
	"testing"
)

type testMsg struct {
	node int32
	val  float64
}

func lessTestMsg(a, b testMsg) bool { return a.val < b.val }

// TestCoalescingKeepsPrefixMinimaChain: per (sender, node), exactly the
// strictly-improving prefix of the candidate stream is physically enqueued,
// in send order.
func TestCoalescingKeepsPrefixMinimaChain(t *testing.T) {
	m := NewCoalescingMailboxes[testMsg](2, 4, lessTestMsg)
	m.BeginSend(0)
	for _, v := range []float64{5, 7, 5, 3, 3, 4, 1} {
		m.Send(0, 1, 2, testMsg{2, v})
	}
	var got []float64
	m.Recv(1, func(msg testMsg) { got = append(got, msg.val) })
	want := []float64{5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
}

// TestCoalescingResetsPerSuperstep: BeginSend forgets the previous step's
// minima, so the first candidate of a new step is always delivered.
func TestCoalescingResetsPerSuperstep(t *testing.T) {
	m := NewCoalescingMailboxes[testMsg](1, 2, lessTestMsg)
	m.BeginSend(0)
	m.Send(0, 0, 1, testMsg{1, 2})
	m.ClearTo(0)
	m.BeginSend(0)
	m.Send(0, 0, 1, testMsg{1, 9}) // worse than last step's 2, still fresh
	count := 0
	m.Recv(0, func(testMsg) { count++ })
	if count != 1 {
		t.Fatalf("fresh superstep delivered %d messages, want 1", count)
	}
}

// TestCoalescingEquivalentReceiverOutcome is the randomized equivalence
// property behind the metric identity: a receiver applying strict-minimum
// updates sees the same number of applied updates and the same final value
// from the coalesced stream as from the full stream.
func TestCoalescingEquivalentReceiverOutcome(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const nodes = 32
	for trial := 0; trial < 200; trial++ {
		co := NewCoalescingMailboxes[testMsg](1, nodes, lessTestMsg)
		plain := NewMailboxes[testMsg](1)
		co.BeginSend(0)
		for k := 0; k < 300; k++ {
			msg := testMsg{int32(r.Intn(nodes)), float64(r.Intn(40))}
			co.Send(0, 0, msg.node, msg)
			plain.Send(0, 0, msg)
		}
		apply := func(recv func(int, func(testMsg))) ([]float64, int) {
			state := make([]float64, nodes)
			for i := range state {
				state[i] = 1e18
			}
			applied := 0
			recv(0, func(m testMsg) {
				if m.val < state[m.node] {
					state[m.node] = m.val
					applied++
				}
			})
			return state, applied
		}
		coState, coApplied := apply(co.Recv)
		plState, plApplied := apply(plain.Recv)
		if coApplied != plApplied {
			t.Fatalf("trial %d: applied %d coalesced vs %d plain", trial, coApplied, plApplied)
		}
		for i := range coState {
			if coState[i] != plState[i] {
				t.Fatalf("trial %d: node %d state %v vs %v", trial, i, coState[i], plState[i])
			}
		}
		if co.Count() > plain.Count() {
			t.Fatalf("trial %d: coalescing grew traffic (%d > %d)", trial, co.Count(), plain.Count())
		}
	}
}

// TestCoalescingPassthrough: passthrough mode forwards every message,
// byte-identical to plain mailboxes.
func TestCoalescingPassthrough(t *testing.T) {
	m := NewCoalescingMailboxes[testMsg](1, 2, lessTestMsg)
	m.SetPassthrough(true)
	m.BeginSend(0)
	for _, v := range []float64{5, 7, 5} {
		m.Send(0, 0, 1, testMsg{1, v})
	}
	if m.Count() != 3 {
		t.Fatalf("passthrough delivered %d, want 3", m.Count())
	}
}
