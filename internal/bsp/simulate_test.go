package bsp

import (
	"testing"
	"time"
)

func TestSimulatedVisitsEachOnce(t *testing.T) {
	e := NewSimulated(4)
	const n = 100
	visits := make([]int, n)
	e.ParallelFor(n, func(_, start, end int) {
		for i := start; i < end; i++ {
			visits[i]++
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("item %d visited %d times", i, v)
		}
	}
}

func TestSimulatedCriticalPathAccumulates(t *testing.T) {
	e := NewSimulated(2)
	if e.CriticalPath() != 0 {
		t.Fatal("fresh engine has nonzero critical path")
	}
	e.ParallelFor(2, func(w, _, _ int) {
		time.Sleep(2 * time.Millisecond)
	})
	cp := e.CriticalPath()
	// Max of two ~2ms workers: at least 2ms, well below the 4ms serial sum
	// plus generous scheduling slack.
	if cp < 2*time.Millisecond {
		t.Fatalf("critical path %v below single worker time", cp)
	}
	e.ResetCriticalPath()
	if e.CriticalPath() != 0 {
		t.Fatal("ResetCriticalPath did not zero the accumulator")
	}
}

func TestSimulatedCriticalPathScalesDown(t *testing.T) {
	// A perfectly parallel workload's critical path must shrink with more
	// workers (this is what backs the Figure 4 reproduction).
	work := func(e *Engine) time.Duration {
		best := time.Duration(1<<62 - 1)
		const n = 1 << 22
		data := make([]float64, n)
		for attempt := 0; attempt < 3; attempt++ { // best-of-3 against noise
			e.ResetCriticalPath()
			for rep := 0; rep < 4; rep++ {
				e.ParallelFor(n, func(_, start, end int) {
					for i := start; i < end; i++ {
						data[i] += float64(i)
					}
				})
			}
			if cp := e.CriticalPath(); cp < best {
				best = cp
			}
		}
		return best
	}
	t1 := work(NewSimulated(1))
	t8 := work(NewSimulated(8))
	if t8*2 > t1 {
		t.Fatalf("8-worker critical path %v not well below 1-worker %v", t8, t1)
	}
}

func TestSimulatedMatchesConcurrentResults(t *testing.T) {
	// The simulated engine must produce identical algorithmic results to
	// the concurrent one (sequential execution is just a schedule).
	sum := func(e *Engine) int {
		return e.ReduceInt(1000, func(_, start, end int) int {
			s := 0
			for i := start; i < end; i++ {
				s += i
			}
			return s
		})
	}
	if a, b := sum(New(4)), sum(NewSimulated(4)); a != b {
		t.Fatalf("results differ: %d vs %d", a, b)
	}
}
