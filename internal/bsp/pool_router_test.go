package bsp

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRouterMatchesOwner is the property test of the O(1) owner lookup:
// over a randomized sweep of (n, P) configurations, Router.Owner must agree
// with the division-based Engine.Owner for every item — including the
// per==0, per==1 (unit-range) and power-of-two divisor corners of the
// reciprocal scheme.
func TestRouterMatchesOwner(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	check := func(n, workers int) {
		t.Helper()
		e := New(workers)
		router := e.Router(n)
		// Exhaustive for small n, sampled for large.
		if n <= 4096 {
			for i := 0; i < n; i++ {
				if got, want := router.Owner(uint32(i)), e.Owner(n, i); got != want {
					t.Fatalf("n=%d P=%d i=%d: Router.Owner=%d Owner=%d", n, workers, i, got, want)
				}
			}
			return
		}
		for k := 0; k < 2000; k++ {
			i := r.Intn(n)
			if got, want := router.Owner(uint32(i)), e.Owner(n, i); got != want {
				t.Fatalf("n=%d P=%d i=%d: Router.Owner=%d Owner=%d", n, workers, i, got, want)
			}
		}
		// Always probe partition boundaries, the off-by-one hot spots.
		for w := 0; w < workers; w++ {
			start, end := e.Partition(n, w)
			for _, i := range []int{start, end - 1} {
				if i < 0 || i >= n {
					continue
				}
				if got := router.Owner(uint32(i)); got != w {
					t.Fatalf("n=%d P=%d boundary i=%d: Router.Owner=%d want %d", n, workers, i, got, w)
				}
			}
		}
	}
	// Deterministic corner configurations.
	for _, n := range []int{1, 2, 3, 7, 15, 16, 17, 64, 100, 1023, 1024, 1025} {
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 15, 16, 63, 64} {
			check(n, workers)
		}
	}
	// Randomized sweep, including very large n (reciprocal range stress).
	for k := 0; k < 200; k++ {
		n := 1 + r.Intn(1<<20)
		if k%5 == 0 {
			n = 1 + r.Intn(1<<30)
		}
		check(n, 1+r.Intn(64))
	}
}

// TestPoolReuseAcrossSupersteps: thousands of dispatches on one engine must
// reuse the persistent pool (goroutine count stays flat) and keep producing
// correct results.
func TestPoolReuseAcrossSupersteps(t *testing.T) {
	e := New(8)
	defer e.Close()
	const n = 512
	data := make([]int64, n)
	e.ParallelFor(n, func(_, start, end int) {}) // warm the pool up
	base := runtime.NumGoroutine()
	for step := 0; step < 2000; step++ {
		e.ParallelFor(n, func(_, start, end int) {
			for i := start; i < end; i++ {
				data[i]++
			}
		})
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across dispatches: %d -> %d", base, now)
	}
	for i, v := range data {
		if v != 2000 {
			t.Fatalf("item %d incremented %d times, want 2000", i, v)
		}
	}
}

// TestEngineCloseReleasesPool: Close drains the worker goroutines, and a
// closed engine still computes correctly via the transient fallback.
func TestEngineCloseReleasesPool(t *testing.T) {
	// Let goroutines from earlier tests drain so the baseline is stable.
	base := runtime.NumGoroutine()
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
		if now := runtime.NumGoroutine(); now < base {
			base = now
		} else {
			break
		}
	}
	e := New(6)
	e.ParallelFor(100, func(_, _, _ int) {})
	if now := runtime.NumGoroutine(); now < base+5 {
		t.Fatalf("pool not started: %d goroutines vs %d baseline", now, base)
	}
	e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base+1 {
		t.Fatalf("pool did not drain after Close: %d vs %d baseline", now, base)
	}
	e.Close() // idempotent
	var visits atomic.Int64
	e.ParallelFor(100, func(_, start, end int) { visits.Add(int64(end - start)) })
	if visits.Load() != 100 {
		t.Fatalf("closed engine visited %d items, want 100", visits.Load())
	}
}

// TestConcurrentEnginesIndependentPools: distinct engines dispatch
// concurrently without interference — the store runs concurrent jobs on
// exactly this pattern.
func TestConcurrentEnginesIndependentPools(t *testing.T) {
	const n = 4096
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			e := New(4)
			defer e.Close()
			sum := make([]int64, n)
			for round := 0; round < 200; round++ {
				e.ParallelFor(n, func(_, start, end int) {
					for i := start; i < end; i++ {
						sum[i]++
					}
				})
			}
			for i, v := range sum {
				if v != 200 {
					t.Errorf("engine %d: item %d = %d, want 200", k, i, v)
					return
				}
			}
		}(k)
	}
	wg.Wait()
}
