package bsp

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartitionCoversRange(t *testing.T) {
	check := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw) % 1000
		workers := int(wRaw)%16 + 1
		e := New(workers)
		covered := 0
		prevEnd := 0
		for w := 0; w < workers; w++ {
			start, end := e.Partition(n, w)
			if start != prevEnd || end < start {
				return false
			}
			covered += end - start
			prevEnd = end
		}
		return covered == n && prevEnd == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalanced(t *testing.T) {
	e := New(7)
	n := 100
	minSize, maxSize := n, 0
	for w := 0; w < 7; w++ {
		s, en := e.Partition(n, w)
		size := en - s
		if size < minSize {
			minSize = size
		}
		if size > maxSize {
			maxSize = size
		}
	}
	if maxSize-minSize > 1 {
		t.Fatalf("partition imbalance: min=%d max=%d", minSize, maxSize)
	}
}

func TestOwnerConsistentWithPartition(t *testing.T) {
	check := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw)%500 + 1
		workers := int(wRaw)%16 + 1
		e := New(workers)
		for w := 0; w < workers; w++ {
			start, end := e.Partition(n, w)
			for i := start; i < end; i++ {
				if e.Owner(n, i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForVisitsEachOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		e := New(workers)
		const n = 1000
		visits := make([]int32, n)
		e.ParallelFor(n, func(_, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestSuperstepCountsRounds(t *testing.T) {
	e := New(4)
	for i := 0; i < 5; i++ {
		e.Superstep(100, func(_, _, _ int) {})
	}
	if got := e.Metrics().Snapshot().Rounds; got != 5 {
		t.Fatalf("rounds = %d, want 5", got)
	}
	e.Metrics().Reset()
	if got := e.Metrics().Snapshot().Rounds; got != 0 {
		t.Fatalf("rounds after reset = %d", got)
	}
}

func TestMetricsConcurrentAccumulation(t *testing.T) {
	e := New(8)
	e.Superstep(10000, func(_, start, end int) {
		e.Metrics().AddUpdates(int64(end - start))
		e.Metrics().AddMessages(2 * int64(end-start))
	})
	s := e.Metrics().Snapshot()
	if s.Updates != 10000 || s.Messages != 20000 {
		t.Fatalf("metrics lost updates: %+v", s)
	}
	if s.Work() != 30000 {
		t.Fatalf("Work = %d, want 30000", s.Work())
	}
}

func TestReduceFloat64Max(t *testing.T) {
	e := New(4)
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := e.ReduceFloat64(len(vals), func(_, start, end int) float64 {
		m := math.Inf(-1)
		for i := start; i < end; i++ {
			if vals[i] > m {
				m = vals[i]
			}
		}
		return m
	}, math.Max)
	if got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
}

func TestReduceInt(t *testing.T) {
	e := New(3)
	got := e.ReduceInt(100, func(_, start, end int) int { return end - start })
	if got != 100 {
		t.Fatalf("sum of partition sizes = %d, want 100", got)
	}
}

func TestZeroWorkersDefaults(t *testing.T) {
	e := New(0)
	if e.Workers() < 1 {
		t.Fatal("default engine has no workers")
	}
}

func TestEmptyRange(t *testing.T) {
	e := New(4)
	called := int32(0)
	e.ParallelFor(0, func(_, start, end int) {
		if start != end {
			t.Error("non-empty partition of empty range")
		}
		atomic.AddInt32(&called, 1)
	})
	if called != 4 {
		t.Fatalf("workers called %d times, want 4", called)
	}
}

func TestMoreWorkersThanItems(t *testing.T) {
	e := New(8)
	visits := make([]int32, 3)
	e.ParallelFor(3, func(_, start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("item %d visited %d times", i, v)
		}
	}
	// Owner must still be valid for every item.
	for i := 0; i < 3; i++ {
		w := e.Owner(3, i)
		if w < 0 || w >= 8 {
			t.Fatalf("Owner(3,%d) = %d", i, w)
		}
	}
}

func BenchmarkSuperstepOverhead(b *testing.B) {
	e := New(8)
	for i := 0; i < b.N; i++ {
		e.Superstep(1, func(_, _, _ int) {})
	}
}

func BenchmarkParallelForThroughput(b *testing.B) {
	e := New(8)
	const n = 1 << 20
	data := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ParallelFor(n, func(_, start, end int) {
			for j := start; j < end; j++ {
				data[j] += 1
			}
		})
	}
}
