package bsp

import (
	"encoding/binary"
	"fmt"

	"graphdiam/internal/bsp/transport"
)

// WireCodec serializes one mailbox message type for cross-process shipping.
// The frame layout around it is fixed (see encodeFrames); the codec only
// renders individual records.
type WireCodec[T any] struct {
	// MinSize is a lower bound on the encoded size of any record, in bytes.
	// The decoder uses it to reject length-prefix lies up front: a frame
	// claiming more records than the remaining bytes could possibly hold is
	// malformed, and is refused before any allocation proportional to the
	// claimed count (the header-bounds guard).
	MinSize int
	// Append renders msg at the end of buf.
	Append func(buf []byte, msg T) []byte
	// Read decodes one record from the front of data, returning the record
	// and the bytes consumed.
	Read func(data []byte) (msg T, n int, err error)
}

// Frame layout for one peer's shipment, repeated until the blob ends:
//
//	uvarint src | uvarint dst | uvarint count | count records
//
// Empty boxes are omitted; boxes appear in (src, dst) ascending order, so
// the receiver's Recv — which iterates sources in ascending order — applies
// messages in exactly the global sender order of the single-process run.
func encodeFrames[T any](c WireCodec[T], boxes [][][]T, srcLo, srcHi, dstLo, dstHi int) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for src := srcLo; src < srcHi; src++ {
		for dst := dstLo; dst < dstHi; dst++ {
			msgs := boxes[src][dst]
			if len(msgs) == 0 {
				continue
			}
			n := binary.PutUvarint(tmp[:], uint64(src))
			buf = append(buf, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(dst))
			buf = append(buf, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(len(msgs)))
			buf = append(buf, tmp[:n]...)
			for _, m := range msgs {
				buf = c.Append(buf, m)
			}
		}
	}
	return buf
}

// decodeFrames appends the records of blob into boxes, validating that every
// frame's (src, dst) lies in the expected ranges and that no length prefix
// overruns the remaining bytes. Partially decoded frames leave boxes in an
// unspecified state; callers treat any error as terminal for the run.
func decodeFrames[T any](c WireCodec[T], blob []byte, boxes [][][]T, srcLo, srcHi, dstLo, dstHi int) error {
	minSize := c.MinSize
	if minSize < 1 {
		minSize = 1
	}
	pos := 0
	for pos < len(blob) {
		src, n := binary.Uvarint(blob[pos:])
		if n <= 0 {
			return fmt.Errorf("truncated src at byte %d", pos)
		}
		pos += n
		dst, n := binary.Uvarint(blob[pos:])
		if n <= 0 {
			return fmt.Errorf("truncated dst at byte %d", pos)
		}
		pos += n
		count, n := binary.Uvarint(blob[pos:])
		if n <= 0 {
			return fmt.Errorf("truncated count at byte %d", pos)
		}
		pos += n
		if src < uint64(srcLo) || src >= uint64(srcHi) {
			return fmt.Errorf("frame src %d outside sender's workers [%d, %d)", src, srcLo, srcHi)
		}
		if dst < uint64(dstLo) || dst >= uint64(dstHi) {
			return fmt.Errorf("frame dst %d outside receiver's workers [%d, %d)", dst, dstLo, dstHi)
		}
		if count > uint64(len(blob)-pos)/uint64(minSize) {
			return fmt.Errorf("frame claims %d records but only %d bytes remain", count, len(blob)-pos)
		}
		box := boxes[src][dst]
		for i := uint64(0); i < count; i++ {
			msg, n, err := c.Read(blob[pos:])
			if err != nil {
				return fmt.Errorf("record %d of frame %d→%d: %w", i, src, dst, err)
			}
			box = append(box, msg)
			pos += n
		}
		boxes[src][dst] = box
	}
	return nil
}

// ExchangeMailboxes ships the cross-peer boxes of m through the engine's
// transport: every box written by an owned worker to a remote peer's worker
// is encoded, exchanged at a barrier, and the inbound frames are decoded
// into the remote-sender rows of m — after which Recv on an owned worker
// sees exactly the messages (and the sender order) a single-process run
// would. A no-op returning nil for single-process engines; call it between
// the send and apply halves of a superstep.
//
// On error the run is over: the error is also sticky in the engine (Err()),
// so drivers that only check Err() at superstep boundaries stay correct.
func ExchangeMailboxes[T any](e *Engine, m *Mailboxes[T], c WireCodec[T]) error {
	d := e.dist
	if d == nil {
		return nil
	}
	if d.err != nil {
		return d.err
	}
	out := make([][]byte, d.peers)
	for q := 0; q < d.peers; q++ {
		if q == d.rank {
			continue
		}
		ql, qh := d.ranges[q][0], d.ranges[q][1]
		out[q] = encodeFrames(c, m.boxes, d.ownLo, d.ownHi, ql, qh)
		// Shipped boxes are the remote owner's to apply; truncate them so
		// they are neither re-shipped next superstep nor left to grow.
		for src := d.ownLo; src < d.ownHi; src++ {
			for dst := ql; dst < qh; dst++ {
				m.boxes[src][dst] = m.boxes[src][dst][:0]
			}
		}
	}
	in, err := d.netStep(out)
	if err != nil {
		return err
	}
	for q := 0; q < d.peers; q++ {
		if q == d.rank || len(in[q]) == 0 {
			continue
		}
		ql, qh := d.ranges[q][0], d.ranges[q][1]
		if err := decodeFrames(c, in[q], m.boxes, ql, qh, d.ownLo, d.ownHi); err != nil {
			return d.fail(transport.ErrProtocol, q, "decode inbound frames: %v", err)
		}
	}
	return nil
}

// ExchangeCoalescing is ExchangeMailboxes for coalescing mailboxes: the
// physical (post-coalescing) boxes are shipped; the sender-side prefix-minima
// chains are per-source state that needs no synchronization.
func ExchangeCoalescing[T any](e *Engine, m *CoalescingMailboxes[T], c WireCodec[T]) error {
	return ExchangeMailboxes(e, m.mb, c)
}
