package bsp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestBindErrAndSkip(t *testing.T) {
	e := New(4)
	if e.Err() != nil {
		t.Fatal("unbound engine must not report an error")
	}
	if e.Context() != context.Background() {
		t.Fatal("unbound engine context must be Background")
	}

	ctx, cancel := context.WithCancel(context.Background())
	if e.Bind(ctx) != e {
		t.Fatal("Bind must return the receiver")
	}
	var ran atomic.Int64
	e.Superstep(8, func(_, _, _ int) { ran.Add(1) })
	if ran.Load() == 0 || e.Err() != nil {
		t.Fatalf("live context: ran=%d err=%v", ran.Load(), e.Err())
	}
	rounds := e.Metrics().Snapshot().Rounds

	cancel()
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err = %v after cancel", e.Err())
	}
	ran.Store(0)
	e.Superstep(8, func(_, _, _ int) { ran.Add(1) })
	e.ParallelFor(8, func(_, _, _ int) { ran.Add(1) })
	if ran.Load() != 0 {
		t.Fatalf("cancelled engine still executed %d worker calls", ran.Load())
	}
	if got := e.Metrics().Snapshot().Rounds; got != rounds {
		t.Fatalf("cancelled superstep was metered: rounds %d -> %d", rounds, got)
	}

	// Rebinding nil restores the never-cancelled engine.
	e.Bind(nil)
	e.Superstep(8, func(_, _, _ int) { ran.Add(1) })
	if ran.Load() == 0 || e.Err() != nil {
		t.Fatalf("rebound engine: ran=%d err=%v", ran.Load(), e.Err())
	}
}

func TestReduceUnderCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(3).Bind(ctx)
	cancel()
	// Reductions on a cancelled engine return zero values without running;
	// algorithms must check Err() before trusting them.
	if v := e.ReduceInt(9, func(_, _, _ int) int { return 1 }); v != 0 {
		t.Fatalf("cancelled ReduceInt = %d", v)
	}
}
