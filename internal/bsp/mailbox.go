package bsp

// Mailboxes is the communication fabric of a BSP superstep: worker-to-worker
// message buffers modelling the shuffle of a MapReduce round. During the
// "send" half of a superstep each worker writes only to its own outboxes
// (Send is lock-free under that discipline); after the barrier each worker
// reads exactly the messages addressed to it (Recv).
type Mailboxes[T any] struct {
	// boxes[src][dst] is the buffer of messages from worker src to dst.
	boxes [][][]T
	// chk asserts the single-writer-per-src discipline when the bspcheck
	// build tag is on; a zero-cost no-op otherwise (see mailcheck_off.go).
	chk mailboxCheck
}

// NewMailboxes returns mailboxes for the given worker count.
func NewMailboxes[T any](workers int) *Mailboxes[T] {
	boxes := make([][][]T, workers)
	for i := range boxes {
		boxes[i] = make([][]T, workers)
	}
	m := &Mailboxes[T]{boxes: boxes}
	m.chk.init(workers)
	return m
}

// Workers returns the number of workers the mailboxes were built for.
func (m *Mailboxes[T]) Workers() int { return len(m.boxes) }

// Send appends msg to the src→dst buffer. It may be called concurrently by
// distinct src workers, but a single src must not be used from two
// goroutines at once.
func (m *Mailboxes[T]) Send(src, dst int, msg T) {
	m.chk.beginSrc(src)
	m.boxes[src][dst] = append(m.boxes[src][dst], msg)
	m.chk.endSrc(src)
}

// Recv invokes fn for every message addressed to dst, in sender order.
// It must only be called after all senders have passed the barrier.
func (m *Mailboxes[T]) Recv(dst int, fn func(T)) {
	for src := range m.boxes {
		for _, msg := range m.boxes[src][dst] {
			fn(msg)
		}
	}
}

// CountTo returns the number of pending messages addressed to dst. Like
// Recv, it must only be called after all senders have passed the barrier.
func (m *Mailboxes[T]) CountTo(dst int) int {
	m.chk.quiesced("CountTo")
	total := 0
	for src := range m.boxes {
		total += len(m.boxes[src][dst])
	}
	return total
}

// Count returns the total number of pending messages.
func (m *Mailboxes[T]) Count() int64 {
	var total int64
	for src := range m.boxes {
		for dst := range m.boxes[src] {
			total += int64(len(m.boxes[src][dst]))
		}
	}
	return total
}

// Clear empties every buffer, retaining capacity for reuse. Typically each
// worker clears its own inboxes via ClearTo after consuming them; Clear is
// the sequential fallback between supersteps.
func (m *Mailboxes[T]) Clear() {
	m.chk.quiesced("Clear")
	for src := range m.boxes {
		for dst := range m.boxes[src] {
			m.boxes[src][dst] = m.boxes[src][dst][:0]
		}
	}
}

// ClearTo empties every buffer addressed to dst; safe to call concurrently
// for distinct dst.
func (m *Mailboxes[T]) ClearTo(dst int) {
	for src := range m.boxes {
		m.boxes[src][dst] = m.boxes[src][dst][:0]
	}
}

// CoalescingMailboxes is a sender-side coalescing layer over Mailboxes for
// min-reduction message types (relaxation requests): messages are keyed by
// target node, and each sender physically enqueues only the messages that
// strictly improve (under less) on everything it has already sent to that
// node in the current superstep — the lexicographic prefix-minima chain of
// its candidate stream.
//
// Keeping the whole improving chain, rather than only the final minimum, is
// what makes coalescing invisible to the paper's metric accounting: a
// dropped message m is by construction ≥ (not less than) some earlier
// same-sender message m′ to the same node, and since the receiver's state
// after processing m′ is ≤ m′ ≤ m, the receiver would have skipped m anyway
// — so the receiver's applied-update count, its final state, and the
// frontier it builds are bit-identical to the uncoalesced execution, while
// the physical traffic shrinks to roughly one message per (sender, target)
// pair. Callers keep metering logical sends via Metrics.AddMessages, so
// Snapshot values match the uncoalesced run exactly.
//
// Usage discipline: each sender src calls BeginSend(src) at the start of the
// send half of a superstep (invalidating its per-node memory in O(1)), then
// Send for each logical message. Receivers use Recv/ClearTo as with plain
// Mailboxes. The same single-writer-per-src rules apply.
type CoalescingMailboxes[T any] struct {
	mb          *Mailboxes[T]
	less        func(a, b T) bool
	best        [][]T      // best[src][node]: minimum sent to node this step
	stamp       [][]uint32 // stamp[src][node] == epoch[src] iff best is live
	epoch       []uint32
	passthrough bool
	oversize    bool // workers·n exceeded maxCoalesceCells: passthrough forever
}

// maxCoalesceCells caps the dense per-sender memory of coalescing at
// workers·n entries (~1 GB of growMsg-sized state). Above it the mailboxes
// permanently degrade to passthrough — the exact uncoalesced behaviour, so
// correctness and metric accounting are unaffected; only the traffic
// optimisation is given up rather than multiplying a huge graph's footprint
// by the worker count.
const maxCoalesceCells = 1 << 25

// NewCoalescingMailboxes returns coalescing mailboxes for the given worker
// count over target nodes in [0, n). less must be a strict weak order
// matching the receiver's improvement test: a message is physically sent iff
// less(msg, best-so-far) — ties are dropped, exactly as the receiver would
// skip them.
//
// The per-node sender memory is dense: workers·n entries of T plus a stamp
// word. When that exceeds maxCoalesceCells the mailboxes run in permanent
// passthrough mode instead.
func NewCoalescingMailboxes[T any](workers, n int, less func(a, b T) bool) *CoalescingMailboxes[T] {
	m := &CoalescingMailboxes[T]{
		mb:   NewMailboxes[T](workers),
		less: less,
	}
	if workers > 0 && n > maxCoalesceCells/workers {
		m.passthrough = true
		m.oversize = true
		return m
	}
	m.best = make([][]T, workers)
	m.stamp = make([][]uint32, workers)
	m.epoch = make([]uint32, workers)
	for src := 0; src < workers; src++ {
		m.best[src] = make([]T, n)
		m.stamp[src] = make([]uint32, n)
	}
	return m
}

// Workers returns the number of workers the mailboxes were built for.
func (m *CoalescingMailboxes[T]) Workers() int { return m.mb.Workers() }

// SetPassthrough disables (true) or re-enables (false) coalescing; in
// passthrough mode every Send is physically enqueued, byte-for-byte the
// plain Mailboxes behaviour. Used by the equivalence tests. A no-op on
// oversize mailboxes, which are permanently passthrough.
func (m *CoalescingMailboxes[T]) SetPassthrough(v bool) {
	if m.oversize {
		return
	}
	m.passthrough = v
}

// BeginSend starts a new send half for src, forgetting its per-node minima
// from previous supersteps. Must be called by src before its first Send of
// each superstep; safe to call concurrently for distinct src.
func (m *CoalescingMailboxes[T]) BeginSend(src int) {
	if m.passthrough {
		return
	}
	m.epoch[src]++
	if m.epoch[src] == 0 { // epoch wrapped: stale stamps could collide
		clear(m.stamp[src])
		m.epoch[src] = 1
	}
}

// Send logically sends msg (keyed by target node, owned by dst) from src.
// It is physically enqueued only if it strictly improves on everything src
// has sent to node since its last BeginSend.
func (m *CoalescingMailboxes[T]) Send(src, dst int, node int32, msg T) {
	if m.passthrough {
		m.mb.Send(src, dst, msg)
		return
	}
	if m.stamp[src][node] != m.epoch[src] {
		m.stamp[src][node] = m.epoch[src]
	} else if !m.less(msg, m.best[src][node]) {
		return
	}
	m.best[src][node] = msg
	m.mb.Send(src, dst, msg)
}

// Recv invokes fn for every physically delivered message addressed to dst,
// in sender order. Must only be called after all senders passed the barrier.
func (m *CoalescingMailboxes[T]) Recv(dst int, fn func(T)) { m.mb.Recv(dst, fn) }

// ClearTo empties every buffer addressed to dst; safe to call concurrently
// for distinct dst.
func (m *CoalescingMailboxes[T]) ClearTo(dst int) { m.mb.ClearTo(dst) }

// Count returns the number of pending physical messages (diagnostics; the
// logical message count lives in the engine metrics).
func (m *CoalescingMailboxes[T]) Count() int64 { return m.mb.Count() }
