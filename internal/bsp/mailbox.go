package bsp

// Mailboxes is the communication fabric of a BSP superstep: worker-to-worker
// message buffers modelling the shuffle of a MapReduce round. During the
// "send" half of a superstep each worker writes only to its own outboxes
// (Send is lock-free under that discipline); after the barrier each worker
// reads exactly the messages addressed to it (Recv).
type Mailboxes[T any] struct {
	// boxes[src][dst] is the buffer of messages from worker src to dst.
	boxes [][][]T
}

// NewMailboxes returns mailboxes for the given worker count.
func NewMailboxes[T any](workers int) *Mailboxes[T] {
	boxes := make([][][]T, workers)
	for i := range boxes {
		boxes[i] = make([][]T, workers)
	}
	return &Mailboxes[T]{boxes: boxes}
}

// Workers returns the number of workers the mailboxes were built for.
func (m *Mailboxes[T]) Workers() int { return len(m.boxes) }

// Send appends msg to the src→dst buffer. It may be called concurrently by
// distinct src workers, but a single src must not be used from two
// goroutines at once.
func (m *Mailboxes[T]) Send(src, dst int, msg T) {
	m.boxes[src][dst] = append(m.boxes[src][dst], msg)
}

// Recv invokes fn for every message addressed to dst, in sender order.
// It must only be called after all senders have passed the barrier.
func (m *Mailboxes[T]) Recv(dst int, fn func(T)) {
	for src := range m.boxes {
		for _, msg := range m.boxes[src][dst] {
			fn(msg)
		}
	}
}

// CountTo returns the number of pending messages addressed to dst.
func (m *Mailboxes[T]) CountTo(dst int) int {
	total := 0
	for src := range m.boxes {
		total += len(m.boxes[src][dst])
	}
	return total
}

// Count returns the total number of pending messages.
func (m *Mailboxes[T]) Count() int64 {
	var total int64
	for src := range m.boxes {
		for dst := range m.boxes[src] {
			total += int64(len(m.boxes[src][dst]))
		}
	}
	return total
}

// Clear empties every buffer, retaining capacity for reuse. Typically each
// worker clears its own inboxes via ClearTo after consuming them; Clear is
// the sequential fallback between supersteps.
func (m *Mailboxes[T]) Clear() {
	for src := range m.boxes {
		for dst := range m.boxes[src] {
			m.boxes[src][dst] = m.boxes[src][dst][:0]
		}
	}
}

// ClearTo empties every buffer addressed to dst; safe to call concurrently
// for distinct dst.
func (m *Mailboxes[T]) ClearTo(dst int) {
	for src := range m.boxes {
		m.boxes[src][dst] = m.boxes[src][dst][:0]
	}
}
