package bsp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// fuzzMsg is a representative wire record: a varint-coded node id plus a
// fixed-width payload, the same shape as the production grow/relax codecs.
type fuzzMsg struct {
	node uint32
	bits uint64
}

var fuzzCodec = WireCodec[fuzzMsg]{
	MinSize: 9, // 1-byte uvarint node + 8-byte payload
	Append: func(buf []byte, m fuzzMsg) []byte {
		buf = binary.AppendUvarint(buf, uint64(m.node))
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], m.bits)
		return append(buf, b[:]...)
	},
	Read: func(data []byte) (fuzzMsg, int, error) {
		node, n := binary.Uvarint(data)
		if n <= 0 {
			return fuzzMsg{}, 0, errors.New("truncated node")
		}
		if node > 1<<32-1 {
			return fuzzMsg{}, 0, fmt.Errorf("node %d overflows uint32", node)
		}
		if len(data)-n < 8 {
			return fuzzMsg{}, 0, errors.New("truncated payload")
		}
		bits := binary.LittleEndian.Uint64(data[n:])
		return fuzzMsg{uint32(node), bits}, n + 8, nil
	},
}

func freshBoxes(workers int) [][][]fuzzMsg {
	boxes := make([][][]fuzzMsg, workers)
	for i := range boxes {
		boxes[i] = make([][]fuzzMsg, workers)
	}
	return boxes
}

// FuzzFrameRoundTrip drives record content from the fuzzer through
// encodeFrames → decodeFrames and demands bit-identical boxes back. The
// fuzz input seeds a splitmix-style generator so a few bytes expand into
// varied box shapes (empty boxes, single huge box, scatter).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(3))
	f.Add(uint64(0xdeadbeef), uint16(64))
	f.Add(uint64(42), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, size uint16) {
		const workers = 6
		const srcLo, srcHi, dstLo, dstHi = 0, 3, 3, 6
		x := seed
		next := func() uint64 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		boxes := freshBoxes(workers)
		n := int(size) % 257
		for i := 0; i < n; i++ {
			src := srcLo + int(next()%uint64(srcHi-srcLo))
			dst := dstLo + int(next()%uint64(dstHi-dstLo))
			boxes[src][dst] = append(boxes[src][dst], fuzzMsg{uint32(next()), next()})
		}
		blob := encodeFrames(fuzzCodec, boxes, srcLo, srcHi, dstLo, dstHi)
		got := freshBoxes(workers)
		if err := decodeFrames(fuzzCodec, blob, got, srcLo, srcHi, dstLo, dstHi); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		for src := 0; src < workers; src++ {
			for dst := 0; dst < workers; dst++ {
				a, b := boxes[src][dst], got[src][dst]
				if len(a) != len(b) {
					t.Fatalf("box %d→%d: %d records in, %d out", src, dst, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("box %d→%d record %d: %+v != %+v", src, dst, i, a[i], b[i])
					}
				}
			}
		}
		// Re-encoding the decoded boxes must reproduce the blob byte for
		// byte: the frame format has a unique canonical form.
		if blob2 := encodeFrames(fuzzCodec, got, srcLo, srcHi, dstLo, dstHi); !bytes.Equal(blob, blob2) {
			t.Fatalf("re-encode diverged: %d vs %d bytes", len(blob), len(blob2))
		}
	})
}

// FuzzFrameDecode feeds adversarial blobs straight into the decoder. The
// contract: every input either decodes into in-range boxes or returns an
// error — no panics, and no allocation driven by a lying length prefix
// (the bounds guard caps records at len(blob)/MinSize, so the box slices
// the decoder builds stay proportional to the input size).
func FuzzFrameDecode(f *testing.F) {
	// A valid blob as a seed.
	valid := freshBoxes(4)
	valid[0][2] = []fuzzMsg{{7, 9}, {8, 10}}
	valid[1][3] = []fuzzMsg{{1, 2}}
	f.Add(encodeFrames(fuzzCodec, valid, 0, 2, 2, 4))
	// A frame whose count prefix claims ~1e18 records in 3 bytes.
	lie := binary.AppendUvarint(nil, 0)             // src
	lie = binary.AppendUvarint(lie, 2)              // dst
	lie = binary.AppendUvarint(lie, uint64(1)<<60)  // count lie
	f.Add(append(lie, 0xff))                        // one stray byte
	f.Add([]byte{})                                 // empty
	f.Add([]byte{0x80})                             // truncated uvarint
	f.Add(binary.AppendUvarint(nil, uint64(1)<<40)) // src out of range
	f.Fuzz(func(t *testing.T, blob []byte) {
		boxes := freshBoxes(4)
		err := decodeFrames(fuzzCodec, blob, boxes, 0, 2, 2, 4)
		total := 0
		for src := range boxes {
			for dst := range boxes[src] {
				n := len(boxes[src][dst])
				total += n
				if n > 0 && (src >= 2 || dst < 2) {
					t.Fatalf("decoder wrote %d records into out-of-range box %d→%d", n, src, dst)
				}
			}
		}
		// Whether or not decoding errored, the records materialized can
		// never exceed what the input bytes could physically encode.
		if max := len(blob) / fuzzCodec.MinSize; total > max {
			t.Fatalf("decoded %d records from %d bytes (max %d): length-prefix lie honored (err=%v)",
				total, len(blob), max, err)
		}
	})
}
