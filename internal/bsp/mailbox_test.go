package bsp

import (
	"sync/atomic"
	"testing"
)

func TestMailboxRoundTrip(t *testing.T) {
	m := NewMailboxes[int](3)
	if m.Workers() != 3 {
		t.Fatal("Workers mismatch")
	}
	m.Send(0, 1, 10)
	m.Send(0, 1, 11)
	m.Send(2, 1, 12)
	m.Send(1, 0, 99)
	if m.CountTo(1) != 3 {
		t.Fatalf("CountTo(1) = %d, want 3", m.CountTo(1))
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	var got []int
	m.Recv(1, func(v int) { got = append(got, v) })
	want := []int{10, 11, 12} // sender order: src 0 then src 2
	if len(got) != len(want) {
		t.Fatalf("Recv got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Recv order: got %v, want %v", got, want)
		}
	}
}

func TestMailboxClear(t *testing.T) {
	m := NewMailboxes[string](2)
	m.Send(0, 0, "a")
	m.Send(1, 0, "b")
	m.Send(0, 1, "c")
	m.ClearTo(0)
	if m.CountTo(0) != 0 || m.CountTo(1) != 1 {
		t.Fatal("ClearTo cleared wrong buffers")
	}
	m.Clear()
	if m.Count() != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestMailboxParallelExchange(t *testing.T) {
	// Each worker sends its worker ID to every other worker; after the
	// barrier each worker receives exactly workers messages summing to the
	// same total.
	const workers = 8
	e := New(workers)
	m := NewMailboxes[int](workers)
	e.ParallelFor(workers, func(w, _, _ int) {
		for dst := 0; dst < workers; dst++ {
			m.Send(w, dst, w)
		}
	})
	var total int64
	e.ParallelFor(workers, func(w, _, _ int) {
		sum := 0
		count := 0
		m.Recv(w, func(v int) { sum += v; count++ })
		if count != workers {
			t.Errorf("worker %d received %d messages", w, count)
		}
		atomic.AddInt64(&total, int64(sum))
	})
	wantPer := workers * (workers - 1) / 2
	if total != int64(workers*wantPer) {
		t.Fatalf("total = %d, want %d", total, workers*wantPer)
	}
}
