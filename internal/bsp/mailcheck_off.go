//go:build !bspcheck

package bsp

// mailboxCheck is the production no-op version of the mailbox misuse
// detector; its methods compile away entirely. Build with -tags bspcheck
// (the race CI lane does) to swap in the checking implementation from
// mailcheck_on.go.
type mailboxCheck struct{}

func (mailboxCheck) init(int)        {}
func (mailboxCheck) beginSrc(int)    {}
func (mailboxCheck) endSrc(int)      {}
func (mailboxCheck) quiesced(string) {}
