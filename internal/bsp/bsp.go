// Package bsp provides the bulk-synchronous parallel execution substrate on
// which graphdiam's distributed algorithms run.
//
// The paper evaluates its algorithms on a 16-node Spark cluster and compares
// them through platform-independent metrics: the number of rounds (parallel
// supersteps, each of which costs a full communication phase in a
// MapReduce-like system) and the work (node updates plus messages
// generated). This package simulates that environment in-process: an Engine
// owns P workers — the stand-ins for machines — that execute supersteps
// over contiguous node partitions, separated by barriers, while a Metrics
// struct accumulates exactly the counters the paper reports.
//
// An Engine may be bound to a context.Context (Bind); cancellation is
// observed cooperatively at superstep barriers only, so the per-edge hot
// path pays nothing and an abort lands within one superstep (see DESIGN.md
// "Cancellation at superstep barriers only").
//
// The companion package internal/mr implements the rigorous MR(M_T, M_L)
// key-value model of Pietracaprina et al. for validating round complexities
// of the primitives; algorithms use this package for throughput.
package bsp

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics accumulates the paper's platform-independent cost measures.
// All fields are updated atomically and may be read concurrently.
type Metrics struct {
	rounds   atomic.Int64
	messages atomic.Int64
	updates  atomic.Int64
}

// Snapshot is an immutable copy of the metrics at a point in time.
type Snapshot struct {
	// Rounds is the number of parallel supersteps executed. In a
	// MapReduce-like system each superstep is a constant number of
	// communication rounds (Fact 1 of the paper).
	Rounds int64 `json:"rounds"`
	// Messages counts inter-partition notifications generated (the
	// "messages" component of the paper's work measure).
	Messages int64 `json:"messages"`
	// Updates counts node-state writes (the "node updates" component).
	Updates int64 `json:"updates"`
}

// Work returns the paper's aggregate work measure: updates + messages.
func (s Snapshot) Work() int64 { return s.Updates + s.Messages }

// String renders the snapshot compactly for logs and tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("rounds=%d updates=%d messages=%d work=%d",
		s.Rounds, s.Updates, s.Messages, s.Work())
}

// AddRounds adds k supersteps to the round count.
func (m *Metrics) AddRounds(k int64) { m.rounds.Add(k) }

// AddMessages adds k generated messages.
func (m *Metrics) AddMessages(k int64) { m.messages.Add(k) }

// AddUpdates adds k node updates.
func (m *Metrics) AddUpdates(k int64) { m.updates.Add(k) }

// Snapshot returns a consistent-enough copy for reporting (individual
// counters are read atomically).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Rounds:   m.rounds.Load(),
		Messages: m.messages.Load(),
		Updates:  m.updates.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.rounds.Store(0)
	m.messages.Store(0)
	m.updates.Store(0)
}

// Engine executes supersteps across a fixed number of workers. It is safe
// for sequential reuse; a single Engine must not run two supersteps
// concurrently.
//
// Concurrent engines (workers > 1, not simulated) dispatch supersteps to a
// persistent pool of long-lived worker goroutines parked on a reusable
// barrier, so the thousands of ParallelFor/Superstep calls of a typical run
// pay no goroutine spawning. The pool starts lazily on the first parallel
// dispatch; Close releases it. Engines that are never closed explicitly are
// drained by a finalizer once unreachable, but callers owning an engine's
// lifecycle (the store, the CLIs, the experiments harness) should Close.
type Engine struct {
	workers  int
	simulate bool
	closed   bool
	ctx      context.Context // nil means context.Background (never cancelled)
	critPath atomic.Int64    // ns; accumulated max per-step worker time
	metrics  Metrics
	tracer   Tracer      // nil disables wall-clock tracing (the default)
	pool     *workerPool // lazily started; nil for sequential/simulated engines
	dist     *distEngine // non-nil when workers span processes (see dist.go)
}

// Tracer receives wall-clock timings from an engine's supersteps and
// transport exchanges. It exists so the observability layer can watch
// the engine without this package importing it (any struct with these
// methods satisfies it structurally). Implementations must be safe for
// concurrent use; a nil tracer costs one branch per superstep, which is
// what keeps the accounting benchmarks inside the regression gate.
//
// Tracing measures wall-clock only — it never touches Metrics, so the
// paper's rounds/messages/updates accounting stays bit-identical whether
// a tracer is attached or not.
type Tracer interface {
	// ObserveSuperstep reports one parallel step: compute is worker 0's
	// busy time, barrier the extra time spent waiting for the slowest
	// worker to reach the barrier.
	ObserveSuperstep(compute, barrier time.Duration)
	// ObserveComm reports one full transport exchange (mailbox delivery
	// or collective) on a distributed engine.
	ObserveComm(d time.Duration)
	// ObserveAllreduce reports one scalar collective (global sums, ORs,
	// argmins, snapshot cross-checks) — a subset of ObserveComm calls,
	// timed separately because they bound the lockstep latency floor.
	ObserveAllreduce(d time.Duration)
}

// SetTracer attaches t (nil detaches) and returns the engine for
// chaining. Simulated engines ignore the tracer: their sequential
// execution would report meaningless wall-clock splits, and they already
// accumulate CriticalPath.
func (e *Engine) SetTracer(t Tracer) *Engine {
	e.tracer = t
	if e.dist != nil {
		e.dist.tracer = t
	}
	return e
}

// workerPool is the persistent execution crew of a concurrent engine:
// workers-1 goroutines parked between supersteps (the dispatching goroutine
// itself acts as worker 0). A dispatch publishes the task function, releases
// every parked goroutine through its run channel, executes worker 0's share
// inline, and waits on a countdown barrier for the rest.
//
// The pool deliberately never references its Engine between dispatches (fn
// is cleared at the barrier), so an abandoned engine becomes unreachable and
// its finalizer can drain the pool.
type workerPool struct {
	workers int
	fn      func(w int)     // current task; set before release, cleared after
	pending atomic.Int32    // workers not yet done with the current task
	busy    atomic.Bool     // reentry guard: one dispatch at a time
	run     []chan struct{} // one buffered slot per parked goroutine
	done    chan struct{}   // signalled by the last finisher (if not worker 0)
	quit    chan struct{}   // closed by Engine.Close / the finalizer
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		workers: workers,
		run:     make([]chan struct{}, workers-1),
		done:    make(chan struct{}),
		quit:    make(chan struct{}),
	}
	for i := range p.run {
		p.run[i] = make(chan struct{}, 1)
		go p.work(i)
	}
	return p
}

func (p *workerPool) work(slot int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.run[slot]:
			p.fn(slot + 1)
			if p.pending.Add(-1) == 0 {
				p.done <- struct{}{}
			}
		}
	}
}

// dispatch runs fn(w) for every w in [0, workers), worker 0 on the calling
// goroutine, returning when all have finished. The channel send/receive pair
// per worker establishes the happens-before edges of the barrier.
//
// Engines have always forbidden concurrent supersteps; with a shared pool
// that misuse would silently corrupt the barrier state, so it now panics
// loudly instead (two atomic ops per superstep — noise).
func (p *workerPool) dispatch(fn func(w int)) {
	if !p.busy.CompareAndSwap(false, true) {
		panic("bsp: concurrent supersteps dispatched on one Engine")
	}
	defer p.busy.Store(false)
	p.fn = fn
	p.pending.Store(int32(p.workers))
	for _, c := range p.run {
		c <- struct{}{}
	}
	fn(0)
	if p.pending.Add(-1) != 0 {
		<-p.done
	}
	p.fn = nil
}

// New returns an engine with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// NewSimulated returns an engine that executes workers sequentially while
// measuring each worker's compute time and accumulating the per-step
// maximum — the critical path a real P-machine cluster would pay
// (communication aside). This reproduces machine-scaling experiments
// faithfully on hosts with fewer physical cores than simulated machines;
// results are identical to the concurrent engine by the determinism of the
// algorithms.
func NewSimulated(workers int) *Engine {
	e := New(workers)
	e.simulate = true
	return e
}

// CriticalPath returns the accumulated simulated parallel compute time.
// Zero unless the engine was created with NewSimulated.
func (e *Engine) CriticalPath() time.Duration {
	return time.Duration(e.critPath.Load())
}

// ResetCriticalPath zeroes the simulated-time accumulator.
func (e *Engine) ResetCriticalPath() { e.critPath.Store(0) }

// Workers returns the configured degree of parallelism (the simulated
// machine count).
func (e *Engine) Workers() int { return e.workers }

// Bind attaches ctx to the engine for cooperative cancellation and returns
// the engine for chaining. The context is consulted only at superstep
// barriers — never inside worker loops — so the per-edge hot path pays
// nothing for cancellability and an abort lands within one superstep.
// Binding nil restores the never-cancelled default.
func (e *Engine) Bind(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// Context returns the bound context (context.Background if none was bound).
func (e *Engine) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Err returns the bound context's error — or, for distributed engines, the
// sticky first transport failure — nil while the run may proceed. Algorithms
// check it between supersteps and abandon the run when non-nil.
func (e *Engine) Err() error {
	if e.dist != nil && e.dist.err != nil {
		return e.dist.err
	}
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Metrics returns the engine's metrics accumulator.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Partition returns the contiguous range [start, end) of items owned by
// worker w out of n items. Ranges differ in size by at most one.
func (e *Engine) Partition(n, w int) (start, end int) {
	per := n / e.workers
	rem := n % e.workers
	start = w*per + min(w, rem)
	end = start + per
	if w < rem {
		end++
	}
	return start, end
}

// Owner returns the worker owning item i of n under Partition.
//
// Owner pays two integer divisions per call; message-routing hot loops
// should hoist a Router once per run instead.
func (e *Engine) Owner(n, i int) int {
	per := n / e.workers
	rem := n % e.workers
	// Items [0, rem*(per+1)) belong to the first rem workers.
	boundary := rem * (per + 1)
	if i < boundary {
		return i / (per + 1)
	}
	if per == 0 {
		return e.workers - 1
	}
	return rem + (i-boundary)/per
}

// Router is a precomputed O(1) owner lookup for the engine's partition of
// [0, n): the two per-range divisions of Owner are replaced by exact
// reciprocal multiplications (the division-free scheme of Lemire et al.,
// "Faster remainder by direct computation": for d < 2³², x < 2³² and
// c = ⌊2⁶⁴/d⌋+1, ⌊c·x/2⁶⁴⌋ = ⌊x/d⌋), hoisted once per run. Routers are
// values; copy them freely into hot loops.
type Router struct {
	boundary uint32 // items below this belong to the (per+1)-sized ranges
	rem      uint32 // number of (per+1)-sized ranges
	cBig     uint64 // reciprocal of per+1
	cSmall   uint64 // reciprocal of max(per, 1)
}

// Router returns the O(1) owner lookup for n items under the engine's
// Partition. It agrees with Owner(n, i) for every i in [0, n).
func (e *Engine) Router(n int) Router {
	per := uint32(n / e.workers)
	rem := uint32(n % e.workers)
	small := per
	if small == 0 {
		small = 1 // never consulted: boundary == n when per == 0
	}
	return Router{
		boundary: rem * (per + 1),
		rem:      rem,
		cBig:     reciprocal(per + 1),
		cSmall:   reciprocal(small),
	}
}

// reciprocal returns ⌊2⁶⁴/d⌋+1 (for powers of two the exact 2⁶⁴/d, which is
// also exact in the multiply-shift), the constant of the Lemire scheme. For
// d == 1 the constant is 2⁶⁴, unrepresentable — it wraps to 0, which Owner
// treats as the identity-division sentinel.
func reciprocal(d uint32) uint64 { return ^uint64(0)/uint64(d) + 1 }

// Owner returns the worker owning item i. i must be in [0, n) for the n the
// router was built with.
func (r Router) Owner(i uint32) int {
	if i < r.boundary {
		if r.cBig == 0 { // unit ranges (divisor 1)
			return int(i)
		}
		hi, _ := bits.Mul64(r.cBig, uint64(i))
		return int(hi)
	}
	off := i - r.boundary
	if r.cSmall == 0 { // unit ranges (divisor 1)
		return int(r.rem + off)
	}
	hi, _ := bits.Mul64(r.cSmall, uint64(off))
	return int(r.rem) + int(hi)
}

// ParallelFor runs fn once per worker over its partition of [0, n),
// blocking until all complete. It does not count a round; use Superstep
// for metered steps.
//
// Distributed engines execute only the workers this process owns
// (OwnedWorkers); the partition geometry is still that of the full P
// workers, so worker indices, ranges, and routing are identical to the
// single-process run.
//
// When the bound context is already cancelled, fn is not executed at all:
// the step degenerates to a no-op barrier so that an algorithm whose
// cancellation check lives a few supersteps up the call chain cannot keep
// burning CPU on work that will be discarded.
func (e *Engine) ParallelFor(n int, fn func(worker, start, end int)) {
	if e.Err() != nil {
		return
	}
	lo, hi := 0, e.workers
	if e.dist != nil {
		lo, hi = e.dist.ownLo, e.dist.ownHi
	}
	if e.simulate {
		var maxNS int64
		for w := lo; w < hi; w++ {
			start, end := e.Partition(n, w)
			t0 := time.Now()
			fn(w, start, end)
			if d := int64(time.Since(t0)); d > maxNS {
				maxNS = d
			}
		}
		e.critPath.Add(maxNS)
		return
	}
	if hi-lo == 1 {
		start, end := e.Partition(n, lo)
		if t := e.tracer; t != nil {
			t0 := time.Now()
			fn(lo, start, end)
			t.ObserveSuperstep(time.Since(t0), 0)
			return
		}
		fn(lo, start, end)
		return
	}
	if e.pool == nil && !e.closed {
		e.pool = newWorkerPool(hi - lo)
		// Safety net for engines abandoned without Close (e.g. defaulted
		// engines deep inside a run): drain the pool once unreachable.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	if p := e.pool; p != nil {
		if t := e.tracer; t != nil {
			// Worker 0 runs on the dispatching goroutine, so its busy time
			// is the step's compute sample and the remainder of the dispatch
			// is barrier wait (how long the slowest worker held everyone).
			// computeNS is written and read on this goroutine only.
			var computeNS int64
			t0 := time.Now()
			p.dispatch(func(slot int) {
				w := lo + slot
				start, end := e.Partition(n, w)
				if slot == 0 {
					c0 := time.Now()
					fn(w, start, end)
					computeNS = int64(time.Since(c0))
					return
				}
				fn(w, start, end)
			})
			barrierNS := int64(time.Since(t0)) - computeNS
			if barrierNS < 0 {
				barrierNS = 0
			}
			t.ObserveSuperstep(time.Duration(computeNS), time.Duration(barrierNS))
			return
		}
		p.dispatch(func(slot int) {
			w := lo + slot
			start, end := e.Partition(n, w)
			fn(w, start, end)
		})
		return
	}
	// Closed engine: degrade to transient goroutines rather than failing.
	var wg sync.WaitGroup
	wg.Add(hi - lo)
	for w := lo; w < hi; w++ {
		go func(w int) {
			defer wg.Done()
			start, end := e.Partition(n, w)
			fn(w, start, end)
		}(w)
	}
	wg.Wait()
}

// Close releases the engine's persistent worker pool, if any. It must not
// be called concurrently with a running superstep. Closing is idempotent;
// a closed engine remains usable (supersteps fall back to transient
// goroutines), so late stragglers holding a reference stay correct while
// the common case releases its goroutines promptly.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.pool != nil {
		close(e.pool.quit)
		e.pool = nil
	}
	runtime.SetFinalizer(e, nil)
}

// Superstep runs one metered BSP superstep: a ParallelFor over [0, n)
// followed by a barrier, incrementing the round counter by one. A superstep
// entered after cancellation does not execute and is not metered.
func (e *Engine) Superstep(n int, fn func(worker, start, end int)) {
	if e.Err() != nil {
		return
	}
	e.ParallelFor(n, fn)
	e.metrics.AddRounds(1)
}

// ReduceFloat64 runs fn per worker, each returning a float64, and combines
// the results with combine (e.g. math.Max). Not metered. Distributed
// engines gather the remote workers' partials and fold the full P-entry
// array sequentially in worker order, so float combining is bit-exact
// against the single-process run; a transport failure returns 0 with the
// error sticky in Err().
func (e *Engine) ReduceFloat64(n int, fn func(worker, start, end int) float64,
	combine func(a, b float64) float64) float64 {
	partial := make([]float64, e.workers)
	e.ParallelFor(n, func(w, start, end int) {
		partial[w] = fn(w, start, end)
	})
	if d := e.dist; d != nil {
		if e.Err() != nil {
			return 0
		}
		if err := d.gatherFloat64s(e, partial); err != nil {
			return 0
		}
	}
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = combine(acc, p)
	}
	return acc
}

// ReduceInt runs fn per worker returning an int, and sums the results.
// Not metered. Distributed engines return the fleet-wide sum; a transport
// failure returns 0 with the error sticky in Err().
func (e *Engine) ReduceInt(n int, fn func(worker, start, end int) int) int {
	partial := make([]int, e.workers)
	e.ParallelFor(n, func(w, start, end int) {
		partial[w] = fn(w, start, end)
	})
	if d := e.dist; d != nil {
		if e.Err() != nil {
			return 0
		}
		if err := d.gatherInts(e, partial); err != nil {
			return 0
		}
	}
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}
