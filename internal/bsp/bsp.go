// Package bsp provides the bulk-synchronous parallel execution substrate on
// which graphdiam's distributed algorithms run.
//
// The paper evaluates its algorithms on a 16-node Spark cluster and compares
// them through platform-independent metrics: the number of rounds (parallel
// supersteps, each of which costs a full communication phase in a
// MapReduce-like system) and the work (node updates plus messages
// generated). This package simulates that environment in-process: an Engine
// owns P workers — the stand-ins for machines — that execute supersteps
// over contiguous node partitions, separated by barriers, while a Metrics
// struct accumulates exactly the counters the paper reports.
//
// An Engine may be bound to a context.Context (Bind); cancellation is
// observed cooperatively at superstep barriers only, so the per-edge hot
// path pays nothing and an abort lands within one superstep (see DESIGN.md
// "Cancellation at superstep barriers only").
//
// The companion package internal/mr implements the rigorous MR(M_T, M_L)
// key-value model of Pietracaprina et al. for validating round complexities
// of the primitives; algorithms use this package for throughput.
package bsp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics accumulates the paper's platform-independent cost measures.
// All fields are updated atomically and may be read concurrently.
type Metrics struct {
	rounds   atomic.Int64
	messages atomic.Int64
	updates  atomic.Int64
}

// Snapshot is an immutable copy of the metrics at a point in time.
type Snapshot struct {
	// Rounds is the number of parallel supersteps executed. In a
	// MapReduce-like system each superstep is a constant number of
	// communication rounds (Fact 1 of the paper).
	Rounds int64 `json:"rounds"`
	// Messages counts inter-partition notifications generated (the
	// "messages" component of the paper's work measure).
	Messages int64 `json:"messages"`
	// Updates counts node-state writes (the "node updates" component).
	Updates int64 `json:"updates"`
}

// Work returns the paper's aggregate work measure: updates + messages.
func (s Snapshot) Work() int64 { return s.Updates + s.Messages }

// String renders the snapshot compactly for logs and tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("rounds=%d updates=%d messages=%d work=%d",
		s.Rounds, s.Updates, s.Messages, s.Work())
}

// AddRounds adds k supersteps to the round count.
func (m *Metrics) AddRounds(k int64) { m.rounds.Add(k) }

// AddMessages adds k generated messages.
func (m *Metrics) AddMessages(k int64) { m.messages.Add(k) }

// AddUpdates adds k node updates.
func (m *Metrics) AddUpdates(k int64) { m.updates.Add(k) }

// Snapshot returns a consistent-enough copy for reporting (individual
// counters are read atomically).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Rounds:   m.rounds.Load(),
		Messages: m.messages.Load(),
		Updates:  m.updates.Load(),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.rounds.Store(0)
	m.messages.Store(0)
	m.updates.Store(0)
}

// Engine executes supersteps across a fixed number of workers. It is safe
// for sequential reuse; a single Engine must not run two supersteps
// concurrently.
type Engine struct {
	workers  int
	simulate bool
	ctx      context.Context // nil means context.Background (never cancelled)
	critPath atomic.Int64    // ns; accumulated max per-step worker time
	metrics  Metrics
}

// New returns an engine with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// NewSimulated returns an engine that executes workers sequentially while
// measuring each worker's compute time and accumulating the per-step
// maximum — the critical path a real P-machine cluster would pay
// (communication aside). This reproduces machine-scaling experiments
// faithfully on hosts with fewer physical cores than simulated machines;
// results are identical to the concurrent engine by the determinism of the
// algorithms.
func NewSimulated(workers int) *Engine {
	e := New(workers)
	e.simulate = true
	return e
}

// CriticalPath returns the accumulated simulated parallel compute time.
// Zero unless the engine was created with NewSimulated.
func (e *Engine) CriticalPath() time.Duration {
	return time.Duration(e.critPath.Load())
}

// ResetCriticalPath zeroes the simulated-time accumulator.
func (e *Engine) ResetCriticalPath() { e.critPath.Store(0) }

// Workers returns the configured degree of parallelism (the simulated
// machine count).
func (e *Engine) Workers() int { return e.workers }

// Bind attaches ctx to the engine for cooperative cancellation and returns
// the engine for chaining. The context is consulted only at superstep
// barriers — never inside worker loops — so the per-edge hot path pays
// nothing for cancellability and an abort lands within one superstep.
// Binding nil restores the never-cancelled default.
func (e *Engine) Bind(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// Context returns the bound context (context.Background if none was bound).
func (e *Engine) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Err returns the bound context's error, nil while the run may proceed.
// Algorithms check it between supersteps and abandon the run when non-nil.
func (e *Engine) Err() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Metrics returns the engine's metrics accumulator.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Partition returns the contiguous range [start, end) of items owned by
// worker w out of n items. Ranges differ in size by at most one.
func (e *Engine) Partition(n, w int) (start, end int) {
	per := n / e.workers
	rem := n % e.workers
	start = w*per + min(w, rem)
	end = start + per
	if w < rem {
		end++
	}
	return start, end
}

// Owner returns the worker owning item i of n under Partition.
func (e *Engine) Owner(n, i int) int {
	per := n / e.workers
	rem := n % e.workers
	// Items [0, rem*(per+1)) belong to the first rem workers.
	boundary := rem * (per + 1)
	if i < boundary {
		return i / (per + 1)
	}
	if per == 0 {
		return e.workers - 1
	}
	return rem + (i-boundary)/per
}

// ParallelFor runs fn once per worker over its partition of [0, n),
// blocking until all complete. It does not count a round; use Superstep
// for metered steps.
//
// When the bound context is already cancelled, fn is not executed at all:
// the step degenerates to a no-op barrier so that an algorithm whose
// cancellation check lives a few supersteps up the call chain cannot keep
// burning CPU on work that will be discarded.
func (e *Engine) ParallelFor(n int, fn func(worker, start, end int)) {
	if e.Err() != nil {
		return
	}
	if e.simulate {
		var maxNS int64
		for w := 0; w < e.workers; w++ {
			start, end := e.Partition(n, w)
			t0 := time.Now()
			fn(w, start, end)
			if d := int64(time.Since(t0)); d > maxNS {
				maxNS = d
			}
		}
		e.critPath.Add(maxNS)
		return
	}
	if e.workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func(w int) {
			defer wg.Done()
			start, end := e.Partition(n, w)
			fn(w, start, end)
		}(w)
	}
	wg.Wait()
}

// Superstep runs one metered BSP superstep: a ParallelFor over [0, n)
// followed by a barrier, incrementing the round counter by one. A superstep
// entered after cancellation does not execute and is not metered.
func (e *Engine) Superstep(n int, fn func(worker, start, end int)) {
	if e.Err() != nil {
		return
	}
	e.ParallelFor(n, fn)
	e.metrics.AddRounds(1)
}

// ReduceFloat64 runs fn per worker, each returning a float64, and combines
// the results with combine (e.g. math.Max). Not metered.
func (e *Engine) ReduceFloat64(n int, fn func(worker, start, end int) float64,
	combine func(a, b float64) float64) float64 {
	partial := make([]float64, e.workers)
	e.ParallelFor(n, func(w, start, end int) {
		partial[w] = fn(w, start, end)
	})
	acc := partial[0]
	for _, p := range partial[1:] {
		acc = combine(acc, p)
	}
	return acc
}

// ReduceInt runs fn per worker returning an int, and sums the results.
// Not metered.
func (e *Engine) ReduceInt(n int, fn func(worker, start, end int) int) int {
	partial := make([]int, e.workers)
	e.ParallelFor(n, func(w, start, end int) {
		partial[w] = fn(w, start, end)
	})
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}
