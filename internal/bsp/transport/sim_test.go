package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stepFleet drives one lockstep Step on every live peer concurrently and
// returns per-rank results.
func stepFleet(trs []Transport, step uint64, outs [][][]byte) ([][][]byte, []error) {
	ins := make([][][]byte, len(trs))
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for r := range trs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ins[r], errs[r] = trs[r].Step(step, outs[r])
		}(r)
	}
	wg.Wait()
	return ins, errs
}

func fleetOuts(peers int, step uint64) [][][]byte {
	outs := make([][][]byte, peers)
	for r := 0; r < peers; r++ {
		outs[r] = make([][]byte, peers)
		for q := 0; q < peers; q++ {
			outs[r][q] = []byte(fmt.Sprintf("s%d:%d->%d", step, r, q))
		}
	}
	return outs
}

func checkFleetIns(t *testing.T, peers int, step uint64, ins [][][]byte) {
	t.Helper()
	for r := 0; r < peers; r++ {
		for q := 0; q < peers; q++ {
			want := fmt.Sprintf("s%d:%d->%d", step, q, r)
			if got := string(ins[r][q]); got != want {
				t.Errorf("step %d: rank %d slot %d = %q, want %q", step, r, q, got, want)
			}
		}
	}
}

// TestSimExchangeDeliversByRank: every peer receives every sender's blob in
// the sender's slot — including its own, passed through verbatim — across
// consecutive steps, with and without seeded reordering.
func TestSimExchangeDeliversByRank(t *testing.T) {
	for _, reorder := range []bool{false, true} {
		net := NewSimNetwork(3, FaultPlan{Seed: 5, Reorder: reorder}, time.Second)
		trs := []Transport{net.Peer(0), net.Peer(1), net.Peer(2)}
		for step := uint64(0); step < 4; step++ {
			ins, errs := stepFleet(trs, step, fleetOuts(3, step))
			for r, err := range errs {
				if err != nil {
					t.Fatalf("reorder=%v step %d rank %d: %v", reorder, step, r, err)
				}
			}
			checkFleetIns(t, 3, step, ins)
		}
	}
}

// TestSimDropsRetryInvisibly: a lossy plan under the attempt budget changes
// nothing about delivery, only the retry counter.
func TestSimDropsRetryInvisibly(t *testing.T) {
	net := NewSimNetwork(2, FaultPlan{Seed: 3, DropRate: 0.5}, time.Second)
	trs := []Transport{net.Peer(0), net.Peer(1)}
	for step := uint64(0); step < 8; step++ {
		ins, errs := stepFleet(trs, step, fleetOuts(2, step))
		for r, err := range errs {
			if err != nil {
				t.Fatalf("step %d rank %d: %v", step, r, err)
			}
		}
		checkFleetIns(t, 2, step, ins)
	}
	if net.Retries() == 0 {
		t.Fatal("50% drop rate over 8 steps induced no retries")
	}
}

// TestSimExhaustedAttemptsFailEveryone: attempts beyond the budget fail the
// step with ErrUnreachable on all peers and poison the network for later
// steps.
func TestSimExhaustedAttemptsFailEveryone(t *testing.T) {
	net := NewSimNetwork(2, FaultPlan{MaxAttempts: 3, Partitions: []Partition{
		{FromStep: 1, ToStep: 2, Peer: 1, FailAttempts: 99}}}, time.Second)
	trs := []Transport{net.Peer(0), net.Peer(1)}
	if _, errs := stepFleet(trs, 0, fleetOuts(2, 0)); errs[0] != nil || errs[1] != nil {
		t.Fatalf("pre-partition step failed: %v", errs)
	}
	_, errs := stepFleet(trs, 1, fleetOuts(2, 1))
	for r, err := range errs {
		var terr *Error
		if !errors.As(err, &terr) || terr.Kind != ErrUnreachable {
			t.Fatalf("rank %d: got %v, want unreachable", r, err)
		}
	}
	// Sticky: the dead network refuses further steps instantly.
	if _, err := trs[0].Step(2, fleetOuts(2, 2)[0]); err == nil {
		t.Fatal("step after network failure succeeded")
	}
}

// TestSimBarrierTimeout: a peer that never arrives trips the wall-clock
// watchdog with a classified timeout, not a hang.
func TestSimBarrierTimeout(t *testing.T) {
	net := NewSimNetwork(2, FaultPlan{}, 30*time.Millisecond)
	tr := net.Peer(0)
	_, err := tr.Step(0, fleetOuts(2, 0)[0]) // peer 1 never steps
	var terr *Error
	if !errors.As(err, &terr) || terr.Kind != ErrBarrierTimeout {
		t.Fatalf("got %v, want barrier timeout", err)
	}
}

// TestSimKillFailsPendingBarrier: killing a peer releases a barrier that is
// already waiting on it, deterministically, with ErrPeerDown on both the
// waiter and the killed peer's own next Step.
func TestSimKillFailsPendingBarrier(t *testing.T) {
	net := NewSimNetwork(2, FaultPlan{}, 10*time.Second)
	trs := []Transport{net.Peer(0), net.Peer(1)}
	done := make(chan error, 1)
	go func() {
		_, err := trs[0].Step(0, fleetOuts(2, 0)[0])
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let rank 0 reach the barrier
	net.Kill(1)
	select {
	case err := <-done:
		var terr *Error
		if !errors.As(err, &terr) || terr.Kind != ErrPeerDown {
			t.Fatalf("waiter got %v, want peer-down", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kill did not release the pending barrier")
	}
	if _, err := trs[1].Step(0, fleetOuts(2, 0)[1]); err == nil {
		t.Fatal("dead peer stepped successfully")
	}
}

// TestErrorClassificationString: classified errors render their kind, peer,
// and step — what operators grep for in daemon logs.
func TestErrorClassificationString(t *testing.T) {
	err := Errorf(ErrUnreachable, 2, 17, "boom: %d", 9)
	var terr *Error
	if !errors.As(err, &terr) {
		t.Fatal("Errorf did not produce *Error")
	}
	if terr.Kind != ErrUnreachable || terr.Peer != 2 || terr.Step != 17 {
		t.Fatalf("fields lost: %+v", terr)
	}
	for _, k := range []ErrKind{ErrProtocol, ErrUnreachable, ErrBarrierTimeout, ErrPeerDown, ErrClosed} {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
