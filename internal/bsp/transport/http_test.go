package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestInboxFloorAndWindow: collected steps drop late duplicates silently;
// deliveries far ahead of the collection floor are protocol errors.
func TestInboxFloorAndWindow(t *testing.T) {
	reg := NewRegistry()
	ib := reg.Open("r")
	if err := reg.Deliver("r", 0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	m, err := ib.collect(context.Background(), 0, 1, time.Second)
	if err != nil || string(m[1]) != "a" {
		t.Fatalf("collect: %v %q", err, m)
	}
	// Late duplicate of the collected step: dropped without error (the
	// sender's retry raced its own success).
	if err := reg.Deliver("r", 0, 1, []byte("dup")); err != nil {
		t.Fatalf("late duplicate rejected: %v", err)
	}
	// Next step must be unaffected by the dropped duplicate.
	if err := reg.Deliver("r", 1, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if m, err = ib.collect(context.Background(), 1, 1, time.Second); err != nil || string(m[1]) != "b" {
		t.Fatalf("collect step 1: %v %q", err, m)
	}
	// A delivery claiming a step far past the floor is a diverged peer.
	err = reg.Deliver("r", 2+stepWindow+1, 1, []byte("x"))
	var terr *Error
	if !errors.As(err, &terr) || terr.Kind != ErrProtocol {
		t.Fatalf("far-ahead delivery: got %v, want protocol error", err)
	}
}

// TestInboxIdempotentOverwrite: redelivery of the same (step, from) before
// collection overwrites — the retried blob is identical in practice, and
// last-writer-wins keeps the barrier count correct.
func TestInboxIdempotentOverwrite(t *testing.T) {
	reg := NewRegistry()
	ib := reg.Open("r")
	if err := reg.Deliver("r", 0, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Deliver("r", 0, 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	m, err := ib.collect(context.Background(), 0, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || string(m[1]) != "second" {
		t.Fatalf("overwrite lost: %q", m)
	}
}

// TestRegistryReleaseFailsCollector: releasing the run (participant exits,
// daemon shuts the job down) unblocks a waiting collector with ErrClosed.
func TestRegistryReleaseFailsCollector(t *testing.T) {
	reg := NewRegistry()
	ib := reg.Open("r")
	done := make(chan error, 1)
	go func() {
		_, err := ib.collect(context.Background(), 0, 1, 10*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	reg.Release("r")
	select {
	case err := <-done:
		var terr *Error
		if !errors.As(err, &terr) || terr.Kind != ErrClosed {
			t.Fatalf("got %v, want closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock collector")
	}
	// Deliveries to the released run are refused.
	if err := reg.Deliver("r", 0, 1, nil); err != nil {
		// A fresh inbox is created on delivery — that is the create-on-
		// deliver contract, so no error here either way is acceptable only
		// if the new inbox accepted it.
		t.Fatalf("delivery after release: %v", err)
	}
}

// TestHTTPSendRetriesTransientFailures: 5xx responses are retried with
// backoff until success; the step then completes normally.
func TestHTTPSendRetriesTransientFailures(t *testing.T) {
	var hits atomic.Int64
	var delivered atomic.Int64
	reg := NewRegistry()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		delivered.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	tr, err := NewHTTP(context.Background(), HTTPConfig{
		RunID: "r", Rank: 0, PeerURLs: []string{"", srv.URL}, Registry: reg,
		SendRetries: 4, SendBackoff: time.Millisecond, BarrierTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Pre-deliver peer 1's frame so the barrier fills immediately.
	if err := reg.Deliver("r", 0, 1, []byte("in")); err != nil {
		t.Fatal(err)
	}
	in, err := tr.Step(0, [][]byte{[]byte("self"), []byte("out")})
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if string(in[0]) != "self" || string(in[1]) != "in" {
		t.Fatalf("bad inbound: %q %q", in[0], in[1])
	}
	if hits.Load() != 3 || delivered.Load() != 1 {
		t.Fatalf("hits=%d delivered=%d, want 3/1", hits.Load(), delivered.Load())
	}
}

// TestHTTPSendClassification: a 4xx fails immediately as a protocol error
// (no retry can help); exhausted retries against a 5xx classify as
// unreachable.
func TestHTTPSendClassification(t *testing.T) {
	for _, tc := range []struct {
		status  int
		want    ErrKind
		maxHits int64
	}{
		{http.StatusBadRequest, ErrProtocol, 1},
		{http.StatusServiceUnavailable, ErrUnreachable, 3},
	} {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			hits.Add(1)
			http.Error(w, "no", tc.status)
		}))
		reg := NewRegistry()
		tr, err := NewHTTP(context.Background(), HTTPConfig{
			RunID: "r", Rank: 0, PeerURLs: []string{"", srv.URL}, Registry: reg,
			SendRetries: 2, SendBackoff: time.Millisecond, BarrierTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = tr.Step(0, [][]byte{nil, []byte("out")})
		var terr *Error
		if !errors.As(err, &terr) || terr.Kind != tc.want {
			t.Fatalf("status %d: got %v, want %v", tc.status, err, tc.want)
		}
		if hits.Load() != tc.maxHits {
			t.Fatalf("status %d: %d attempts, want %d", tc.status, hits.Load(), tc.maxHits)
		}
		tr.Close()
		srv.Close()
	}
}

// TestHTTPBarrierTimeout: posts succeed but the remote peer never posts
// back — the step fails with a classified barrier timeout.
func TestHTTPBarrierTimeout(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	tr, err := NewHTTP(context.Background(), HTTPConfig{
		RunID: "r", Rank: 0, PeerURLs: []string{"", srv.URL}, Registry: reg,
		BarrierTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, err = tr.Step(0, [][]byte{nil, []byte("out")})
	var terr *Error
	if !errors.As(err, &terr) || terr.Kind != ErrBarrierTimeout {
		t.Fatalf("got %v, want barrier timeout", err)
	}
}

// TestHTTPSinglePeerFastPath: a one-peer "fleet" never dials anything.
func TestHTTPSinglePeerFastPath(t *testing.T) {
	reg := NewRegistry()
	tr, err := NewHTTP(context.Background(), HTTPConfig{
		RunID: "r", Rank: 0, PeerURLs: []string{"http://unreachable.invalid"}, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	in, err := tr.Step(0, [][]byte{[]byte("self")})
	if err != nil || string(in[0]) != "self" {
		t.Fatalf("single-peer step: %v %q", err, in)
	}
}
