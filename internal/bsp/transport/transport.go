// Package transport provides the wire fabric that lets a BSP computation
// span processes: a small synchronous-exchange primitive (Step) that the
// bsp package layers mailbox shipping, reductions, and state synchronization
// on top of.
//
// The design keeps the paper's platform-independent accounting bit-identical
// whether workers are goroutines or daemons: the transport moves opaque
// byte blobs between peers at superstep barriers and never reorders,
// duplicates, or drops data visibly — a delivery either arrives exactly once
// (possibly after internal retries) or the whole step fails with a
// classified *Error. Determinism of the computation is therefore entirely
// the algorithm layer's concern; the transport only has to be exactly-once
// per (step, sender) pair, which every implementation guarantees by keying
// deliveries on that pair and treating re-sends as idempotent overwrites.
//
// Implementations:
//
//   - SimNetwork: an in-memory hub for tests — deterministic, seeded fault
//     injection (drops→retries, partitions, reordering, peer death) with no
//     wall-clock dependence in the failure decisions.
//   - HTTPTransport: the real thing — peers POST length-delimited frame
//     blobs to each other's /v2/bsp/frames endpoint with retry/backoff and
//     collect inbound frames from a Registry until the barrier is full.
package transport

import (
	"fmt"
	"time"
)

// Transport is one peer's handle on the exchange fabric of a distributed
// BSP run. A Transport is used by a single goroutine (the run's driver);
// implementations need not support concurrent Steps.
type Transport interface {
	// Rank is this peer's index in [0, Peers()).
	Rank() int
	// Peers is the number of participating peers.
	Peers() int
	// Step performs one synchronized exchange: out[q] is the blob addressed
	// to peer q (out[Rank()] is returned to self verbatim, never
	// transmitted; nil blobs are valid and arrive as empty). Step blocks
	// until every peer has contributed its blobs for the same step number,
	// then returns the blobs addressed to this peer, indexed by sender
	// rank. Every peer must call Step with the same strictly increasing
	// step sequence — the lockstep discipline the deterministic drivers
	// guarantee by construction. A non-nil error is always a *Error and is
	// terminal: the run cannot continue.
	Step(step uint64, out [][]byte) (in [][]byte, err error)
	// Close releases the peer's resources. Idempotent.
	Close() error
}

// ErrKind classifies terminal transport failures so callers can distinguish
// "the fleet is broken" from "the protocol is broken".
type ErrKind int

const (
	// ErrProtocol: peers diverged (mismatched steps, malformed frames,
	// duplicate conflicting deliveries). Indicates a bug, not an outage.
	ErrProtocol ErrKind = iota
	// ErrUnreachable: delivery retries to a peer were exhausted.
	ErrUnreachable
	// ErrBarrierTimeout: this peer's barrier never filled — some peer
	// stopped stepping (crash, hang, cancellation on its side).
	ErrBarrierTimeout
	// ErrPeerDown: a peer is known dead (crashed mid-run).
	ErrPeerDown
	// ErrClosed: the transport was closed (or its context cancelled) while
	// a step was in flight.
	ErrClosed
)

// String names the kind for logs and error text.
func (k ErrKind) String() string {
	switch k {
	case ErrProtocol:
		return "protocol"
	case ErrUnreachable:
		return "unreachable"
	case ErrBarrierTimeout:
		return "barrier-timeout"
	case ErrPeerDown:
		return "peer-down"
	case ErrClosed:
		return "closed"
	}
	return "unknown"
}

// Error is the classified failure of a distributed exchange. Peer is the
// rank the failure is attributed to (-1 when not attributable).
type Error struct {
	Kind ErrKind
	Peer int
	Step uint64
	Msg  string
}

// Errorf builds a classified transport error.
func Errorf(kind ErrKind, peer int, step uint64, format string, args ...any) *Error {
	return &Error{Kind: kind, Peer: peer, Step: step, Msg: fmt.Sprintf(format, args...)}
}

func (e *Error) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("transport: %s (peer %d, step %d): %s", e.Kind, e.Peer, e.Step, e.Msg)
	}
	return fmt.Sprintf("transport: %s (step %d): %s", e.Kind, e.Step, e.Msg)
}

// DefaultBarrierTimeout bounds how long a peer waits at an exchange barrier
// before declaring the fleet broken. Generous: a barrier closes as soon as
// the slowest peer finishes one superstep of compute.
const DefaultBarrierTimeout = 30 * time.Second
