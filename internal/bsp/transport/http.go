package transport

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Registry is the server-side half of the HTTP transport: it buffers frame
// blobs POSTed by remote peers until the local participant collects them at
// its barrier. One Registry serves a whole daemon; runs are keyed by ID.
//
// Frames can legitimately arrive before the local participant has started
// (the coordinator fans the run out and every peer begins stepping
// immediately), so Deliver creates the inbox on first use; unclaimed
// inboxes are expired lazily so an aborted fan-out cannot leak memory.
type Registry struct {
	mu   sync.Mutex
	runs map[string]*Inbox
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: make(map[string]*Inbox)}
}

// unclaimedTTL bounds how long an inbox nobody ever opened is retained.
const unclaimedTTL = 5 * time.Minute

// Deliver buffers one frame blob for (runID, step, from). Duplicate
// deliveries (client retries after a lost response) are idempotent
// overwrites. Blobs for steps the participant already collected are
// discarded; a step unreasonably far ahead of the collection floor is a
// protocol error (a diverged or malicious peer).
func (r *Registry) Deliver(runID string, step uint64, from int, blob []byte) error {
	ib := r.inbox(runID, false)
	return ib.deliver(step, from, blob)
}

// Open claims the run's inbox for the local participant.
func (r *Registry) Open(runID string) *Inbox {
	return r.inbox(runID, true)
}

// Release drops the run's inbox, failing any blocked collector.
func (r *Registry) Release(runID string) {
	r.mu.Lock()
	ib := r.runs[runID]
	delete(r.runs, runID)
	r.mu.Unlock()
	if ib != nil {
		ib.close()
	}
}

func (r *Registry) inbox(runID string, claim bool) *Inbox {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for id, ib := range r.runs {
		if ib.expired(now) {
			delete(r.runs, id)
			ib.close()
		}
	}
	ib := r.runs[runID]
	if ib == nil {
		ib = &Inbox{
			steps:   make(map[uint64]map[int][]byte),
			wake:    make(chan struct{}),
			created: now,
		}
		r.runs[runID] = ib
	}
	if claim {
		ib.claimed = true
	}
	return ib
}

// Inbox accumulates one run's inbound frames, keyed by (step, sender).
type Inbox struct {
	mu      sync.Mutex
	steps   map[uint64]map[int][]byte
	wake    chan struct{} // closed+replaced on every delivery
	floor   uint64        // steps below this were collected already
	claimed bool
	closed  bool
	created time.Time
}

// stepWindow bounds how far ahead of the collection floor a delivery may
// run. Peers in lockstep are at most one step apart; anything beyond a
// small window means divergence.
const stepWindow = 64

func (ib *Inbox) expired(now time.Time) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return !ib.claimed && now.Sub(ib.created) > unclaimedTTL
}

func (ib *Inbox) close() {
	ib.mu.Lock()
	if !ib.closed {
		ib.closed = true
		close(ib.wake)
	}
	ib.mu.Unlock()
}

func (ib *Inbox) deliver(step uint64, from int, blob []byte) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return Errorf(ErrClosed, from, step, "run is over")
	}
	if step < ib.floor {
		return nil // late duplicate of a collected step: drop silently
	}
	if step > ib.floor+stepWindow {
		return Errorf(ErrProtocol, from, step,
			"delivery %d steps ahead of collection floor %d", step-ib.floor, ib.floor)
	}
	m := ib.steps[step]
	if m == nil {
		m = make(map[int][]byte)
		ib.steps[step] = m
	}
	m[from] = blob
	close(ib.wake)
	ib.wake = make(chan struct{})
	return nil
}

// collect blocks until want senders have delivered for step (or the context
// is cancelled / the barrier timeout expires), then returns and forgets the
// step's blobs.
func (ib *Inbox) collect(ctx context.Context, step uint64, want int, timeout time.Duration) (map[int][]byte, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ib.mu.Lock()
		if ib.closed {
			ib.mu.Unlock()
			return nil, Errorf(ErrClosed, -1, step, "inbox released mid-run")
		}
		if m := ib.steps[step]; len(m) >= want {
			delete(ib.steps, step)
			if step >= ib.floor {
				ib.floor = step + 1
			}
			ib.mu.Unlock()
			return m, nil
		}
		got := len(ib.steps[step])
		wake := ib.wake
		ib.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, Errorf(ErrClosed, -1, step, "cancelled while waiting at barrier: %v", ctx.Err())
		case <-deadline.C:
			return nil, Errorf(ErrBarrierTimeout, -1, step,
				"barrier did not fill within %v (%d/%d peers arrived)", timeout, got, want)
		}
	}
}

// HTTPConfig wires one peer of an HTTP-transported run.
type HTTPConfig struct {
	// RunID names the run fleet-wide; all peers must agree.
	RunID string
	// Rank is this peer's index into PeerURLs.
	Rank int
	// PeerURLs lists every peer's base URL in rank order (the entry at Rank
	// is never dialled).
	PeerURLs []string
	// Registry is the local daemon's inbox registry (the server side of
	// /v2/bsp/frames must deliver into the same one).
	Registry *Registry
	// Client performs the POSTs; nil selects a default with a response
	// header timeout, so one wedged peer cannot hang a send forever.
	Client *http.Client
	// BarrierTimeout bounds the wait for inbound frames per step; 0 selects
	// DefaultBarrierTimeout.
	BarrierTimeout time.Duration
	// SendRetries and SendBackoff shape delivery retry: up to 1+SendRetries
	// attempts with exponential backoff starting at SendBackoff. Zeros
	// select 4 and 50ms.
	SendRetries int
	SendBackoff time.Duration
}

// HTTPTransport exchanges frame blobs between daemons over plain HTTP
// POSTs: send-side retry with exponential backoff makes transient failures
// invisible (deliveries are idempotent per (step, sender)), and the inbox
// barrier classifies everything else — an unreachable peer fails the step
// with ErrUnreachable, a peer that stops stepping with ErrBarrierTimeout.
type HTTPTransport struct {
	cfg   HTTPConfig
	ctx   context.Context
	inbox *Inbox
}

var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{ResponseHeaderTimeout: 30 * time.Second},
}

// NewHTTP builds the transport for one peer of a run. ctx cancels blocked
// sends and barrier waits (use the participant's run context).
func NewHTTP(ctx context.Context, cfg HTTPConfig) (*HTTPTransport, error) {
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.PeerURLs) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d peers", cfg.Rank, len(cfg.PeerURLs))
	}
	if cfg.RunID == "" {
		return nil, fmt.Errorf("transport: empty run ID")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("transport: nil registry")
	}
	if cfg.Client == nil {
		cfg.Client = defaultHTTPClient
	}
	if cfg.BarrierTimeout <= 0 {
		cfg.BarrierTimeout = DefaultBarrierTimeout
	}
	if cfg.SendRetries <= 0 {
		cfg.SendRetries = 4
	}
	if cfg.SendBackoff <= 0 {
		cfg.SendBackoff = 50 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &HTTPTransport{cfg: cfg, ctx: ctx, inbox: cfg.Registry.Open(cfg.RunID)}, nil
}

func (t *HTTPTransport) Rank() int  { return t.cfg.Rank }
func (t *HTTPTransport) Peers() int { return len(t.cfg.PeerURLs) }

// Close releases the run's inbox.
func (t *HTTPTransport) Close() error {
	t.cfg.Registry.Release(t.cfg.RunID)
	return nil
}

func (t *HTTPTransport) Step(step uint64, out [][]byte) ([][]byte, error) {
	peers := len(t.cfg.PeerURLs)
	if len(out) != peers {
		return nil, Errorf(ErrProtocol, t.cfg.Rank, step, "out has %d blobs for %d peers", len(out), peers)
	}
	if peers == 1 {
		return [][]byte{out[0]}, nil
	}
	// Fan the outbound blobs to every remote peer concurrently; the first
	// classified failure wins.
	errs := make(chan error, peers-1)
	var wg sync.WaitGroup
	for q := 0; q < peers; q++ {
		if q == t.cfg.Rank {
			continue
		}
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			errs <- t.post(q, step, out[q])
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	inMap, err := t.inbox.collect(t.ctx, step, peers-1, t.cfg.BarrierTimeout)
	if err != nil {
		return nil, err
	}
	in := make([][]byte, peers)
	in[t.cfg.Rank] = out[t.cfg.Rank]
	for from, blob := range inMap {
		if from < 0 || from >= peers || from == t.cfg.Rank {
			return nil, Errorf(ErrProtocol, from, step, "frame from impossible rank")
		}
		in[from] = blob
	}
	return in, nil
}

// post delivers one blob to peer q with retry/backoff. A 2xx is success, a
// 4xx is a protocol error (retrying cannot help), anything else retries.
func (t *HTTPTransport) post(q int, step uint64, blob []byte) error {
	u := fmt.Sprintf("%s/v2/bsp/frames?run=%s&step=%d&from=%d",
		t.cfg.PeerURLs[q], url.QueryEscape(t.cfg.RunID), step, t.cfg.Rank)
	backoff := t.cfg.SendBackoff
	var lastErr error
	for attempt := 0; attempt <= t.cfg.SendRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-t.ctx.Done():
				return Errorf(ErrClosed, q, step, "cancelled while retrying send: %v", t.ctx.Err())
			}
		}
		req, err := http.NewRequestWithContext(t.ctx, http.MethodPost, u, bytes.NewReader(blob))
		if err != nil {
			return Errorf(ErrProtocol, q, step, "build request: %v", err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := t.cfg.Client.Do(req)
		if err != nil {
			if t.ctx.Err() != nil {
				return Errorf(ErrClosed, q, step, "cancelled mid-send: %v", t.ctx.Err())
			}
			lastErr = err
			continue
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return Errorf(ErrProtocol, q, step, "peer rejected frames: HTTP %d", resp.StatusCode)
		default:
			lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
	}
	return Errorf(ErrUnreachable, q, step, "send retries exhausted: %v", lastErr)
}
