package transport

import (
	"sync"
	"time"

	"graphdiam/internal/rng"
)

// FaultPlan is a seeded, deterministic schedule of network misbehaviour for
// the simulated transport. The zero value is a perfect network. All
// decisions are pure functions of (Seed, step, sender, receiver, attempt) —
// no wall clock, no global RNG — so a failing schedule replays exactly.
type FaultPlan struct {
	// Seed drives every drop decision.
	Seed uint64
	// DropRate is the probability that one delivery attempt is lost (the
	// sender retries transparently; see MaxAttempts).
	DropRate float64
	// MaxAttempts bounds delivery attempts per (step, sender, receiver)
	// before the step fails with ErrUnreachable. 0 selects 8.
	MaxAttempts int
	// Reorder commits inbound blobs in a seeded shuffled order, modelling a
	// network that delivers peers' contributions in arbitrary interleaving.
	// Results must be unaffected: receivers index inbound data by sender
	// rank, never by arrival order.
	Reorder bool
	// Partitions lists windows during which a peer is cut off.
	Partitions []Partition
	// DieAtStep, per rank, crashes that peer when it reaches the given
	// step: its Step call fails with ErrPeerDown and every other peer's
	// barrier on that step fails likewise (deterministically — no timeout
	// needed to detect a simulated death).
	DieAtStep map[int]uint64
}

// Partition cuts one peer off from the rest for steps in [FromStep, ToStep):
// every delivery attempt to or from Peer fails while attempt < FailAttempts.
// With FailAttempts < MaxAttempts the partition "heals" under retry and the
// run completes (with identical results — retries are invisible); with
// FailAttempts >= MaxAttempts it is a hard partition and the run fails
// cleanly with ErrUnreachable.
type Partition struct {
	FromStep, ToStep uint64
	Peer             int
	FailAttempts     int
}

func (p FaultPlan) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 8
	}
	return p.MaxAttempts
}

// SimNetwork is a deterministic in-memory exchange hub connecting the
// simulated peers of one BSP run. Create one per run, hand each participant
// goroutine its Peer(rank) transport, and drive the run exactly as with real
// daemons. Fault injection is configured up front through the FaultPlan.
type SimNetwork struct {
	peers   int
	plan    FaultPlan
	timeout time.Duration

	mu      sync.Mutex
	steps   map[uint64]*simStep
	dead    []bool
	netErr  error
	retries int64
}

type simStep struct {
	blobs   map[int][][]byte
	err     error
	closed  bool
	done    chan struct{}
	claimed int
}

// NewSimNetwork builds a hub for the given peer count. timeout bounds the
// wall-clock barrier wait (a safety net for peers that stop stepping without
// a declared death, e.g. context cancellation); 0 selects 10s.
func NewSimNetwork(peers int, plan FaultPlan, timeout time.Duration) *SimNetwork {
	if peers <= 0 {
		panic("transport: SimNetwork needs at least one peer")
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &SimNetwork{
		peers:   peers,
		plan:    plan,
		timeout: timeout,
		steps:   make(map[uint64]*simStep),
		dead:    make([]bool, peers),
	}
}

// Peer returns rank's transport handle.
func (n *SimNetwork) Peer(rank int) Transport {
	if rank < 0 || rank >= n.peers {
		panic("transport: rank out of range")
	}
	return &simTransport{net: n, rank: rank}
}

// Retries reports how many delivery attempts were dropped and retried so
// far — the fault-injection tests assert it is positive under lossy plans.
func (n *SimNetwork) Retries() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retries
}

// Kill marks rank dead: its next Step fails with ErrPeerDown, and every
// barrier missing its contribution — pending or future — fails immediately
// and deterministically.
func (n *SimNetwork) Kill(rank int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.killLocked(rank, 0)
}

func (n *SimNetwork) killLocked(rank int, step uint64) {
	if n.dead[rank] {
		return
	}
	n.dead[rank] = true
	for _, st := range n.steps {
		if _, contributed := st.blobs[rank]; !contributed {
			n.failStepLocked(st, Errorf(ErrPeerDown, rank, step, "peer died mid-run"))
		}
	}
}

func (n *SimNetwork) failStepLocked(st *simStep, err error) {
	if st.closed {
		return
	}
	st.err = err
	st.closed = true
	close(st.done)
}

// dropped decides one delivery attempt's fate, purely from the plan.
func (n *SimNetwork) dropped(step uint64, from, to, attempt int) bool {
	for _, p := range n.plan.Partitions {
		if step >= p.FromStep && step < p.ToStep &&
			(p.Peer == from || p.Peer == to) && attempt < p.FailAttempts {
			return true
		}
	}
	if n.plan.DropRate <= 0 {
		return false
	}
	x := n.plan.Seed ^ step*0x9e3779b97f4a7c15 ^
		uint64(from+1)*0xbf58476d1ce4e5b9 ^ uint64(to+1)*0x94d049bb133111eb ^
		uint64(attempt+1)*0xd6e8feb86659fd93
	sm := rng.NewSplitMix64(x)
	return float64(sm.Next()>>11)/(1<<53) < n.plan.DropRate
}

type simTransport struct {
	net  *SimNetwork
	rank int
}

func (t *simTransport) Rank() int    { return t.rank }
func (t *simTransport) Peers() int   { return t.net.peers }
func (t *simTransport) Close() error { return nil }

func (t *simTransport) Step(step uint64, out [][]byte) ([][]byte, error) {
	n := t.net
	n.mu.Lock()
	if n.dead[t.rank] {
		n.mu.Unlock()
		return nil, Errorf(ErrPeerDown, t.rank, step, "this peer is dead")
	}
	if die, ok := n.plan.DieAtStep[t.rank]; ok && step >= die {
		n.killLocked(t.rank, step)
		n.mu.Unlock()
		return nil, Errorf(ErrPeerDown, t.rank, step, "scheduled death")
	}
	if n.netErr != nil {
		err := n.netErr
		n.mu.Unlock()
		return nil, err
	}
	st := n.steps[step]
	if st == nil {
		st = &simStep{blobs: make(map[int][][]byte, n.peers), done: make(chan struct{})}
		n.steps[step] = st
	}
	// Simulate this peer's outbound deliveries: each may need retries; a
	// delivery that exhausts its attempts fails the whole step for everyone
	// (the barrier can never fill).
	if !st.closed {
		max := n.plan.maxAttempts()
		for q := 0; q < n.peers && !st.closed; q++ {
			if q == t.rank {
				continue
			}
			attempt := 0
			for n.dropped(step, t.rank, q, attempt) {
				attempt++
				n.retries++
				if attempt >= max {
					n.failStepLocked(st, Errorf(ErrUnreachable, q, step,
						"delivery from peer %d exhausted %d attempts", t.rank, max))
					break
				}
			}
		}
	}
	if !st.closed {
		st.blobs[t.rank] = out
		if len(st.blobs) == n.peers {
			st.closed = true
			close(st.done)
		} else {
			for q, dead := range n.dead {
				if _, contributed := st.blobs[q]; dead && !contributed {
					n.failStepLocked(st, Errorf(ErrPeerDown, q, step, "peer died mid-run"))
					break
				}
			}
		}
	}
	n.mu.Unlock()

	select {
	case <-st.done:
	case <-time.After(n.timeout):
		n.mu.Lock()
		n.failStepLocked(st, Errorf(ErrBarrierTimeout, -1, step,
			"barrier did not fill within %v (%d/%d peers arrived)",
			n.timeout, len(st.blobs), n.peers))
		n.mu.Unlock()
		<-st.done
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if st.err != nil {
		n.netErr = st.err // sticky: the run is over for everyone
		return nil, st.err
	}
	in := make([][]byte, n.peers)
	for _, q := range n.deliveryOrder(step) {
		if blobs := st.blobs[q]; t.rank < len(blobs) {
			in[q] = blobs[t.rank]
		}
	}
	st.claimed++
	if st.claimed == n.peers {
		delete(n.steps, step)
	}
	return in, nil
}

// deliveryOrder is the order inbound contributions are committed in —
// shuffled under FaultPlan.Reorder to model arbitrary network interleaving.
// Receivers index by rank, so the order must be (and is) immaterial.
func (n *SimNetwork) deliveryOrder(step uint64) []int {
	order := make([]int, n.peers)
	for i := range order {
		order[i] = i
	}
	if n.plan.Reorder {
		sm := rng.NewSplitMix64(n.plan.Seed ^ 0xabcd ^ step)
		for i := n.peers - 1; i > 0; i-- {
			j := int(sm.Next() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
	}
	return order
}
