package bsp

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"graphdiam/internal/bsp/transport"
)

// distEngine is the state an Engine carries when its P workers are spread
// across multiple processes. The design is SPMD replication: every peer runs
// the same deterministic driver over the full graph and the full state
// arrays, but executes ParallelFor bodies only for its owned contiguous
// worker range — all control-flow values are combined through the collectives
// below, so every peer takes bit-identical branches in lockstep.
//
// Determinism contract: the total worker count P fixes the partition, the
// message routing, and the metric accounting; the peer count only decides
// which process executes which worker. Collectives fold contributions in
// global worker/rank order (float sums included), so results and the paper's
// rounds/messages/updates counters match the single-process run exactly.
type distEngine struct {
	tr    transport.Transport
	rank  int
	peers int
	// ownLo, ownHi is this peer's owned worker range [ownLo, ownHi).
	ownLo, ownHi int
	// ranges[p] is peer p's owned worker range.
	ranges [][2]int
	// step is the next transport step number; every collective and mailbox
	// exchange consumes exactly one, so replicated drivers stay in lockstep.
	step uint64
	// err is the sticky first transport failure; once set, every subsequent
	// engine operation no-ops and Err() reports it.
	err error
	// tracer mirrors Engine.tracer (set through SetTracer) so transport
	// exchanges can be timed without a back-reference to the engine.
	tracer Tracer
}

// splitRange returns the contiguous slice [lo, hi) of workers owned by peer
// p out of peers — the same largest-remainder split Partition uses for
// items, so worker ownership is deterministic in (workers, peers) alone.
func splitRange(workers, peers, p int) (lo, hi int) {
	per := workers / peers
	rem := workers % peers
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

// NewDistributed returns an engine whose P workers are spread across the
// transport's peers: this process executes only the contiguous worker range
// owned by tr.Rank(), and the collective operations combine per-peer values
// over the wire. workers must be >= tr.Peers() so every peer owns at least
// one worker. The caller retains ownership of tr (Close it after the run).
func NewDistributed(workers int, tr transport.Transport) (*Engine, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("bsp: distributed engine needs an explicit worker count")
	}
	peers := tr.Peers()
	if workers < peers {
		return nil, fmt.Errorf("bsp: %d workers cannot span %d peers (each peer needs one)", workers, peers)
	}
	rank := tr.Rank()
	if rank < 0 || rank >= peers {
		return nil, fmt.Errorf("bsp: transport rank %d out of range for %d peers", rank, peers)
	}
	d := &distEngine{tr: tr, rank: rank, peers: peers, ranges: make([][2]int, peers)}
	for p := 0; p < peers; p++ {
		lo, hi := splitRange(workers, peers, p)
		d.ranges[p] = [2]int{lo, hi}
	}
	d.ownLo, d.ownHi = d.ranges[rank][0], d.ranges[rank][1]
	e := New(workers)
	e.dist = d
	return e, nil
}

// Distributed reports whether the engine's workers span multiple processes.
func (e *Engine) Distributed() bool { return e.dist != nil }

// Rank returns this process's peer rank (0 for a single-process engine).
func (e *Engine) Rank() int {
	if e.dist == nil {
		return 0
	}
	return e.dist.rank
}

// Primary reports whether this process meters fleet-level counters: true for
// single-process engines and for peer rank 0. Counts that are computed
// globally (e.g. "nodes selected this stage") would be multiplied by the
// peer count if every replica metered them; guarding with Primary keeps the
// globally-summed snapshot identical to the single-process run.
func (e *Engine) Primary() bool { return e.dist == nil || e.dist.rank == 0 }

// OwnedWorkers returns the contiguous worker range [lo, hi) this process
// executes: (0, Workers()) for a single-process engine.
func (e *Engine) OwnedWorkers() (lo, hi int) {
	if e.dist == nil {
		return 0, e.workers
	}
	return e.dist.ownLo, e.dist.ownHi
}

// OwnsWorker reports whether worker w executes in this process.
func (e *Engine) OwnsWorker(w int) bool {
	if e.dist == nil {
		return true
	}
	return w >= e.dist.ownLo && w < e.dist.ownHi
}

// nodeSpan returns the contiguous item range [s, t) of [0, n) owned by peer
// p — the union of the Partition ranges of p's workers.
func (d *distEngine) nodeSpan(e *Engine, n, p int) (s, t int) {
	wl, wh := d.ranges[p][0], d.ranges[p][1]
	s, _ = e.Partition(n, wl)
	_, t = e.Partition(n, wh-1)
	return s, t
}

// netStep runs one transport exchange, advancing the lockstep counter. The
// first failure is sticky: the run is over and Err() reports it.
func (d *distEngine) netStep(out [][]byte) ([][]byte, error) {
	if d.err != nil {
		return nil, d.err
	}
	var t0 time.Time
	if d.tracer != nil {
		t0 = time.Now()
	}
	in, err := d.tr.Step(d.step, out)
	if d.tracer != nil {
		d.tracer.ObserveComm(time.Since(t0))
	}
	d.step++
	if err != nil {
		d.err = err
		return nil, err
	}
	return in, nil
}

// fail records a protocol-level failure detected locally (bad peer payload),
// making it sticky exactly like a transport failure.
func (d *distEngine) fail(kind transport.ErrKind, peer int, format string, args ...any) error {
	err := transport.Errorf(kind, peer, d.step, format, args...)
	if d.err == nil {
		d.err = err
	}
	return err
}

// allgather broadcasts payload to every peer and returns all peers' payloads
// indexed by rank (own payload included verbatim).
func (d *distEngine) allgather(payload []byte) ([][]byte, error) {
	out := make([][]byte, d.peers)
	for q := range out {
		out[q] = payload
	}
	return d.netStep(out)
}

// allgatherFixed is allgather for fixed-size scalar payloads, validating
// every peer sent exactly size bytes.
func (d *distEngine) allgatherFixed(payload []byte, size int) ([][]byte, error) {
	var t0 time.Time
	if d.tracer != nil {
		t0 = time.Now()
	}
	in, err := d.allgather(payload)
	if d.tracer != nil {
		d.tracer.ObserveAllreduce(time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	for p, blob := range in {
		if len(blob) != size {
			return nil, d.fail(transport.ErrProtocol, p,
				"collective payload is %d bytes, want %d", len(blob), size)
		}
	}
	return in, nil
}

// GlobalSumInt sums v across peers. Identity for single-process engines; on
// transport failure it returns 0 with the error sticky in Err().
func (e *Engine) GlobalSumInt(v int) int {
	d := e.dist
	if d == nil {
		return v
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	in, err := d.allgatherFixed(buf[:], 8)
	if err != nil {
		return 0
	}
	var total int64
	for _, blob := range in {
		total += int64(binary.LittleEndian.Uint64(blob))
	}
	return int(total)
}

// GlobalSum2 sums the pair (a, b) across peers in one exchange.
func (e *Engine) GlobalSum2(a, b int64) (int64, int64) {
	d := e.dist
	if d == nil {
		return a, b
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(a))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b))
	in, err := d.allgatherFixed(buf[:], 16)
	if err != nil {
		return 0, 0
	}
	var sa, sb int64
	for _, blob := range in {
		sa += int64(binary.LittleEndian.Uint64(blob[0:]))
		sb += int64(binary.LittleEndian.Uint64(blob[8:]))
	}
	return sa, sb
}

// GlobalOr ORs v across peers ("does any peer have pending work?").
func (e *Engine) GlobalOr(v bool) bool {
	d := e.dist
	if d == nil {
		return v
	}
	buf := []byte{0}
	if v {
		buf[0] = 1
	}
	in, err := d.allgatherFixed(buf, 1)
	if err != nil {
		return false
	}
	for _, blob := range in {
		if blob[0] != 0 {
			return true
		}
	}
	return false
}

// GlobalMinNonNeg returns the minimum non-negative value across peers, or -1
// if every peer reported a negative sentinel ("no bucket here").
func (e *Engine) GlobalMinNonNeg(v int) int {
	d := e.dist
	if d == nil {
		return v
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	in, err := d.allgatherFixed(buf[:], 8)
	if err != nil {
		return -1
	}
	best := -1
	for _, blob := range in {
		if x := int64(binary.LittleEndian.Uint64(blob)); x >= 0 && (best < 0 || int(x) < best) {
			best = int(x)
		}
	}
	return best
}

// GlobalArgMin combines per-peer (key, id) candidates: the smallest key wins,
// earlier rank winning ties; id < 0 marks "no candidate". Folding peer bests
// in rank order with a strict < reproduces exactly the single-process left
// fold over workers in order, because worker ranges are rank-ordered.
func (e *Engine) GlobalArgMin(key float64, id int64) (float64, int64) {
	d := e.dist
	if d == nil {
		return key, id
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(key))
	binary.LittleEndian.PutUint64(buf[8:], uint64(id))
	in, err := d.allgatherFixed(buf[:], 16)
	if err != nil {
		return 0, -1
	}
	bestKey, bestID := math.Inf(1), int64(-1)
	for _, blob := range in {
		k := math.Float64frombits(binary.LittleEndian.Uint64(blob[0:]))
		u := int64(binary.LittleEndian.Uint64(blob[8:]))
		if u >= 0 && (bestID < 0 || k < bestKey) {
			bestKey, bestID = k, u
		}
	}
	if bestID < 0 {
		return key, -1
	}
	return bestKey, bestID
}

// SyncInt32s makes vals identical on every peer by shipping each peer's
// owned contiguous span (the union of its workers' Partition ranges of
// len(vals)) to everyone. No-op for single-process engines.
func (e *Engine) SyncInt32s(vals []int32) {
	d := e.dist
	if d == nil {
		return
	}
	n := len(vals)
	s, t := d.nodeSpan(e, n, d.rank)
	payload := make([]byte, 4*(t-s))
	for i, v := range vals[s:t] {
		binary.LittleEndian.PutUint32(payload[4*i:], uint32(v))
	}
	in, err := d.allgather(payload)
	if err != nil {
		return
	}
	for p, blob := range in {
		if p == d.rank {
			continue
		}
		ps, pt := d.nodeSpan(e, n, p)
		if len(blob) != 4*(pt-ps) {
			d.fail(transport.ErrProtocol, p, "sync span is %d bytes, want %d", len(blob), 4*(pt-ps))
			return
		}
		for i := ps; i < pt; i++ {
			vals[i] = int32(binary.LittleEndian.Uint32(blob[4*(i-ps):]))
		}
	}
}

// SyncFloat64s makes vals identical on every peer; see SyncInt32s.
func (e *Engine) SyncFloat64s(vals []float64) {
	d := e.dist
	if d == nil {
		return
	}
	n := len(vals)
	s, t := d.nodeSpan(e, n, d.rank)
	payload := make([]byte, 8*(t-s))
	for i, v := range vals[s:t] {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	in, err := d.allgather(payload)
	if err != nil {
		return
	}
	for p, blob := range in {
		if p == d.rank {
			continue
		}
		ps, pt := d.nodeSpan(e, n, p)
		if len(blob) != 8*(pt-ps) {
			d.fail(transport.ErrProtocol, p, "sync span is %d bytes, want %d", len(blob), 8*(pt-ps))
			return
		}
		for i := ps; i < pt; i++ {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*(i-ps):]))
		}
	}
}

// GlobalSnapshot returns the fleet-wide metric snapshot: messages and
// updates summed across peers (each peer meters only its owned workers'
// work), rounds taken from this peer after verifying every peer agrees — a
// divergence in the replicated round count means the lockstep discipline
// broke, which is reported as a sticky protocol error. For single-process
// engines this is exactly Metrics().Snapshot().
func (e *Engine) GlobalSnapshot() Snapshot {
	local := e.metrics.Snapshot()
	d := e.dist
	if d == nil {
		return local
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(local.Rounds))
	binary.LittleEndian.PutUint64(buf[8:], uint64(local.Messages))
	binary.LittleEndian.PutUint64(buf[16:], uint64(local.Updates))
	in, err := d.allgatherFixed(buf[:], 24)
	if err != nil {
		return Snapshot{}
	}
	global := Snapshot{Rounds: local.Rounds}
	for p, blob := range in {
		rounds := int64(binary.LittleEndian.Uint64(blob[0:]))
		if rounds != local.Rounds {
			d.fail(transport.ErrProtocol, p,
				"replicated round counts diverged: peer has %d, local has %d", rounds, local.Rounds)
			return Snapshot{}
		}
		global.Messages += int64(binary.LittleEndian.Uint64(blob[8:]))
		global.Updates += int64(binary.LittleEndian.Uint64(blob[16:]))
	}
	return global
}

// gatherInts fills the entries of the per-worker partial array owned by
// remote peers, so a reduction can fold all P contributions in worker order.
func (d *distEngine) gatherInts(e *Engine, partial []int) error {
	payload := make([]byte, 8*(d.ownHi-d.ownLo))
	for i, v := range partial[d.ownLo:d.ownHi] {
		binary.LittleEndian.PutUint64(payload[8*i:], uint64(int64(v)))
	}
	in, err := d.allgather(payload)
	if err != nil {
		return err
	}
	for p, blob := range in {
		if p == d.rank {
			continue
		}
		pl, ph := d.ranges[p][0], d.ranges[p][1]
		if len(blob) != 8*(ph-pl) {
			return d.fail(transport.ErrProtocol, p, "partials span %d bytes, want %d", len(blob), 8*(ph-pl))
		}
		for w := pl; w < ph; w++ {
			partial[w] = int(int64(binary.LittleEndian.Uint64(blob[8*(w-pl):])))
		}
	}
	return nil
}

// gatherFloat64s is gatherInts for float64 partials. Filling the full array
// and folding sequentially in worker order keeps float combining bit-exact
// against the single-process run.
func (d *distEngine) gatherFloat64s(e *Engine, partial []float64) error {
	payload := make([]byte, 8*(d.ownHi-d.ownLo))
	for i, v := range partial[d.ownLo:d.ownHi] {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	in, err := d.allgather(payload)
	if err != nil {
		return err
	}
	for p, blob := range in {
		if p == d.rank {
			continue
		}
		pl, ph := d.ranges[p][0], d.ranges[p][1]
		if len(blob) != 8*(ph-pl) {
			return d.fail(transport.ErrProtocol, p, "partials span %d bytes, want %d", len(blob), 8*(ph-pl))
		}
		for w := pl; w < ph; w++ {
			partial[w] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*(w-pl):]))
		}
	}
	return nil
}
