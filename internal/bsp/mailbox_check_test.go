//go:build bspcheck

package bsp

import (
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestMailboxCheckCatchesConcurrentWriters: with the bspcheck tag, a second
// writer on the same src — simulated by holding the src busy-flag open —
// panics, while writers on distinct sources are fine.
func TestMailboxCheckCatchesConcurrentWriters(t *testing.T) {
	m := NewMailboxes[int](4)
	m.chk.beginSrc(0) // a Send on src 0 is "in flight"
	mustPanic(t, "Send on busy src", func() { m.Send(0, 1, 7) })
	mustPanic(t, "Clear during Send", func() { m.Clear() })
	mustPanic(t, "CountTo during Send", func() { m.CountTo(1) })
	m.chk.endSrc(0)

	// After the writer finishes, everything is permitted again.
	m.Send(0, 1, 7)
	if got := m.CountTo(1); got != 1 {
		t.Fatalf("CountTo(1) = %d after legal send", got)
	}
	m.Clear()

	// Concurrent sends on distinct sources are the intended use.
	var wg sync.WaitGroup
	for src := 0; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Send(src, (src+i)%4, i)
			}
		}(src)
	}
	wg.Wait()
}
