//go:build bspcheck

package bsp

import (
	"fmt"
	"sync/atomic"
)

// mailboxCheck asserts the documented mailbox discipline at runtime:
// a single writer per src (Send may run concurrently only for distinct
// sources) and no whole-mailbox operations (Clear, CountTo) while any
// sender is mid-Send. Violations panic with the offending source.
//
// Enabled by the bspcheck build tag; the default build uses the no-op
// twin in mailcheck_off.go. The transport layer multiplies the ways to
// break this discipline (a decoder writing while a sender still runs),
// so the race CI lane builds the bsp tests with -tags bspcheck.
type mailboxCheck struct {
	busy []atomic.Int32
}

func (c *mailboxCheck) init(workers int) {
	c.busy = make([]atomic.Int32, workers)
}

func (c *mailboxCheck) beginSrc(src int) {
	if !c.busy[src].CompareAndSwap(0, 1) {
		panic(fmt.Sprintf("bsp: concurrent mailbox writers on src %d (single-writer-per-src discipline violated)", src))
	}
}

func (c *mailboxCheck) endSrc(src int) {
	c.busy[src].Store(0)
}

func (c *mailboxCheck) quiesced(op string) {
	for src := range c.busy {
		if c.busy[src].Load() != 0 {
			panic(fmt.Sprintf("bsp: Mailboxes.%s while src %d is mid-Send (must run after the barrier)", op, src))
		}
	}
}
