// Package quotient builds the weighted quotient graph of a clustering and
// computes its diameter — the second half of the paper's diameter
// approximation (Section 4).
//
// Given a clustering with per-node center assignments c_u and center
// distances d_u, the quotient graph G_C has one node per cluster and, for
// every edge (u,v) of G with c_u ≠ c_v, an edge between the clusters of u
// and v of weight w(u,v) + d_u + d_v (keeping the minimum over parallel
// edges). The diameter estimate is Φ(G_C) + 2R, which is conservative:
// it never underestimates Φ(G).
package quotient

import (
	"slices"

	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/graph"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

// Build constructs the weighted quotient graph from per-node center IDs and
// center-distance upper bounds, as produced by core.Cluster. It returns the
// quotient and the original center node ID of each quotient node (quotient
// node i corresponds to centers[i]). Edge deduplication runs in parallel on
// e (one map round and one merge round in MR terms).
func Build(g *graph.Graph, center []int32, dist []float64, e *bsp.Engine) (*graph.Graph, []graph.NodeID) {
	n := g.NumNodes()
	// Dense renumbering of centers.
	seen := make([]bool, n)
	for _, c := range center {
		seen[c] = true
	}
	var centers []graph.NodeID
	for u := 0; u < n; u++ {
		if seen[u] {
			centers = append(centers, graph.NodeID(u))
		}
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	for i, c := range centers {
		idx[c] = int32(i)
	}

	// Parallel edge projection: each worker dedups its share locally.
	P := e.Workers()
	locals := make([]map[uint64]float64, P)
	e.Superstep(n, func(w, start, end int) {
		m := make(map[uint64]float64)
		for u := start; u < end; u++ {
			cu := idx[center[u]]
			du := dist[u]
			ts, ws := g.Neighbors(graph.NodeID(u))
			for i, v := range ts {
				cv := idx[center[v]]
				if cu == cv {
					continue
				}
				a, b := cu, cv
				if a > b {
					a, b = b, a
				}
				key := uint64(a)<<32 | uint64(b)
				wq := ws[i] + du + dist[v]
				if old, ok := m[key]; !ok || wq < old {
					m[key] = wq
				}
			}
		}
		locals[w] = m
	})
	// Merge (the shuffle+reduce of the dedup round).
	merged := make(map[uint64]float64)
	for _, m := range locals {
		for k, v := range m {
			if old, ok := merged[k]; !ok || v < old {
				merged[k] = v
			}
		}
	}
	e.Metrics().AddRounds(1)
	e.Metrics().AddMessages(int64(len(merged)))

	b := graph.NewBuilder(len(centers), len(merged))
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		b.AddEdge(graph.NodeID(k>>32), graph.NodeID(k&0xffffffff), merged[k])
	}
	return b.Build(), centers
}

// DiameterOptions controls how the quotient diameter is computed.
type DiameterOptions struct {
	// ExactThreshold is the maximum quotient size for which the diameter
	// is computed exactly by all-pairs Dijkstra (parallel). The paper
	// chooses τ so the quotient fits in one machine's memory; this is the
	// analogous knob. Default 4096.
	ExactThreshold int
	// Sweeps is the number of iterated farthest-node sweeps used on
	// quotients above the threshold. Default 16.
	Sweeps int
}

func (o DiameterOptions) withDefaults() DiameterOptions {
	if o.ExactThreshold <= 0 {
		o.ExactThreshold = 4096
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 16
	}
	return o
}

// Diameter computes (or tightly estimates) the weighted diameter of the
// quotient graph q. Below opts.ExactThreshold nodes it is exact; above, it
// falls back to iterated farthest-node sweeps from every component, which
// yields a lower bound on Φ(G_C) that is near-exact in practice (the 2R
// additive term of the overall estimate keeps the final CL-DIAM output an
// empirical upper bound; see EXPERIMENTS.md).
func Diameter(q *graph.Graph, e *bsp.Engine, opts DiameterOptions) float64 {
	o := opts.withDefaults()
	n := q.NumNodes()
	if n == 0 {
		return 0
	}
	if n <= o.ExactThreshold {
		return validate.ExactDiameter(q, e)
	}
	label, k := cc.Components(q)
	reps := make([]graph.NodeID, k)
	found := make([]bool, k)
	for u, l := range label {
		if !found[l] {
			found[l] = true
			reps[l] = graph.NodeID(u)
		}
	}
	best := 0.0
	for _, r := range reps {
		if lb, _ := validate.LowerBound(q, r, o.Sweeps); lb > best {
			best = lb
		}
	}
	return best
}

// Eccentric returns the quotient node with maximum eccentricity estimate
// found by a double sweep from node 0, useful for picking SSSP sources.
func Eccentric(q *graph.Graph) graph.NodeID {
	if q.NumNodes() == 0 {
		return 0
	}
	dist := sssp.Dijkstra(q, 0)
	_, far := sssp.Eccentricity(dist)
	return far
}
