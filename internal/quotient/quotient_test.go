package quotient

import (
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

func TestBuildTwoClusterPath(t *testing.T) {
	// Path 0-1-2-3 (unit weights), clusters {0,1} centered at 0 and
	// {2,3} centered at 3. d = [0,1,1,0]. The single cut edge (1,2) maps
	// to a quotient edge of weight 1 + d1 + d2 = 3.
	g := gen.Path(4)
	center := []int32{0, 0, 3, 3}
	dist := []float64{0, 1, 1, 0}
	q, centers := Build(g, center, dist, bsp.New(2))
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Fatalf("quotient shape: n=%d m=%d", q.NumNodes(), q.NumEdges())
	}
	if len(centers) != 2 || centers[0] != 0 || centers[1] != 3 {
		t.Fatalf("centers = %v", centers)
	}
	if w, ok := q.EdgeWeight(0, 1); !ok || w != 3 {
		t.Fatalf("quotient edge weight = %v, %v", w, ok)
	}
}

func TestBuildKeepsMinimumParallelEdge(t *testing.T) {
	// Two clusters joined by two cut edges of different projected weight.
	b := graph.NewBuilder(4, 4)
	b.AddEdge(0, 1, 1) // intra
	b.AddEdge(2, 3, 1) // intra
	b.AddEdge(0, 2, 5) // cut: 5 + 0 + 0 = 5
	b.AddEdge(1, 3, 1) // cut: 1 + 1 + 1 = 3
	g := b.Build()
	center := []int32{0, 0, 2, 2}
	dist := []float64{0, 1, 0, 1}
	q, _ := Build(g, center, dist, bsp.New(2))
	if w, _ := q.EdgeWeight(0, 1); w != 3 {
		t.Fatalf("quotient kept weight %v, want min 3", w)
	}
}

func TestBuildSingletonClustering(t *testing.T) {
	// Every node its own cluster: the quotient is the graph itself.
	r := rng.New(1)
	g := gen.UniformWeights(gen.Mesh(5), r)
	n := g.NumNodes()
	center := make([]int32, n)
	dist := make([]float64, n)
	for i := range center {
		center[i] = int32(i)
	}
	q, centers := Build(g, center, dist, bsp.New(4))
	if q.NumNodes() != n || q.NumEdges() != g.NumEdges() {
		t.Fatalf("quotient of singletons: n=%d m=%d, want %d/%d",
			q.NumNodes(), q.NumEdges(), n, g.NumEdges())
	}
	if len(centers) != n {
		t.Fatal("centers incomplete")
	}
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w2, ok := q.EdgeWeight(u, v); !ok || w2 != w {
			t.Fatalf("edge (%d,%d) weight %v vs %v", u, v, w, w2)
		}
	})
}

func TestBuildOneCluster(t *testing.T) {
	g := gen.Path(5)
	center := []int32{2, 2, 2, 2, 2}
	dist := []float64{2, 1, 0, 1, 2}
	q, centers := Build(g, center, dist, bsp.New(2))
	if q.NumNodes() != 1 || q.NumEdges() != 0 {
		t.Fatalf("one-cluster quotient: n=%d m=%d", q.NumNodes(), q.NumEdges())
	}
	if len(centers) != 1 || centers[0] != 2 {
		t.Fatalf("centers = %v", centers)
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(3)
	g := gen.UniformWeights(gen.GNM(120, 400, r), r)
	n := g.NumNodes()
	center := make([]int32, n)
	dist := make([]float64, n)
	for i := range center {
		center[i] = int32(i % 7 * (n / 7)) // 7 arbitrary clusters
		dist[i] = float64(i%5) * 0.1
	}
	// Make the designated centers self-centered with zero dist.
	for i := 0; i < 7; i++ {
		c := i * (n / 7)
		center[c] = int32(c)
		dist[c] = 0
	}
	q1, _ := Build(g, center, dist, bsp.New(1))
	q8, _ := Build(g, center, dist, bsp.New(8))
	if q1.NumNodes() != q8.NumNodes() || q1.NumEdges() != q8.NumEdges() {
		t.Fatal("quotient depends on worker count")
	}
	q1.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if w2, ok := q8.EdgeWeight(u, v); !ok || w2 != w {
			t.Fatalf("edge (%d,%d): %v vs %v", u, v, w, w2)
		}
	})
}

func TestDiameterExactSmall(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 2, 3})
	d := Diameter(g, bsp.New(2), DiameterOptions{})
	if d != 6 {
		t.Fatalf("diameter = %v, want 6", d)
	}
}

func TestDiameterSweepFallback(t *testing.T) {
	// Force the sweep path with a tiny exact threshold; on a path the
	// double sweep is exact.
	g := gen.Path(50)
	d := Diameter(g, bsp.New(2), DiameterOptions{ExactThreshold: 10, Sweeps: 3})
	if d != 49 {
		t.Fatalf("sweep diameter = %v, want 49", d)
	}
}

func TestDiameterSweepDisconnected(t *testing.T) {
	b := graph.NewBuilder(12, 0)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 6; i < 11; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 2)
	}
	g := b.Build()
	// Second component has diameter 10; sweeps must visit both.
	d := Diameter(g, bsp.New(2), DiameterOptions{ExactThreshold: 1, Sweeps: 3})
	if d != 10 {
		t.Fatalf("disconnected sweep diameter = %v, want 10", d)
	}
}

func TestDiameterEmpty(t *testing.T) {
	if d := Diameter(graph.NewBuilder(0, 0).Build(), bsp.New(1), DiameterOptions{}); d != 0 {
		t.Fatalf("empty diameter = %v", d)
	}
}

func TestDiameterSweepCloseToExact(t *testing.T) {
	r := rng.New(5)
	g := gen.UniformWeights(gen.Mesh(12), r)
	exact := validate.ExactDiameter(g, bsp.New(4))
	sweep := Diameter(g, bsp.New(4), DiameterOptions{ExactThreshold: 1, Sweeps: 8})
	if sweep > exact+1e-9 {
		t.Fatalf("sweep %v exceeds exact %v", sweep, exact)
	}
	if sweep < 0.75*exact {
		t.Fatalf("sweep %v too far below exact %v", sweep, exact)
	}
}

func TestEccentric(t *testing.T) {
	g := gen.Path(30)
	far := Eccentric(g)
	if far != 29 {
		t.Fatalf("Eccentric = %d, want 29 (far end from node 0)", far)
	}
}
