package sssp

import (
	"context"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

// TestDeltaSteppingCoalescingEquivalence: with relaxation coalescing on and
// off, parallel Δ-stepping must produce identical distances and identical
// cost counters (rounds, logical relaxations, updates), at several worker
// counts.
func TestDeltaSteppingCoalescingEquivalence(t *testing.T) {
	r := rng.New(21)
	graphs := map[string]*graph.Graph{
		"road": gen.RoadNetwork(gen.DefaultRoadNetworkOptions(20), r.Split()),
		"rmat": gen.UniformWeights(gen.RMatDefault(8, r.Split()), r.Split()),
	}
	defer func() { coalesceRelaxations = true }()
	for name, g := range graphs {
		src := graph.NodeID(g.NumNodes() / 3)
		delta := SuggestDelta(g)
		for _, workers := range []int{1, 4, 8} {
			run := func(coalesce bool) DeltaResult {
				coalesceRelaxations = coalesce
				e := bsp.New(workers)
				defer e.Close()
				res, err := DeltaStepping(context.Background(), g, src, delta, e)
				if err != nil {
					t.Fatalf("%s workers=%d coalesce=%t: %v", name, workers, coalesce, err)
				}
				return res
			}
			on := run(true)
			off := run(false)
			if on.Rounds != off.Rounds || on.Relaxations != off.Relaxations || on.Updates != off.Updates {
				t.Fatalf("%s workers=%d: counters differ: coalesced {r=%d m=%d u=%d} vs {r=%d m=%d u=%d}",
					name, workers, on.Rounds, on.Relaxations, on.Updates,
					off.Rounds, off.Relaxations, off.Updates)
			}
			for v := range on.Dist {
				if on.Dist[v] != off.Dist[v] {
					t.Fatalf("%s workers=%d: dist[%d] %v vs %v", name, workers, v, on.Dist[v], off.Dist[v])
				}
			}
		}
	}
}
