package sssp

import (
	"math"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
)

func TestBellmanFordBSPMatchesDijkstra(t *testing.T) {
	r := rng.New(81)
	g := gen.UniformWeights(gen.GNM(250, 800, r), r)
	want := Dijkstra(g, 0)
	for _, workers := range []int{1, 3, 8} {
		got := mustBellmanBSP(t, g, 0, bsp.New(workers))
		for i := range want {
			if math.Abs(want[i]-got.Dist[i]) > 1e-9 &&
				!(math.IsInf(want[i], 1) && math.IsInf(got.Dist[i], 1)) {
				t.Fatalf("P=%d node %d: %v vs %v", workers, i, want[i], got.Dist[i])
			}
		}
	}
}

func TestBellmanFordBSPRoundsEqualTreeDepthPlusOne(t *testing.T) {
	g := gen.Path(12)
	res := mustBellmanBSP(t, g, 0, bsp.New(2))
	// 11 productive supersteps + 1 that improves nothing.
	if res.Rounds != 12 {
		t.Fatalf("rounds = %d, want 12", res.Rounds)
	}
}

func TestBellmanFordBSPNeedsMoreRoundsThanDeltaStepping(t *testing.T) {
	// The paper's point about the Bellman–Ford end of the Δ spectrum:
	// unlimited Δ costs a round per tree-depth level but each round is
	// heavy; tuned Δ-stepping balances the two. On a uniform-weight mesh,
	// Bellman–Ford's rounds upper-bound any Δ's and its work is no less
	// than the tuned run's.
	r := rng.New(82)
	g := gen.UniformWeights(gen.Mesh(20), r)
	bf := mustBellmanBSP(t, g, 0, bsp.New(2))
	ds := DeltaSteppingSeq(g, 0, 100) // effectively one bucket too
	if bf.Work() < ds.Work()/4 {
		t.Fatalf("unexpected work profile: BF %d, one-bucket ΔS %d", bf.Work(), ds.Work())
	}
	if bf.Rounds < 2 {
		t.Fatalf("rounds = %d", bf.Rounds)
	}
}

func BenchmarkBellmanFordBSPMesh48(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(48), rng.New(1))
	e := bsp.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBellmanBSP(b, g, 0, e)
	}
}
