package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/mr"
	"graphdiam/internal/rng"
)

func TestDijkstraIntegralMatchesFloat(t *testing.T) {
	r := rng.New(3)
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(24), r) // integral weights
	want := Dijkstra(g, 0)
	got := DijkstraIntegral(g, 0)
	for i := range want {
		if math.IsInf(want[i], 1) {
			if got[i] != math.MaxUint64 {
				t.Fatalf("node %d: want unreached, got %d", i, got[i])
			}
			continue
		}
		if float64(got[i]) != want[i] {
			t.Fatalf("node %d: integral %d vs float %v", i, got[i], want[i])
		}
	}
}

func TestDijkstraIntegralRejectsFractionalWeights(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddEdge(0, 1, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on fractional weight")
		}
	}()
	DijkstraIntegral(b.Build(), 0)
}

func TestDijkstraPairingMatches(t *testing.T) {
	r := rng.New(4)
	g := gen.UniformWeights(gen.GNM(150, 500, r), r)
	want := Dijkstra(g, 3)
	got := DijkstraPairing(g, 3)
	for i := range want {
		if want[i] != got[i] && !(math.IsInf(want[i], 1) && math.IsInf(got[i], 1)) {
			t.Fatalf("node %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestMultiSourceSingleEqualsDijkstra(t *testing.T) {
	r := rng.New(5)
	g := gen.UniformWeights(gen.Mesh(10), r)
	want := Dijkstra(g, 7)
	dist, nearest := MultiSource(g, []graph.NodeID{7})
	for i := range want {
		if want[i] != dist[i] {
			t.Fatalf("node %d: %v vs %v", i, want[i], dist[i])
		}
		if !math.IsInf(dist[i], 1) && nearest[i] != 7 {
			t.Fatalf("node %d: nearest %d, want 7", i, nearest[i])
		}
	}
}

func TestMultiSourceIsMinOverSources(t *testing.T) {
	r := rng.New(6)
	g := gen.UniformWeights(gen.GNM(120, 400, r), r)
	sources := []graph.NodeID{0, 17, 60}
	dist, nearest := MultiSource(g, sources)
	per := make([][]float64, len(sources))
	for i, s := range sources {
		per[i] = Dijkstra(g, s)
	}
	for u := 0; u < g.NumNodes(); u++ {
		best := math.Inf(1)
		for i := range sources {
			if per[i][u] < best {
				best = per[i][u]
			}
		}
		if dist[u] != best {
			t.Fatalf("node %d: multi %v, min-of-singles %v", u, dist[u], best)
		}
		if !math.IsInf(best, 1) {
			// nearest must attain the minimum.
			found := false
			for i, s := range sources {
				if nearest[u] == int32(s) && per[i][u] == best {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d: nearest %d does not attain min", u, nearest[u])
			}
		}
	}
}

func TestMultiSourceEmptySources(t *testing.T) {
	g := gen.Path(5)
	dist, nearest := MultiSource(g, nil)
	for i := range dist {
		if !math.IsInf(dist[i], 1) || nearest[i] != -1 {
			t.Fatal("no sources should leave everything unreached")
		}
	}
}

func TestBellmanFordMRMatchesDijkstra(t *testing.T) {
	r := rng.New(7)
	g := gen.UniformWeights(gen.GNM(80, 240, r), r)
	want := Dijkstra(g, 0)
	e := mr.NewEngine(4, 0)
	got := BellmanFordMR(g, 0, e)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 && !(math.IsInf(want[i], 1) && math.IsInf(got[i], 1)) {
			t.Fatalf("node %d: %v vs %v", i, want[i], got[i])
		}
	}
	if e.Rounds() < 1 {
		t.Fatal("no MR rounds recorded")
	}
}

func TestBellmanFordMRRoundsEqualTreeDepth(t *testing.T) {
	// On a unit path of 8 edges from one end: 8 productive rounds plus one
	// final round in which the last node's messages improve nothing.
	g := gen.Path(9)
	e := mr.NewEngine(2, 0)
	BellmanFordMR(g, 0, e)
	if e.Rounds() != 9 {
		t.Fatalf("rounds = %d, want 9", e.Rounds())
	}
}

// Property: all four exact SSSP implementations agree.
func TestAllSSSPImplementationsAgree(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := gen.IntegralUniformWeights(gen.GNM(60, 180, r), 50, r)
		a := Dijkstra(g, 0)
		b := DijkstraPairing(g, 0)
		c := DijkstraIntegral(g, 0)
		d := BellmanFordMR(g, 0, mr.NewEngine(2, 0))
		for i := range a {
			inf := math.IsInf(a[i], 1)
			if inf != math.IsInf(b[i], 1) || inf != (c[i] == math.MaxUint64) || inf != math.IsInf(d[i], 1) {
				return false
			}
			if inf {
				continue
			}
			if a[i] != b[i] || a[i] != float64(c[i]) || math.Abs(a[i]-d[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraIntegralRoad(b *testing.B) {
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(64), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DijkstraIntegral(g, 0)
	}
}

func BenchmarkDijkstraPairingMesh64(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(64), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DijkstraPairing(g, 0)
	}
}

func BenchmarkMultiSource64Sources(b *testing.B) {
	r := rng.New(2)
	g := gen.UniformWeights(gen.Mesh(64), r)
	sources := make([]graph.NodeID, 64)
	for i := range sources {
		sources[i] = graph.NodeID(r.Intn(g.NumNodes()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSource(g, sources)
	}
}
