package sssp

import (
	"context"
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
)

// BellmanFordBSP runs frontier-based Bellman–Ford on the BSP engine: each
// superstep relaxes all edges of the nodes improved in the previous step,
// routing requests through mailboxes to the owners. It is the Δ→∞ limit of
// Δ-stepping (one bucket, no heavy phase) and the round-complexity
// worst case the paper's Section 1 discusses: rounds = shortest-path tree
// depth + 1, with no way to trade rounds for work.
//
// Results are exact; metrics accumulate in the engine and the returned
// DeltaResult (Delta is reported as +Inf). Cancellation of ctx is observed
// at superstep barriers; a cancelled run returns ctx's error.
func BellmanFordBSP(ctx context.Context, g *graph.Graph, src graph.NodeID, e *bsp.Engine) (DeltaResult, error) {
	e.Bind(ctx)
	n := g.NumNodes()
	res := DeltaResult{Dist: make([]float64, n), Delta: math.Inf(1)}
	dist := res.Dist
	for i := range dist {
		dist[i] = Inf
	}
	before := e.GlobalSnapshot()
	P := e.Workers()

	mail := bsp.NewMailboxes[relaxReq](P)
	frontiers := make([][]int32, P)
	nextFront := make([][]int32, P)
	queued := make([]bool, n)

	route := e.Router(n)
	srcOwner := route.Owner(src)
	dist[src] = 0 // replicated: every peer records the same source state
	if e.OwnsWorker(srcOwner) {
		frontiers[srcOwner] = append(frontiers[srcOwner], int32(src))
	}

	ownLo, ownHi := e.OwnedWorkers()
	for {
		any := false
		for w := ownLo; w < ownHi; w++ {
			if len(frontiers[w]) > 0 {
				any = true
				break
			}
		}
		any = e.GlobalOr(any)
		if !any {
			break
		}
		// Send half.
		e.ParallelFor(n, func(w, _, _ int) {
			var sent int64
			for _, ui := range frontiers[w] {
				u := int(ui)
				queued[u] = false
				du := dist[u]
				ts, ws := g.Neighbors(graph.NodeID(u))
				for i, v := range ts {
					mail.Send(w, route.Owner(v), relaxReq{v, du + ws[i]})
					sent++
				}
			}
			if sent > 0 {
				e.Metrics().AddMessages(sent)
			}
		})
		// Ship boxes addressed to remote owners (no-op single-process).
		bsp.ExchangeMailboxes(e, mail, relaxWire)
		// Apply half.
		e.ParallelFor(n, func(w, _, _ int) {
			var applied int64
			nf := nextFront[w][:0]
			mail.Recv(w, func(r relaxReq) {
				if r.dist < dist[r.node] {
					dist[r.node] = r.dist
					applied++
					if !queued[r.node] {
						queued[r.node] = true
						nf = append(nf, int32(r.node))
					}
				}
			})
			mail.ClearTo(w)
			nextFront[w] = nf
			if applied > 0 {
				e.Metrics().AddUpdates(applied)
			}
		})
		e.Metrics().AddRounds(1)
		frontiers, nextFront = nextFront, frontiers
		if err := e.Err(); err != nil {
			return DeltaResult{}, err
		}
	}

	e.SyncFloat64s(dist)
	after := e.GlobalSnapshot()
	if err := e.Err(); err != nil {
		return DeltaResult{}, err
	}
	res.Rounds = after.Rounds - before.Rounds
	res.Relaxations = after.Messages - before.Messages
	res.Updates = 1 + after.Updates - before.Updates
	return res, nil
}
