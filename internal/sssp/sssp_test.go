package sssp

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"graphdiam/internal/bsp"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
)

func TestDijkstraPath(t *testing.T) {
	g := gen.WeightedPath([]float64{2, 3, 4})
	dist := Dijkstra(g, 0)
	want := []float64{0, 2, 5, 9}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// 0-1 weight 10, 0-2 weight 1, 2-1 weight 2: shortest 0→1 is 3.
	b := graph.NewBuilder(3, 3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 1, 2)
	dist := Dijkstra(b.Build(), 0)
	if dist[1] != 3 {
		t.Fatalf("dist[1] = %v, want 3", dist[1])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, 1)
	b.AddEdge(0, 1, 1)
	dist := Dijkstra(b.Build(), 0)
	if !math.IsInf(dist[2], 1) || !math.IsInf(dist[3], 1) {
		t.Fatalf("unreachable nodes not Inf: %v", dist)
	}
}

func TestDijkstraTreeParents(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 1, 1})
	dist, parent := DijkstraTree(g, 0)
	if parent[0] != 0 || parent[1] != 0 || parent[2] != 1 || parent[3] != 2 {
		t.Fatalf("parents = %v", parent)
	}
	if dist[3] != 3 {
		t.Fatalf("dist[3] = %v", dist[3])
	}
	// Unreachable parent is -1.
	b := graph.NewBuilder(2, 0)
	_, p2 := DijkstraTree(b.Build(), 0)
	if p2[1] != -1 {
		t.Fatalf("unreachable parent = %d", p2[1])
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	r := rng.New(21)
	g := gen.UniformWeights(gen.GNM(60, 150, r), r)
	d1 := Dijkstra(g, 0)
	d2, rounds := BellmanFord(g, 0)
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-9 && !(math.IsInf(d1[i], 1) && math.IsInf(d2[i], 1)) {
			t.Fatalf("node %d: dijkstra %v, bellman-ford %v", i, d1[i], d2[i])
		}
	}
	if rounds < 1 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestBellmanFordRoundsOnPath(t *testing.T) {
	// On a path of k edges from one end, Bellman–Ford needs exactly k
	// productive sweeps plus a final no-change sweep.
	g := gen.Path(6)
	_, rounds := BellmanFord(g, 0)
	if rounds != 6 {
		t.Fatalf("rounds = %d, want 6 (5 productive + 1 fixpoint)", rounds)
	}
}

func TestEccentricity(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 5, 1})
	ecc, arg := Eccentricity(Dijkstra(g, 1))
	if ecc != 6 || arg != 3 {
		t.Fatalf("ecc=%v arg=%d, want 6, 3", ecc, arg)
	}
	// All-Inf (isolated source in empty graph component).
	b := graph.NewBuilder(2, 0)
	ecc, _ = Eccentricity(Dijkstra(b.Build(), 0))
	if ecc != 0 {
		t.Fatalf("ecc of isolated source = %v", ecc)
	}
}

func TestNumEdgesOnShortestPaths(t *testing.T) {
	g := gen.Path(10)
	if l := NumEdgesOnShortestPaths(g, 0); l != 9 {
		t.Fatalf("path ℓ = %d, want 9", l)
	}
	if l := NumEdgesOnShortestPaths(gen.Star(10), 0); l != 1 {
		t.Fatalf("star ℓ from center = %d, want 1", l)
	}
	if l := NumEdgesOnShortestPaths(gen.Star(10), 1); l != 2 {
		t.Fatalf("star ℓ from leaf = %d, want 2", l)
	}
}

func TestDeltaSteppingSeqMatchesDijkstra(t *testing.T) {
	r := rng.New(33)
	graphs := map[string]*graph.Graph{
		"mesh":    gen.UniformWeights(gen.Mesh(12), r),
		"gnm":     gen.UniformWeights(gen.GNM(200, 600, r), r),
		"path":    gen.WeightedPath([]float64{5, 1, 1, 9, 2, 2, 7}),
		"bimodal": gen.BimodalWeights(gen.Mesh(10), 1e-6, 1, 0.1, r),
	}
	for name, g := range graphs {
		for _, delta := range []float64{0.05, 0.3, 1.0, 10} {
			want := Dijkstra(g, 0)
			got := DeltaSteppingSeq(g, 0, delta)
			for i := range want {
				if math.Abs(want[i]-got.Dist[i]) > 1e-9 &&
					!(math.IsInf(want[i], 1) && math.IsInf(got.Dist[i], 1)) {
					t.Fatalf("%s Δ=%v node %d: want %v, got %v", name, delta, i, want[i], got.Dist[i])
				}
			}
			if got.Rounds < 1 || got.Relaxations < 1 {
				t.Fatalf("%s Δ=%v: empty accounting %+v", name, delta, got)
			}
		}
	}
}

func TestDeltaSteppingParallelMatchesDijkstra(t *testing.T) {
	r := rng.New(44)
	graphs := map[string]*graph.Graph{
		"mesh": gen.UniformWeights(gen.Mesh(16), r),
		"gnm":  gen.UniformWeights(gen.GNM(300, 900, r), r),
		"road": gen.RoadNetwork(gen.DefaultRoadNetworkOptions(20), r),
	}
	for name, g := range graphs {
		want := Dijkstra(g, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			e := bsp.New(workers)
			delta := SuggestDelta(g)
			got := mustDeltaStepping(t, g, 0, delta, e)
			for i := range want {
				if math.Abs(want[i]-got.Dist[i]) > 1e-9 &&
					!(math.IsInf(want[i], 1) && math.IsInf(got.Dist[i], 1)) {
					t.Fatalf("%s P=%d node %d: want %v, got %v", name, workers, i, want[i], got.Dist[i])
				}
			}
		}
	}
}

func TestDeltaSteppingRoundsDecreaseWithDelta(t *testing.T) {
	// Larger Δ means fewer buckets and fewer rounds (approaching
	// Bellman-Ford), smaller Δ more rounds (approaching Dijkstra): the
	// tradeoff the paper describes in Section 1.
	r := rng.New(55)
	g := gen.UniformWeights(gen.Mesh(24), r)
	small := DeltaSteppingSeq(g, 0, 0.01)
	large := DeltaSteppingSeq(g, 0, 100)
	if small.Rounds <= large.Rounds {
		t.Fatalf("rounds: Δ=0.01 gives %d, Δ=100 gives %d; want more rounds for smaller Δ",
			small.Rounds, large.Rounds)
	}
	// And the reverse tradeoff on work: large Δ must not do less work.
	if large.Work() < small.Work() {
		t.Fatalf("work: Δ=100 gives %d < Δ=0.01 gives %d", large.Work(), small.Work())
	}
}

func TestDeltaSteppingPanicsOnBadDelta(t *testing.T) {
	g := gen.Path(3)
	for _, f := range []func(){
		func() { DeltaSteppingSeq(g, 0, 0) },
		func() { DeltaStepping(context.Background(), g, 0, -1, bsp.New(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestParallelAccountingConsistency(t *testing.T) {
	// The parallel run's DeltaResult must agree with the engine's metrics
	// delta, and rounds must be positive.
	r := rng.New(66)
	g := gen.UniformWeights(gen.Mesh(12), r)
	e := bsp.New(4)
	res := mustDeltaStepping(t, g, 0, 0.3, e)
	snap := e.Metrics().Snapshot()
	if res.Rounds != snap.Rounds {
		t.Fatalf("rounds mismatch: result %d, engine %d", res.Rounds, snap.Rounds)
	}
	if res.Relaxations != snap.Messages {
		t.Fatalf("relaxations mismatch: %d vs %d", res.Relaxations, snap.Messages)
	}
	if res.Updates != snap.Updates+1 {
		t.Fatalf("updates mismatch: %d vs %d", res.Updates, snap.Updates+1)
	}
}

func TestTuneDeltaPicksFewestRounds(t *testing.T) {
	r := rng.New(77)
	g := gen.UniformWeights(gen.Mesh(12), r)
	cands := []float64{0.01, 0.1, 1, 10}
	best := TuneDelta(g, 0, cands)
	bestRounds := DeltaSteppingSeq(g, 0, best).Rounds
	for _, d := range cands {
		if r := DeltaSteppingSeq(g, 0, d).Rounds; r < bestRounds {
			t.Fatalf("TuneDelta picked Δ=%v (%d rounds) but Δ=%v has %d", best, bestRounds, d, r)
		}
	}
}

func TestDiameterUpperBound(t *testing.T) {
	// On a path from an end node, ecc = Φ so the bound is 2Φ; the bound
	// must always be in [Φ, 2Φ].
	g := gen.Path(50)
	e := bsp.New(2)
	ub, _ := mustUpperBound(t, g, 0, 1, e)
	if ub != 2*49 {
		t.Fatalf("ub from end = %v, want 98", ub)
	}
	ubMid, _ := mustUpperBound(t, g, 25, 1, bsp.New(2))
	if ubMid < 49 || ubMid > 98 {
		t.Fatalf("ub from middle = %v, want within [49, 98]", ubMid)
	}
}

// Property: Δ-stepping (seq and parallel) agrees with Dijkstra on random
// weighted graphs for random Δ.
func TestDeltaSteppingProperty(t *testing.T) {
	check := func(seed uint64, deltaRaw uint8, workersRaw uint8) bool {
		r := rng.New(seed)
		g := gen.UniformWeights(gen.GNM(80, 200, r), r)
		delta := float64(deltaRaw%50+1) / 25.0
		workers := int(workersRaw)%4 + 1
		want := Dijkstra(g, 0)
		seq := DeltaSteppingSeq(g, 0, delta)
		par := mustDeltaStepping(t, g, 0, delta, bsp.New(workers))
		for i := range want {
			wInf := math.IsInf(want[i], 1)
			if wInf != math.IsInf(seq.Dist[i], 1) || wInf != math.IsInf(par.Dist[i], 1) {
				return false
			}
			if wInf {
				continue
			}
			if math.Abs(want[i]-seq.Dist[i]) > 1e-9 || math.Abs(want[i]-par.Dist[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDijkstraMesh64(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(64), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}

func BenchmarkDeltaSteppingSeqMesh64(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(64), rng.New(1))
	delta := SuggestDelta(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaSteppingSeq(g, 0, delta)
	}
}

func BenchmarkDeltaSteppingParallelMesh64(b *testing.B) {
	g := gen.UniformWeights(gen.Mesh(64), rng.New(1))
	delta := SuggestDelta(g)
	e := bsp.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDeltaStepping(b, g, 0, delta, e)
	}
}
