package sssp

import (
	"math"

	"graphdiam/internal/graph"
	"graphdiam/internal/mr"
	"graphdiam/internal/pq"
)

// DijkstraIntegral computes exact distances from src for graphs whose edge
// weights are all positive integers (it panics otherwise), using a
// monotone radix heap — the structure of choice for DIMACS-style road
// networks. Distances are returned as uint64; unreachable nodes get
// math.MaxUint64.
func DijkstraIntegral(g *graph.Graph, src graph.NodeID) []uint64 {
	n := g.NumNodes()
	const unreached = math.MaxUint64
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = unreached
	}
	h := pq.NewRadixHeap()
	dist[src] = 0
	h.Push(int(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue // stale entry
		}
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			w := ws[i]
			wi := uint64(w)
			if w <= 0 || float64(wi) != w {
				panic("sssp: DijkstraIntegral requires positive integral weights")
			}
			if nd := du + wi; nd < dist[v] {
				dist[v] = nd
				h.Push(int(v), nd)
			}
		}
	}
	return dist
}

// DijkstraPairing is Dijkstra's algorithm backed by the pairing heap; it
// exists to cross-check the heap implementations against each other and to
// benchmark the decrease-key-heavy regime.
func DijkstraPairing(g *graph.Graph, src graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	h := pq.NewPairingHeap(n)
	dist[src] = 0
	h.Push(int(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			if nd := du + ws[i]; nd < dist[v] {
				dist[v] = nd
				h.Push(int(v), nd)
			}
		}
	}
	return dist
}

// MultiSource computes, for every node, the distance to the nearest of the
// given sources and that source's ID — a single Dijkstra run over a
// virtual super-source. It is the reference oracle for cluster-assignment
// validation: a clustering's Dist array must dominate these distances.
func MultiSource(g *graph.Graph, sources []graph.NodeID) (dist []float64, nearest []int32) {
	n := g.NumNodes()
	dist = make([]float64, n)
	nearest = make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		nearest[i] = -1
	}
	h := pq.NewQuadHeap(n)
	for _, s := range sources {
		dist[s] = 0
		nearest[s] = int32(s)
		h.Push(int(s), 0)
	}
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			if nd := du + ws[i]; nd < dist[v] {
				dist[v] = nd
				nearest[v] = nearest[u]
				h.Push(int(v), nd)
			}
		}
	}
	return dist, nearest
}

// BellmanFordMR runs Bellman–Ford in the rigorous MR(M_T, M_L) model: each
// sweep is one MR round in which active nodes emit (neighbor, candidate)
// pairs and each node reduces to its minimum. It exists to cross-validate
// the BSP algorithms against the paper's formal machine model and returns
// the distances together with the engine used (for round accounting).
//
// Frontier-based: only nodes improved in the previous round emit, so the
// number of rounds is the shortest-path tree depth + 1, matching
// BellmanFord.
func BellmanFordMR(g *graph.Graph, src graph.NodeID, e *mr.Engine) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	frontier := []graph.NodeID{src}
	for len(frontier) > 0 {
		var msgs []mr.Pair[float64]
		for _, u := range frontier {
			du := dist[u]
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				msgs = append(msgs, mr.Pair[float64]{Key: uint64(v), Value: du + ws[i]})
			}
		}
		out := mr.Round(e, msgs, func(k uint64, vs []float64, emit func(uint64, float64)) {
			best := vs[0]
			for _, v := range vs[1:] {
				if v < best {
					best = v
				}
			}
			if best < dist[k] {
				emit(k, best)
			}
		})
		frontier = frontier[:0]
		for _, p := range out {
			if p.Value < dist[p.Key] {
				dist[p.Key] = p.Value
				frontier = append(frontier, graph.NodeID(p.Key))
			}
		}
	}
	return dist
}
