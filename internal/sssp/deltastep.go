package sssp

import (
	"context"
	"encoding/binary"
	"errors"
	"math"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
	"graphdiam/internal/pq"
)

// DeltaResult is the outcome of a Δ-stepping run together with the
// platform-independent costs the paper reports.
type DeltaResult struct {
	// Dist holds exact shortest-path distances (+Inf if unreachable).
	Dist []float64
	// Rounds counts parallel phases: one per light-edge relaxation
	// sub-phase plus one per heavy-edge phase, matching the MapReduce
	// round accounting of the paper's Δ-stepping baseline.
	Rounds int64
	// Relaxations counts edge relaxation requests generated (the
	// "messages" component of the work measure).
	Relaxations int64
	// Updates counts tentative-distance improvements (the "node updates"
	// component).
	Updates int64
	// Delta is the bucket width used.
	Delta float64
}

// Work returns the paper's work measure: node updates + messages.
func (r DeltaResult) Work() int64 { return r.Updates + r.Relaxations }

// numBucketsFor sizes the cyclic bucket array: an edge can advance an item
// at most ceil(maxW/Δ) buckets past the current one.
func numBucketsFor(g *graph.Graph, delta float64) int {
	maxW := g.MaxEdgeWeight()
	nb := int(math.Ceil(maxW/delta)) + 2
	if nb < 2 {
		nb = 2
	}
	return nb
}

// DeltaSteppingSeq runs sequential Δ-stepping from src with bucket width
// delta. It produces exact distances; the round/work accounting mirrors
// what the parallel version would incur, which makes it convenient for
// Δ-tuning sweeps without burning wall-clock time.
func DeltaSteppingSeq(g *graph.Graph, src graph.NodeID, delta float64) DeltaResult {
	if delta <= 0 {
		panic("sssp: delta must be positive")
	}
	n := g.NumNodes()
	res := DeltaResult{Dist: make([]float64, n), Delta: delta}
	dist := res.Dist
	for i := range dist {
		dist[i] = Inf
	}
	q := pq.NewBucketQueue(n, delta, numBucketsFor(g, delta))
	dist[src] = 0
	q.Update(int(src), 0)
	res.Updates++

	var frontier []int32
	settled := make([]int32, 0, 1024) // unique nodes settled in current bucket
	inSettled := make([]bool, n)

	for q.Len() > 0 {
		b := q.NextBucket()
		settled = settled[:0]
		// Light-edge phases: repeat until bucket b stays empty.
		for {
			frontier = q.DrainBucket(b, frontier[:0])
			if len(frontier) == 0 {
				break
			}
			res.Rounds++ // one parallel light phase
			for _, u := range frontier {
				if !inSettled[u] {
					inSettled[u] = true
					settled = append(settled, u)
				}
				du := dist[u]
				ts, ws := g.Neighbors(graph.NodeID(u))
				for i, v := range ts {
					w := ws[i]
					if w > delta {
						continue
					}
					res.Relaxations++
					if nd := du + w; nd < dist[v] {
						dist[v] = nd
						res.Updates++
						q.Update(int(v), nd)
					}
				}
			}
		}
		// Heavy-edge phase over the settled set.
		if len(settled) > 0 {
			res.Rounds++
			for _, u := range settled {
				inSettled[u] = false
				du := dist[u]
				ts, ws := g.Neighbors(graph.NodeID(u))
				for i, v := range ts {
					w := ws[i]
					if w <= delta {
						continue
					}
					res.Relaxations++
					if nd := du + w; nd < dist[v] {
						dist[v] = nd
						res.Updates++
						q.Update(int(v), nd)
					}
				}
			}
		}
	}
	return res
}

// relaxReq is a relaxation request routed between workers.
type relaxReq struct {
	node graph.NodeID
	dist float64
}

// coalesceRelaxations gates sender-side coalescing of relaxation requests;
// the equivalence tests flip it to prove coalesced and uncoalesced runs
// produce identical distances and identical metric snapshots.
var coalesceRelaxations = true

// lessRelax orders relaxation candidates: receivers apply strict distance
// improvements, so only strictly smaller candidates are worth sending.
func lessRelax(a, b relaxReq) bool { return a.dist < b.dist }

// relaxWire serializes relaxReq for cross-process shipping: uvarint node,
// then the distance as raw little-endian float64 bits (bit-exact).
var relaxWire = bsp.WireCodec[relaxReq]{
	MinSize: 1 + 8,
	Append: func(buf []byte, r relaxReq) []byte {
		buf = binary.AppendUvarint(buf, uint64(r.node))
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.dist))
	},
	Read: func(data []byte) (relaxReq, int, error) {
		var r relaxReq
		node, n := binary.Uvarint(data)
		if n <= 0 || node > math.MaxUint32 {
			return r, 0, errors.New("bad node field")
		}
		if len(data)-n < 8 {
			return r, 0, errors.New("truncated distance")
		}
		r.node = graph.NodeID(node)
		r.dist = math.Float64frombits(binary.LittleEndian.Uint64(data[n:]))
		return r, n + 8, nil
	},
}

// DeltaStepping runs parallel Δ-stepping from src on the BSP engine. Each
// worker owns a contiguous node partition with a local bucket structure.
// A light phase has two halves separated by a barrier: drained nodes relax
// their light edges, generating relaxation requests routed to the owners
// of the target nodes; owners then apply the requests to their local state.
// Heavy edges of the bucket's settled set are relaxed once per bucket.
//
// Costs are accumulated both in the returned DeltaResult and in the
// engine's Metrics. Cancellation of ctx is observed between bucket phases
// (superstep barriers); a cancelled run returns ctx's error.
func DeltaStepping(ctx context.Context, g *graph.Graph, src graph.NodeID, delta float64, e *bsp.Engine) (DeltaResult, error) {
	if delta <= 0 {
		panic("sssp: delta must be positive")
	}
	e.Bind(ctx)
	n := g.NumNodes()
	res := DeltaResult{Dist: make([]float64, n), Delta: delta}
	dist := res.Dist
	for i := range dist {
		dist[i] = Inf
	}
	P := e.Workers()
	numBuckets := numBucketsFor(g, delta)
	before := e.GlobalSnapshot()

	// Per-worker local state over its partition.
	queues := make([]*pq.BucketQueue, P)
	starts := make([]int, P)
	settled := make([][]int32, P)
	inSettled := make([][]bool, P)
	frontiers := make([][]int32, P)
	e.ParallelFor(n, func(w, start, end int) {
		queues[w] = pq.NewBucketQueue(end-start, delta, numBuckets)
		starts[w] = start
		inSettled[w] = make([]bool, end-start)
	})

	mail := bsp.NewCoalescingMailboxes[relaxReq](P, n, lessRelax)
	mail.SetPassthrough(!coalesceRelaxations)
	route := e.Router(n) // O(1) owner lookup, hoisted out of the hot loop
	srcOwner := route.Owner(src)
	dist[src] = 0 // replicated: every peer records the same source state
	if e.OwnsWorker(srcOwner) {
		queues[srcOwner].Update(int(src)-starts[srcOwner], 0)
	}

	// relaxPhase relaxes the light (light=true) or heavy edges of the
	// per-worker node lists (global IDs), routing requests to owners which
	// apply them. One metered round.
	relaxPhase := func(lists [][]int32, light bool) {
		e.ParallelFor(n, func(w, _, _ int) {
			var sent int64
			mail.BeginSend(w)
			for _, u := range lists[w] {
				du := dist[u] // owned by w: safe
				ts, ws := g.Neighbors(graph.NodeID(u))
				for i, v := range ts {
					wt := ws[i]
					if (wt <= delta) != light {
						continue
					}
					mail.Send(w, route.Owner(v), int32(v), relaxReq{v, du + wt})
					sent++
				}
			}
			if sent > 0 {
				e.Metrics().AddMessages(sent) // logical relaxations, pre-coalescing
			}
		})
		// Ship boxes addressed to remote owners (no-op single-process);
		// errors are sticky and surface through the e.Err() checks.
		bsp.ExchangeCoalescing(e, mail, relaxWire)
		e.ParallelFor(n, func(w, start, _ int) {
			var applied int64
			q := queues[w]
			mail.Recv(w, func(r relaxReq) {
				if r.dist < dist[r.node] {
					dist[r.node] = r.dist
					q.Update(int(r.node)-start, r.dist)
					applied++
				}
			})
			mail.ClearTo(w)
			if applied > 0 {
				e.Metrics().AddUpdates(applied)
			}
		})
		e.Metrics().AddRounds(1)
	}

	ownLo, ownHi := e.OwnedWorkers()
	for {
		if err := e.Err(); err != nil {
			return DeltaResult{}, err
		}
		// Globally lowest non-empty bucket: fold the owned queues, then
		// min-combine across peers (-1 means no pending bucket anywhere).
		b := -1
		for w := ownLo; w < ownHi; w++ {
			if nb := queues[w].NextBucket(); nb >= 0 && (b < 0 || nb < b) {
				b = nb
			}
		}
		b = e.GlobalMinNonNeg(b)
		if b < 0 {
			break
		}
		for w := ownLo; w < ownHi; w++ {
			settled[w] = settled[w][:0]
		}
		// Light phases on bucket b until it stays empty everywhere.
		for {
			e.ParallelFor(n, func(w, start, _ int) {
				f := frontiers[w][:0]
				q := queues[w]
				if nb := q.NextBucket(); nb == b {
					f = q.DrainBucket(b, f)
				}
				for i, lu := range f {
					if !inSettled[w][lu] {
						inSettled[w][lu] = true
						settled[w] = append(settled[w], lu+int32(start))
					}
					f[i] = lu + int32(start)
				}
				frontiers[w] = f
			})
			any := false
			for w := ownLo; w < ownHi; w++ {
				if len(frontiers[w]) > 0 {
					any = true
					break
				}
			}
			any = e.GlobalOr(any)
			if !any {
				break
			}
			relaxPhase(frontiers, true)
			if err := e.Err(); err != nil {
				return DeltaResult{}, err
			}
		}
		// Heavy phase over the settled sets.
		anySettled := false
		for w := ownLo; w < ownHi; w++ {
			if len(settled[w]) > 0 {
				anySettled = true
				break
			}
		}
		anySettled = e.GlobalOr(anySettled)
		if anySettled {
			relaxPhase(settled, false)
			e.ParallelFor(n, func(w, start, _ int) {
				for _, u := range settled[w] {
					inSettled[w][int(u)-start] = false
				}
			})
		}
	}
	// Every peer holds exact distances for its owned partition; make the
	// full array identical everywhere before reporting.
	e.SyncFloat64s(dist)
	after := e.GlobalSnapshot()
	if err := e.Err(); err != nil {
		return DeltaResult{}, err
	}
	res.Rounds = after.Rounds - before.Rounds
	res.Relaxations = after.Messages - before.Messages
	res.Updates = 1 + after.Updates - before.Updates // +1 for the source init
	return res, nil
}

// SuggestDelta returns a reasonable default bucket width: the average edge
// weight. Meyer & Sanders recommend Θ(1/d) for random weights in (0,1] and
// degree d; the experiments harness additionally sweeps candidates via
// TuneDelta, mirroring the paper's per-graph tuning.
func SuggestDelta(g *graph.Graph) float64 {
	avg := g.AvgEdgeWeight()
	if avg <= 0 {
		return 1
	}
	return avg
}

// TuneDelta runs sequential Δ-stepping from src for every candidate width
// and returns the one minimizing rounds (ties broken by work), replicating
// the paper's protocol of picking the best-performing Δ per graph.
func TuneDelta(g *graph.Graph, src graph.NodeID, candidates []float64) float64 {
	best := candidates[0]
	var bestRounds, bestWork int64 = math.MaxInt64, math.MaxInt64
	for _, d := range candidates {
		r := DeltaSteppingSeq(g, src, d)
		if r.Rounds < bestRounds || (r.Rounds == bestRounds && r.Work() < bestWork) {
			best, bestRounds, bestWork = d, r.Rounds, r.Work()
		}
	}
	return best
}

// DiameterUpperBound runs Δ-stepping from src and returns the paper's
// SSSP-based 2-approximation of the weighted diameter: twice the weight of
// the heaviest shortest path found, together with the run's costs. The
// true diameter Φ satisfies estimate/2 ≤ Φ ≤ estimate. Cancellation of ctx
// is observed between bucket phases.
func DiameterUpperBound(ctx context.Context, g *graph.Graph, src graph.NodeID, delta float64, e *bsp.Engine) (float64, DeltaResult, error) {
	res, err := DeltaStepping(ctx, g, src, delta, e)
	if err != nil {
		return 0, DeltaResult{}, err
	}
	ecc, _ := Eccentricity(res.Dist)
	return 2 * ecc, res, nil
}
