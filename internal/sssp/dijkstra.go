// Package sssp implements single-source shortest path algorithms on the
// weighted graphs of internal/graph:
//
//   - Dijkstra's algorithm with an indexed 4-ary heap (the sequential
//     reference used for ground truth and for the paper's diameter lower
//     bound procedure);
//   - Bellman–Ford with round counting (the relaxation pattern whose
//     Δ-limited form is the paper's "Δ-growing step");
//   - Δ-stepping (Meyer & Sanders, J. Algorithms 2003), both sequential
//     and parallel on the BSP engine — the paper's only practical
//     linear-space competitor, used as a 2-approximation of the diameter.
package sssp

import (
	"math"

	"graphdiam/internal/graph"
	"graphdiam/internal/pq"
)

// Inf is the distance assigned to unreachable nodes.
var Inf = math.Inf(1)

// Dijkstra computes exact shortest-path distances from src. Unreachable
// nodes get +Inf. O((n+m) log n) with an indexed 4-ary heap of inline
// (priority, id) entries. Callers running many sources over the same graph
// (eccentricity sweeps, all-pairs validation) should allocate a Scratch
// once and use Scratch.Dijkstra to reuse the distance and heap buffers
// across sources.
func Dijkstra(g *graph.Graph, src graph.NodeID) []float64 {
	sc := NewScratch(g.NumNodes())
	dist := sc.Dijkstra(g, src)
	sc.dist = nil // the caller keeps the slice; don't alias a live scratch
	return dist
}

// Scratch holds the reusable buffers of repeated Dijkstra runs over graphs
// of (up to) a fixed node count: the distance array and the lazy heap. The
// diameter sweeps (quotient diameter, ExactDiameter, LowerBound) run one
// full Dijkstra per source; without a scratch every source pays an O(n)
// allocation pair plus cold caches. A Scratch must not be shared between
// goroutines; sweeps allocate one per worker.
type Scratch struct {
	dist  []float64
	heap  *pq.FlatHeap
	heapN int // node capacity the heap was built for
}

// NewScratch returns a scratch for graphs with up to n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{dist: make([]float64, n), heap: pq.NewFlatHeap(n), heapN: n}
}

// Dijkstra computes exact shortest-path distances from src into the
// scratch's distance buffer and returns it. The returned slice is valid
// until the next call on this scratch. Results are identical to the
// package-level Dijkstra.
func (sc *Scratch) Dijkstra(g *graph.Graph, src graph.NodeID) []float64 {
	n := g.NumNodes()
	if len(sc.dist) < n {
		sc.dist = make([]float64, n)
	}
	dist := sc.dist[:n]
	sc.DijkstraInto(g, src, dist)
	return dist
}

// DijkstraInto computes exact shortest-path distances from src into dist
// (which must have length g.NumNodes()), reusing the scratch's heap. Used
// by sweeps that keep several distance arrays alive at once (the bounding
// diameter computation) while sharing heap storage.
func (sc *Scratch) DijkstraInto(g *graph.Graph, src graph.NodeID, dist []float64) {
	n := g.NumNodes()
	for i := range dist {
		dist[i] = Inf
	}
	if sc.heap == nil || sc.heapN < n {
		sc.heap = pq.NewFlatHeap(n)
		sc.heapN = n
	}
	h := sc.heap
	h.Reset()
	dist[src] = 0
	h.Push(int32(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			if nd := du + ws[i]; nd < dist[v] {
				dist[v] = nd
				h.Push(int32(v), nd)
			}
		}
	}
}

// DijkstraTree computes distances and the shortest-path tree parent of each
// node (parent[src] = src; parent of unreachable nodes = -1).
func DijkstraTree(g *graph.Graph, src graph.NodeID) (dist []float64, parent []int32) {
	n := g.NumNodes()
	dist = make([]float64, n)
	parent = make([]int32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	h := pq.NewFlatHeap(n)
	dist[src] = 0
	parent[src] = int32(src)
	h.Push(int32(src), 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		ts, ws := g.Neighbors(graph.NodeID(u))
		for i, v := range ts {
			if nd := du + ws[i]; nd < dist[v] {
				dist[v] = nd
				parent[v] = int32(u)
				h.Push(int32(v), nd)
			}
		}
	}
	return dist, parent
}

// BellmanFord computes shortest-path distances from src by synchronous
// (Jacobi-style) relaxation sweeps: every sweep relaxes all edges against
// the previous sweep's distances, exactly as a parallel round would. It
// returns the distances and the number of sweeps until fixpoint, which is
// ℓ_Φ — the maximum number of edges on any shortest path from src — plus
// the final no-change sweep.
func BellmanFord(g *graph.Graph, src graph.NodeID) ([]float64, int) {
	n := g.NumNodes()
	dist := make([]float64, n)
	next := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	rounds := 0
	for {
		rounds++
		copy(next, dist)
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if math.IsInf(du, 1) {
				continue
			}
			ts, ws := g.Neighbors(graph.NodeID(u))
			for i, v := range ts {
				if nd := du + ws[i]; nd < next[v] {
					next[v] = nd
					changed = true
				}
			}
		}
		dist, next = next, dist
		if !changed {
			return dist, rounds
		}
	}
}

// Eccentricity returns the largest finite distance in dist and the node
// attaining it. For a connected graph this is the eccentricity of the
// source the distances were computed from.
func Eccentricity(dist []float64) (float64, graph.NodeID) {
	best := -1.0
	var arg graph.NodeID
	for v, d := range dist {
		if !math.IsInf(d, 1) && d > best {
			best = d
			arg = graph.NodeID(v)
		}
	}
	if best < 0 {
		return 0, 0
	}
	return best, arg
}

// NumEdgesOnShortestPaths returns ℓ, the maximum number of edges on any
// minimum-weight path of the tree computed by DijkstraTree from src. It is
// the realized value of the paper's ℓ_Δ parameter at Δ = ecc(src).
func NumEdgesOnShortestPaths(g *graph.Graph, src graph.NodeID) int {
	_, parent := DijkstraTree(g, src)
	n := g.NumNodes()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	maxDepth := 0
	var walk func(v int) int32
	walk = func(v int) int32 {
		if depth[v] >= 0 {
			return depth[v]
		}
		if parent[v] < 0 {
			return 0
		}
		// Iterative unwinding to avoid deep recursion on path graphs.
		var stack []int
		u := v
		for depth[u] < 0 {
			stack = append(stack, u)
			u = int(parent[u])
		}
		d := depth[u]
		for i := len(stack) - 1; i >= 0; i-- {
			d++
			depth[stack[i]] = d
		}
		return depth[v]
	}
	for v := 0; v < n; v++ {
		if parent[v] < 0 {
			continue
		}
		if d := int(walk(v)); d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}
