package sssp

import (
	"context"
	"testing"

	"graphdiam/internal/bsp"
	"graphdiam/internal/graph"
)

// Test-side adapters over the cancellable API; under context.Background the
// error return cannot fire, so the helpers fold it into the failure path.

func mustDeltaStepping(t testing.TB, g *graph.Graph, src graph.NodeID, delta float64, e *bsp.Engine) DeltaResult {
	t.Helper()
	res, err := DeltaStepping(context.Background(), g, src, delta, e)
	if err != nil {
		t.Fatalf("DeltaStepping: %v", err)
	}
	return res
}

func mustBellmanBSP(t testing.TB, g *graph.Graph, src graph.NodeID, e *bsp.Engine) DeltaResult {
	t.Helper()
	res, err := BellmanFordBSP(context.Background(), g, src, e)
	if err != nil {
		t.Fatalf("BellmanFordBSP: %v", err)
	}
	return res
}

func mustUpperBound(t testing.TB, g *graph.Graph, src graph.NodeID, delta float64, e *bsp.Engine) (float64, DeltaResult) {
	t.Helper()
	ub, res, err := DiameterUpperBound(context.Background(), g, src, delta, e)
	if err != nil {
		t.Fatalf("DiameterUpperBound: %v", err)
	}
	return ub, res
}
