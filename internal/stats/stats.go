// Package stats provides the summary statistics used by the experiment
// reports and the stats command: quantiles, log-scale histograms and
// degree-distribution summaries of graphs.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"

	"graphdiam/internal/graph"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using the
// nearest-rank method. Panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Summary holds the five-number-ish summary of a sample.
type Summary struct {
	Count          int
	Min, Max, Mean float64
	P50, P90, P99  float64
}

// Summarize computes a Summary; zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	s.P50 = Quantile(xs, 0.50)
	s.P90 = Quantile(xs, 0.90)
	s.P99 = Quantile(xs, 0.99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.Count, s.Min, s.P50, s.Mean, s.P90, s.P99, s.Max)
}

// LogHistogram counts values into power-of-two buckets: bucket i holds
// values in [2^i, 2^(i+1)). Values below 1 land in bucket 0.
type LogHistogram struct {
	counts map[int]int
	total  int
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: map[int]int{}}
}

// Add records one value.
func (h *LogHistogram) Add(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Log2(v))
	}
	h.counts[b]++
	h.total++
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int { return h.total }

// Write renders the histogram with proportional bars.
func (h *LogHistogram) Write(w io.Writer) {
	if h.total == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	buckets := make([]int, 0, len(h.counts))
	maxCount := 0
	for b, c := range h.counts {
		buckets = append(buckets, b)
		if c > maxCount {
			maxCount = c
		}
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		c := h.counts[b]
		bar := int(40 * float64(c) / float64(maxCount))
		fmt.Fprintf(w, "[2^%-2d, 2^%-2d) %8d %s\n", b, b+1, c, bars(bar))
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// DegreeDistribution returns the degree of every node and a Summary of it.
func DegreeDistribution(g *graph.Graph) ([]float64, Summary) {
	degs := make([]float64, g.NumNodes())
	for u := range degs {
		degs[u] = float64(g.Degree(graph.NodeID(u)))
	}
	return degs, Summarize(degs)
}

// WeightDistribution returns every edge weight and a Summary of them.
func WeightDistribution(g *graph.Graph) ([]float64, Summary) {
	ws := make([]float64, 0, g.NumEdges())
	g.ForEachEdge(func(_, _ graph.NodeID, w float64) {
		ws = append(ws, w)
	})
	return ws, Summarize(ws)
}
