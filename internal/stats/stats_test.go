package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
)

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("q50 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q100 = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Count != 5 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 22 {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 %v", s.P50)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary")
	}
	if !strings.Contains(s.String(), "p99") {
		t.Fatal("String incomplete")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		s := Summarize(xs)
		return prev == s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	var buf bytes.Buffer
	h.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "[2^0 , 2^1 )") {
		t.Fatalf("histogram output:\n%s", out)
	}
	// Empty histogram renders gracefully.
	var buf2 bytes.Buffer
	NewLogHistogram().Write(&buf2)
	if !strings.Contains(buf2.String(), "empty") {
		t.Fatal("empty histogram output")
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := gen.Star(10)
	degs, s := DegreeDistribution(g)
	if len(degs) != 10 {
		t.Fatal("length")
	}
	if s.Max != 9 || s.Min != 1 {
		t.Fatalf("star summary %+v", s)
	}
}

func TestWeightDistribution(t *testing.T) {
	g := gen.WeightedPath([]float64{1, 2, 3})
	ws, s := WeightDistribution(g)
	if len(ws) != 3 || s.Mean != 2 {
		t.Fatalf("weights %v summary %+v", ws, s)
	}
}
