// Package store turns graphdiam's one-shot decomposition and diameter
// algorithms into a long-running service layer: a named graph registry plus
// an LRU cache of computation results with singleflight deduplication.
//
// Graphs are registered once under a client-chosen name and queried many
// times. Every query (decompose, diameter) is keyed by the registered
// graph's identity and the full algorithm parameter set; identical queries
// hit the cache, and identical queries arriving concurrently share a single
// underlying BSP run — the followers block until the leader's run completes
// and then all return the same result. Distinct computations run on their
// own bsp.Engine, but a global semaphore caps how many engines execute at
// once so a burst of distinct queries cannot oversubscribe the host.
//
// The algorithms are deterministic in (graph, parameters) including across
// worker counts, so cached results are exact, not approximations of what a
// fresh run would return; only the platform-independent metrics attached to
// the result reflect the original run.
package store

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/bsp/transport"
	"graphdiam/internal/dataset"
	"graphdiam/internal/graph"
)

// Config sizes a Store. Zero values select the defaults.
type Config struct {
	// MaxEntries bounds the result cache; the least recently used entry is
	// evicted when a new result would exceed it. Default 256.
	MaxEntries int
	// MaxConcurrent caps the number of BSP computations executing at once
	// across all graphs and operations. Queued computations wait for a
	// slot (or their context). Default 2.
	MaxConcurrent int
	// MaxJobs bounds job-registry retention: when the registry exceeds it,
	// the oldest terminal (done/failed/cancelled) jobs are evicted. Live
	// jobs are never evicted. Default 512.
	MaxJobs int
	// Catalog, when non-nil, backs the registry with the persistent
	// dataset catalog: a query naming a graph that is not in memory is
	// faulted in from the catalog (zero-copy mmap where available) under
	// per-name singleflight before the query proceeds. Nil keeps the
	// registry memory-only.
	Catalog *dataset.Catalog
	// Distributed, when non-nil, makes this daemon one rank of a fixed
	// fleet: decompositions can be split across the fleet's daemons over
	// the HTTP BSP transport. Nil keeps the daemon single-node.
	Distributed *DistributedConfig
	// FleetCache, when non-nil, extends the result cache fleet-wide for
	// dataset-backed graphs: a local miss probes peers before computing,
	// and a fresh result is pushed to the cache key's owner. Keys are
	// dataset SHA-256 + canonical parameters, so content addressing makes
	// cross-node reuse exact. See internal/fleet.Cache.
	FleetCache FleetCache
	// Metrics, when non-nil, observes the store: cache traffic per tier,
	// compute-slot pressure, job durations, and BSP engine timings. Nil
	// leaves every instrumentation site a no-op.
	Metrics *Metrics
	// ChurnThreshold is the fraction of a retained decomposition's
	// clusters a delta may touch before incremental maintenance stops
	// eagerly recomputing and falls back to lazy invalidation. 0 selects
	// the default (0.25); negative disables eager recomputes entirely.
	ChurnThreshold float64
}

// FleetCache is the store's hook into the fleet-wide result cache. All
// methods are best-effort: Get may probe several peers (bounded, with
// timeouts) and Put may run in the background.
type FleetCache interface {
	// Get returns the JSON-encoded result cached anywhere in the fleet
	// for key, if any peer holds it.
	Get(ctx context.Context, key string) ([]byte, bool)
	// Put advertises a freshly computed result to the fleet (the key's
	// owner and, with replication factor k>1, its k-1 read replicas).
	Put(key string, body []byte)
	// PushSuccessor synchronously hands one cached entry to the first
	// live non-self member of the key's preference chain — the drain
	// path's cache pre-warming. Reports whether a successor accepted it.
	PushSuccessor(key string, body []byte) bool
}

func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	if c.ChurnThreshold == 0 {
		c.ChurnThreshold = 0.25
	}
	return c
}

// GraphInfo describes a registered graph.
type GraphInfo struct {
	Name      string    `json:"name"`
	NumNodes  int       `json:"numNodes"`
	NumEdges  int       `json:"numEdges"`
	AvgWeight float64   `json:"avgWeight"`
	Source    string    `json:"source"`
	CreatedAt time.Time `json:"createdAt"`
}

// graphEntry pairs a registered graph with a process-unique id. The id, not
// the name, keys cached results, so re-registering a name with a different
// graph can never serve stale results.
type graphEntry struct {
	id   uint64
	g    *graph.Graph
	info GraphInfo
	// sha is the dataset snapshot's content address when the graph was
	// faulted in from the catalog; empty for ad-hoc registrations. Only
	// sha-backed graphs participate in the fleet-wide result cache — an
	// inline upload has no fleet-stable identity.
	sha string
}

// key identifies one cached computation.
type key struct {
	graphID uint64
	params  string // canonical parameter string, see Params.canonical
}

// entry is one cache slot. val is the typed result for locally computed
// entries, or raw JSON ([]byte) for results a peer pushed over
// PUT /v2/cache before the dataset was ever resident here.
type entry struct {
	key key
	val any
	// fkey is the entry's fleet cache key (dataset sha + canonical
	// params) when the graph is dataset-backed; it indexes fleetIdx.
	fkey string
}

// flight is one in-progress computation that concurrent identical requests
// attach to.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Counters are the store's monotone event counts. A Snapshot of them is
// served by /v1/stats.
type Counters struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	Dedups       int64 `json:"dedups"` // requests that joined an in-flight computation
	Computations int64 `json:"computations"`
	Errors       int64 `json:"errors"`
	// FleetHits counts misses answered by the fleet-wide cache (a peer's
	// pushed result, or a successful peer probe) instead of a BSP run.
	FleetHits int64 `json:"fleetHits"`
}

// JobCounts tallies registry jobs by state.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats is a point-in-time view of the store for monitoring.
type Stats struct {
	Counters      Counters     `json:"counters"`
	CacheEntries  int          `json:"cacheEntries"`
	MaxEntries    int          `json:"maxEntries"`
	InFlight      int          `json:"inFlight"`
	MaxConcurrent int          `json:"maxConcurrent"`
	Jobs          JobCounts    `json:"jobs"`
	Graphs        []GraphInfo  `json:"graphs"`
	TotalCost     bsp.Snapshot `json:"totalCost"` // summed metrics of all completed runs
}

// Store is the concurrent service layer. All methods are safe for
// concurrent use.
type Store struct {
	cfg Config
	sem chan struct{} // compute slots

	// bspReg buffers inbound BSP frames for distributed runs; the server
	// layer delivers /v2/bsp/frames bodies into it.
	bspReg *transport.Registry

	// baseCtx parents every job's context; Close cancels it, aborting all
	// running jobs at their next superstep barrier.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// jobsWG tracks every runJob goroutine so Close can join them: the
	// daemon must not release resources a job may still be touching (in
	// particular mmap'd dataset snapshots) while a run is mid-superstep.
	jobsWG sync.WaitGroup

	mu       sync.Mutex
	closed   bool // Close begun: new jobs are no longer WG-tracked
	nextID   uint64
	graphs   map[string]*graphEntry
	cache    map[key]*list.Element    // values are *entry wrapped in list elements
	lru      *list.List               // front = most recently used
	fleetIdx map[string]*list.Element // fleet cache key → LRU element
	flights  map[key]*flight
	loads    map[string]*flight // per-name dataset fault-ins in progress
	// retained remembers recent clusterings by content address + params
	// so delta maintenance can measure churn; see dynamic.go.
	retained      map[string]*retainedClustering
	retainedOrder []string // insertion order, for bounded eviction
	ctrs          Counters
	cost          bsp.Metrics // accumulated metrics of completed computations
	nextJob       uint64
	jobs          map[string]*job
	jobOrder      []string // submission order, for terminal-job eviction
	now           func() time.Time
}

// New returns an empty store sized by cfg.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	cfg.Metrics.setSlotCapacity(cfg.MaxConcurrent)
	ctx, cancel := context.WithCancel(context.Background())
	return &Store{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		bspReg:     transport.NewRegistry(),
		baseCtx:    ctx,
		baseCancel: cancel,
		graphs:     make(map[string]*graphEntry),
		cache:      make(map[key]*list.Element),
		lru:        list.New(),
		fleetIdx:   make(map[string]*list.Element),
		flights:    make(map[key]*flight),
		loads:      make(map[string]*flight),
		retained:   make(map[string]*retainedClustering),
		jobs:       make(map[string]*job),
		now:        time.Now,
	}
}

// Close cancels every live job and waits for their goroutines to unwind.
// Running BSP engines observe the cancellation at their next superstep
// barrier, so the wait is bounded by one superstep — and once Close
// returns, no job is still reading any graph, which lets callers safely
// tear down graph backing storage (e.g. munmap dataset snapshots) right
// after. Jobs submitted after Close are cancelled immediately; direct
// (synchronous) queries are unaffected — they run under their caller's
// context.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.jobsWG.Wait()
}

// AddGraph registers g under name. source is a human-readable provenance
// string ("spec mesh:64 seed=1", "upload .gr", ...). Registering an
// existing name replaces the graph; cached results of the old graph are
// dropped.
func (s *Store) AddGraph(name string, g *graph.Graph, source string) (GraphInfo, error) {
	return s.addGraph(name, g, source, "")
}

// addGraph is AddGraph plus the dataset content address for
// catalog-faulted graphs (ad-hoc registrations pass "").
func (s *Store) addGraph(name string, g *graph.Graph, source, sha string) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("store: graph name must be non-empty")
	}
	if g == nil {
		return GraphInfo{}, fmt.Errorf("store: graph must be non-nil")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.graphs[name]; ok {
		s.purgeLocked(old.id)
	}
	s.nextID++
	e := &graphEntry{
		id:  s.nextID,
		g:   g,
		sha: sha,
		info: GraphInfo{
			Name:      name,
			NumNodes:  g.NumNodes(),
			NumEdges:  g.NumEdges(),
			AvgWeight: g.AvgEdgeWeight(),
			Source:    source,
			CreatedAt: s.now(),
		},
	}
	s.graphs[name] = e
	return e.info, nil
}

// Graph returns the registered graph and its info.
func (s *Store) Graph(name string) (*graph.Graph, GraphInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return e.g, e.info, true
}

// RemoveGraph deregisters name and drops its cached results. It reports
// whether the name was registered.
func (s *Store) RemoveGraph(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.graphs[name]
	if !ok {
		return false
	}
	s.purgeLocked(e.id)
	delete(s.graphs, name)
	return true
}

// Graphs lists registered graphs sorted by name.
func (s *Store) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a point-in-time monitoring view.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Counters:      s.ctrs,
		CacheEntries:  s.lru.Len(),
		MaxEntries:    s.cfg.MaxEntries,
		InFlight:      len(s.flights),
		MaxConcurrent: s.cfg.MaxConcurrent,
		Jobs:          s.jobCountsLocked(),
		TotalCost:     s.cost.Snapshot(),
	}
	for _, e := range s.graphs {
		out.Graphs = append(out.Graphs, e.info)
	}
	sort.Slice(out.Graphs, func(i, j int) bool { return out.Graphs[i].Name < out.Graphs[j].Name })
	return out
}

// purgeLocked removes every cache entry and does not wait for flights of
// the given graph id. Caller holds s.mu.
func (s *Store) purgeLocked(graphID uint64) {
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*entry)
		if ent.key.graphID == graphID {
			s.removeEntryLocked(el, ent)
		}
		el = next
	}
}

// removeEntryLocked drops one cache slot and its fleet index entry (only
// when the index still points at this element — a newer result for the
// same fleet key may have repointed it). Caller holds s.mu.
func (s *Store) removeEntryLocked(el *list.Element, ent *entry) {
	s.lru.Remove(el)
	delete(s.cache, ent.key)
	if ent.fkey != "" && s.fleetIdx[ent.fkey] == el {
		delete(s.fleetIdx, ent.fkey)
	}
}

// do returns the cached value for (graph, params), joining an in-flight
// identical computation if one exists, and otherwise computing it by
// running fn on the registered graph under the concurrency cap. fn
// receives the leader's context and must abandon its work when it is
// cancelled. cached reports whether the value was served without running
// fn (cache hit, joined flight, or fleet-cache hit).
//
// decode, when non-nil, turns a fleet-cached JSON body into the typed
// result: for dataset-backed graphs a local miss first consults the
// fleet-wide cache — a result a peer pushed here earlier, then a bounded
// probe of live peers — and only computes when the whole fleet misses. A
// freshly computed result is pushed back to the fleet (best-effort).
//
// A follower whose leader was cancelled (the leader's own context expired
// while waiting for a compute slot or mid-run) retries instead of
// inheriting the leader's error: one retrier becomes the new leader, the
// rest join its flight. A follower only fails on its own context.
func (s *Store) do(ctx context.Context, graphName, params string,
	decode func([]byte) (any, error),
	fn func(ctx context.Context, g *graph.Graph) (any, error)) (val any, cached bool, err error) {

	for {
		s.mu.Lock()
		ge, ok := s.graphs[graphName]
		if !ok {
			s.mu.Unlock()
			// Dataset-backed lazy loading: a name that is not resident may
			// exist in the catalog; fault it in (deduplicated per name)
			// and retry the lookup.
			if err := s.faultIn(ctx, graphName); err != nil {
				return nil, false, err
			}
			continue
		}
		k := key{graphID: ge.id, params: params}
		fkey := ""
		if s.cfg.FleetCache != nil && ge.sha != "" && decode != nil {
			fkey = ge.sha + "|" + params
		}
		if el, ok := s.cache[k]; ok {
			s.lru.MoveToFront(el)
			s.ctrs.Hits++
			v := el.Value.(*entry).val
			s.mu.Unlock()
			s.cfg.Metrics.hit("local")
			return v, true, nil
		}
		// A peer may have pushed this result here before the dataset was
		// ever queried locally (the raw-JSON side of the fleet cache).
		if fkey != "" {
			if el, ok := s.fleetIdx[fkey]; ok {
				if body, isRaw := el.Value.(*entry).val.([]byte); isRaw {
					s.mu.Unlock()
					if v, derr := decode(body); derr == nil {
						s.mu.Lock()
						s.ctrs.FleetHits++
						// Promote: drop the raw slot, insert the typed result.
						if el, ok := s.fleetIdx[fkey]; ok {
							if _, isRaw := el.Value.(*entry).val.([]byte); isRaw {
								s.removeEntryLocked(el, el.Value.(*entry))
							}
						}
						s.insertLocked(graphName, k, fkey, v)
						s.mu.Unlock()
						s.cfg.Metrics.hit("fleet_raw")
						return v, true, nil
					}
					// Undecodable push: fall through and recompute.
					s.mu.Lock()
				}
			}
		}
		if f, ok := s.flights[k]; ok {
			s.ctrs.Dedups++
			s.mu.Unlock()
			s.cfg.Metrics.coalesce()
			select {
			case <-f.done:
				if f.err != nil && isContextErr(f.err) {
					if ctx.Err() != nil {
						return nil, false, ctx.Err()
					}
					continue // leader cancelled, not us: retry
				}
				return f.val, true, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		s.ctrs.Misses++
		f := &flight{done: make(chan struct{})}
		s.flights[k] = f
		g := ge.g
		s.mu.Unlock()
		s.cfg.Metrics.miss()

		// Leader path: probe the fleet, else acquire a compute slot, run,
		// publish. The probe rides the flight leadership, so concurrent
		// identical local requests cost at most one peer round-trip.
		fleetHit := false
		if fkey != "" {
			if body, ok := s.cfg.FleetCache.Get(ctx, fkey); ok {
				if v, derr := decode(body); derr == nil {
					f.val, fleetHit = v, true
				}
			}
		}
		if !fleetHit {
			select {
			case s.sem <- struct{}{}:
				s.cfg.Metrics.slotAcquired()
				f.val, f.err = fn(ctx, g)
				s.cfg.Metrics.slotReleased()
				<-s.sem
			case <-ctx.Done():
				f.err = ctx.Err()
			}
		}

		s.mu.Lock()
		delete(s.flights, k)
		switch {
		case f.err == nil:
			if fleetHit {
				s.ctrs.FleetHits++
				s.cfg.Metrics.hit("fleet_probe")
			} else {
				s.ctrs.Computations++
				s.cfg.Metrics.computation()
			}
			s.insertLocked(graphName, k, fkey, f.val)
		case !isContextErr(f.err):
			s.ctrs.Errors++ // client disconnects are not store errors
			s.cfg.Metrics.errored()
		}
		s.mu.Unlock()
		close(f.done)
		if f.err == nil && fkey != "" && !fleetHit {
			// Push the fresh result to the key's fleet owner so routed
			// queries find it wherever they land (best-effort, async).
			if body, merr := json.Marshal(f.val); merr == nil {
				s.cfg.FleetCache.Put(fkey, body)
			}
		}
		return f.val, fleetHit, f.err
	}
}

// faultIn loads graphName from the dataset catalog into the registry.
// Concurrent fault-ins of the same name share one catalog load
// (singleflight): the first caller mmaps the snapshot, the rest wait on
// its flight. Returns NotFoundError when no catalog is configured or the
// catalog has no such dataset, so the API surface is unchanged for
// memory-only deployments.
func (s *Store) faultIn(ctx context.Context, graphName string) error {
	for {
		s.mu.Lock()
		if _, ok := s.graphs[graphName]; ok {
			s.mu.Unlock()
			return nil // someone else registered it meanwhile
		}
		cat := s.cfg.Catalog
		if cat == nil {
			s.mu.Unlock()
			return &NotFoundError{Name: graphName}
		}
		if f, ok := s.loads[graphName]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && isContextErr(f.err) && ctx.Err() == nil {
					continue // leader abandoned, not us: retry
				}
				return f.err
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		s.loads[graphName] = f
		s.mu.Unlock()

		ld, err := cat.Load(graphName)
		if err == nil {
			err = s.addGraphIfAbsent(graphName, ld.Graph,
				fmt.Sprintf("dataset sha256=%s", dataset.ShortSHA(ld.Header.SHAHex())),
				ld.Header.SHAHex())
		} else if errors.Is(err, dataset.ErrNotFound) {
			err = &NotFoundError{Name: graphName}
		}
		f.err = err

		s.mu.Lock()
		delete(s.loads, graphName)
		s.mu.Unlock()
		close(f.done)
		return err
	}
}

// addGraphIfAbsent registers g under name only when the name is free: a
// fault-in that raced a direct AddGraph (a client re-registering the name
// mid-load) must not clobber the client's graph and purge its results.
// Either way the name is resident afterwards, which is all fault-in
// callers need.
func (s *Store) addGraphIfAbsent(name string, g *graph.Graph, source, sha string) error {
	s.mu.Lock()
	_, exists := s.graphs[name]
	s.mu.Unlock()
	if exists {
		return nil
	}
	// addGraph re-locks; the window between the check and the add is
	// benign — worst case the dataset copy wins a race two registrations
	// were always allowed to have.
	_, err := s.addGraph(name, g, source, sha)
	return err
}

// LoadDataset faults the named dataset into the in-memory registry
// eagerly (the same path queries take lazily) and returns the registered
// graph's info.
func (s *Store) LoadDataset(ctx context.Context, name string) (GraphInfo, error) {
	if err := s.faultIn(ctx, name); err != nil {
		return GraphInfo{}, err
	}
	_, info, ok := s.Graph(name)
	if !ok {
		return GraphInfo{}, &NotFoundError{Name: name}
	}
	return info, nil
}

// isContextErr reports whether err is a cancellation/deadline error — the
// signature of an abandoned request rather than a failed computation.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// insertLocked adds a freshly computed value, evicting from the LRU tail.
// The insert is skipped when the graph was removed or replaced while the
// computation ran — the old id's key could never be matched again and
// would only squat an LRU slot. fkey, when non-empty, (re)points the
// fleet index at this entry so peer probes find the typed result. Caller
// holds s.mu.
func (s *Store) insertLocked(graphName string, k key, fkey string, val any) {
	if ge, ok := s.graphs[graphName]; !ok || ge.id != k.graphID {
		return
	}
	el := s.lru.PushFront(&entry{key: k, val: val, fkey: fkey})
	s.cache[k] = el
	if fkey != "" {
		s.fleetIdx[fkey] = el
	}
	s.evictTailLocked()
}

// evictTailLocked trims the LRU to its entry budget. Caller holds s.mu.
func (s *Store) evictTailLocked() {
	for s.lru.Len() > s.cfg.MaxEntries {
		tail := s.lru.Back()
		s.removeEntryLocked(tail, tail.Value.(*entry))
		s.ctrs.Evictions++
		s.cfg.Metrics.eviction()
	}
}

// addCost folds one completed run's metrics into the store-wide totals
// and mirrors the same snapshot into the exposed monotone counters — one
// observation site, so /metrics can never drift from /v1/stats.
func (s *Store) addCost(m bsp.Snapshot) {
	s.cost.AddRounds(m.Rounds)
	s.cost.AddUpdates(m.Updates)
	s.cost.AddMessages(m.Messages)
	s.cfg.Metrics.observeCost(m)
}

// NotFoundError reports a query against an unregistered graph name.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("store: graph %q is not registered", e.Name)
}
