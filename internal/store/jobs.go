package store

import (
	"context"
	"fmt"
	"time"

	"graphdiam/internal/core"
)

// JobKind names the computation a job runs.
type JobKind string

const (
	JobDecompose JobKind = "decompose"
	JobDiameter  JobKind = "diameter"
)

// JobState is the lifecycle state of a job.
//
//	queued → running → done | failed | cancelled
//
// "running" covers waiting for a compute slot as well as executing; the
// semaphore wait is observable as a running job whose progress is still
// empty.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCancelled
}

// JobView is an immutable snapshot of a job, JSON-ready for the /v2 API.
type JobView struct {
	ID       string     `json:"id"`
	Kind     JobKind    `json:"kind"`
	Graph    string     `json:"graph"`
	Params   Params     `json:"params"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"createdAt"`
	Started  *time.Time `json:"startedAt,omitempty"`
	Finished *time.Time `json:"finishedAt,omitempty"`
	// Progress is the latest snapshot from the running computation; nil
	// until the first stage completes (or forever, for cache hits).
	Progress *core.Progress `json:"progress,omitempty"`
	// Cached reports that the result came from the LRU cache or by joining
	// a concurrent identical computation rather than a dedicated run.
	Cached bool `json:"cached"`
	// Error carries the failure message of a failed or cancelled job.
	Error string `json:"error,omitempty"`
	// Result is a DecomposeResult or DiameterResult once State is done.
	Result any `json:"result,omitempty"`
}

// JobEvent is one entry of a job's event stream.
type JobEvent struct {
	// Type is "progress" for a mid-run snapshot, "state" for a lifecycle
	// transition (including the terminal one).
	Type string  `json:"type"`
	Job  JobView `json:"job"`
}

// job is the registry's mutable record. All fields past the immutable
// header are guarded by the store mutex.
type job struct {
	id     string
	kind   JobKind
	graph  string
	params Params
	cancel context.CancelFunc
	done   chan struct{}

	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	progress *core.Progress
	cached   bool
	result   any
	err      string
	errVal   error // typed original of err, for API error mapping
	subs     map[int]chan JobEvent
	nextSub  int
}

// viewLocked snapshots the job. Caller holds s.mu.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:      j.id,
		Kind:    j.kind,
		Graph:   j.graph,
		Params:  j.params,
		State:   j.state,
		Created: j.created,
		Cached:  j.cached,
		Error:   j.err,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	return v
}

// broadcastLocked fans an event out to subscribers. Sends never block: a
// subscriber whose buffer is full misses the event — progress is lossy by
// design, and terminal delivery is guaranteed separately by the channel
// close (consumers refetch the final view after the stream ends).
func (j *job) broadcastLocked(typ string) {
	if len(j.subs) == 0 {
		return
	}
	ev := JobEvent{Type: typ, Job: j.viewLocked()}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// SubmitJob validates the request, registers a job, and starts it
// asynchronously. The graph must be registered and the parameters valid at
// submission time; later failures surface in the job's terminal state. The
// returned view is the job's initial (queued) snapshot.
func (s *Store) SubmitJob(kind JobKind, graphName string, p Params) (JobView, error) {
	_, view, err := s.submitJob(kind, graphName, p)
	return view, err
}

// RunJobSync submits a job and blocks until it finishes or ctx is done —
// the synchronous compatibility path of the v1 API. It waits on the job
// itself, not the registry, so the result survives even if the terminal
// job is evicted by a concurrent submission burst. The returned error is
// the typed original (e.g. *NotFoundError, context.Canceled), suitable for
// API status mapping; when ctx expires first the job is cancelled and
// ctx's error returned.
func (s *Store) RunJobSync(ctx context.Context, kind JobKind, graphName string, p Params) (JobView, error) {
	j, _, err := s.submitJob(kind, graphName, p)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		j.cancel()
		return JobView{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.viewLocked(), j.errVal
}

// submitJob is the registration half shared by SubmitJob and RunJobSync.
func (s *Store) submitJob(kind JobKind, graphName string, p Params) (*job, JobView, error) {
	switch kind {
	case JobDecompose, JobDiameter:
	default:
		return nil, JobView{}, fmt.Errorf("store: unknown job kind %q (want decompose or diameter)", kind)
	}
	p = p.normalized()
	if _, err := p.options(); err != nil {
		return nil, JobView{}, err
	}

	s.mu.Lock()
	_, resident := s.graphs[graphName]
	s.mu.Unlock()
	if !resident {
		// Not resident — still submittable when the dataset catalog can
		// resolve the name: locally, or by adopting a peer's record
		// through a remote blob backend (the job's compute path then
		// faults the snapshot in lazily). The catalog is consulted
		// outside s.mu; its mutex can be held across manifest fsyncs by
		// a concurrent ingest — and a remote lookup adds network latency
		// — so neither must ever ride the store's global lock.
		known := false
		if s.cfg.Catalog != nil {
			_, ierr := s.cfg.Catalog.Resolve(graphName)
			known = ierr == nil
		}
		if !known {
			return nil, JobView{}, &NotFoundError{Name: graphName}
		}
	}

	s.mu.Lock()
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.nextJob++
	// Fleet members mint rank-qualified IDs ("job-r<rank>-<seq>") so the
	// routing layer can send /v2/jobs/{id} requests home to the node that
	// owns the job's registry entry and event stream.
	id := fmt.Sprintf("job-%06d", s.nextJob)
	if dc := s.cfg.Distributed; dc != nil {
		id = fmt.Sprintf("job-r%d-%06d", dc.Rank, s.nextJob)
	}
	j := &job{
		id:      id,
		kind:    kind,
		graph:   graphName,
		params:  p,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: s.now(),
		subs:    make(map[int]chan JobEvent),
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictJobsLocked()
	view := j.viewLocked()
	// Track the goroutine for Close's join — but never Add concurrently
	// with an in-progress Wait: post-Close submissions run untracked (they
	// cancel immediately under the already-dead baseCtx anyway).
	tracked := !s.closed
	if tracked {
		s.jobsWG.Add(1)
	}
	s.mu.Unlock()

	go s.runJob(ctx, j, tracked)
	return j, view, nil
}

// runJob executes one job to its terminal state.
func (s *Store) runJob(ctx context.Context, j *job, tracked bool) {
	if tracked {
		defer s.jobsWG.Done()
	}
	s.mu.Lock()
	j.state = JobRunning
	j.started = s.now()
	j.broadcastLocked("state")
	s.mu.Unlock()

	progress := func(p core.Progress) {
		s.mu.Lock()
		j.progress = &p
		j.broadcastLocked("progress")
		s.mu.Unlock()
	}

	var (
		result any
		cached bool
		err    error
	)
	switch j.kind {
	case JobDecompose:
		result, cached, err = s.DecomposeObserved(ctx, j.graph, j.params, progress)
	case JobDiameter:
		result, cached, err = s.DiameterObserved(ctx, j.graph, j.params, progress)
	}

	s.mu.Lock()
	j.finished = s.now()
	j.cached = cached
	j.errVal = err
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
	case isContextErr(err):
		j.state = JobCancelled
		j.err = err.Error()
	default:
		j.state = JobFailed
		j.err = err.Error()
	}
	j.broadcastLocked("state")
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = make(map[int]chan JobEvent)
	state, lifetime := j.state, j.finished.Sub(j.created)
	s.mu.Unlock()
	s.cfg.Metrics.jobFinished(state, lifetime)
	close(j.done)
}

// Job returns a snapshot of the job with the given id.
func (s *Store) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.viewLocked(), true
}

// Jobs lists all retained jobs in submission order. Listings omit the
// Result payload — fetch the individual job for it — so enumerating a full
// registry stays cheap regardless of result sizes.
func (s *Store) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		v := s.jobs[id].viewLocked()
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// CancelJob requests cancellation of the job with the given id and returns
// its snapshot. Cancelling a terminal job is a no-op; the running BSP
// engine otherwise observes the cancellation at its next superstep barrier
// and the job transitions to cancelled shortly after.
func (s *Store) CancelJob(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	view := j.viewLocked()
	s.mu.Unlock()
	if !view.State.Terminal() {
		j.cancel()
	}
	return view, true
}

// WaitJob blocks until the job reaches a terminal state or ctx is
// cancelled, returning the job's (then-final) snapshot.
func (s *Store) WaitJob(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("store: job %q is not registered", id)
	}
	select {
	case <-j.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return j.viewLocked(), nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// SubscribeJob registers an event subscriber for the job, returning the
// job's snapshot taken atomically with the registration: every event
// delivered on the channel is strictly newer than the snapshot, so a
// consumer that renders the snapshot first observes monotone progress.
// Events are delivered best-effort (slow consumers miss intermediate
// snapshots, never block the computation); the channel is closed when the
// job reaches a terminal state, after which the consumer should refetch
// the final view. The returned cancel function must be called to release
// the subscription. ok is false when the job id is unknown; an
// already-terminal job yields a closed channel.
func (s *Store) SubscribeJob(id string) (snapshot JobView, events <-chan JobEvent, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, okJob := s.jobs[id]
	if !okJob {
		return JobView{}, nil, nil, false
	}
	snapshot = j.viewLocked()
	ch := make(chan JobEvent, 64)
	if j.state.Terminal() {
		close(ch)
		return snapshot, ch, func() {}, true
	}
	n := j.nextSub
	j.nextSub++
	j.subs[n] = ch
	return snapshot, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := j.subs[n]; live {
			delete(j.subs, n)
		}
	}, true
}

// evictJobsLocked drops the oldest terminal jobs while the registry
// exceeds its retention bound. Live jobs are never evicted, so the
// registry can transiently exceed MaxJobs under a burst of submissions.
// Caller holds s.mu.
func (s *Store) evictJobsLocked() {
	if len(s.jobOrder) <= s.cfg.MaxJobs {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - s.cfg.MaxJobs
	for _, id := range s.jobOrder {
		if excess > 0 && s.jobs[id].state.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// jobCountsLocked tallies jobs by state. Caller holds s.mu.
func (s *Store) jobCountsLocked() JobCounts {
	var c JobCounts
	for _, j := range s.jobs {
		switch j.state {
		case JobQueued:
			c.Queued++
		case JobRunning:
			c.Running++
		case JobDone:
			c.Done++
		case JobFailed:
			c.Failed++
		case JobCancelled:
			c.Cancelled++
		}
	}
	return c
}
