package store

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphdiam/internal/gen"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func addSpec(t *testing.T, s *Store, name, spec string) {
	t.Helper()
	g, err := gen.FromSpec(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGraph(name, g, "test "+spec); err != nil {
		t.Fatal(err)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	view, err := s.SubmitJob(JobDecompose, "g", Params{Tau: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if view.State != JobQueued || view.ID == "" {
		t.Fatalf("initial view %+v", view)
	}
	final, err := s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Cached {
		t.Fatalf("final view %+v", final)
	}
	res, ok := final.Result.(DecomposeResult)
	if !ok || res.NumClusters <= 0 {
		t.Fatalf("job result %+v", final.Result)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatalf("missing timestamps: %+v", final)
	}

	// The job's result landed in the shared cache: a synchronous query with
	// identical parameters is a hit, and a second identical job is cached.
	if _, cached, err := s.Decompose(context.Background(), "g", Params{Tau: 8, Seed: 3}); err != nil || !cached {
		t.Fatalf("sync query after job: cached=%v err=%v", cached, err)
	}
	v2, err := s.SubmitJob(JobDecompose, "g", Params{Tau: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.WaitJob(context.Background(), v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if f2.State != JobDone || !f2.Cached {
		t.Fatalf("second job should be served from cache: %+v", f2)
	}
	if f2.Result.(DecomposeResult) != res {
		t.Fatal("cached job result differs from original")
	}
}

func TestJobValidationAndNotFound(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	if _, err := s.SubmitJob(JobKind("bogus"), "g", Params{}); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if _, err := s.SubmitJob(JobDiameter, "g", Params{DeltaInit: "bogus"}); err == nil {
		t.Fatal("bogus params accepted")
	}
	var nf *NotFoundError
	if _, err := s.SubmitJob(JobDiameter, "ghost", Params{}); !errors.As(err, &nf) {
		t.Fatalf("want NotFoundError, got %v", err)
	}
	if _, ok := s.Job("job-999999"); ok {
		t.Fatal("unknown job id found")
	}
	if _, ok := s.CancelJob("job-999999"); ok {
		t.Fatal("cancelled an unknown job")
	}
	if _, err := s.WaitJob(context.Background(), "job-999999"); err == nil {
		t.Fatal("waited on an unknown job")
	}
}

// TestJobCancelMidRun is the satellite acceptance test at the store layer:
// a decompose job on a large road network cancelled mid-flight transitions
// to cancelled promptly (the BSP engine stops within one superstep) and
// leaves no goroutines behind.
func TestJobCancelMidRun(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()
	// A long unit path decomposes in O(n) supersteps (Δ doubles from 1 while
	// every growing step advances one hop), giving a wide mid-run window.
	addSpec(t, s, "usa", "path:300000")
	baseline := runtime.NumGoroutine()

	view, err := s.SubmitJob(JobDecompose, "usa", Params{Tau: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for demonstrable mid-flight progress, then cancel.
	waitFor(t, "first progress snapshot", func() bool {
		v, ok := s.Job(view.ID)
		return ok && v.Progress != nil
	})
	cancelledAt := time.Now()
	if _, ok := s.CancelJob(view.ID); !ok {
		t.Fatal("cancel failed")
	}
	final, err := s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(cancelledAt)
	if final.State != JobCancelled {
		t.Fatalf("state %s after cancel (progress %+v)", final.State, final.Progress)
	}
	if final.Error != context.Canceled.Error() {
		t.Fatalf("job error %q, want %q", final.Error, context.Canceled)
	}
	if final.Result != nil {
		t.Fatal("cancelled job carries a result")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to land", elapsed)
	}
	if v, _ := s.Job(view.ID); v.Progress == nil || v.Progress.Coverage >= 1 {
		t.Fatalf("cancelled mid-flight but progress is %+v", v.Progress)
	}

	// No goroutines left behind, and the cancelled run did not poison the
	// cache: a fresh identical job recomputes and succeeds.
	waitGoroutines(t, baseline)
	v2, err := s.SubmitJob(JobDecompose, "usa", Params{Tau: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.WaitJob(context.Background(), v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if f2.State != JobDone || f2.Cached {
		t.Fatalf("rerun after cancellation: %+v", f2)
	}
}

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
}

// TestFollowerRetriesAfterLeaderCancelledMidRun: a singleflight follower
// whose leader is cancelled mid-BSP-run must not inherit the cancellation —
// it retries, becomes the new leader, and succeeds.
func TestFollowerRetriesAfterLeaderCancelledMidRun(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	defer s.Close()
	addSpec(t, s, "usa", "path:300000") // long run: the leader must still be mid-flight when cancelled
	p := Params{Tau: 2, Seed: 9, Workers: 2}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	var (
		wg         sync.WaitGroup
		leaderErr  error
		followerV  DecomposeResult
		followerE  error
		followerOK bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = s.Decompose(leaderCtx, "usa", p)
	}()
	waitFor(t, "leader in flight", func() bool { return s.Stats().InFlight == 1 })

	wg.Add(1)
	go func() {
		defer wg.Done()
		followerV, followerOK, followerE = s.Decompose(context.Background(), "usa", p)
	}()
	waitFor(t, "follower joined", func() bool { return s.Stats().Counters.Dedups >= 1 })

	cancelLeader() // mid-run: the leader holds a compute slot and is growing clusters
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader: want context.Canceled, got %v", leaderErr)
	}
	if followerE != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", followerE)
	}
	if followerOK {
		t.Fatal("follower result marked cached; it must have recomputed")
	}
	if followerV.NumClusters <= 0 {
		t.Fatalf("follower result %+v", followerV)
	}
	if e := s.Stats().Counters.Errors; e != 0 {
		t.Fatalf("cancellation counted as %d store errors", e)
	}
}

func TestJobRetentionEvictsOldestTerminal(t *testing.T) {
	s := New(Config{MaxJobs: 3})
	defer s.Close()
	addSpec(t, s, "g", "mesh:8")
	var ids []string
	for i := 0; i < 6; i++ {
		v, err := s.SubmitJob(JobDecompose, "g", Params{Tau: 4, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitJob(context.Background(), v.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	jobs := s.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("retained %d jobs, want 3", len(jobs))
	}
	// The newest three survive, in submission order.
	for i, v := range jobs {
		if v.ID != ids[3+i] {
			t.Fatalf("slot %d holds %s, want %s", i, v.ID, ids[3+i])
		}
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("evicted job still resolvable")
	}
	counts := s.Stats().Jobs
	if counts.Done != 3 || counts.Running != 0 {
		t.Fatalf("job counts %+v", counts)
	}
}

func TestJobSubscribeStreamsProgressThenCloses(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	addSpec(t, s, "usa", "road:96")

	view, err := s.SubmitJob(JobDecompose, "usa", Params{Tau: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap, events, cancelSub, ok := s.SubscribeJob(view.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancelSub()
	if snap.ID != view.ID {
		t.Fatalf("snapshot for wrong job: %+v", snap)
	}

	var progressSeen int
	lastCoverage := -1.0
	for ev := range events {
		if ev.Job.ID != view.ID {
			t.Fatalf("event for wrong job: %+v", ev.Job)
		}
		if ev.Type == "progress" {
			progressSeen++
			if ev.Job.Progress == nil {
				t.Fatal("progress event without snapshot")
			}
			if c := ev.Job.Progress.Coverage; c < lastCoverage {
				t.Fatalf("coverage regressed %v -> %v", lastCoverage, c)
			} else {
				lastCoverage = c
			}
		}
	}
	// Channel closed: job is terminal.
	final, ok := s.Job(view.ID)
	if !ok || final.State != JobDone {
		t.Fatalf("final %+v ok=%v", final, ok)
	}
	if progressSeen == 0 {
		t.Fatal("no progress events observed before completion")
	}

	// Subscribing to a terminal job yields an immediately closed channel.
	snap2, ch, cancel2, ok := s.SubscribeJob(view.ID)
	if !ok {
		t.Fatal("subscribe to terminal job failed")
	}
	defer cancel2()
	if snap2.State != JobDone {
		t.Fatalf("terminal snapshot state %s", snap2.State)
	}
	if _, open := <-ch; open {
		t.Fatal("terminal job's channel not closed")
	}
}

func TestStoreCloseCancelsJobs(t *testing.T) {
	s := New(Config{})
	addSpec(t, s, "usa", "path:300000")
	view, err := s.SubmitJob(JobDecompose, "usa", Params{Tau: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		v, _ := s.Job(view.ID)
		return v.State == JobRunning
	})
	s.Close()
	final, err := s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobCancelled {
		t.Fatalf("state after Close: %s", final.State)
	}
}
