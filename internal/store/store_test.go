package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
)

func newTestStore(t *testing.T, cfg Config, graphs ...string) *Store {
	t.Helper()
	s := New(cfg)
	for i, name := range graphs {
		g, err := gen.FromSpec("mesh:12", uint64(i+1))
		if err != nil {
			t.Fatalf("FromSpec: %v", err)
		}
		if _, err := s.AddGraph(name, g, "test"); err != nil {
			t.Fatalf("AddGraph(%q): %v", name, err)
		}
	}
	return s
}

func TestRegistry(t *testing.T) {
	s := newTestStore(t, Config{}, "a", "b")
	if _, _, ok := s.Graph("a"); !ok {
		t.Fatal("graph a not found")
	}
	if _, _, ok := s.Graph("zzz"); ok {
		t.Fatal("unexpected graph zzz")
	}
	infos := s.Graphs()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("Graphs() = %+v", infos)
	}
	if infos[0].NumNodes != 144 {
		t.Fatalf("mesh:12 should have 144 nodes, got %d", infos[0].NumNodes)
	}
	if !s.RemoveGraph("a") || s.RemoveGraph("a") {
		t.Fatal("RemoveGraph semantics wrong")
	}
	if _, err := s.AddGraph("", nil, ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestNotFound(t *testing.T) {
	s := newTestStore(t, Config{})
	_, _, err := s.Diameter(context.Background(), "nope", Params{})
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Name != "nope" {
		t.Fatalf("want NotFoundError{nope}, got %v", err)
	}
}

func TestHitMiss(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	ctx := context.Background()
	p := Params{Tau: 8, Seed: 7, Workers: 2}

	r1, cached, err := s.Diameter(ctx, "g", p)
	if err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	r2, cached, err := s.Diameter(ctx, "g", p)
	if err != nil || !cached {
		t.Fatalf("second query: cached=%v err=%v", cached, err)
	}
	if r1.Estimate != r2.Estimate || r1.Metrics != r2.Metrics {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}
	if r1.Estimate <= 0 {
		t.Fatalf("nonpositive diameter estimate %v", r1.Estimate)
	}

	// A different parameter set is a different slot.
	if _, cached, err = s.Diameter(ctx, "g", Params{Tau: 8, Seed: 8}); err != nil || cached {
		t.Fatalf("distinct params: cached=%v err=%v", cached, err)
	}
	// Decompose with the same knobs is also a different slot.
	if _, cached, err = s.Decompose(ctx, "g", p); err != nil || cached {
		t.Fatalf("decompose after diameter: cached=%v err=%v", cached, err)
	}

	st := s.Stats()
	if st.Counters.Hits != 1 || st.Counters.Misses != 3 || st.Counters.Computations != 3 {
		t.Fatalf("counters = %+v", st.Counters)
	}
	if st.TotalCost.Rounds <= 0 || st.TotalCost.Work() <= 0 {
		t.Fatalf("total cost not accumulated: %+v", st.TotalCost)
	}
}

func TestDecomposeResultShape(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	r, _, err := s.Decompose(context.Background(), "g", Params{Tau: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumClusters <= 0 || r.NumClusters > r.NumNodes {
		t.Fatalf("bad cluster count %d for n=%d", r.NumClusters, r.NumNodes)
	}
	if r.Radius < 0 || r.Stages <= 0 || r.Metrics.Rounds <= 0 {
		t.Fatalf("implausible result %+v", r)
	}
	if r.MinCluster < 1 || r.MaxCluster < r.MinCluster {
		t.Fatalf("bad size extremes %d/%d", r.MinCluster, r.MaxCluster)
	}
}

func TestParamValidation(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	ctx := context.Background()
	cases := []Params{
		{Cluster2: true, WeightOblivious: true},
		{DeltaInit: "bogus"},
		{DeltaInit: "fixed"}, // missing FixedDelta
	}
	for _, p := range cases {
		if _, _, err := s.Diameter(ctx, "g", p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if st := s.Stats(); st.Counters.Misses != 0 {
		t.Fatalf("invalid params touched the cache: %+v", st.Counters)
	}
}

// TestConcurrentDedup is the acceptance-criterion test: many identical
// concurrent queries share one underlying BSP run.
func TestConcurrentDedup(t *testing.T) {
	s := newTestStore(t, Config{MaxConcurrent: 4}, "g")
	const N = 16
	p := Params{Tau: 10, Seed: 42, Workers: 2}

	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		results [N]DiameterResult
		errs    [N]error
	)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], _, errs[i] = s.Diameter(context.Background(), "g", p)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("request %d returned a different result", i)
		}
	}
	st := s.Stats()
	if st.Counters.Computations != 1 {
		t.Fatalf("want exactly 1 BSP run, got %d (counters %+v)",
			st.Counters.Computations, st.Counters)
	}
	if st.Counters.Hits+st.Counters.Dedups != N-1 {
		t.Fatalf("want %d shared requests, got hits=%d dedups=%d",
			N-1, st.Counters.Hits, st.Counters.Dedups)
	}
}

func TestEviction(t *testing.T) {
	s := newTestStore(t, Config{MaxEntries: 2}, "g")
	ctx := context.Background()
	q := func(seed uint64) {
		t.Helper()
		if _, _, err := s.Diameter(ctx, "g", Params{Tau: 8, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	q(1)
	q(2)
	q(1) // refresh seed=1 so seed=2 is the LRU victim
	q(3) // evicts seed=2
	st := s.Stats()
	if st.Counters.Evictions != 1 || st.CacheEntries != 2 {
		t.Fatalf("evictions=%d entries=%d", st.Counters.Evictions, st.CacheEntries)
	}
	q(1) // still cached
	q(2) // recomputed
	st = s.Stats()
	if st.Counters.Computations != 4 {
		t.Fatalf("want 4 computations (seed 2 twice), got %d", st.Counters.Computations)
	}
}

func TestReplaceGraphDropsCache(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	ctx := context.Background()
	p := Params{Tau: 8, Seed: 1}
	r1, _, err := s.Diameter(ctx, "g", p)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := gen.FromSpec("mesh:20", 9)
	if _, err := s.AddGraph("g", g2, "replacement"); err != nil {
		t.Fatal(err)
	}
	r2, cached, err := s.Diameter(ctx, "g", p)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("replaced graph served a stale cached result")
	}
	if r2.Estimate == r1.Estimate {
		t.Fatal("result does not reflect the replacement graph")
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Fatalf("old graph's entries not purged: %d", st.CacheEntries)
	}
}

// TestConcurrencyCap drives the generic compute path with instrumented
// functions and asserts the semaphore never admits more than MaxConcurrent
// computations at once.
func TestConcurrencyCap(t *testing.T) {
	const cap = 2
	s := newTestStore(t, Config{MaxConcurrent: cap}, "g")
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.do(context.Background(), "g", fmt.Sprintf("op%d", i), nil,
				func(context.Context, *graph.Graph) (any, error) {
					c := cur.Add(1)
					for {
						p := peak.Load()
						if c <= p || peak.CompareAndSwap(p, c) {
							break
						}
					}
					time.Sleep(5 * time.Millisecond)
					cur.Add(-1)
					return i, nil
				})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("observed %d concurrent computations, cap is %d", p, cap)
	}
}

func TestFollowerContextCancel(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := s.do(context.Background(), "g", "slow", nil, func(context.Context, *graph.Graph) (any, error) {
			<-release
			return 1, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	// Wait until the flight is registered.
	for {
		if s.Stats().InFlight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.do(ctx, "g", "slow", nil, func(context.Context, *graph.Graph) (any, error) {
		t.Error("follower must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(release)
	<-leaderDone
}

// TestParamNormalization: equivalent spellings of the same parameters must
// share one cache slot.
func TestParamNormalization(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	ctx := context.Background()
	if _, cached, err := s.Diameter(ctx, "g", Params{Tau: 8, DeltaInit: "avg"}); err != nil || cached {
		t.Fatalf("first: cached=%v err=%v", cached, err)
	}
	for _, di := range []string{"AVG", "", "Avg"} {
		_, cached, err := s.Diameter(ctx, "g", Params{Tau: 8, DeltaInit: di})
		if err != nil || !cached {
			t.Fatalf("deltaInit=%q: cached=%v err=%v", di, cached, err)
		}
	}
	if c := s.Stats().Counters.Computations; c != 1 {
		t.Fatalf("equivalent params ran %d computations", c)
	}
}

// TestLeaderCancelPromotesFollower: a follower must not inherit the
// leader's cancellation; it retries and one retrier recomputes.
func TestLeaderCancelPromotesFollower(t *testing.T) {
	// MaxConcurrent 1 with the slot held hostage lets us cancel a leader
	// while it waits for the semaphore.
	s := newTestStore(t, Config{MaxConcurrent: 1}, "g")
	release := make(chan struct{})
	hostageDone := make(chan struct{})
	go func() {
		defer close(hostageDone)
		s.do(context.Background(), "g", "hostage", nil, func(context.Context, *graph.Graph) (any, error) {
			<-release
			return 0, nil
		})
	}()
	for s.Stats().InFlight != 1 {
		time.Sleep(time.Millisecond)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := s.do(leaderCtx, "g", "contested", nil, func(context.Context, *graph.Graph) (any, error) {
			t.Error("cancelled leader must not compute")
			return nil, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader: want Canceled, got %v", err)
		}
	}()
	for s.Stats().InFlight != 2 {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		v, _, err := s.do(context.Background(), "g", "contested", nil, func(context.Context, *graph.Graph) (any, error) {
			return "recomputed", nil
		})
		if err != nil || v != "recomputed" {
			t.Errorf("follower: v=%v err=%v (must survive leader cancellation)", v, err)
		}
	}()

	cancelLeader()
	<-leaderDone
	close(release) // free the semaphore so the promoted follower can run
	<-hostageDone
	<-followerDone
	if e := s.Stats().Counters.Errors; e != 0 {
		t.Fatalf("client cancellation counted as %d store errors", e)
	}
}

// TestRemoveGraphDuringFlight: a computation finishing after its graph was
// removed must not occupy a cache slot under the dead graph id.
func TestRemoveGraphDuringFlight(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := s.do(context.Background(), "g", "k", nil, func(context.Context, *graph.Graph) (any, error) {
			close(started)
			<-release
			return 1, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	if !s.RemoveGraph("g") {
		t.Fatal("RemoveGraph failed")
	}
	close(release)
	<-done
	if n := s.Stats().CacheEntries; n != 0 {
		t.Fatalf("dead graph's result occupies %d cache entries", n)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	s := newTestStore(t, Config{}, "g")
	boom := errors.New("boom")
	calls := 0
	fn := func(context.Context, *graph.Graph) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := s.do(context.Background(), "g", "k", nil, fn); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, cached, err := s.do(context.Background(), "g", "k", nil, fn)
	if err != nil || cached || v != "ok" {
		t.Fatalf("retry after error: v=%v cached=%v err=%v", v, cached, err)
	}
	if st := s.Stats(); st.Counters.Errors != 1 || st.Counters.Computations != 1 {
		t.Fatalf("counters %+v", st.Counters)
	}
}
