package store

import (
	"context"
	"runtime"
	"testing"
	"time"

	"graphdiam/internal/gen"
)

// TestConcurrentJobsDistinctEngines is the pool-reuse stress test: two (and
// more) concurrent jobs with distinct parameters run on distinct engines,
// each with its own persistent worker pool, and every pool is released when
// its run finishes — the goroutine count returns to baseline.
func TestConcurrentJobsDistinctEngines(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, name := range []string{"g1", "g2"} {
		g, err := gen.FromSpec("road:24", 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddGraph(name, g, "test"); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	// Distinct (graph, params) pairs so no two requests share a flight:
	// every run gets its own engine and pool.
	type req struct {
		graph string
		p     Params
	}
	var reqs []req
	for i := 0; i < 8; i++ {
		reqs = append(reqs, req{
			graph: []string{"g1", "g2"}[i%2],
			p:     Params{Tau: 4 + i, Seed: uint64(i), Workers: 2 + i%3},
		})
	}
	errs := make(chan error, len(reqs))
	for _, rq := range reqs {
		go func(rq req) {
			_, _, err := s.Decompose(context.Background(), rq.graph, rq.p)
			errs <- err
		}(rq)
	}
	for range reqs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Engine pools are closed when each run returns; allow scheduler slack.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("worker pools leaked: %d goroutines vs %d baseline",
		runtime.NumGoroutine(), baseline)
}
