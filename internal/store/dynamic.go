package store

import (
	"context"
	"strings"

	"graphdiam/internal/core"
	"graphdiam/internal/graph"
)

// Dynamic-graph maintenance: when a dataset's lineage head moves (an
// append or a remote adoption of one), every cached artifact keyed on
// the superseded head is stale — the local result cache, the raw fleet
// pushes indexed under the old content address, and the registered
// graph itself. ApplyDelta is the single seam the server calls after
// the catalog commits an append.
//
// Decompositions are maintained incrementally in the scheduling sense,
// not the splicing sense: the paper's cluster-growing algorithm couples
// every cluster through global state (the per-stage fraction p depends
// on |uncovered|, Δ doubles on fleet-wide coverage), so recomputing
// only the touched clusters and splicing them into the old clustering
// cannot reproduce the deterministic full run bit for bit. Instead the
// store keeps the last clustering per (head, params), measures how many
// clusters a delta actually touched, and when that churn is under
// Config.ChurnThreshold it eagerly re-runs the full deterministic
// algorithm on the new head so the cache is warm before the next query
// — byte-identical to a cold full recompute by construction, with the
// round/message/update accounting exact for the run that happened. Past
// the threshold it just invalidates and lets the next query pay.

// MaintenanceResult reports what one head movement did to this node's
// caches and decompositions.
type MaintenanceResult struct {
	// Mode is "none" (no retained decomposition to maintain),
	// "incremental" (churn under threshold: recomputed eagerly), or
	// "full" (churn over threshold: invalidated, next query recomputes).
	Mode string `json:"mode"`
	// Recomputed counts decompositions re-run eagerly.
	Recomputed int `json:"recomputed"`
	// Invalidated counts cache entries dropped (local + fleet-raw).
	Invalidated int `json:"invalidated"`
	// TouchedClusters/TotalClusters measure the delta's churn against
	// the retained clustering with the highest touched fraction.
	TouchedClusters int `json:"touchedClusters"`
	TotalClusters   int `json:"totalClusters"`
}

// retainedClustering is the store's memory of one decomposition run:
// enough to measure a delta's churn and to replay the exact query.
type retainedClustering struct {
	params Params
	cl     *core.Clustering
}

// maxRetained bounds the retained-clustering side cache. Entries are
// small relative to graphs (one int32 per node) but not free.
const maxRetained = 16

// retainClustering remembers the clustering behind a just-completed
// decomposition, keyed by the graph's content address + canonical
// params. Ad-hoc (non-dataset) graphs have no fleet-stable identity and
// are not retained.
func (s *Store) retainClustering(name string, p Params, cl *core.Clustering) {
	if cl == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[name]
	if !ok || ge.sha == "" {
		return
	}
	k := ge.sha + "|" + p.canonical("decompose")
	if _, exists := s.retained[k]; !exists {
		s.retainedOrder = append(s.retainedOrder, k)
		for len(s.retainedOrder) > maxRetained {
			delete(s.retained, s.retainedOrder[0])
			s.retainedOrder = s.retainedOrder[1:]
		}
	}
	s.retained[k] = &retainedClustering{params: p, cl: cl}
}

// ApplyDelta reconciles the store with a dataset whose lineage head
// moved from prevSHA to newSHA. touched is the distinct vertex set the
// delta named. It drops every cache entry keyed on the superseded head
// (so no query can ever see a stale result), deregisters the old graph
// (the next query faults the new materialization in from the catalog),
// and maintains retained decompositions per the churn policy above.
// Safe to call with prevSHA == newSHA (a no-op append): nothing is
// invalidated.
func (s *Store) ApplyDelta(ctx context.Context, name, prevSHA, newSHA string, touched []graph.NodeID) MaintenanceResult {
	res := MaintenanceResult{Mode: "none"}
	if prevSHA == newSHA || prevSHA == "" {
		return res
	}
	prefix := prevSHA + "|"

	s.mu.Lock()
	// Deregister the superseded graph and purge its typed results.
	if ge, ok := s.graphs[name]; ok && ge.sha == prevSHA {
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			if ent := el.Value.(*entry); ent.key.graphID == ge.id {
				s.removeEntryLocked(el, ent)
				res.Invalidated++
			}
			el = next
		}
		delete(s.graphs, name)
	}
	// Raw fleet pushes for the old head, regardless of which graph id
	// (if any) they rode in under.
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*entry); ent.fkey != "" && strings.HasPrefix(ent.fkey, prefix) {
			s.removeEntryLocked(el, ent)
			res.Invalidated++
		}
		el = next
	}
	// Pop the old head's retained decompositions for churn measurement.
	var stale []*retainedClustering
	for i := 0; i < len(s.retainedOrder); {
		k := s.retainedOrder[i]
		if strings.HasPrefix(k, prefix) {
			stale = append(stale, s.retained[k])
			delete(s.retained, k)
			s.retainedOrder = append(s.retainedOrder[:i], s.retainedOrder[i+1:]...)
			continue
		}
		i++
	}
	threshold := s.cfg.ChurnThreshold
	s.mu.Unlock()

	if len(stale) == 0 {
		return res
	}
	res.Mode = "full"
	for _, re := range stale {
		tc, total := touchedClusters(re.cl, touched)
		if total*res.TouchedClusters <= res.TotalClusters*tc { // keep the highest fraction
			res.TouchedClusters, res.TotalClusters = tc, total
		}
		eager := threshold >= 0 && total > 0 && float64(tc) <= threshold*float64(total)
		if eager && ctx.Err() == nil {
			// Re-run the exact query on the new head: the deterministic
			// full algorithm, so the refreshed cache entry is
			// byte-identical to what a cold recompute would return.
			if _, _, err := s.Decompose(ctx, name, re.params); err == nil {
				res.Recomputed++
			}
		}
	}
	if res.Recomputed > 0 {
		res.Mode = "incremental"
	}
	s.cfg.Metrics.deltaMaintenance(res.Mode)
	return res
}

// touchedClusters counts how many of the clustering's clusters contain
// a touched vertex. Vertices beyond the old graph (newly inserted
// endpoints) count as one extra touched cluster — they belong to no
// existing cluster but force work wherever they land.
func touchedClusters(cl *core.Clustering, touched []graph.NodeID) (tc, total int) {
	total = cl.NumClusters()
	seen := make(map[int32]bool, len(touched))
	grown := false
	for _, v := range touched {
		if int(v) < len(cl.Center) {
			seen[cl.Center[v]] = true
		} else {
			grown = true
		}
	}
	tc = len(seen)
	if grown {
		tc++
	}
	return tc, total
}
