package store

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"graphdiam/internal/dataset"
	"graphdiam/internal/obs"
)

// appendTo runs one growing append through the catalog and returns the
// result (fatal on no-op: these tests need the head to move).
func appendTo(t *testing.T, cat *dataset.Catalog, name string, d *dataset.EdgeDelta) dataset.AppendResult {
	t.Helper()
	res, err := cat.AppendDelta(name, d, "test delta")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal("test delta was a no-op; pick edges that change the graph")
	}
	return res
}

// zeroWall strips the one nondeterministic field so results compare ==.
func zeroWall(r DecomposeResult) DecomposeResult {
	r.WallMillis = 0
	return r
}

// TestApplyDeltaIncrementalMatchesFullRecompute is the acceptance pin:
// after a delta, the incrementally-maintained decomposition must be
// byte-identical to a full recompute on the materialized graph — same
// clustering, same radius, same round/message/update accounting.
func TestApplyDeltaIncrementalMatchesFullRecompute(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"dyn": "mesh:24"})
	// ChurnThreshold 1.0: any churn qualifies for eager maintenance, so
	// the "incremental" path is taken deterministically.
	s := New(Config{Catalog: cat, ChurnThreshold: 1.0})
	defer s.Close()
	ctx := context.Background()
	p := Params{Seed: 5}

	before, cached, err := s.Decompose(ctx, "dyn", p)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first decompose reported cached")
	}

	res := appendTo(t, cat, "dyn", &dataset.EdgeDelta{
		Ins: []dataset.DeltaIns{{U: 0, V: 575, W: 0.5}},
		Rem: []dataset.DeltaRem{{U: 0, V: 1}},
	})
	m := s.ApplyDelta(ctx, "dyn", res.PrevSHA, res.Info.SHA256, res.Touched)
	if m.Mode != "incremental" {
		t.Fatalf("maintenance mode %q, want incremental (churn %d/%d)", m.Mode, m.TouchedClusters, m.TotalClusters)
	}
	if m.Recomputed != 1 {
		t.Fatalf("recomputed %d decompositions, want 1", m.Recomputed)
	}
	if m.Invalidated == 0 {
		t.Fatal("head moved but nothing was invalidated")
	}
	if m.TouchedClusters == 0 || m.TotalClusters == 0 {
		t.Fatalf("churn not measured: %+v", m)
	}

	// The eager recompute left the cache warm for the NEW head...
	after, cached, err := s.Decompose(ctx, "dyn", p)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("query after incremental maintenance missed the cache")
	}
	// ...and its result is not the stale pre-delta one.
	if zeroWall(after) == zeroWall(before) {
		t.Fatal("post-delta result identical to pre-delta result (stale cache?)")
	}

	// Byte-identity: a completely fresh store over the same catalog runs
	// the full algorithm cold on the new head and must agree exactly.
	fresh := New(Config{Catalog: cat})
	defer fresh.Close()
	full, cached, err := fresh.Decompose(ctx, "dyn", p)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold store reported cached")
	}
	if zeroWall(after) != zeroWall(full) {
		t.Fatalf("incremental maintenance diverged from full recompute:\n inc  %+v\n full %+v",
			zeroWall(after), zeroWall(full))
	}
}

func TestApplyDeltaNoOpInvalidatesNothing(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"d": "mesh:12"})
	s := New(Config{Catalog: cat})
	defer s.Close()
	ctx := context.Background()
	if _, _, err := s.Decompose(ctx, "d", Params{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	in, err := cat.Info("d")
	if err != nil {
		t.Fatal(err)
	}
	m := s.ApplyDelta(ctx, "d", in.SHA256, in.SHA256, nil)
	if m.Mode != "none" || m.Invalidated != 0 || m.Recomputed != 0 {
		t.Fatalf("no-op maintenance %+v, want mode none with no work", m)
	}
	// The cache is still warm.
	if _, cached, err := s.Decompose(ctx, "d", Params{Seed: 2}); err != nil || !cached {
		t.Fatalf("cache cold after no-op maintenance (cached=%v err=%v)", cached, err)
	}
}

// TestApplyDeltaHighChurnFallsBackToLazy pins the threshold fallback: a
// negative ChurnThreshold disables eager maintenance entirely, so a head
// movement invalidates and defers — mode "full", nothing recomputed,
// and the next query pays the cold cost but still sees the new graph.
func TestApplyDeltaHighChurnFallsBackToLazy(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"d": "mesh:12"})
	s := New(Config{Catalog: cat, ChurnThreshold: -1})
	defer s.Close()
	ctx := context.Background()
	p := Params{Seed: 2}
	if _, _, err := s.Decompose(ctx, "d", p); err != nil {
		t.Fatal(err)
	}
	res := appendTo(t, cat, "d", &dataset.EdgeDelta{
		Ins: []dataset.DeltaIns{{U: 0, V: 143, W: 0.5}},
	})
	m := s.ApplyDelta(ctx, "d", res.PrevSHA, res.Info.SHA256, res.Touched)
	if m.Mode != "full" || m.Recomputed != 0 {
		t.Fatalf("maintenance %+v, want lazy full invalidation", m)
	}
	next, cached, err := s.Decompose(ctx, "d", p)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("query after lazy invalidation claims cached")
	}
	// The lazy path converges to the same answer as any full recompute.
	fresh := New(Config{Catalog: cat})
	defer fresh.Close()
	full, _, err := fresh.Decompose(ctx, "d", p)
	if err != nil {
		t.Fatal(err)
	}
	if zeroWall(next) != zeroWall(full) {
		t.Fatalf("lazy recompute diverged from fresh store:\n lazy %+v\n full %+v", zeroWall(next), zeroWall(full))
	}
}

func TestApplyDeltaWithoutRetainedClusteringIsModeNone(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"d": "mesh:12"})
	s := New(Config{Catalog: cat})
	defer s.Close()
	ctx := context.Background()
	// Fault the graph in via a diameter query only — diameter retains no
	// decomposition under the decompose key the maintenance scans.
	if _, _, err := s.Diameter(ctx, "d", Params{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	res := appendTo(t, cat, "d", &dataset.EdgeDelta{
		Ins: []dataset.DeltaIns{{U: 0, V: 143, W: 0.5}},
	})
	m := s.ApplyDelta(ctx, "d", res.PrevSHA, res.Info.SHA256, res.Touched)
	if m.Mode != "none" {
		t.Fatalf("mode %q with no retained decomposition, want none", m.Mode)
	}
	// The stale graph and its cached results are still gone.
	if m.Invalidated == 0 {
		t.Fatal("stale diameter result survived the head movement")
	}
	if _, _, ok := s.Graph("d"); ok {
		t.Fatal("superseded graph still registered")
	}
	// And the next query serves the new head.
	if _, cached, err := s.Diameter(ctx, "d", Params{Seed: 2}); err != nil || cached {
		t.Fatalf("post-delta diameter (cached=%v err=%v), want cold recompute", cached, err)
	}
}

// TestApplyDeltaAfterNodeGrowth covers a delta whose inserted endpoint
// lies beyond the old vertex set: churn counts the growth as an extra
// touched cluster and maintenance still converges on the grown graph.
func TestApplyDeltaAfterNodeGrowth(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"d": "mesh:10"})
	s := New(Config{Catalog: cat, ChurnThreshold: 1.0})
	defer s.Close()
	ctx := context.Background()
	p := Params{Seed: 4}
	if _, _, err := s.Decompose(ctx, "d", p); err != nil {
		t.Fatal(err)
	}
	// mesh:10 has nodes 0..99; attach node 120 (and implicitly 100..120).
	res := appendTo(t, cat, "d", &dataset.EdgeDelta{
		Ins: []dataset.DeltaIns{{U: 99, V: 120, W: 1}},
	})
	if res.Info.NumNodes != 121 {
		t.Fatalf("grown node count %d, want 121", res.Info.NumNodes)
	}
	m := s.ApplyDelta(ctx, "d", res.PrevSHA, res.Info.SHA256, res.Touched)
	if m.Mode != "incremental" {
		t.Fatalf("maintenance mode %q, want incremental", m.Mode)
	}
	after, cached, err := s.Decompose(ctx, "d", p)
	if err != nil || !cached {
		t.Fatalf("decompose after growth (cached=%v): %v", cached, err)
	}
	if after.NumNodes != 121 {
		t.Fatalf("maintained decomposition has %d nodes, want 121", after.NumNodes)
	}
	fresh := New(Config{Catalog: cat})
	defer fresh.Close()
	full, _, err := fresh.Decompose(ctx, "d", p)
	if err != nil {
		t.Fatal(err)
	}
	if zeroWall(after) != zeroWall(full) {
		t.Fatalf("grown-graph maintenance diverged:\n inc  %+v\n full %+v", zeroWall(after), zeroWall(full))
	}
}

// TestDeltaRecomputeMetrics checks the counter family the maintenance
// path feeds: an "incremental" tick when eager recompute ran.
func TestDeltaRecomputeMetrics(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"d": "mesh:12"})
	reg := obs.NewRegistry()
	s := New(Config{Catalog: cat, ChurnThreshold: 1.0, Metrics: NewMetrics(reg)})
	defer s.Close()
	ctx := context.Background()
	if _, _, err := s.Decompose(ctx, "d", Params{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	res := appendTo(t, cat, "d", &dataset.EdgeDelta{
		Ins: []dataset.DeltaIns{{U: 0, V: 143, W: 0.5}},
	})
	if m := s.ApplyDelta(ctx, "d", res.PrevSHA, res.Info.SHA256, res.Touched); m.Mode != "incremental" {
		t.Fatalf("mode %q, want incremental", m.Mode)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `graphdiam_store_delta_recomputes_total{mode="incremental"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q", want)
	}
}
