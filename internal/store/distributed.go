package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/bsp/transport"
	"graphdiam/internal/graph"
)

// DistributedConfig wires one daemon into a fixed fleet. Every daemon in
// the fleet is configured with the same Peers list (rank order matters —
// rank r owns the r-th contiguous worker range) and its own Rank.
type DistributedConfig struct {
	// Rank is this daemon's index into Peers.
	Rank int
	// Peers lists every daemon's base URL in rank order, self included.
	Peers []string
	// BarrierTimeout bounds each superstep's wait for remote frames; 0
	// selects transport.DefaultBarrierTimeout.
	BarrierTimeout time.Duration
	// Client performs peer POSTs; nil selects the transport default.
	Client *http.Client
}

func (dc *DistributedConfig) validate() error {
	if len(dc.Peers) == 0 {
		return fmt.Errorf("store: distributed config needs at least one peer URL")
	}
	if dc.Rank < 0 || dc.Rank >= len(dc.Peers) {
		return fmt.Errorf("store: rank %d out of range for %d peers", dc.Rank, len(dc.Peers))
	}
	return nil
}

// DistJobRequest is the fan-out payload the coordinator POSTs to every
// remote daemon: one fleet-wide run, fully specified, so each participant
// executes the identical deterministic driver on its own worker range.
// Params must already be normalized by the coordinator — all peers must
// agree on every knob, Workers above all.
type DistJobRequest struct {
	RunID  string `json:"runId"`
	Graph  string `json:"graph"`
	Op     string `json:"op"` // "decompose" or "diameter"
	Params Params `json:"params"`
}

func (r DistJobRequest) validate() error {
	if r.RunID == "" {
		return fmt.Errorf("store: distributed job needs a run ID")
	}
	if r.Graph == "" {
		return fmt.Errorf("store: distributed job needs a graph name")
	}
	if r.Op != "decompose" && r.Op != "diameter" {
		return fmt.Errorf("store: unknown distributed op %q", r.Op)
	}
	return nil
}

// BSPRegistry returns the daemon's frame inbox registry — the server mounts
// it at /v2/bsp/frames. Non-nil even when distribution is unconfigured, so
// the route can answer (with an empty registry) unconditionally.
func (s *Store) BSPRegistry() *transport.Registry { return s.bspReg }

// DistributedEnabled reports whether this daemon is part of a fleet.
func (s *Store) DistributedEnabled() bool { return s.cfg.Distributed != nil }

// DistributedInfo returns this daemon's rank and the fleet's peer URLs.
func (s *Store) DistributedInfo() (rank int, peers []string, ok bool) {
	dc := s.cfg.Distributed
	if dc == nil {
		return 0, nil, false
	}
	return dc.Rank, append([]string(nil), dc.Peers...), true
}

var distRunSeq atomic.Uint64

// normalizeDistParams pins every fleet-sensitive knob before fan-out. The
// worker count is the one parameter single-process callers may leave 0
// ("all cores") — that is machine-dependent and therefore illegal in a
// fleet, so it defaults to a deterministic function of the fleet size.
func (dc *DistributedConfig) normalizeDistParams(p Params) (Params, error) {
	p = p.normalized()
	peers := len(dc.Peers)
	if p.Workers == 0 {
		p.Workers = 4 * peers
	}
	if p.Workers < peers {
		return p, fmt.Errorf("store: %d workers cannot be split across %d daemons", p.Workers, peers)
	}
	return p, nil
}

// DistributedDecompose runs one decomposition across the whole fleet, this
// daemon acting as coordinator: it fans the job out to every remote daemon,
// participates as its own rank, and returns its replica of the result —
// which, by the transport-equivalence guarantee, is bit-identical on every
// peer and to a single-process run with the same worker count.
func (s *Store) DistributedDecompose(ctx context.Context, graphName string, p Params) (DecomposeResult, error) {
	val, err := s.coordinate(ctx, "decompose", graphName, p)
	if err != nil {
		return DecomposeResult{}, err
	}
	return val.(DecomposeResult), nil
}

// DistributedDiameter is DistributedDecompose for CL-DIAM diameter runs.
func (s *Store) DistributedDiameter(ctx context.Context, graphName string, p Params) (DiameterResult, error) {
	val, err := s.coordinate(ctx, "diameter", graphName, p)
	if err != nil {
		return DiameterResult{}, err
	}
	return val.(DiameterResult), nil
}

func (s *Store) coordinate(ctx context.Context, op, graphName string, p Params) (any, error) {
	dc := s.cfg.Distributed
	if dc == nil {
		return nil, fmt.Errorf("store: distributed mode is not configured")
	}
	p, err := dc.normalizeDistParams(p)
	if err != nil {
		return nil, err
	}
	req := DistJobRequest{
		RunID:  fmt.Sprintf("%s-%d-%d-%d", op, dc.Rank, s.now().UnixNano(), distRunSeq.Add(1)),
		Graph:  graphName,
		Op:     op,
		Params: p,
	}
	// Fan out to every remote daemon first: each starts a participant that
	// begins stepping immediately (frames arriving before our own
	// participant opens the run are buffered by the registry).
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := dc.Client
	if client == nil {
		client = http.DefaultClient
	}
	var wg sync.WaitGroup
	errs := make([]error, len(dc.Peers))
	for q, peer := range dc.Peers {
		if q == dc.Rank {
			continue
		}
		wg.Add(1)
		go func(q int, peer string) {
			defer wg.Done()
			errs[q] = postJSON(ctx, client, peer+"/v2/distributed/run", body)
		}(q, peer)
	}
	wg.Wait()
	for q, err := range errs {
		if err != nil {
			return nil, transport.Errorf(transport.ErrUnreachable, q, 0,
				"fan out to %s: %v", dc.Peers[q], err)
		}
	}
	return s.runDistributedJob(ctx, req)
}

func postJSON(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// StartDistributedParticipant launches this daemon's share of a fleet run
// in the background (the coordinator's fan-out endpoint). The goroutine is
// jobsWG-tracked: Close joins it, exactly like local async jobs, so daemon
// shutdown never abandons a run mid-superstep. The participant's result is
// a replica of the coordinator's and is dropped; failures count in the
// store's error counter.
func (s *Store) StartDistributedParticipant(req DistJobRequest) error {
	if s.cfg.Distributed == nil {
		return fmt.Errorf("store: distributed mode is not configured")
	}
	if err := req.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	s.jobsWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.jobsWG.Done()
		if _, err := s.runDistributedJob(s.baseCtx, req); err != nil && !isContextErr(err) {
			s.mu.Lock()
			s.ctrs.Errors++
			s.mu.Unlock()
		}
	}()
	return nil
}

// runDistributedJob executes this daemon's rank of one fleet run: fault the
// graph in (datasets are adopted from the blob tier by content address, so
// every daemon materializes the identical graph), take a compute slot, and
// drive the algorithm on a network-backed engine.
func (s *Store) runDistributedJob(ctx context.Context, req DistJobRequest) (any, error) {
	dc := s.cfg.Distributed
	if err := req.validate(); err != nil {
		return nil, err
	}
	g, _, ok := s.Graph(req.Graph)
	if !ok {
		if err := s.faultIn(ctx, req.Graph); err != nil {
			return nil, err
		}
		if g, _, ok = s.Graph(req.Graph); !ok {
			return nil, &NotFoundError{Name: req.Graph}
		}
	}
	select {
	case s.sem <- struct{}{}:
		s.cfg.Metrics.slotAcquired()
		defer func() {
			s.cfg.Metrics.slotReleased()
			<-s.sem
		}()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	tr, err := transport.NewHTTP(ctx, transport.HTTPConfig{
		RunID:          req.RunID,
		Rank:           dc.Rank,
		PeerURLs:       dc.Peers,
		Registry:       s.bspReg,
		Client:         dc.Client,
		BarrierTimeout: dc.BarrierTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	e, err := bsp.NewDistributed(req.Params.Workers, tr)
	if err != nil {
		return nil, err
	}
	val, err := s.runOpWith(ctx, req, g, e)
	if err != nil {
		return nil, err
	}
	return val, nil
}

func (s *Store) runOpWith(ctx context.Context, req DistJobRequest, g *graph.Graph, e *bsp.Engine) (any, error) {
	o, err := req.Params.optionsFor(e)
	if err != nil {
		e.Close()
		return nil, err
	}
	if req.Op == "diameter" {
		return s.diameterWith(ctx, req.Graph, g, req.Params, o, nil)
	}
	return s.decomposeWith(ctx, req.Graph, g, req.Params, o, nil)
}
