package store

import (
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/obs"
)

// Metrics is the store's observability bundle: cache traffic by tier,
// compute-slot pressure, job lifecycle durations, the paper's accounting
// counters mirrored as monotone series, and the BSP engine tracer. A nil
// *Metrics is a valid no-op — every method checks, so instrumentation
// sites stay unconditional and wiring decides whether the store is
// observed.
//
// The graphdiam_bsp_* counters are *observed* from the same completed-run
// snapshots Stats() folds into TotalCost (addCost), never recomputed:
// attaching metrics cannot perturb the paper's golden accounting.
type Metrics struct {
	cacheHits    *obs.CounterVec // tier: local | fleet_raw | fleet_probe
	cacheMisses  *obs.Counter
	coalesces    *obs.Counter
	evictions    *obs.Counter
	computations *obs.Counter
	errors       *obs.Counter

	slotsBusy  *obs.Gauge
	slotsTotal *obs.Gauge

	jobSeconds   *obs.HistogramVec // state
	jobsFinished *obs.CounterVec   // state

	rounds   *obs.Counter
	messages *obs.Counter
	updates  *obs.Counter

	deltaRecomputes *obs.CounterVec // mode: none | incremental | full

	tracer engineTracer
}

// engineTracer implements bsp.Tracer over obs histograms. It lives in
// this package (not obs) so bsp's structural-interface seam keeps both
// bsp and obs free of each other.
type engineTracer struct {
	compute   *obs.Histogram
	barrier   *obs.Histogram
	comm      *obs.Histogram
	allreduce *obs.Histogram
}

func (t *engineTracer) ObserveSuperstep(compute, barrier time.Duration) {
	t.compute.ObserveDuration(compute)
	t.barrier.ObserveDuration(barrier)
}

func (t *engineTracer) ObserveComm(d time.Duration) { t.comm.ObserveDuration(d) }

func (t *engineTracer) ObserveAllreduce(d time.Duration) { t.allreduce.ObserveDuration(d) }

// NewMetrics registers the graphdiam_store_* and graphdiam_bsp_* families
// on r and returns the bundle to pass as Config.Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		cacheHits: r.CounterVec("graphdiam_store_cache_hits_total",
			"Result-cache hits by tier: local LRU, raw fleet push promoted on query, or live fleet probe.",
			"tier"),
		cacheMisses: r.Counter("graphdiam_store_cache_misses_total",
			"Queries that missed every cache tier and became flight leaders."),
		coalesces: r.Counter("graphdiam_store_coalesces_total",
			"Queries that joined an identical in-flight computation (singleflight)."),
		evictions: r.Counter("graphdiam_store_evictions_total",
			"Result-cache entries evicted from the LRU tail."),
		computations: r.Counter("graphdiam_store_computations_total",
			"BSP runs actually executed (fleet-wide misses)."),
		errors: r.Counter("graphdiam_store_errors_total",
			"Computations that failed for reasons other than client cancellation."),
		slotsBusy: r.Gauge("graphdiam_store_compute_slots_busy",
			"BSP compute slots currently held (the slot queue depth)."),
		slotsTotal: r.Gauge("graphdiam_store_compute_slots",
			"Configured compute-slot capacity (MaxConcurrent)."),
		jobSeconds: r.HistogramVec("graphdiam_store_job_seconds",
			"Job wall time from submission to its terminal state, by outcome.",
			obs.DefBuckets, "state"),
		jobsFinished: r.CounterVec("graphdiam_store_jobs_total",
			"Jobs reaching a terminal state, by outcome.", "state"),
		deltaRecomputes: r.CounterVec("graphdiam_store_delta_recomputes_total",
			"Delta-maintenance outcomes after a lineage head moved: incremental (eager recompute under the churn threshold), full (lazy invalidation), or none (no retained decomposition).",
			"mode"),
		rounds: r.Counter("graphdiam_bsp_rounds_total",
			"Parallel supersteps of completed runs (mirrors the paper's round count)."),
		messages: r.Counter("graphdiam_bsp_messages_total",
			"Inter-partition messages of completed runs (paper work measure)."),
		updates: r.Counter("graphdiam_bsp_updates_total",
			"Node-state updates of completed runs (paper work measure)."),
		tracer: engineTracer{
			compute: r.Histogram("graphdiam_bsp_superstep_compute_seconds",
				"Per-superstep compute time (worker 0's busy time).", obs.FastBuckets),
			barrier: r.Histogram("graphdiam_bsp_superstep_barrier_seconds",
				"Per-superstep barrier wait (time for the slowest worker to finish).", obs.FastBuckets),
			comm: r.Histogram("graphdiam_bsp_comm_seconds",
				"Distributed transport exchange latency (mailbox deliveries and collectives).", obs.DefBuckets),
			allreduce: r.Histogram("graphdiam_bsp_allreduce_seconds",
				"Scalar collective latency (global sums, ORs, argmins, snapshot checks).", obs.DefBuckets),
		},
	}
}

// Tracer returns the bundle's bsp.Tracer, or nil for a nil bundle (the
// typed-nil guard matters: an interface holding a nil *engineTracer
// would defeat the engine's nil check).
func (m *Metrics) Tracer() bsp.Tracer {
	if m == nil {
		return nil
	}
	return &m.tracer
}

func (m *Metrics) hit(tier string) {
	if m != nil {
		m.cacheHits.With(tier).Inc()
	}
}

func (m *Metrics) miss() {
	if m != nil {
		m.cacheMisses.Inc()
	}
}

func (m *Metrics) coalesce() {
	if m != nil {
		m.coalesces.Inc()
	}
}

func (m *Metrics) eviction() {
	if m != nil {
		m.evictions.Inc()
	}
}

func (m *Metrics) computation() {
	if m != nil {
		m.computations.Inc()
	}
}

func (m *Metrics) errored() {
	if m != nil {
		m.errors.Inc()
	}
}

func (m *Metrics) slotAcquired() {
	if m != nil {
		m.slotsBusy.Inc()
	}
}

func (m *Metrics) slotReleased() {
	if m != nil {
		m.slotsBusy.Dec()
	}
}

func (m *Metrics) setSlotCapacity(n int) {
	if m != nil {
		m.slotsTotal.Set(float64(n))
	}
}

func (m *Metrics) jobFinished(state JobState, d time.Duration) {
	if m != nil {
		m.jobsFinished.With(string(state)).Inc()
		m.jobSeconds.With(string(state)).ObserveDuration(d)
	}
}

func (m *Metrics) deltaMaintenance(mode string) {
	if m != nil {
		m.deltaRecomputes.With(mode).Inc()
	}
}

// observeCost mirrors one completed run's accounting snapshot into the
// monotone counters — the same snapshot addCost folds into TotalCost.
func (m *Metrics) observeCost(snap bsp.Snapshot) {
	if m != nil {
		m.rounds.Add(snap.Rounds)
		m.messages.Add(snap.Messages)
		m.updates.Add(snap.Updates)
	}
}
