package store

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"graphdiam/internal/dataset"
	"graphdiam/internal/gen"
)

// newCatalogWith builds a catalog in a temp dir holding the named graphs.
func newCatalogWith(t *testing.T, specs map[string]string) *dataset.Catalog {
	t.Helper()
	c, err := dataset.Open(t.TempDir(), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for name, spec := range specs {
		g, err := gen.FromSpec(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.IngestGraph(name, g, dataset.FormatBinary, "spec "+spec); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestDatasetFaultInServesColdName(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"lazy": "mesh:24"})
	s := New(Config{Catalog: cat})
	defer s.Close()

	if _, _, ok := s.Graph("lazy"); ok {
		t.Fatal("graph resident before first query")
	}
	res, cached, err := s.Diameter(context.Background(), "lazy", Params{Seed: 3})
	if err != nil {
		t.Fatalf("diameter on cold dataset name: %v", err)
	}
	if cached {
		t.Fatal("first query reported cached")
	}
	if res.Estimate <= 0 {
		t.Fatalf("estimate %v", res.Estimate)
	}

	// The fault-in registered the graph with dataset provenance.
	_, info, ok := s.Graph("lazy")
	if !ok {
		t.Fatal("graph not registered after fault-in")
	}
	if !strings.HasPrefix(info.Source, "dataset sha256=") {
		t.Fatalf("source %q lacks dataset provenance", info.Source)
	}

	// The fault-in result matches a direct in-memory run on the same graph.
	g, err := gen.FromSpec("mesh:24", 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := New(Config{})
	defer mem.Close()
	if _, err := mem.AddGraph("lazy", g, "direct"); err != nil {
		t.Fatal(err)
	}
	want, _, err := mem.Diameter(context.Background(), "lazy", Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != want.Estimate || res.Metrics != want.Metrics ||
		res.QuotientNodes != want.QuotientNodes || res.NumClusters != want.NumClusters {
		t.Fatalf("snapshot-backed result %+v differs from in-memory %+v", res, want)
	}
}

func TestDatasetFaultInConcurrentColdQueries(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"cold": "rmat:9"})
	s := New(Config{Catalog: cat, MaxConcurrent: 4})
	defer s.Close()

	const clients = 16
	var wg sync.WaitGroup
	ests := make([]float64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.Diameter(context.Background(), "cold", Params{Seed: 7})
			ests[i], errs[i] = res.Estimate, err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if ests[i] != ests[0] {
			t.Fatalf("client %d estimate %v != %v", i, ests[i], ests[0])
		}
	}
	st := s.Stats()
	if st.Counters.Computations != 1 {
		t.Fatalf("%d computations for identical concurrent queries, want 1", st.Counters.Computations)
	}
}

func TestDatasetFaultInMissingName(t *testing.T) {
	cat := newCatalogWith(t, nil)
	s := New(Config{Catalog: cat})
	defer s.Close()
	var nf *NotFoundError
	if _, _, err := s.Decompose(context.Background(), "ghost", Params{}); !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
	// Without a catalog the behaviour is unchanged.
	s2 := New(Config{})
	defer s2.Close()
	if _, _, err := s2.Decompose(context.Background(), "ghost", Params{}); !errors.As(err, &nf) {
		t.Fatalf("err = %v, want NotFoundError", err)
	}
}

// TestDatasetFaultInThroughRemoteBackend drives the store's lazy
// fault-in across a shared blob tier: the "tier" is a plain HTTP server
// over another catalog's blob store plus a name-lookup route — no
// graphdiamd required — and a cold query on a store whose catalog uses a
// RemoteStore adopts the name, downloads the snapshot, and computes the
// same answer as a local run.
func TestDatasetFaultInThroughRemoteBackend(t *testing.T) {
	tier := newCatalogWith(t, map[string]string{"fleetwide": "mesh:24"})
	mux := http.NewServeMux()
	mux.Handle("/v2/blobs/", http.StripPrefix("/v2/blobs", dataset.BlobServer(tier.Blobs(), tier.ReferencesBlob)))
	mux.HandleFunc("/v2/datasets/", func(w http.ResponseWriter, r *http.Request) {
		in, err := tier.Info(strings.TrimPrefix(r.URL.Path, "/v2/datasets/"))
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(in)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	dirB := t.TempDir()
	remote, err := dataset.NewRemoteStore(ts.URL, filepath.Join(dirB, "cache"), nil)
	if err != nil {
		t.Fatal(err)
	}
	catB, err := dataset.Open(dirB, dataset.Options{Blobs: remote})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { catB.Close() })
	s := New(Config{Catalog: catB})
	defer s.Close()

	res, cached, err := s.Diameter(context.Background(), "fleetwide", Params{Seed: 3})
	if err != nil {
		t.Fatalf("diameter via remote backend: %v", err)
	}
	if cached {
		t.Fatal("cold remote query reported cached")
	}
	g, err := gen.FromSpec("mesh:24", 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := New(Config{})
	defer mem.Close()
	if _, err := mem.AddGraph("fleetwide", g, "direct"); err != nil {
		t.Fatal(err)
	}
	want, _, err := mem.Diameter(context.Background(), "fleetwide", Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != want.Estimate || res.Metrics != want.Metrics {
		t.Fatalf("remote-backed result %+v differs from in-memory %+v", res, want)
	}
	// Jobs submitted by bare name also resolve through the backend.
	final, err := s.RunJobSync(context.Background(), JobDiameter, "fleetwide", Params{Seed: 3})
	if err != nil {
		t.Fatalf("job naming remote dataset: %v", err)
	}
	if !final.Cached {
		t.Fatal("identical job after fault-in should hit the cache")
	}
	// Truly unknown names still surface NotFound, not a backend error.
	var nf *NotFoundError
	if _, _, err := s.Diameter(context.Background(), "nowhere", Params{}); !errors.As(err, &nf) {
		t.Fatalf("unknown name via remote backend: %v, want NotFoundError", err)
	}
}

func TestLoadDatasetEager(t *testing.T) {
	cat := newCatalogWith(t, map[string]string{"eager": "mesh:10"})
	s := New(Config{Catalog: cat})
	defer s.Close()
	info, err := s.LoadDataset(context.Background(), "eager")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "eager" || info.NumNodes != 100 {
		t.Fatalf("info %+v", info)
	}
	if _, _, ok := s.Graph("eager"); !ok {
		t.Fatal("eager load did not register the graph")
	}
	if _, err := s.LoadDataset(context.Background(), "ghost"); err == nil {
		t.Fatal("missing dataset loaded")
	}
}
