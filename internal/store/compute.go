package store

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/graph"
	"graphdiam/internal/quotient"
)

// Params is the full algorithm parameter set of a decomposition or diameter
// query. It is the cache key (together with the registered graph), so every
// field that can change the output — or the metered cost — participates in
// the canonical encoding. The zero value selects the library defaults.
type Params struct {
	// Tau is the decomposition granularity τ; 0 derives the core default.
	Tau int `json:"tau,omitempty"`
	// Seed drives all randomness; runs are deterministic in (graph, Params).
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the simulated machine count; 0 selects all cores.
	Workers int `json:"workers,omitempty"`
	// StepCap bounds Δ-growing steps per PartialGrowth (0 = unlimited).
	StepCap int `json:"stepCap,omitempty"`
	// DeltaInit selects the initial Δ guess: "avg" (default), "min", or
	// "fixed" (requires FixedDelta > 0).
	DeltaInit  string  `json:"deltaInit,omitempty"`
	FixedDelta float64 `json:"fixedDelta,omitempty"`
	// Cluster2 selects the theoretically-grounded CLUSTER2 decomposition.
	Cluster2 bool `json:"cluster2,omitempty"`
	// WeightOblivious selects the [CPPU15] unweighted ablation. Mutually
	// exclusive with Cluster2.
	WeightOblivious bool `json:"weightOblivious,omitempty"`
	// Sweeps is the lower-bound sweep count for large quotient diameters
	// (diameter queries only; 0 = default).
	Sweeps int `json:"sweeps,omitempty"`
}

// normalized folds equivalent parameter spellings together so they share a
// cache slot: DeltaInit is matched case-insensitively and "" means "avg".
func (p Params) normalized() Params {
	p.DeltaInit = strings.ToLower(p.DeltaInit)
	if p.DeltaInit == "" {
		p.DeltaInit = "avg"
	}
	return p
}

// canonical renders the parameters as a stable cache-key fragment. op
// distinguishes the query kind so a decompose and a diameter run with the
// same knobs occupy distinct slots. Call on a normalized() value.
func (p Params) canonical(op string) string {
	return fmt.Sprintf("%s|tau=%d|seed=%d|w=%d|cap=%d|init=%s|fd=%g|c2=%t|wo=%t|sw=%d",
		op, p.Tau, p.Seed, p.Workers, p.StepCap, p.DeltaInit, p.FixedDelta,
		p.Cluster2, p.WeightOblivious, p.Sweeps)
}

// options translates Params into core options, or an error for
// inconsistent combinations.
func (p Params) options() (core.Options, error) {
	return p.optionsFor(nil)
}

// optionsFor is options with an externally built engine — the distributed
// path injects a network-backed engine; nil builds the usual single-process
// one from Workers.
func (p Params) optionsFor(e *bsp.Engine) (core.Options, error) {
	if p.Cluster2 && p.WeightOblivious {
		return core.Options{}, fmt.Errorf("store: cluster2 and weightOblivious are mutually exclusive")
	}
	if e == nil {
		e = bsp.New(p.Workers)
	}
	o := core.Options{
		Tau:     p.Tau,
		Seed:    p.Seed,
		StepCap: p.StepCap,
		Engine:  e,
	}
	switch strings.ToLower(p.DeltaInit) {
	case "", "avg":
		o.InitialDelta = core.DeltaAvgWeight
	case "min":
		o.InitialDelta = core.DeltaMinWeight
	case "fixed":
		if p.FixedDelta <= 0 {
			return core.Options{}, fmt.Errorf("store: deltaInit=fixed requires positive fixedDelta")
		}
		o.InitialDelta = core.DeltaFixed
		o.FixedDelta = p.FixedDelta
	default:
		return core.Options{}, fmt.Errorf("store: unknown deltaInit %q (want avg, min, or fixed)", p.DeltaInit)
	}
	return o, nil
}

// DecomposeResult is the JSON-friendly summary of a clustering run. The
// per-node assignment is summarized (cluster count, radius, size extremes)
// rather than shipped wholesale; clients that need the full assignment run
// the CLI tools.
type DecomposeResult struct {
	Graph        string       `json:"graph"`
	NumNodes     int          `json:"numNodes"`
	NumEdges     int          `json:"numEdges"`
	NumClusters  int          `json:"numClusters"`
	Radius       float64      `json:"radius"`
	Stages       int          `json:"stages"`
	DeltaEnd     float64      `json:"deltaEnd"`
	GrowingSteps int64        `json:"growingSteps"`
	MinCluster   int          `json:"minClusterSize"`
	MaxCluster   int          `json:"maxClusterSize"`
	Metrics      bsp.Snapshot `json:"metrics"`
	WallMillis   float64      `json:"wallMillis"`
}

// DiameterResult is the JSON-friendly outcome of a CL-DIAM run.
type DiameterResult struct {
	Graph            string       `json:"graph"`
	Estimate         float64      `json:"estimate"`
	QuotientDiameter float64      `json:"quotientDiameter"`
	Radius           float64      `json:"radius"`
	QuotientNodes    int          `json:"quotientNodes"`
	QuotientEdges    int          `json:"quotientEdges"`
	NumClusters      int          `json:"numClusters"`
	Stages           int          `json:"stages"`
	Metrics          bsp.Snapshot `json:"metrics"`
	WallMillis       float64      `json:"wallMillis"`
}

// Decompose runs (or serves from cache) a CLUSTER/CLUSTER2 decomposition of
// the named graph. cached reports whether an identical earlier or
// concurrent request supplied the result.
func (s *Store) Decompose(ctx context.Context, graphName string, p Params) (DecomposeResult, bool, error) {
	return s.DecomposeObserved(ctx, graphName, p, nil)
}

// DecomposeObserved is Decompose with a progress observer. The observer is
// not part of the cache identity; it fires only when this request is the
// one actually running the computation — cache hits and joined flights
// deliver the result without intermediate snapshots.
func (s *Store) DecomposeObserved(ctx context.Context, graphName string, p Params, progress core.ProgressFunc) (DecomposeResult, bool, error) {
	p = p.normalized()
	if _, err := p.options(); err != nil { // validate before touching the cache
		return DecomposeResult{}, false, err
	}
	val, cached, err := s.do(ctx, graphName, p.canonical("decompose"),
		func(b []byte) (any, error) {
			var r DecomposeResult
			err := json.Unmarshal(b, &r)
			return r, err
		},
		func(ctx context.Context, g *graph.Graph) (any, error) {
			return s.runDecompose(ctx, graphName, g, p, progress)
		})
	if err != nil {
		return DecomposeResult{}, false, err
	}
	return val.(DecomposeResult), cached, nil
}

func (s *Store) runDecompose(ctx context.Context, name string, g *graph.Graph, p Params, progress core.ProgressFunc) (DecomposeResult, error) {
	o, err := p.options()
	if err != nil {
		return DecomposeResult{}, err
	}
	return s.decomposeWith(ctx, name, g, p, o, progress)
}

// decomposeWith runs the decomposition selected by p on a prepared options
// value (whose Engine may be distributed) and owns closing its engine.
func (s *Store) decomposeWith(ctx context.Context, name string, g *graph.Graph, p Params, o core.Options, progress core.ProgressFunc) (DecomposeResult, error) {
	var err error
	defer o.Engine.Close() // release the persistent worker pool with the run
	o.Engine.SetTracer(s.cfg.Metrics.Tracer())
	o.Progress = progress
	start := time.Now()
	var cl *core.Clustering
	switch {
	case p.Cluster2:
		var c2 *core.Cluster2Result
		if c2, err = core.Cluster2(ctx, g, o); err == nil {
			cl = c2.Clustering
		}
	case p.WeightOblivious:
		cl, err = core.ClusterUnweighted(ctx, g, o)
	default:
		cl, err = core.Cluster(ctx, g, o)
	}
	if err != nil {
		return DecomposeResult{}, err
	}
	res := DecomposeResult{
		Graph:        name,
		NumNodes:     g.NumNodes(),
		NumEdges:     g.NumEdges(),
		NumClusters:  cl.NumClusters(),
		Radius:       cl.Radius,
		Stages:       cl.Stages,
		DeltaEnd:     cl.DeltaEnd,
		GrowingSteps: cl.GrowingSteps,
		Metrics:      cl.Metrics,
		WallMillis:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	res.MinCluster, res.MaxCluster = clusterSizeExtremes(cl)
	s.addCost(cl.Metrics)
	s.retainClustering(name, p, cl)
	return res, nil
}

// Diameter runs (or serves from cache) the CL-DIAM diameter approximation
// of the named graph.
func (s *Store) Diameter(ctx context.Context, graphName string, p Params) (DiameterResult, bool, error) {
	return s.DiameterObserved(ctx, graphName, p, nil)
}

// DiameterObserved is Diameter with a progress observer; see
// DecomposeObserved for the observer's semantics.
func (s *Store) DiameterObserved(ctx context.Context, graphName string, p Params, progress core.ProgressFunc) (DiameterResult, bool, error) {
	p = p.normalized()
	if _, err := p.options(); err != nil {
		return DiameterResult{}, false, err
	}
	val, cached, err := s.do(ctx, graphName, p.canonical("diameter"),
		func(b []byte) (any, error) {
			var r DiameterResult
			err := json.Unmarshal(b, &r)
			return r, err
		},
		func(ctx context.Context, g *graph.Graph) (any, error) {
			return s.runDiameter(ctx, graphName, g, p, progress)
		})
	if err != nil {
		return DiameterResult{}, false, err
	}
	return val.(DiameterResult), cached, nil
}

func (s *Store) runDiameter(ctx context.Context, name string, g *graph.Graph, p Params, progress core.ProgressFunc) (DiameterResult, error) {
	o, err := p.options()
	if err != nil {
		return DiameterResult{}, err
	}
	return s.diameterWith(ctx, name, g, p, o, progress)
}

// diameterWith runs CL-DIAM on a prepared options value (whose Engine may be
// distributed) and owns closing its engine.
func (s *Store) diameterWith(ctx context.Context, name string, g *graph.Graph, p Params, o core.Options, progress core.ProgressFunc) (DiameterResult, error) {
	defer o.Engine.Close() // release the persistent worker pool with the run
	o.Engine.SetTracer(s.cfg.Metrics.Tracer())
	o.Progress = progress
	d, err := core.ApproxDiameter(ctx, g, core.DiamOptions{
		Options:         o,
		Quotient:        quotient.DiameterOptions{Sweeps: p.Sweeps},
		UseCluster2:     p.Cluster2,
		WeightOblivious: p.WeightOblivious,
	})
	if err != nil {
		return DiameterResult{}, err
	}
	res := DiameterResult{
		Graph:            name,
		Estimate:         d.Estimate,
		QuotientDiameter: d.QuotientDiameter,
		Radius:           d.Radius,
		QuotientNodes:    d.QuotientNodes,
		QuotientEdges:    d.QuotientEdges,
		Metrics:          d.Metrics,
		WallMillis:       float64(d.WallTime) / float64(time.Millisecond),
	}
	if d.Clustering != nil {
		res.NumClusters = d.Clustering.NumClusters()
		res.Stages = d.Clustering.Stages
	}
	s.addCost(d.Metrics)
	return res, nil
}

// clusterSizeExtremes returns the smallest and largest cluster sizes.
func clusterSizeExtremes(cl *core.Clustering) (minSize, maxSize int) {
	if cl.NumClusters() == 0 {
		return 0, 0
	}
	counts := make(map[int32]int, cl.NumClusters())
	for _, c := range cl.Center {
		counts[c]++
	}
	first := true
	for _, c := range counts {
		if first || c < minSize {
			minSize = c
		}
		if first || c > maxSize {
			maxSize = c
		}
		first = false
	}
	return minSize, maxSize
}
