package store

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The server side of the fleet-wide result cache: GET/PUT /v2/cache/{key}
// terminate here. The fleet cache is not a separate store — it is a
// second index (fleetIdx) into the same LRU the local result cache uses,
// keyed by dataset content address + canonical parameters instead of
// process-local graph id. Entries arrive two ways: locally computed
// results for dataset-backed graphs are indexed at insert, and peer
// pushes land as raw JSON under a reserved graph id until a local query
// promotes them to typed values. Either way they obey the one LRU budget
// and eviction policy.

// fleetGraphID keys raw peer-pushed entries in the LRU. Real graph ids
// start at 1 (nextID is pre-incremented), so 0 can never collide with a
// registered graph's results.
const fleetGraphID uint64 = 0

// FleetKey renders the fleet-wide cache key for an operation on a
// dataset snapshot: the snapshot's SHA-256 hex plus the canonical
// parameter string. Content addressing makes the key location- and
// name-independent: any node holding a byte-identical snapshot computes
// the same key, which is what lets routed queries reuse each other's
// results exactly.
func FleetKey(sha, op string, p Params) string {
	return sha + "|" + p.normalized().canonical(op)
}

// FleetCacheGet serves a peer's GET /v2/cache/{key} probe from the local
// LRU. It returns the JSON encoding of the cached result, whether typed
// (computed here) or raw (pushed here), and refreshes the entry's LRU
// position — a probed-for result is a live result.
func (s *Store) FleetCacheGet(fkey string) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.fleetIdx[fkey]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := el.Value.(*entry).val
	s.mu.Unlock()
	if body, isRaw := val.([]byte); isRaw {
		return body, true
	}
	body, err := json.Marshal(val)
	if err != nil {
		return nil, false
	}
	return body, true
}

// FleetCachePut accepts a peer's PUT /v2/cache/{key}: a JSON-encoded
// result computed elsewhere, stored raw until a local query decodes it.
// The body must be valid JSON and the key must look like a fleet key
// (sha "|" params) — the endpoint trusts the fleet, not the bytes.
func (s *Store) FleetCachePut(fkey string, body []byte) error {
	if !strings.Contains(fkey, "|") {
		return fmt.Errorf("store: malformed fleet cache key %q", fkey)
	}
	if !json.Valid(body) {
		return fmt.Errorf("store: fleet cache body is not valid JSON")
	}
	stored := make([]byte, len(body))
	copy(stored, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.fleetIdx[fkey]; ok {
		ent := el.Value.(*entry)
		if _, isRaw := ent.val.([]byte); isRaw {
			ent.val = stored // refresh a raw slot in place
			s.lru.MoveToFront(el)
		}
		// A typed entry already holds this result; keep it.
		return nil
	}
	el := s.lru.PushFront(&entry{
		key:  key{graphID: fleetGraphID, params: fkey},
		val:  stored,
		fkey: fkey,
	})
	s.cache[el.Value.(*entry).key] = el
	s.fleetIdx[fkey] = el
	s.evictTailLocked()
	return nil
}

// FleetKeyFor renders the fleet cache key for an op against a known
// graph, or ok=false when the graph is not dataset-backed (ad-hoc
// uploads have no fleet-stable identity). The server layer uses it to
// answer "where would this query's result live fleet-wide". Like
// CachedLocally, it resolves an unloaded dataset through the catalog
// manifest so replica checks work before the graph's first local load.
func (s *Store) FleetKeyFor(graphName, op string, p Params) (string, bool) {
	sha, ok := s.contentAddr(graphName)
	if !ok {
		return "", false
	}
	return FleetKey(sha, op, p), true
}

// DatasetSHA reports the content address backing a registered graph, or
// ok=false for ad-hoc registrations.
func (s *Store) DatasetSHA(graphName string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ge, ok := s.graphs[graphName]
	if !ok || ge.sha == "" {
		return "", false
	}
	return ge.sha, true
}
