package store

import (
	"context"
	"encoding/json"
	"time"
)

// Drain support: when a node is asked to leave the fleet it first
// finishes its in-flight work (WaitIdle), then hands its hot fleet-cache
// entries to the next preference-order member (PrewarmSuccessors), so a
// graceful departure costs the fleet neither in-progress jobs nor cache
// warmth. The replica read path (CachedLocally) lets a non-owner member
// of a key's preference chain answer from its own cache instead of
// adding a hop to the owner.

// WaitIdle blocks until the store has no computation in flight and no
// live (queued or running) job, or ctx expires. New work arriving while
// waiting extends the wait — the caller is expected to have stopped
// admitting compute-bearing requests first (the draining flag in the
// server layer).
func (s *Store) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		jc := s.jobCountsLocked()
		idle := len(s.flights) == 0 && len(s.loads) == 0 && jc.Queued == 0 && jc.Running == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// FleetEntry is one fleet-cacheable result: the fleet-wide key and the
// JSON body a peer's cache endpoint would serve for it.
type FleetEntry struct {
	Key  string
	Body []byte
}

// FleetEntries returns up to max fleet-indexed cache entries in LRU
// order, hottest first — the set worth pre-warming a successor with.
func (s *Store) FleetEntries(max int) []FleetEntry {
	if max <= 0 {
		return nil
	}
	type slot struct {
		fkey string
		val  any
	}
	s.mu.Lock()
	slots := make([]slot, 0, max)
	for el := s.lru.Front(); el != nil && len(slots) < max; el = el.Next() {
		ent := el.Value.(*entry)
		if ent.fkey != "" {
			slots = append(slots, slot{fkey: ent.fkey, val: ent.val})
		}
	}
	s.mu.Unlock()
	// Marshal outside the lock: bodies can be large and marshaling is
	// pure (values are never mutated after insert).
	out := make([]FleetEntry, 0, len(slots))
	for _, sl := range slots {
		if body, isRaw := sl.val.([]byte); isRaw {
			out = append(out, FleetEntry{Key: sl.fkey, Body: body})
			continue
		}
		if body, err := json.Marshal(sl.val); err == nil {
			out = append(out, FleetEntry{Key: sl.fkey, Body: body})
		}
	}
	return out
}

// PrewarmSuccessors pushes up to max hot fleet-cache entries to each
// key's next preference-order member, synchronously, and reports how
// many a successor accepted. Called on the drain path after WaitIdle; a
// nil or non-pushing FleetCache makes it a no-op.
func (s *Store) PrewarmSuccessors(max int) int {
	fc := s.cfg.FleetCache
	if fc == nil {
		return 0
	}
	warmed := 0
	for _, e := range s.FleetEntries(max) {
		if fc.PushSuccessor(e.Key, e.Body) {
			warmed++
		}
	}
	return warmed
}

// CachedLocally reports whether this node can answer op(graph, p) from
// its own cache right now — typed (computed or promoted here) or raw (a
// replica push). The k-replica read path uses it: a non-owner member of
// the key's preference chain serves the query itself only on a local
// hit, and otherwise forwards to the owner so computes stay single-homed
// and cross-node singleflight intact. A pushed entry counts even before
// the graph is ever loaded here — pushes arrive by content address, not
// by residency — so the content address falls back to the catalog.
func (s *Store) CachedLocally(graphName, op string, p Params) bool {
	sha, ok := s.contentAddr(graphName)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok = s.fleetIdx[FleetKey(sha, op, p)]
	return ok
}

// contentAddr resolves a graph name to its dataset content address:
// from the resident registration when loaded, else from the local
// catalog manifest (cheap — no snapshot load). Reports false for
// memory-only graphs and unknown names.
func (s *Store) contentAddr(graphName string) (string, bool) {
	s.mu.Lock()
	if ge, ok := s.graphs[graphName]; ok {
		sha := ge.sha
		s.mu.Unlock()
		return sha, sha != ""
	}
	cat := s.cfg.Catalog
	s.mu.Unlock()
	if cat == nil {
		return "", false
	}
	in, err := cat.Info(graphName)
	if err != nil || in.SHA256 == "" {
		return "", false
	}
	return in.SHA256, true
}
