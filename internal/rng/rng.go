// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout graphdiam. Experiments must be reproducible
// across runs and machines, so all randomized components (center selection,
// graph generation, weight assignment) take an explicit *rng.RNG seeded by
// the caller rather than relying on global state.
//
// The generator is xoshiro256**, seeded via splitmix64, following the
// reference construction by Blackman and Vigna. Both primitives are
// implemented here from their public-domain specifications.
package rng

import "math"

// SplitMix64 is a tiny 64-bit generator mainly used to seed xoshiro state
// and to derive independent per-worker streams from a master seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed. Distinct seeds yield streams that are
// independent for all practical purposes.
func New(seed uint64) *RNG {
	sm := NewSplitMix64(seed)
	r := &RNG{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the single fixed point of xoshiro256**.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, independently seeded RNG from this one. It is the
// supported way to hand independent streams to parallel workers.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		hi, lo := mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1]. This is the distribution
// the paper assigns to edge weights of originally-unweighted graphs.
func (r *RNG) Float64Open() float64 {
	return 1.0 - r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
