package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := New(7)
	p.Uint64() // consume the value used to seed the child
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			v := r.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity: each of 8 buckets should receive roughly
	// count/8 samples.
	r := New(99)
	const n, samples = 8, 80000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(samples) / n
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d: got %d, expected ~%.0f", b, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		g := r.Float64Open()
		if g <= 0 || g > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", g)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const samples = 100000
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += r.Float64()
	}
	mean := sum / samples
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(2)
	const p, samples = 0.3, 100000
	hits := 0
	for i := 0; i < samples; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / samples
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestExpPositiveAndMean(t *testing.T) {
	r := New(4)
	const samples = 100000
	sum := 0.0
	for i := 0; i < samples; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / samples
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestMul64AgainstBigProducts(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
