package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWeightObliviousAblation(t *testing.T) {
	rows := WeightOblivious(ScaleTest, 5)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RatioWeighted < 1-1e-9 || r.RatioOblivious < 1-1e-9 {
			t.Fatalf("%s: ratios below 1: %+v", r.Graph, r)
		}
		// The point of the ablation: weight-oblivious growth does not beat
		// the weighted decomposition on radius, and typically loses badly.
		if r.RadiusOblivious+1e-9 < r.RadiusWeighted {
			t.Fatalf("%s: oblivious radius %v below weighted %v",
				r.Graph, r.RadiusOblivious, r.RadiusWeighted)
		}
	}
	var buf bytes.Buffer
	WriteWeightOblivious(&buf, rows)
	if !strings.Contains(buf.String(), "ratio-U") {
		t.Fatal("output malformed")
	}
}

func TestCorollary1RoundsDecreaseWithTau(t *testing.T) {
	points := Corollary1(ScaleTest, 3)
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Rounds at the largest τ must be below rounds at the smallest
	// (monotonicity up to noise is too strict; compare the endpoints).
	first, last := points[0], points[len(points)-1]
	if last.Rounds >= first.Rounds {
		t.Fatalf("rounds did not fall with τ: τ=%d→%d rounds, τ=%d→%d rounds",
			first.Tau, first.Rounds, last.Tau, last.Rounds)
	}
	for _, p := range points {
		if p.Ratio < 1-1e-9 || p.Ratio > 3 {
			t.Fatalf("τ=%d: ratio %v out of band", p.Tau, p.Ratio)
		}
	}
	var buf bytes.Buffer
	WriteCorollary1(&buf, points)
	if !strings.Contains(buf.String(), "tau") {
		t.Fatal("output malformed")
	}
}
