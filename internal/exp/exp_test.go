package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarkGraphsShapes(t *testing.T) {
	graphs := BenchmarkGraphs(ScaleTest, 1)
	if len(graphs) != 6 {
		t.Fatalf("want 6 benchmark graphs, got %d", len(graphs))
	}
	names := map[string]bool{}
	for _, ng := range graphs {
		if ng.G.NumNodes() == 0 || ng.G.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", ng.Name)
		}
		if names[ng.Name] {
			t.Fatalf("duplicate graph name %s", ng.Name)
		}
		names[ng.Name] = true
	}
	// Determinism in seed.
	again := BenchmarkGraphs(ScaleTest, 1)
	for i := range graphs {
		if graphs[i].G.NumEdges() != again[i].G.NumEdges() {
			t.Fatalf("%s: benchmark graphs not deterministic", graphs[i].Name)
		}
	}
}

func TestCompareProducesSaneRow(t *testing.T) {
	graphs := BenchmarkGraphs(ScaleTest, 1)
	for _, ng := range graphs[:3] { // roads-big, roads-small, mesh
		row := Compare(ng, CompareOptions{Workers: 4, Seed: 2})
		if row.LowerBound <= 0 {
			t.Fatalf("%s: lower bound %v", ng.Name, row.LowerBound)
		}
		// Conservative estimates: both at least the lower bound.
		if row.RatioCL < 1-1e-9 || row.RatioDS < 1-1e-9 {
			t.Fatalf("%s: ratios below 1: CL %v DS %v", ng.Name, row.RatioCL, row.RatioDS)
		}
		// Δ-stepping is a 2-approximation against the LB.
		if row.RatioDS > 2+1e-9 {
			t.Fatalf("%s: Δ-stepping ratio %v exceeds 2", ng.Name, row.RatioDS)
		}
		if row.RoundsCL <= 0 || row.RoundsDS <= 0 || row.WorkCL <= 0 || row.WorkDS <= 0 {
			t.Fatalf("%s: empty accounting %+v", ng.Name, row)
		}
	}
}

func TestPaperShapeRoadGraphs(t *testing.T) {
	// The paper's headline (Table 2, Figures 2-3): on road-type graphs
	// CL-DIAM needs far fewer rounds and less work than Δ-stepping.
	graphs := BenchmarkGraphs(ScaleTest, 1)
	row := Compare(graphs[0], CompareOptions{Workers: 4, Seed: 3}) // roads-big
	if row.RoundsCL*3 > row.RoundsDS {
		t.Fatalf("roads: CL-DIAM rounds %d not well below Δ-stepping %d",
			row.RoundsCL, row.RoundsDS)
	}
	// Work parity or better. (The paper's Spark work counter includes
	// per-round RDD rescans and shows a larger gap; our counters include
	// only algorithmically necessary relaxations — see EXPERIMENTS.md.)
	if row.WorkCL > 3*row.WorkDS/2 {
		t.Fatalf("roads: CL-DIAM work %d well above Δ-stepping %d", row.WorkCL, row.WorkDS)
	}
	// Approximation stays practical (paper: < 1.4; generous margin here).
	if row.RatioCL > 2.0 {
		t.Fatalf("roads: CL-DIAM ratio %v too large", row.RatioCL)
	}
}

func TestWriteTable2Renders(t *testing.T) {
	graphs := BenchmarkGraphs(ScaleTest, 1)
	rows := []Row{Compare(graphs[1], CompareOptions{Workers: 2, Seed: 1})}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "roads-small") || !strings.Contains(out, "workDS") {
		t.Fatalf("table output malformed:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(ScaleTest)
	if len(rows) != 6 {
		t.Fatalf("table 1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Diameter <= 0 {
			t.Fatalf("%s: diameter estimate %v", r.Name, r.Diameter)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "roads-USA") {
		t.Fatal("table 1 missing paper names")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3(ScaleTest, 4, 1)
	if len(rows) != 2 {
		t.Fatalf("table 3 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Estimate <= 0 || r.Rounds <= 0 {
			t.Fatalf("%s: %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "R-MAT(29)") {
		t.Fatal("table 3 missing paper names")
	}
}

func TestFig4(t *testing.T) {
	points := Fig4(ScaleTest, []int{1, 2, 4}, 1)
	if len(points) != 6 {
		t.Fatalf("fig4 points = %d, want 6", len(points))
	}
	for _, p := range points {
		if p.Time <= 0 || p.Speedup <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, points)
	if !strings.Contains(buf.String(), "workers") {
		t.Fatal("fig4 output malformed")
	}
}

func TestDeltaSens(t *testing.T) {
	rows := DeltaSens(ScaleTest, 77)
	if len(rows) != 3 {
		t.Fatalf("delta-sens rows = %d", len(rows))
	}
	var minRow, diamRow DeltaSensRow
	for _, r := range rows {
		switch r.Config {
		case "delta=min-weight":
			minRow = r
		case "delta=diameter":
			diamRow = r
		}
	}
	if minRow.Ratio > 1.1 {
		t.Fatalf("min-weight ratio %v, want ~1 (paper: 1.0001)", minRow.Ratio)
	}
	if diamRow.Ratio < 1.5*minRow.Ratio {
		t.Fatalf("diameter-init ratio %v should be much worse than %v (paper: ~2.5 vs 1.0001)",
			diamRow.Ratio, minRow.Ratio)
	}
	var buf bytes.Buffer
	WriteDeltaSens(&buf, rows)
	if !strings.Contains(buf.String(), "ratio") {
		t.Fatal("delta-sens output malformed")
	}
}

func TestStepCap(t *testing.T) {
	rows := StepCap(ScaleTest, 3)
	if len(rows) != 3 {
		t.Fatalf("step-cap rows = %d", len(rows))
	}
	uncapped, tight := rows[0], rows[2]
	if tight.MaxSteps > 2 {
		t.Fatalf("cap=2 violated: max PartialGrowth steps %d", tight.MaxSteps)
	}
	if uncapped.MaxSteps <= 2 {
		t.Fatalf("uncapped max steps %d too small for the ablation to bite", uncapped.MaxSteps)
	}
	for _, r := range rows {
		if r.Ratio < 1-1e-9 {
			t.Fatalf("%s: ratio %v below 1", r.Config, r.Ratio)
		}
	}
	var buf bytes.Buffer
	WriteStepCap(&buf, rows)
	if !strings.Contains(buf.String(), "uncapped") {
		t.Fatal("step-cap output malformed")
	}
}
