package exp

import (
	"fmt"
	"io"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

// ObliviousRow compares CLUSTER with the weight-oblivious [CPPU15]
// decomposition at the same τ.
type ObliviousRow struct {
	Graph            string
	RatioWeighted    float64
	RatioOblivious   float64
	RadiusWeighted   float64
	RadiusOblivious  float64
	RoundsWeighted   int64
	RoundsOblivious  int64
	EstimateWeighted float64
}

// WeightOblivious runs the ablation behind the paper's Section 1 remark
// that weight-oblivious execution of the unweighted decomposition provides
// no guarantees on weighted graphs: on weighted road networks the BFS-grown
// clusters absorb heavy edges, inflating the radius and the estimate.
func WeightOblivious(scale Scale, seed uint64) []ObliviousRow {
	r := rng.New(seed)
	side := 24
	if scale != ScaleTest {
		side = 64
	}
	graphs := []NamedGraph{
		{"roads-exp", "roads + heavy-tail weights",
			gen.ExponentialWeights(gen.RoadNetwork(gen.DefaultRoadNetworkOptions(side), r.Split()), 1, r.Split())},
		{"mesh-exp", "mesh + heavy-tail weights",
			gen.ExponentialWeights(gen.Mesh(side), 1, r.Split())},
	}
	var rows []ObliviousRow
	for _, ng := range graphs {
		lb, _ := validate.LowerBound(ng.G, 0, 4)
		tau := core.TauForQuotientTarget(ng.G.NumNodes(), 2000)
		eW := bsp.New(0)
		w := mustDiam(ng.G, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: seed, Engine: eW},
		})
		eW.Close()
		eO := bsp.New(0)
		o := mustDiam(ng.G, core.DiamOptions{
			Options:         core.Options{Tau: tau, Seed: seed, Engine: eO},
			WeightOblivious: true,
		})
		eO.Close()
		rows = append(rows, ObliviousRow{
			Graph:            ng.Name,
			RatioWeighted:    w.Estimate / lb,
			RatioOblivious:   o.Estimate / lb,
			RadiusWeighted:   w.Radius,
			RadiusOblivious:  o.Radius,
			RoundsWeighted:   w.Metrics.Rounds,
			RoundsOblivious:  o.Metrics.Rounds,
			EstimateWeighted: w.Estimate,
		})
	}
	return rows
}

// WriteWeightOblivious renders the ablation.
func WriteWeightOblivious(w io.Writer, rows []ObliviousRow) {
	fmt.Fprintf(w, "%-10s | %9s %9s | %11s %11s | %7s %7s\n",
		"graph", "ratio-W", "ratio-U", "radius-W", "radius-U", "rnd-W", "rnd-U")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %9.3f %9.3f | %11.4g %11.4g | %7d %7d\n",
			r.Graph, r.RatioWeighted, r.RatioOblivious,
			r.RadiusWeighted, r.RadiusOblivious,
			r.RoundsWeighted, r.RoundsOblivious)
	}
}

// Corollary1Point is one τ setting of the doubling-dimension experiment.
type Corollary1Point struct {
	Tau    int
	Rounds int64
	Ratio  float64
}

// Corollary1 demonstrates the paper's Corollary 1 on a mesh (doubling
// dimension b = 2) with random weights: the round complexity is a
// decreasing function of τ — more clusters mean shallower growth, with
// the theoretical form O((Ψ/τ^(1/b)) · polylog). The returned series shows
// rounds falling as τ rises while the approximation stays bounded.
func Corollary1(scale Scale, seed uint64) []Corollary1Point {
	r := rng.New(seed)
	side := 40
	if scale != ScaleTest {
		side = 96
	}
	g := gen.UniformWeights(gen.Mesh(side), r)
	lb, _ := validate.LowerBound(g, 0, 4)
	taus := []int{2, 8, 32, 128, 512}
	var points []Corollary1Point
	for _, tau := range taus {
		e := bsp.New(0)
		res := mustDiam(g, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: seed, Engine: e},
		})
		e.Close()
		points = append(points, Corollary1Point{tau, res.Metrics.Rounds, res.Estimate / lb})
	}
	return points
}

// WriteCorollary1 renders the series.
func WriteCorollary1(w io.Writer, points []Corollary1Point) {
	fmt.Fprintf(w, "%8s %8s %8s\n", "tau", "rounds", "ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %8d %8.3f\n", p.Tau, p.Rounds, p.Ratio)
	}
}
