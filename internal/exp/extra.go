package exp

import (
	"fmt"
	"io"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/rng"
	"graphdiam/internal/validate"
)

// Table3Row reports a CL-DIAM run on one of the "big" graphs.
type Table3Row struct {
	Name, PaperName string
	N, M            int
	Time            time.Duration
	Estimate        float64
	Rounds          int64
}

// Table3 runs CL-DIAM on the two largest instances — the stand-ins for the
// paper's R-MAT(29) and roads(32), on which the baseline would be
// impractically slow (Table 3's point).
func Table3(scale Scale, workers int, seed uint64) []Table3Row {
	r := rng.New(seed)
	var rmatScale, roadsS, roadsSide int
	switch scale {
	case ScaleTest:
		rmatScale, roadsS, roadsSide = 11, 3, 32
	default:
		rmatScale, roadsS, roadsSide = 17, 6, 96
	}
	graphs := []NamedGraph{
		{"rmat-huge", "R-MAT(29)", gen.UniformWeights(largestCC(gen.RMatDefault(rmatScale, r.Split())), r.Split())},
		{"roads-prod", "roads(32)", gen.Roads(roadsS, roadsSide, r.Split())},
	}
	rows := make([]Table3Row, 0, len(graphs))
	for _, ng := range graphs {
		e := bsp.New(workers)
		tau := core.TauForQuotientTarget(ng.G.NumNodes(), 4000)
		res := mustDiam(ng.G, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: seed, Engine: e},
		})
		e.Close()
		rows = append(rows, Table3Row{ng.Name, ng.PaperName, ng.G.NumNodes(), ng.G.NumEdges(),
			res.WallTime, res.Estimate, res.Metrics.Rounds})
	}
	return rows
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-12s %-12s %9s %10s %10s %8s %12s\n",
		"graph", "(paper)", "n", "m", "time", "rounds", "estimate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %9d %10d %10s %8d %12.4g\n",
			r.Name, r.PaperName, r.N, r.M, r.Time.Round(time.Millisecond), r.Rounds, r.Estimate)
	}
}

// Fig4Point is one point of the scalability curve.
type Fig4Point struct {
	Graph   string
	Workers int
	Time    time.Duration
	Speedup float64 // relative to the 1-worker run of the same graph
}

// Fig4 measures CL-DIAM wall time at increasing worker counts on an R-MAT
// graph and a roads product — the paper's Figure 4 pair (R-MAT(26) and
// roads(3): comparable node counts, very different topology).
func Fig4(scale Scale, workerCounts []int, seed uint64) []Fig4Point {
	r := rng.New(seed)
	var rmatScale, roadsS, roadsSide int
	switch scale {
	case ScaleTest:
		rmatScale, roadsS, roadsSide = 10, 2, 24
	default:
		rmatScale, roadsS, roadsSide = 15, 3, 72
	}
	graphs := []NamedGraph{
		{"rmat", "R-MAT(26)", gen.UniformWeights(largestCC(gen.RMatDefault(rmatScale, r.Split())), r.Split())},
		{"roads", "roads(3)", gen.Roads(roadsS, roadsSide, r.Split())},
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8, 16}
	}
	var points []Fig4Point
	for _, ng := range graphs {
		tau := core.TauForQuotientTarget(ng.G.NumNodes(), 2000)
		base := time.Duration(0)
		for _, p := range workerCounts {
			// Simulated engine: workers run sequentially and the
			// per-superstep maximum worker time accumulates into the
			// critical path — the compute time a P-machine cluster would
			// pay. This keeps Figure 4 meaningful on hosts with fewer
			// physical cores than simulated machines (see EXPERIMENTS.md).
			e := bsp.NewSimulated(p)
			res := mustDiam(ng.G, core.DiamOptions{
				Options: core.Options{Tau: tau, Seed: seed, Engine: e},
			})
			simTime := e.CriticalPath()
			if base == 0 {
				base = simTime
			}
			speedup := float64(base) / float64(simTime)
			points = append(points, Fig4Point{ng.Name, p, simTime, speedup})
			_ = res
		}
	}
	return points
}

// WriteFig4 renders the scalability series.
func WriteFig4(w io.Writer, points []Fig4Point) {
	fmt.Fprintf(w, "%-8s %8s %12s %9s\n", "graph", "workers", "time", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-8s %8d %12s %8.2fx\n",
			p.Graph, p.Workers, p.Time.Round(time.Millisecond), p.Speedup)
	}
}

// DeltaSensRow is one configuration of the Section 5 Δ-sensitivity
// experiment on the bimodal-weight mesh.
type DeltaSensRow struct {
	Config   string
	Ratio    float64
	Estimate float64
	Rounds   int64
}

// DeltaSens reproduces the Section 5 experiment: a mesh with bimodal edge
// weights (heavy w.p. pHeavy, nearly-zero otherwise) where the initial Δ
// guess decides whether clusters swallow heavy edges. The paper reports a
// ratio of 1.0001 when Δ starts at the minimum weight and ~2.5 when it
// starts at the graph diameter, with the average weight a safe default.
func DeltaSens(scale Scale, seed uint64) []DeltaSensRow {
	r := rng.New(seed)
	side, pHeavy := 48, 0.3
	if scale != ScaleTest {
		side, pHeavy = 96, 0.2
	}
	g := gen.BimodalWeights(gen.Mesh(side), 1e-6, 1, pHeavy, r)
	eEx := bsp.New(0)
	exact := validate.ExactDiameter(g, eEx)
	eEx.Close()
	tau := core.TauForQuotientTarget(g.NumNodes(), 2000)
	run := func(name string, init core.DeltaInit, fixed float64) DeltaSensRow {
		e := bsp.New(0)
		defer e.Close()
		res := mustDiam(g, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: seed, InitialDelta: init, FixedDelta: fixed, Engine: e},
		})
		return DeltaSensRow{name, res.Estimate / exact, res.Estimate, res.Metrics.Rounds}
	}
	return []DeltaSensRow{
		run("delta=min-weight", core.DeltaMinWeight, 0),
		run("delta=avg-weight", core.DeltaAvgWeight, 0),
		run("delta=diameter", core.DeltaFixed, exact),
	}
}

// WriteDeltaSens renders the Δ-sensitivity rows.
func WriteDeltaSens(w io.Writer, rows []DeltaSensRow) {
	fmt.Fprintf(w, "%-18s %9s %12s %8s\n", "config", "ratio", "estimate", "rounds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9.4f %12.4g %8d\n", r.Config, r.Ratio, r.Estimate, r.Rounds)
	}
}

// StepCapRow is one configuration of the Section 4.1 step-cap ablation.
type StepCapRow struct {
	Config string
	Ratio  float64
	Rounds int64
	Steps  int64
	// MaxSteps is the largest single PartialGrowth invocation, which the
	// cap bounds directly.
	MaxSteps int
}

// StepCap measures the Section 4.1 tradeoff on a road network (large ℓ):
// capping the growing steps per PartialGrowth reduces rounds at a bounded
// approximation cost.
func StepCap(scale Scale, seed uint64) []StepCapRow {
	r := rng.New(seed)
	side := 40
	if scale != ScaleTest {
		side = 128
	}
	g := gen.RoadNetwork(gen.DefaultRoadNetworkOptions(side), r)
	lb, _ := validate.LowerBound(g, 0, 4)
	// Small τ makes clusters deep (large ℓ_R) so the cap has bite.
	tau := 8
	run := func(name string, cap int) StepCapRow {
		e := bsp.New(0)
		defer e.Close()
		res := mustDiam(g, core.DiamOptions{
			Options: core.Options{Tau: tau, Seed: seed, StepCap: cap, Engine: e},
		})
		return StepCapRow{name, res.Estimate / lb, res.Metrics.Rounds,
			res.Clustering.GrowingSteps, res.Clustering.MaxPartialGrowthSteps}
	}
	capN := g.NumNodes() / tau
	if capN < 1 {
		capN = 1
	}
	return []StepCapRow{
		run("uncapped", 0),
		run(fmt.Sprintf("cap=n/tau=%d", capN), capN),
		run("cap=2", 2),
	}
}

// WriteStepCap renders the ablation rows.
func WriteStepCap(w io.Writer, rows []StepCapRow) {
	fmt.Fprintf(w, "%-18s %9s %8s %8s %9s\n", "config", "ratio", "rounds", "steps", "maxsteps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %9.4f %8d %8d %9d\n", r.Config, r.Ratio, r.Rounds, r.Steps, r.MaxSteps)
	}
}
