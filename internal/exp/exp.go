// Package exp is the experiments harness: it assembles the benchmark
// graphs of the paper's Table 1 (at reduced scale, see DESIGN.md), runs
// CL-DIAM against the Δ-stepping baseline, and produces the rows of every
// table and figure in the paper's evaluation (Section 5):
//
//   - Table 1: benchmark graph properties;
//   - Table 2 / Figures 1-3: approximation ratio, wall time, rounds and
//     work of CL-DIAM vs Δ-stepping on six graphs;
//   - Table 3: CL-DIAM wall time on the two largest graphs;
//   - Figure 4: scalability in the number of workers (machines);
//   - the Section 5 Δ-sensitivity experiment;
//   - the Section 4.1 growing-step-cap ablation.
//
// The same functions back cmd/experiments (human-readable tables) and the
// root-level benchmarks (one testing.B benchmark per table/figure).
package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"graphdiam/internal/bsp"
	"graphdiam/internal/cc"
	"graphdiam/internal/core"
	"graphdiam/internal/gen"
	"graphdiam/internal/graph"
	"graphdiam/internal/rng"
	"graphdiam/internal/sssp"
	"graphdiam/internal/validate"
)

// mustDiam runs ApproxDiameter under a background context. The harness
// drives finite benchmark instances to completion, so the only error the
// cancellable API can return — a context error — is impossible here.
func mustDiam(g *graph.Graph, o core.DiamOptions) core.DiamResult {
	res, err := core.ApproxDiameter(context.Background(), g, o)
	if err != nil {
		panic(err)
	}
	return res
}

// Scale selects the size of the benchmark instances.
type Scale int

const (
	// ScaleTest keeps every instance small enough for the unit-test suite.
	ScaleTest Scale = iota
	// ScaleDefault is the size used by cmd/experiments and the benchmarks:
	// large enough for the paper's effects to be unmistakable, small
	// enough for a laptop.
	ScaleDefault
)

// NamedGraph is a benchmark instance.
type NamedGraph struct {
	Name string
	// PaperName is the Table 1 graph this instance stands in for.
	PaperName string
	G         *graph.Graph
}

// BenchmarkGraphs builds the six Table 2 instances (scaled stand-ins; see
// DESIGN.md "Substitutions"). Deterministic in (scale, seed).
func BenchmarkGraphs(scale Scale, seed uint64) []NamedGraph {
	r := rng.New(seed)
	var roadBig, roadSmall, meshSide int
	var rmatSocialScale, rmatBigScale int
	switch scale {
	case ScaleTest:
		roadBig, roadSmall, meshSide = 48, 24, 32
		rmatSocialScale, rmatBigScale = 9, 10
	default:
		roadBig, roadSmall, meshSide = 160, 64, 128
		rmatSocialScale, rmatBigScale = 13, 15
	}
	return []NamedGraph{
		{"roads-big", "roads-USA", gen.RoadNetwork(gen.DefaultRoadNetworkOptions(roadBig), r.Split())},
		{"roads-small", "roads-CAL", gen.RoadNetwork(gen.DefaultRoadNetworkOptions(roadSmall), r.Split())},
		{"mesh", "mesh", gen.UniformWeights(gen.Mesh(meshSide), r.Split())},
		{"rmat-social", "livejournal", gen.UniformWeights(largestCC(gen.RMatDefault(rmatSocialScale, r.Split())), r.Split())},
		{"rmat-dense", "twitter", gen.UniformWeights(largestCC(gen.RMat(rmatSocialScale, 32, gen.DefaultRMatParams, r.Split())), r.Split())},
		{"rmat-big", "R-MAT(24)", gen.UniformWeights(largestCC(gen.RMatDefault(rmatBigScale, r.Split())), r.Split())},
	}
}

func largestCC(g *graph.Graph) *graph.Graph {
	sub, _ := cc.LargestComponent(g)
	return sub
}

// Row is one line of the Table 2 comparison.
type Row struct {
	Name      string
	PaperName string
	N, M      int

	LowerBound float64 // iterated-sweep diameter lower bound (ratio basis)

	// CL-DIAM results.
	ApproxCL float64
	RatioCL  float64
	TimeCL   time.Duration
	RoundsCL int64
	WorkCL   int64

	// Δ-stepping baseline (2·ecc from a fixed source).
	ApproxDS float64
	RatioDS  float64
	TimeDS   time.Duration
	RoundsDS int64
	WorkDS   int64
}

// CompareOptions tunes a comparison run.
type CompareOptions struct {
	// Workers is the engine parallelism (simulated machines). <=0: all cores.
	Workers int
	// QuotientTarget caps the expected quotient size; τ derives from it.
	QuotientTarget int
	// Sweeps for the diameter lower bound.
	Sweeps int
	// DeltaCandidates for the baseline's per-graph Δ tuning; empty uses
	// {avg/4, avg, 4·avg} as in our reproduction protocol.
	DeltaCandidates []float64
	// Seed drives clustering randomness.
	Seed uint64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.QuotientTarget <= 0 {
		o.QuotientTarget = 2000
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 4
	}
	return o
}

// Compare runs CL-DIAM and the Δ-stepping diameter baseline on g,
// producing one Table 2 row. The baseline's Δ is tuned per graph over
// opts.DeltaCandidates, mirroring the paper's protocol.
func Compare(ng NamedGraph, opts CompareOptions) Row {
	o := opts.withDefaults()
	g := ng.G
	row := Row{Name: ng.Name, PaperName: ng.PaperName, N: g.NumNodes(), M: g.NumEdges()}

	// Reference lower bound for approximation ratios (paper, Table 2
	// caption: iterated farthest-node SSSP).
	row.LowerBound, _ = validate.LowerBound(g, 0, o.Sweeps)

	// CL-DIAM.
	eCL := bsp.New(o.Workers)
	defer eCL.Close()
	tau := core.TauForQuotientTarget(g.NumNodes(), o.QuotientTarget)
	res := mustDiam(g, core.DiamOptions{
		Options: core.Options{Tau: tau, Seed: o.Seed, Engine: eCL},
	})
	row.ApproxCL = res.Estimate
	row.TimeCL = res.WallTime
	row.RoundsCL = res.Metrics.Rounds
	row.WorkCL = res.Metrics.Work()

	// Δ-stepping baseline from a fixed (deterministic) interior source —
	// the paper starts from a random node; a corner node would make
	// 2·ecc(s) degenerate to exactly 2·Φ.
	cands := o.DeltaCandidates
	if len(cands) == 0 {
		avg := g.AvgEdgeWeight()
		cands = []float64{avg / 4, avg, 4 * avg}
	}
	src := graph.NodeID(g.NumNodes() / 2)
	delta := sssp.TuneDelta(g, src, cands)
	eDS := bsp.New(o.Workers)
	defer eDS.Close()
	start := time.Now()
	ub, ds, err := sssp.DiameterUpperBound(context.Background(), g, src, delta, eDS)
	if err != nil {
		panic(err) // impossible: background context
	}
	row.TimeDS = time.Since(start)
	row.ApproxDS = ub
	row.RoundsDS = ds.Rounds
	row.WorkDS = ds.Work()

	if row.LowerBound > 0 {
		row.RatioCL = row.ApproxCL / row.LowerBound
		row.RatioDS = row.ApproxDS / row.LowerBound
	}
	return row
}

// Table2 runs the full comparison suite.
func Table2(scale Scale, opts CompareOptions) []Row {
	graphs := BenchmarkGraphs(scale, 12345)
	rows := make([]Row, 0, len(graphs))
	for _, ng := range graphs {
		rows = append(rows, Compare(ng, opts))
	}
	return rows
}

// WriteTable2 renders rows in the layout of the paper's Table 2.
func WriteTable2(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-12s %-12s %9s %10s | %7s %7s | %9s %9s | %7s %7s | %11s %11s\n",
		"graph", "(paper)", "n", "m",
		"apxCL", "apxDS", "timeCL", "timeDS", "rndCL", "rndDS", "workCL", "workDS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %9d %10d | %7.2f %7.2f | %9s %9s | %7d %7d | %11.3g %11.3g\n",
			r.Name, r.PaperName, r.N, r.M,
			r.RatioCL, r.RatioDS,
			r.TimeCL.Round(time.Millisecond), r.TimeDS.Round(time.Millisecond),
			r.RoundsCL, r.RoundsDS,
			float64(r.WorkCL), float64(r.WorkDS))
	}
}

// Table1Row summarizes one benchmark graph (paper Table 1).
type Table1Row struct {
	Name, PaperName string
	N, M            int
	Diameter        float64 // lower-bound estimate via sweeps
}

// Table1 reports the benchmark graph properties.
func Table1(scale Scale) []Table1Row {
	graphs := BenchmarkGraphs(scale, 12345)
	rows := make([]Table1Row, 0, len(graphs))
	for _, ng := range graphs {
		lb, _ := validate.LowerBound(ng.G, 0, 4)
		rows = append(rows, Table1Row{ng.Name, ng.PaperName, ng.G.NumNodes(), ng.G.NumEdges(), lb})
	}
	return rows
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-12s %-12s %9s %10s %14s\n", "graph", "(paper)", "n", "m", "diameter(≳)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-12s %9d %10d %14.4g\n", r.Name, r.PaperName, r.N, r.M, r.Diameter)
	}
}
