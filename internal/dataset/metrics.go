package dataset

import "graphdiam/internal/obs"

// CatalogMetrics is the catalog's lineage telemetry: appends,
// compactions, and the live delta-chain length per dataset. Labels
// carry dataset names only (bounded cardinality); SHAs never appear as
// label values. A nil *CatalogMetrics is valid and records nothing.
type CatalogMetrics struct {
	appends     *obs.CounterVec
	compactions *obs.CounterVec
	chainLen    *obs.GaugeVec
}

// NewCatalogMetrics registers the catalog metric families on r.
func NewCatalogMetrics(r *obs.Registry) *CatalogMetrics {
	return &CatalogMetrics{
		appends: r.CounterVec("graphdiam_dataset_appends_total",
			"Delta frames appended to a dataset's lineage (no-op appends excluded).",
			"dataset"),
		compactions: r.CounterVec("graphdiam_dataset_compactions_total",
			"Delta chains folded into fresh snapshots.",
			"dataset"),
		chainLen: r.GaugeVec("graphdiam_dataset_delta_chain_length",
			"Current delta-chain length of a dataset's lineage (0 after compaction).",
			"dataset"),
	}
}

func (m *CatalogMetrics) appended(dataset string, chainLen int) {
	if m == nil {
		return
	}
	m.appends.With(dataset).Inc()
	m.chainLen.With(dataset).Set(float64(chainLen))
}

func (m *CatalogMetrics) compacted(dataset string) {
	if m == nil {
		return
	}
	m.compactions.With(dataset).Inc()
	m.chainLen.With(dataset).Set(0)
}
