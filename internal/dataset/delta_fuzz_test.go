package dataset

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// FuzzDeltaFrameDecode hammers the binary frame decoder with mutated
// inputs. The properties under test:
//
//   - no panic, no count-proportional allocation from a length-prefix
//     lie (the harness's memory limit would kill us);
//   - any frame that decodes re-encodes to byte-identical input — the
//     codec admits exactly its own canonical serialization, so a decoded
//     frame's content address always matches its bytes.
func FuzzDeltaFrameDecode(f *testing.F) {
	valid, _, err := EncodeDeltaFrame(sampleDelta())
	if err != nil {
		f.Fatal(err)
	}
	empty, _, err := EncodeDeltaFrame(&EdgeDelta{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:deltaHeaderSize])
	f.Add([]byte{})
	// A header lying about its record counts, CRC fixed up so the lie —
	// not the checksum — is what the decoder must catch.
	lie := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(lie[dNumInsOff:], 1<<38)
	binary.LittleEndian.PutUint32(lie[dCRCOff:], crc32.ChecksumIEEE(lie[:dCRCOff]))
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, h, err := DecodeDeltaFrame(data)
		if err != nil {
			return
		}
		if len(d.Ins) != h.NumIns || len(d.Rem) != h.NumRem {
			t.Fatalf("decoded shape (+%d -%d) disagrees with header (+%d -%d)",
				len(d.Ins), len(d.Rem), h.NumIns, h.NumRem)
		}
		re, rh, err := EncodeDeltaFrame(d)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted frame is not the canonical serialization of its records")
		}
		if rh.SHAHex() != h.SHAHex() {
			t.Fatalf("re-encoded address %s != decoded %s", rh.SHAHex(), h.SHAHex())
		}
	})
}

// FuzzDecodeDeltaStream does the same for the text/gzip ingestion face:
// arbitrary bytes must either parse into a valid delta or fail with an
// error, never panic.
func FuzzDecodeDeltaStream(f *testing.F) {
	f.Add("+ 0 7 2.5\n- 1 2\n")
	f.Add("# comment\n\n+ 1 2 0.5\n")
	f.Add("* garbage\n")
	f.Add("+ 1 1 3\n")
	f.Add("- 4294967295 0\n")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := DecodeDeltaStream(strings.NewReader(text))
		if err != nil {
			return
		}
		// Whatever parsed must be encodable — the stream decoder's
		// validation is at least as strict as the frame encoder's.
		if _, _, err := EncodeDeltaFrame(d); err != nil {
			t.Fatalf("stream-accepted delta rejected by encoder: %v", err)
		}
	})
}
