// Delta frames (".gdd" payloads stored in the same blob tier as ".gds"
// snapshots) are the dynamic half of the dataset layer: a versioned,
// checksummed, content-addressed record of edge insertions and removals
// against some predecessor graph. A dataset's identity becomes a
// lineage — one base snapshot plus an ordered chain of delta frames —
// and its head SHA is defined as the payload SHA-256 of the fully
// materialized CSR, i.e. exactly what WriteSnapshot of the materialized
// graph would produce. That definition is what keeps fleet cache keys
// content-addressed and node-independent across appends, and what lets
// compaction fold a chain into a fresh snapshot without changing the
// dataset's address.
//
// Frame layout (all little-endian, not page-padded — deltas are small):
//
//	header (72 bytes): magic "GDD1", version, numIns, numRem,
//	                   payload SHA-256, fileBytes, CRC-32 of the header
//	numIns insertion records: u uint32, v uint32, w float64 (16 bytes)
//	numRem removal records:   u uint32, v uint32 (8 bytes)
//
// The content address is the SHA-256 of numIns‖numRem plus the raw
// record bytes, mirroring the snapshot payload-hash convention. The
// decoder is hardened against length-prefix lies: declared counts must
// reconcile exactly with the input size before any count-proportional
// allocation happens, so a hostile header cannot make a node allocate
// more than a small multiple of the bytes it was actually handed.
package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"graphdiam/internal/graph"
)

const (
	deltaMagic   = 0x31444447 // "GDD1", little-endian
	deltaVersion = 1

	// Delta header field offsets; the CRC covers [0, dCRCOff).
	dMagicOff       = 0
	dVersionOff     = 4
	dNumInsOff      = 8
	dNumRemOff      = 16
	dSHAOff         = 24
	dFileBytesOff   = 56
	dCRCOff         = 64
	deltaHeaderSize = 72

	insRecBytes = 16 // u, v, w
	remRecBytes = 8  // u, v
)

// DeltaIns is one edge insertion (or weight update: inserting an edge
// that exists replaces its weight — see ApplyEdgeDelta).
type DeltaIns struct {
	U, V graph.NodeID
	W    float64
}

// DeltaRem is one edge removal. Removing an absent edge is a no-op.
type DeltaRem struct {
	U, V graph.NodeID
}

// EdgeDelta is a decoded delta frame: the ordered insertion and removal
// records applied on top of a predecessor graph.
type EdgeDelta struct {
	Ins []DeltaIns
	Rem []DeltaRem
}

// DeltaHeader is the decoded frame header: record counts, the frame's
// size, and its content address.
type DeltaHeader struct {
	NumIns     int
	NumRem     int
	FileBytes  int64
	PayloadSHA [32]byte
}

// SHAHex returns the frame's content address as lowercase hex.
func (h DeltaHeader) SHAHex() string { return hex.EncodeToString(h.PayloadSHA[:]) }

// Touched returns the distinct node IDs named by the delta, the vertex
// set the store uses to decide which clusters a delta invalidates.
func (d *EdgeDelta) Touched() []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	for _, in := range d.Ins {
		seen[in.U], seen[in.V] = true, true
	}
	for _, rm := range d.Rem {
		seen[rm.U], seen[rm.V] = true, true
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// validateDelta rejects records the graph model cannot hold: non-positive
// or non-finite insertion weights (the paper's model requires positive
// finite weights) and self-loop insertions.
func validateDelta(d *EdgeDelta) error {
	for i, in := range d.Ins {
		if in.W <= 0 || math.IsInf(in.W, 0) || math.IsNaN(in.W) {
			return fmt.Errorf("dataset: delta insertion %d: invalid weight %v on edge (%d,%d)", i, in.W, in.U, in.V)
		}
		if in.U == in.V {
			return fmt.Errorf("dataset: delta insertion %d: self-loop on node %d", i, in.U)
		}
	}
	for i, rm := range d.Rem {
		if rm.U == rm.V {
			return fmt.Errorf("dataset: delta removal %d: self-loop on node %d", i, rm.U)
		}
	}
	return nil
}

// deltaRecordBytes renders the record region (the hashed payload after
// the count prefix).
func deltaRecordBytes(d *EdgeDelta) []byte {
	raw := make([]byte, insRecBytes*len(d.Ins)+remRecBytes*len(d.Rem))
	le := binary.LittleEndian
	o := 0
	for _, in := range d.Ins {
		le.PutUint32(raw[o:], uint32(in.U))
		le.PutUint32(raw[o+4:], uint32(in.V))
		le.PutUint64(raw[o+8:], math.Float64bits(in.W))
		o += insRecBytes
	}
	for _, rm := range d.Rem {
		le.PutUint32(raw[o:], uint32(rm.U))
		le.PutUint32(raw[o+4:], uint32(rm.V))
		o += remRecBytes
	}
	return raw
}

// EncodeDeltaFrame renders d as a GDD1 frame and returns the bytes and
// the decoded header (including the frame's content address).
func EncodeDeltaFrame(d *EdgeDelta) ([]byte, DeltaHeader, error) {
	if err := validateDelta(d); err != nil {
		return nil, DeltaHeader{}, err
	}
	recs := deltaRecordBytes(d)
	h := DeltaHeader{
		NumIns:    len(d.Ins),
		NumRem:    len(d.Rem),
		FileBytes: int64(deltaHeaderSize + len(recs)),
	}
	sum := payloadHash(h.NumIns, h.NumRem)
	sum.Write(recs)
	sum.Sum(h.PayloadSHA[:0])

	buf := make([]byte, deltaHeaderSize+len(recs))
	le := binary.LittleEndian
	le.PutUint32(buf[dMagicOff:], deltaMagic)
	le.PutUint32(buf[dVersionOff:], deltaVersion)
	le.PutUint64(buf[dNumInsOff:], uint64(h.NumIns))
	le.PutUint64(buf[dNumRemOff:], uint64(h.NumRem))
	copy(buf[dSHAOff:], h.PayloadSHA[:])
	le.PutUint64(buf[dFileBytesOff:], uint64(h.FileBytes))
	le.PutUint32(buf[dCRCOff:], crc32.ChecksumIEEE(buf[:dCRCOff]))
	copy(buf[deltaHeaderSize:], recs)
	return buf, h, nil
}

// decodeDeltaHeader parses a frame header and reconciles the declared
// counts with the actual input size before anything count-proportional
// is allocated — the length-prefix-lie guard.
func decodeDeltaHeader(buf []byte, actualSize int64) (DeltaHeader, error) {
	var h DeltaHeader
	if len(buf) < deltaHeaderSize {
		return h, fmt.Errorf("dataset: short delta header: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	if m := le.Uint32(buf[dMagicOff:]); m != deltaMagic {
		return h, fmt.Errorf("dataset: bad magic %#x (not a delta frame)", m)
	}
	if v := le.Uint32(buf[dVersionOff:]); v != deltaVersion {
		return h, fmt.Errorf("dataset: unsupported delta frame version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:dCRCOff]), le.Uint32(buf[dCRCOff:]); got != want {
		return h, fmt.Errorf("dataset: delta header CRC mismatch (got %#x, want %#x)", got, want)
	}
	// The tail of the header is reserved padding outside both the CRC and
	// the payload hash; requiring zeros keeps the encoding canonical — no
	// two byte-distinct frames decode to the same content address.
	for _, b := range buf[dCRCOff+4 : deltaHeaderSize] {
		if b != 0 {
			return h, fmt.Errorf("dataset: nonzero reserved bytes in delta header")
		}
	}
	ins := le.Uint64(buf[dNumInsOff:])
	rem := le.Uint64(buf[dNumRemOff:])
	if ins > 1<<40 || rem > 1<<40 {
		return h, fmt.Errorf("dataset: implausible delta shape ins=%d rem=%d", ins, rem)
	}
	h.NumIns, h.NumRem = int(ins), int(rem)
	h.FileBytes = int64(le.Uint64(buf[dFileBytesOff:]))
	want := int64(deltaHeaderSize) + insRecBytes*int64(ins) + remRecBytes*int64(rem)
	if h.FileBytes != want {
		return h, fmt.Errorf("dataset: delta header declares %d bytes, records need %d", h.FileBytes, want)
	}
	if actualSize >= 0 && actualSize != want {
		return h, fmt.Errorf("dataset: delta frame is %d bytes, header declares %d (truncated?)", actualSize, want)
	}
	copy(h.PayloadSHA[:], buf[dSHAOff:dSHAOff+32])
	return h, nil
}

// DecodeDeltaFrame parses and fully verifies a GDD1 frame: header CRC,
// count/size reconciliation, payload re-hash against the content
// address, and record validity. A frame that decodes is a frame whose
// bytes are exactly what its address claims.
func DecodeDeltaFrame(buf []byte) (*EdgeDelta, DeltaHeader, error) {
	h, err := decodeDeltaHeader(buf, int64(len(buf)))
	if err != nil {
		return nil, DeltaHeader{}, err
	}
	recs := buf[deltaHeaderSize:]
	sum := payloadHash(h.NumIns, h.NumRem)
	sum.Write(recs)
	var got [32]byte
	sum.Sum(got[:0])
	if got != h.PayloadSHA {
		return nil, DeltaHeader{}, fmt.Errorf("dataset: delta payload SHA-256 mismatch (corrupt frame)")
	}
	d := &EdgeDelta{
		Ins: make([]DeltaIns, h.NumIns),
		Rem: make([]DeltaRem, h.NumRem),
	}
	le := binary.LittleEndian
	o := 0
	for i := range d.Ins {
		d.Ins[i] = DeltaIns{
			U: graph.NodeID(le.Uint32(recs[o:])),
			V: graph.NodeID(le.Uint32(recs[o+4:])),
			W: math.Float64frombits(le.Uint64(recs[o+8:])),
		}
		o += insRecBytes
	}
	for i := range d.Rem {
		d.Rem[i] = DeltaRem{
			U: graph.NodeID(le.Uint32(recs[o:])),
			V: graph.NodeID(le.Uint32(recs[o+4:])),
		}
		o += remRecBytes
	}
	if err := validateDelta(d); err != nil {
		return nil, DeltaHeader{}, err
	}
	return d, h, nil
}

// maxDeltaFileBytes bounds how much of a delta blob a node will read
// into memory: far above any chain the compaction policy allows, far
// below anything that could hurt.
const maxDeltaFileBytes = 1 << 30

// WriteDeltaFrame writes d to path as a GDD1 frame, fsync'd, and
// returns the header. Like WriteSnapshot, crash-atomic naming is the
// caller's job.
func WriteDeltaFrame(path string, d *EdgeDelta) (DeltaHeader, error) {
	buf, h, err := EncodeDeltaFrame(d)
	if err != nil {
		return DeltaHeader{}, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return DeltaHeader{}, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return DeltaHeader{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return DeltaHeader{}, err
	}
	return h, f.Close()
}

// LoadDeltaFrame reads and fully verifies the frame at path.
func LoadDeltaFrame(path string) (*EdgeDelta, DeltaHeader, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, DeltaHeader{}, err
	}
	if st.Size() > maxDeltaFileBytes {
		return nil, DeltaHeader{}, fmt.Errorf("dataset: delta frame %s is %d bytes (limit %d)", path, st.Size(), maxDeltaFileBytes)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, DeltaHeader{}, err
	}
	d, h, err := DecodeDeltaFrame(buf)
	if err != nil {
		return nil, DeltaHeader{}, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return d, h, nil
}

// verifyDeltaFile is the delta-frame counterpart of verifyAddress: it
// fully decodes (and therefore re-hashes) the frame without applying it.
func verifyDeltaFile(path string) (DeltaHeader, error) {
	_, h, err := LoadDeltaFrame(path)
	return h, err
}

// DecodeDeltaStream parses the text delta format from r, transparently
// gunzipping (sniffed, trailer CRC honored via the reader). One record
// per line:
//
//	insert:  "+ u v w"  — insert (or reweight) undirected edge {u,v} with weight w
//	remove:  "- u v"    — remove undirected edge {u,v} (absent edges are ignored)
//
// '#' starts a comment; blank lines are skipped. Malformed input returns
// a BadInputError so the server can answer 400 rather than 500, exactly
// like the ingest decoders.
func DecodeDeltaStream(r io.Reader) (*EdgeDelta, error) {
	br := bufio.NewReaderSize(r, sniffLen)
	head, _ := br.Peek(2)
	var src io.Reader = br
	var zr *gzip.Reader
	if isGzipMagic(head) {
		var err error
		zr, err = gzip.NewReader(br)
		if err != nil {
			return nil, badInput(fmt.Errorf("gzip: %v", err))
		}
		src = zr
	}
	d := &EdgeDelta{}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "+":
			if len(f) != 4 {
				return nil, badInput(fmt.Errorf("delta line %d: want '+ u v w', got %q", lineNo, line))
			}
			u, err1 := strconv.ParseUint(f[1], 10, 32)
			v, err2 := strconv.ParseUint(f[2], 10, 32)
			w, err3 := strconv.ParseFloat(f[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, badInput(fmt.Errorf("delta line %d: unparsable record %q", lineNo, line))
			}
			d.Ins = append(d.Ins, DeltaIns{U: graph.NodeID(u), V: graph.NodeID(v), W: w})
		case "-":
			if len(f) != 3 {
				return nil, badInput(fmt.Errorf("delta line %d: want '- u v', got %q", lineNo, line))
			}
			u, err1 := strconv.ParseUint(f[1], 10, 32)
			v, err2 := strconv.ParseUint(f[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, badInput(fmt.Errorf("delta line %d: unparsable record %q", lineNo, line))
			}
			d.Rem = append(d.Rem, DeltaRem{U: graph.NodeID(u), V: graph.NodeID(v)})
		default:
			return nil, badInput(fmt.Errorf("delta line %d: want '+' or '-', got %q", lineNo, line))
		}
	}
	if err := sc.Err(); err != nil {
		// %w keeps typed reader errors (notably http.MaxBytesError)
		// visible through the BadInputError so the server classifies an
		// over-cap body as 413, not 400 — exactly like ingest.
		return nil, badInput(fmt.Errorf("read delta: %w", err))
	}
	if zr != nil {
		if err := zr.Close(); err != nil {
			return nil, badInput(fmt.Errorf("gzip: %v", err))
		}
	}
	if err := validateDelta(d); err != nil {
		return nil, &BadInputError{Err: err}
	}
	return d, nil
}

// ApplyEdgeDelta materializes one delta step: the result is exactly the
// graph a one-shot ingest of the merged edge list would build, where
// merged = (edges of g minus the removed pairs) followed by the
// insertion records. Removals apply before insertions, so a pair that is
// both removed and inserted ends up with the inserted weight — the
// reweight idiom. Insertions of an already-present pair go through the
// Builder's min-weight parallel-edge rule, matching static ingest.
// Node count grows to cover the largest inserted endpoint; removals
// never shrink it.
func ApplyEdgeDelta(g *graph.Graph, d *EdgeDelta) (*graph.Graph, error) {
	if err := validateDelta(d); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	for _, in := range d.Ins {
		if int(in.U)+1 > n {
			n = int(in.U) + 1
		}
		if int(in.V)+1 > n {
			n = int(in.V) + 1
		}
	}
	removed := make(map[uint64]bool, len(d.Rem))
	for _, rm := range d.Rem {
		removed[pairKey(rm.U, rm.V)] = true
	}
	b := graph.NewBuilder(n, g.NumEdges()+len(d.Ins))
	g.ForEachEdge(func(u, v graph.NodeID, w float64) {
		if !removed[pairKey(u, v)] {
			b.AddEdge(u, v, w)
		}
	})
	for _, in := range d.Ins {
		b.AddEdge(in.U, in.V, in.W)
	}
	return b.Build(), nil
}

// pairKey packs an unordered node pair into one comparable key.
func pairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// materializedHeader computes the snapshot header a WriteSnapshot of g
// would produce — shape, stats, file size, and above all the payload
// SHA-256 — without writing any bytes. It is how a lineage's head
// address is defined: append computes it to name the new head, Load
// computes it to cross-check a materialization, and compaction's
// written snapshot must hash to exactly this address.
func materializedHeader(g *graph.Graph) Header {
	offsets, targets, weights := g.RawCSR()
	n, m := g.NumNodes(), g.NumEdges()
	sum := payloadHash(n, m)
	if hostLittleEndian {
		sum.Write(int64Bytes(offsets))
		sum.Write(nodeIDBytes(targets))
		sum.Write(float64Bytes(weights))
	} else {
		var b8 [8]byte
		for _, v := range offsets {
			binary.LittleEndian.PutUint64(b8[:], uint64(v))
			sum.Write(b8[:])
		}
		var b4 [4]byte
		for _, v := range targets {
			binary.LittleEndian.PutUint32(b4[:], uint32(v))
			sum.Write(b4[:])
		}
		for _, v := range weights {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
			sum.Write(b8[:])
		}
	}
	h := Header{NumNodes: n, NumEdges: m, Stats: g.Stats(), FileBytes: layoutFor(n, m).fileBytes}
	sum.Sum(h.PayloadSHA[:0])
	return h
}
